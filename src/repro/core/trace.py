"""Execution traces: the action alphabet ``Act`` and trace objects.

Section II-A defines execution traces as sequences of zero-delay actions —
channel writes ``x!c``, channel reads ``x?c``, external-sample accesses
``x?[k]Ie`` / ``x![k]Oe``, variable assignments, and waits ``w(τ)``.  The
zero-delay semantics of an FPPN is precisely a rule for constructing one such
trace (Section II-B):

    Trace(PN) = w(t1) ∘ α1 ∘ w(t2) ∘ α2 ...

This module provides immutable action records and the :class:`Trace`
container.  Traces serve three purposes in this library:

1. they are the *definition* of the reference behaviour (zero-delay run);
2. the determinism checker compares channel-projections of traces produced
   under different schedules (Prop. 2.1);
3. they make tests precise — assertions can pin the exact action order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, List, Optional, Tuple

from .timebase import Time, time_str


@dataclass(frozen=True)
class Action:
    """Base class for zero-delay actions."""


@dataclass(frozen=True)
class Wait(Action):
    """``w(τ)`` — advance time to stamp ``τ``."""

    time: Time

    def __str__(self) -> str:
        return f"w({time_str(self.time)})"


@dataclass(frozen=True)
class ChannelWrite(Action):
    """``x!c`` — process *process* writes *value* to internal channel *channel*."""

    process: str
    channel: str
    value: Any

    def __str__(self) -> str:
        return f"{self.process}:{self.value!r}!{self.channel}"


@dataclass(frozen=True)
class ChannelRead(Action):
    """``x?c`` — process *process* reads *value* from internal channel *channel*."""

    process: str
    channel: str
    value: Any

    def __str__(self) -> str:
        return f"{self.process}:{self.value!r}?{self.channel}"


@dataclass(frozen=True)
class ExternalRead(Action):
    """``x?[k]Ie`` — read sample ``[k]`` from external input *channel*."""

    process: str
    channel: str
    sample_index: int
    value: Any

    def __str__(self) -> str:
        return f"{self.process}:{self.value!r}?[{self.sample_index}]{self.channel}"


@dataclass(frozen=True)
class ExternalWrite(Action):
    """``x![k]Oe`` — write sample ``[k]`` to external output *channel*."""

    process: str
    channel: str
    sample_index: int
    value: Any

    def __str__(self) -> str:
        return f"{self.process}:{self.channel}![{self.sample_index}]{self.value!r}"


@dataclass(frozen=True)
class Assign(Action):
    """Variable assignment inside a process (``x := expr``)."""

    process: str
    variable: str
    value: Any

    def __str__(self) -> str:
        return f"{self.process}:{self.variable}:={self.value!r}"


@dataclass(frozen=True)
class JobStart(Action):
    """Marker: job ``process[k]`` begins its execution run."""

    process: str
    k: int

    def __str__(self) -> str:
        return f"start {self.process}[{self.k}]"


@dataclass(frozen=True)
class JobEnd(Action):
    """Marker: job ``process[k]`` returned to its initial location."""

    process: str
    k: int

    def __str__(self) -> str:
        return f"end {self.process}[{self.k}]"


@dataclass
class Trace:
    """An execution trace ``α ∈ Act*`` with convenience projections."""

    actions: List[Action] = field(default_factory=list)

    def append(self, action: Action) -> None:
        self.actions.append(action)

    def extend(self, actions: Iterable[Action]) -> None:
        self.actions.extend(actions)

    def __iter__(self) -> Iterator[Action]:
        return iter(self.actions)

    def __len__(self) -> int:
        return len(self.actions)

    def __getitem__(self, i):
        return self.actions[i]

    # -- projections -----------------------------------------------------
    def channel_writes(self, channel: Optional[str] = None) -> List[Tuple[str, Any]]:
        """Sequence of ``(channel, value)`` internal writes, optionally filtered.

        This is the observable the determinism proposition quantifies over
        ("the sequences of values written at all external and internal
        channels").
        """
        out = []
        for a in self.actions:
            if isinstance(a, ChannelWrite) and (channel is None or a.channel == channel):
                out.append((a.channel, a.value))
        return out

    def external_writes(self, channel: Optional[str] = None) -> List[Tuple[str, int, Any]]:
        """Sequence of ``(channel, k, value)`` external output samples."""
        out = []
        for a in self.actions:
            if isinstance(a, ExternalWrite) and (channel is None or a.channel == channel):
                out.append((a.channel, a.sample_index, a.value))
        return out

    def job_order(self) -> List[Tuple[str, int]]:
        """The sequence of completed jobs ``(process, k)`` in start order."""
        return [(a.process, a.k) for a in self.actions if isinstance(a, JobStart)]

    def waits(self) -> List[Time]:
        """The time stamps of all ``w(τ)`` actions, in order."""
        return [a.time for a in self.actions if isinstance(a, Wait)]

    def pretty(self, limit: Optional[int] = None) -> str:
        """Multi-line human-readable rendering (truncated at *limit* actions)."""
        items = self.actions if limit is None else self.actions[:limit]
        lines = [str(a) for a in items]
        if limit is not None and len(self.actions) > limit:
            lines.append(f"... ({len(self.actions) - limit} more actions)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Lazy traces: record compactly on the hot path, materialise on demand.
# ----------------------------------------------------------------------

#: Compact encoding of the hot-path actions: one single-character code per
#: action class, followed by the dataclass fields in declaration order.
#: The field tuples are cross-checked against the dataclasses at import
#: time (below), so the encoders in :mod:`repro.core.process` and the
#: runtime executor cannot silently drift from the action definitions.
COMPACT_CODES = {
    "R": (ChannelRead, ("process", "channel", "value")),
    "W": (ChannelWrite, ("process", "channel", "value")),
    "r": (ExternalRead, ("process", "channel", "sample_index", "value")),
    "w": (ExternalWrite, ("process", "channel", "sample_index", "value")),
    "A": (Assign, ("process", "variable", "value")),
    "S": (JobStart, ("process", "k")),
    "E": (JobEnd, ("process", "k")),
    "T": (Wait, ("time",)),
}

for _cls, _names in COMPACT_CODES.values():
    _actual = tuple(f.name for f in _cls.__dataclass_fields__.values())
    if _actual != _names:  # pragma: no cover - import-time drift guard
        raise AssertionError(
            f"{_cls.__name__}'s fields changed ({_actual} != {_names}) — "
            "update COMPACT_CODES and every compact encoder before shipping"
        )


class LazyTrace(Trace):
    """A trace recorded as compact tuples, materialised on first access.

    The simulator's data phase emits on the order of tens of actions per
    job instance; allocating one frozen dataclass per action dominates the
    phase even though most callers never read ``result.trace``.  A lazy
    trace lets producers append ``(code, *fields)`` tuples to :attr:`raw`
    (see :data:`COMPACT_CODES`) and builds the real :class:`Action`
    objects only when a consumer first touches :attr:`actions` — exact
    same sequence, paid for only when someone looks.

    Equality works across the eager/lazy divide: a materialised
    ``LazyTrace`` compares equal to a plain :class:`Trace` holding the
    same actions, which is what the differential test oracles assert.
    """

    def __init__(self, raw: Optional[list] = None) -> None:
        self.raw: List[tuple] = raw if raw is not None else []
        self._actions: Optional[List[Action]] = None

    @property
    def actions(self) -> List[Action]:  # type: ignore[override]
        acts = self._actions
        if acts is None:
            codes = COMPACT_CODES
            new = object.__new__
            oset = object.__setattr__
            acts = []
            append = acts.append
            for rec in self.raw:
                cls, names = codes[rec[0]]
                act = new(cls)
                oset(act, "__dict__", dict(zip(names, rec[1:])))
                append(act)
            self._actions = acts
        return acts

    def __len__(self) -> int:
        # Cheap even before materialisation (used by guards and tests).
        return len(self.raw) if self._actions is None else len(self._actions)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Trace):
            return self.actions == other.actions
        return NotImplemented
