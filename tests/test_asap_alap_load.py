"""Tests for ASAP/ALAP bounds, the load metric and Proposition 3.1."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import build_fig1_network, build_fft_network, fft_wcets, random_network, random_wcets
from repro.taskgraph import (
    TaskGraph,
    compute_bounds,
    critical_path_length,
    derive_task_graph,
    necessary_condition,
    precedence_feasible,
    task_graph_load,
    utilization,
)
from repro.taskgraph.jobs import Job


def J(name, k=1, a=0, d=100, c=10):
    return Job(name, k, Fraction(a), Fraction(d), Fraction(c))


class TestAsapAlap:
    def test_chain(self):
        g = TaskGraph([J("a"), J("b"), J("c")], [(0, 1), (1, 2)], Fraction(100))
        b = compute_bounds(g)
        assert b.asap == [0, 10, 20]
        assert b.alap == [80, 90, 100]

    def test_arrival_dominates(self):
        g = TaskGraph([J("a"), J("b", a=50)], [(0, 1)], Fraction(100))
        b = compute_bounds(g)
        assert b.asap[1] == 50  # arrival later than pred finish

    def test_diamond_max_path(self):
        g = TaskGraph(
            [J("a"), J("b", c=30), J("c", c=5), J("d")],
            [(0, 1), (0, 2), (1, 3), (2, 3)],
            Fraction(100),
        )
        b = compute_bounds(g)
        assert b.asap[3] == 40  # through the 30-cost branch
        assert b.alap[0] == min(100 - 10 - 30, 100 - 10 - 5) - 0  # 60

    def test_window(self):
        g = TaskGraph([J("a")], [], Fraction(100))
        b = compute_bounds(g)
        assert b.window(0) == 100

    def test_precedence_feasible_true(self):
        g = TaskGraph([J("a"), J("b")], [(0, 1)], Fraction(100))
        assert precedence_feasible(g)

    def test_precedence_feasible_false(self):
        # chain of 3 x 40ms in a 100ms window cannot fit
        g = TaskGraph(
            [J("a", c=40), J("b", c=40), J("c", c=40)],
            [(0, 1), (1, 2)],
            Fraction(100),
        )
        assert not precedence_feasible(g)

    def test_critical_path(self):
        g = TaskGraph(
            [J("a", c=10), J("b", c=30), J("c", c=5), J("d", c=10)],
            [(0, 1), (0, 2), (1, 3), (2, 3)],
            Fraction(100),
        )
        assert critical_path_length(g) == 50


class TestLoad:
    def test_single_job(self):
        g = TaskGraph([J("a", d=40, c=10)], [], Fraction(40))
        lr = task_graph_load(g)
        assert lr.load == Fraction(1, 4)
        assert lr.min_processors == 1

    def test_classical_no_precedence_case(self):
        # Two jobs, same window [0, 10), each C=6: load 1.2 -> 2 processors.
        g = TaskGraph([J("a", d=10, c=6), J("b", d=10, c=6)], [], Fraction(10))
        lr = task_graph_load(g)
        assert lr.load == Fraction(12, 10)
        assert lr.min_processors == 2

    def test_precedence_tightens_window(self):
        # b must follow a; both in [0,20). Without precedence the densest
        # window is [0,20) at load 1.0; ASAP/ALAP shrink windows so the
        # metric sees the serialization.
        g = TaskGraph([J("a", d=20, c=10), J("b", d=20, c=10)], [(0, 1)], Fraction(20))
        lr = task_graph_load(g)
        assert lr.load == 1

    def test_witness_window(self):
        g = TaskGraph([J("a", d=10, c=6), J("b", d=10, c=6)], [], Fraction(10))
        assert task_graph_load(g).window == (0, 10)

    def test_empty_graph(self):
        lr = task_graph_load(TaskGraph([], [], Fraction(10)))
        assert lr.load == 0 and lr.min_processors == 1

    def test_fig1_load_needs_two_processors(self):
        g = derive_task_graph(build_fig1_network(), 25)
        lr = task_graph_load(g)
        assert lr.load == Fraction(3, 2)
        assert lr.min_processors == 2

    def test_fft_load_093(self):
        """Section V-A: 'resulted in a load 0.93'."""
        g = derive_task_graph(build_fft_network(), fft_wcets())
        assert task_graph_load(g).load == Fraction(93, 100)

    def test_load_at_least_utilization(self):
        g = derive_task_graph(build_fig1_network(), 25)
        assert task_graph_load(g).load >= utilization(g)

    def test_utilization_requires_hyperperiod(self):
        g = TaskGraph([J("a")], [])
        with pytest.raises(ValueError):
            utilization(g)


class TestNecessaryCondition:
    def test_accepts_feasible(self):
        g = TaskGraph([J("a", d=20, c=10)], [], Fraction(20))
        assert necessary_condition(g, 1)

    def test_rejects_overload(self):
        g = TaskGraph([J("a", d=10, c=6), J("b", d=10, c=6)], [], Fraction(10))
        assert not necessary_condition(g, 1)
        assert necessary_condition(g, 2)

    def test_rejects_precedence_infeasible_on_any_m(self):
        g = TaskGraph(
            [J("a", c=40), J("b", c=40), J("c", c=40)],
            [(0, 1), (1, 2)],
            Fraction(100),
        )
        assert not necessary_condition(g, 100)

    def test_processor_count_validated(self):
        g = TaskGraph([J("a")], [], Fraction(100))
        with pytest.raises(ValueError):
            necessary_condition(g, 0)


class TestLoadProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_load_bounds_on_random_networks(self, seed):
        net = random_network(seed=seed, n_periodic=4, n_sporadic=1)
        wcets = random_wcets(net, seed=seed, utilization_target=0.4)
        g = derive_task_graph(net, wcets)
        lr = task_graph_load(g)
        # load >= frame utilization, and both positive
        assert lr.load >= utilization(g) > 0
        # witness window actually attains the load
        t1, t2 = lr.window
        b = compute_bounds(g)
        total = sum(
            (g.jobs[i].wcet for i in range(len(g))
             if b.asap[i] >= t1 and b.alap[i] <= t2),
            Fraction(0),
        )
        assert total / (t2 - t1) == lr.load
