"""Zero-delay semantics of FPPNs (Section II-B).

Given the invocation sequence ``(t1, P1), (t2, P2), ...`` (strictly increasing
time stamps ``ti``, multisets ``Pi`` of processes invoked at ``ti``), the
zero-delay execution trace is::

    Trace(PN) = w(t1) ∘ α1 ∘ w(t2) ∘ α2 ...

where ``αi`` concatenates the job execution runs of the processes in ``Pi``
in an order respecting functional priority: if ``p1 → p2`` then the job(s) of
``p1`` execute before the job(s) of ``p2``.

This module implements the construction directly and is the **reference
behaviour** for everything else: the multiprocessor runtime (Section IV) is
correct exactly when its channel outputs coincide with this executor's
(Propositions 2.1 and 4.1).

Within one ``Pi``, processes unrelated by FP may execute in any order without
affecting channel data (FP must cover channel-sharing pairs).  For trace
reproducibility we fix the order deterministically: topological rank of the
FP DAG, ties broken by process name; bursts of the same process execute in
invocation-index order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..errors import SemanticsError
from .channels import ChannelState, ExternalOutputState
from .events import Invocation, merge_invocations
from .invocations import Stimulus
from .network import Network
from .process import JobContext
from .timebase import Time, TimeLike, as_positive_time
from .trace import LazyTrace, Trace


@dataclass
class ExecutionResult:
    """Observable outcome of one FPPN execution.

    ``channel_logs`` and ``external_outputs`` are the objects Proposition 2.1
    quantifies over; :meth:`observable` flattens them into a canonical,
    comparable structure used by the determinism checker.
    """

    network_name: str
    horizon: Time
    trace: Trace
    channel_logs: Dict[str, List[Any]]
    external_outputs: Dict[str, List[Tuple[int, Any]]]
    job_count: int
    final_variables: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def observable(self) -> Dict[str, Any]:
        """Canonical determinism observable: all channel write sequences."""
        return {
            "channels": {k: list(v) for k, v in sorted(self.channel_logs.items())},
            "outputs": {k: list(v) for k, v in sorted(self.external_outputs.items())},
        }

    def output_values(self, channel: str) -> List[Any]:
        """Values written to an external output, in sample order."""
        return [v for _, v in self.external_outputs[channel]]


class ZeroDelayExecutor:
    """Executes a network under the zero-delay semantics."""

    def __init__(self, network: Network) -> None:
        network.validate()
        self.network = network
        self._rank = network.priority_rank()

    # ------------------------------------------------------------------
    def invocation_sequence(
        self, horizon: TimeLike, stimulus: Optional[Stimulus] = None
    ) -> List[Tuple[Time, List[Invocation]]]:
        """The global sequence ``(t1, P1), (t2, P2), ...`` over ``[0, horizon)``.

        Periodic invocations come from the generators; sporadic ones from the
        stimulus arrival traces.
        """
        h = as_positive_time(horizon, "horizon")
        stimulus = stimulus or Stimulus()
        stimulus.validate(self.network)
        per_process: List[Tuple[str, List[Time]]] = []
        for proc in self.network.processes.values():
            if proc.is_sporadic:
                times = [t for t in stimulus.arrivals_for(proc.name) if t < h]
            else:
                times = proc.generator.invocations(h)
            per_process.append((proc.name, times))
        return merge_invocations(per_process)

    def run(
        self, horizon: TimeLike, stimulus: Optional[Stimulus] = None
    ) -> ExecutionResult:
        """Construct and execute the zero-delay trace over ``[0, horizon)``."""
        h = as_positive_time(horizon, "horizon")
        stimulus = stimulus or Stimulus()
        sequence = self.invocation_sequence(h, stimulus)

        # Compact recording: waits and job markers append ``(code, ...)``
        # tuples, the contexts do the same for channel/variable actions, and
        # Action objects materialise only if someone reads ``result.trace``
        # — reference runs inside sweeps never do (see core/trace.LazyTrace).
        trace = LazyTrace()
        channel_states: Dict[str, ChannelState] = {
            name: spec.new_state() for name, spec in self.network.channels.items()
        }
        variables: Dict[str, Dict[str, Any]] = {
            name: proc.fresh_variables() for name, proc in self.network.processes.items()
        }
        ext_out: Dict[str, ExternalOutputState] = {
            name: ExternalOutputState(spec)
            for name, spec in self.network.external_outputs.items()
        }
        job_count = 0

        raw_append = trace.raw.append
        for t, invocations in sequence:
            raw_append(("T", t))
            for inv in self._order_jobs(invocations):
                self._run_job(inv, t, channel_states, variables, ext_out, stimulus, trace)
                job_count += 1

        return ExecutionResult(
            network_name=self.network.name,
            horizon=h,
            trace=trace,
            channel_logs={n: list(s.write_log) for n, s in channel_states.items()},
            external_outputs={n: s.as_sequence() for n, s in ext_out.items()},
            job_count=job_count,
            final_variables=variables,
        )

    # ------------------------------------------------------------------
    def _order_jobs(self, invocations: List[Invocation]) -> List[Invocation]:
        """Order simultaneous invocations: FP rank, then name, then index."""
        return sorted(
            invocations, key=lambda inv: (self._rank[inv.process], inv.process, inv.index)
        )

    def _run_job(
        self,
        inv: Invocation,
        now: Time,
        channel_states: Mapping[str, ChannelState],
        variables: Dict[str, Dict[str, Any]],
        ext_out: Mapping[str, ExternalOutputState],
        stimulus: Stimulus,
        trace: LazyTrace,
    ) -> None:
        proc = self.network.processes[inv.process]
        ctx = JobContext(
            process=proc.name,
            k=inv.index,
            now=now,
            variables=variables[proc.name],
            inputs={n: channel_states[n] for n in proc.inputs},
            outputs={n: channel_states[n] for n in proc.outputs},
            external_inputs={n: stimulus.samples_view(n) for n in proc.external_inputs},
            external_outputs={n: ext_out[n] for n in proc.external_outputs},
            trace=trace,
        )
        raw_append = trace.raw.append
        raw_append(("S", proc.name, inv.index))
        try:
            proc.behavior.run_job(ctx)
        except SemanticsError:
            raise
        except Exception as exc:  # surface app bugs with job identity attached
            raise SemanticsError(
                f"job {proc.name}[{inv.index}] at t={now} raised {exc!r}"
            ) from exc
        raw_append(("E", proc.name, inv.index))


def run_zero_delay(
    network: Network, horizon: TimeLike, stimulus: Optional[Stimulus] = None
) -> ExecutionResult:
    """One-call convenience wrapper around :class:`ZeroDelayExecutor`."""
    return ZeroDelayExecutor(network).run(horizon, stimulus)
