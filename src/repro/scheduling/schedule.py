"""Static schedules (Definition 3.2) and feasibility checking.

A static schedule assigns every job ``Ji`` a processor ``μi`` and a start
time ``si``; it is **feasible** iff it satisfies:

* arrival:          ``si >= Ai``
* deadline:         ``ei = si + Ci <= Di``
* precedence:       ``(Ji, Jj) ∈ E  =>  ei <= sj``
* mutual exclusion: ``μi = μj  =>  ei <= sj  ∨  ej <= si``

The schedule repeats with the frame period ``H`` (Section IV); the online
static-order policy consumes only its per-processor *job order*, never its
absolute start times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from itertools import chain

from ..errors import SchedulingError
from ..core.platform import Platform, PlatformLike, as_platform
from ..core.ticks import TickDomain
from ..core.timebase import Time, time_str
from ..taskgraph.graph import TaskGraph


@dataclass(frozen=True)
class ScheduledJob:
    """One schedule entry: job index, processor, start time."""

    job_index: int
    processor: int
    start: Time

    def __post_init__(self) -> None:
        if self.processor < 0:
            raise SchedulingError("processor ids are non-negative")
        if self.start < 0:
            raise SchedulingError("start times are non-negative")


@dataclass
class Violation:
    """A diagnosed feasibility violation (for reports and error messages)."""

    kind: str  # 'arrival' | 'deadline' | 'precedence' | 'mutex' | 'missing'
    detail: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.kind}: {self.detail}"


class StaticSchedule:
    """A complete static schedule for a task graph on a platform.

    ``processors`` accepts either the classic core count (the degenerate
    homogeneous platform) or a :class:`~repro.core.platform.Platform`;
    ``self.processors`` stays the flat total either way.  On a
    heterogeneous platform a job's duration is its class-resolved WCET on
    the processor it is placed on (:meth:`duration`), which every
    feasibility check and the tick view charge consistently.
    """

    def __init__(
        self,
        graph: TaskGraph,
        processors: PlatformLike,
        entries: Sequence[ScheduledJob],
    ) -> None:
        try:
            platform = as_platform(processors)
        except (TypeError, ValueError) as exc:
            raise SchedulingError(str(exc)) from None
        processors = platform.processors
        self.graph = graph
        self.platform: Platform = platform
        self.processors = processors
        # Heterogeneous iff the platform is non-degenerate or any job
        # carries a per-class WCET table; the degenerate case takes the
        # pre-platform code paths verbatim (the bit-identical invariant).
        self._hetero = (not platform.is_unit) or any(
            j.wcet_by_class is not None for j in graph.jobs
        )
        self.entries: List[ScheduledJob] = sorted(
            entries, key=lambda e: (e.start, e.processor, e.job_index)
        )
        self._by_job: Dict[int, ScheduledJob] = {}
        #: lazy integer-tick view (domain, start ticks, job time arrays)
        self._ticks: Optional[
            Tuple[TickDomain, Dict[int, int], Sequence[int], Sequence[int], Sequence[int]]
        ] = None
        for e in self.entries:
            if e.processor >= processors:
                raise SchedulingError(
                    f"entry for job {graph.jobs[e.job_index].name} uses "
                    f"processor {e.processor} >= M={processors}"
                )
            if e.job_index in self._by_job:
                raise SchedulingError(
                    f"job {graph.jobs[e.job_index].name} scheduled twice"
                )
            self._by_job[e.job_index] = e

    # ------------------------------------------------------------------
    def entry(self, job_index: int) -> ScheduledJob:
        try:
            return self._by_job[job_index]
        except KeyError:
            name = self.graph.jobs[job_index].name
            raise SchedulingError(f"job {name} is not scheduled") from None

    def start(self, job_index: int) -> Time:
        return self.entry(job_index).start

    def duration(self, job_index: int) -> Time:
        """The job's execution time on its assigned processor.

        The base WCET on a degenerate platform; the class-resolved WCET
        (table entry or speed-scaled, still an exact rational) otherwise.
        """
        job = self.graph.jobs[job_index]
        if not self._hetero:
            return job.wcet
        return job.wcet_on(self.platform.class_of(self.entry(job_index).processor))

    def end(self, job_index: int) -> Time:
        return self.entry(job_index).start + self.duration(job_index)

    def mapping(self, job_index: int) -> int:
        return self.entry(job_index).processor

    def processor_identity(self, job_index: int) -> Tuple[str, int]:
        """``(class name, local index)`` of the job's assigned processor."""
        return self.platform.identity(self.entry(job_index).processor)

    def tick_view(
        self,
    ) -> Tuple[TickDomain, Dict[int, int], Sequence[int], Sequence[int], Sequence[int]]:
        """Integer-tick view ``(domain, start_ticks, arrival, wcet, deadline)``.

        The domain is the graph's tick domain, extended if hand-built entries
        carry start times outside it; all arrays are exact integer images of
        the rational values.  Built lazily once (schedules are immutable
        after construction) and shared by the feasibility checks and the
        runtime executor's frame ordering.

        On a heterogeneous platform the ``wcet`` array holds each
        *scheduled* job's class-resolved duration on its assigned
        processor (unscheduled jobs keep their base WCET), and the domain
        is extended so every class-scaled value converts exactly —
        ``to_ticks`` still raises rather than rounds.
        """
        cached = self._ticks
        if cached is None:
            if not self._hetero:
                tt = self.graph.tick_times().rescaled_to(
                    e.start for e in self.entries
                )
                to_ticks = tt.domain.to_ticks
                start_t = {
                    e.job_index: to_ticks(e.start) for e in self.entries
                }
                cached = self._ticks = (
                    tt.domain, start_t, tt.arrival, tt.wcet, tt.deadline
                )
                return cached
            durations = {
                e.job_index: self.duration(e.job_index)
                for e in self.entries
            }
            tt = self.graph.tick_times().rescaled_to(chain(
                (e.start for e in self.entries), durations.values()
            ))
            to_ticks = tt.domain.to_ticks
            start_t = {e.job_index: to_ticks(e.start) for e in self.entries}
            wcet_t = list(tt.wcet)
            for i, d in durations.items():
                wcet_t[i] = to_ticks(d)
            cached = self._ticks = (
                tt.domain, start_t, tt.arrival, wcet_t, tt.deadline
            )
        return cached

    def makespan(self) -> Time:
        """Completion time of the last job in the frame."""
        dom, start_t, _, wcet, _ = self.tick_view()
        return dom.from_ticks(
            max((t + wcet[i] for i, t in start_t.items()), default=0)
        )

    def processor_order(self, processor: int) -> List[int]:
        """Job indices mapped to *processor*, in start-time order.

        This is exactly the per-processor static order consumed by the
        online policy (Section IV).
        """
        return [e.job_index for e in self.entries if e.processor == processor]

    def orders(self) -> List[List[int]]:
        """Per-processor static orders for all processors."""
        return [self.processor_order(m) for m in range(self.processors)]

    # ------------------------------------------------------------------
    def violations(self) -> List[Violation]:
        """All feasibility violations of Definition 3.2 (empty == feasible).

        All comparisons run in the integer tick view; the diagnostic
        messages are rendered from the exact rational times, so they are
        identical to a pure-Fraction check.
        """
        out: List[Violation] = []
        jobs = self.graph.jobs
        _, start_t, arrival_t, wcet_t, deadline_t = self.tick_view()
        for i in range(len(jobs)):
            if i not in self._by_job:
                out.append(Violation("missing", f"job {jobs[i].name} unscheduled"))
        for i, e in self._by_job.items():
            job = jobs[i]
            s = start_t[i]
            if s < arrival_t[i]:
                out.append(
                    Violation(
                        "arrival",
                        f"{job.name} starts at {time_str(e.start)} before "
                        f"arrival {time_str(job.arrival)}",
                    )
                )
            if s + wcet_t[i] > deadline_t[i]:
                out.append(
                    Violation(
                        "deadline",
                        f"{job.name} ends at {time_str(self.end(i))} "
                        f"after deadline {time_str(job.deadline)}",
                    )
                )
        for i, j in self.graph.edges():
            if i in start_t and j in start_t:
                if start_t[i] + wcet_t[i] > start_t[j]:
                    out.append(
                        Violation(
                            "precedence",
                            f"{jobs[i].name} -> {jobs[j].name}: predecessor ends "
                            f"{time_str(self.end(i))} after successor start "
                            f"{time_str(self.start(j))}",
                        )
                    )
        for m in range(self.processors):
            order = self.processor_order(m)
            for a, b in zip(order, order[1:]):
                if start_t[a] + wcet_t[a] > start_t[b]:
                    out.append(
                        Violation(
                            "mutex",
                            f"jobs {jobs[a].name} and {jobs[b].name} overlap "
                            f"on processor {m}",
                        )
                    )
        return out

    def is_feasible(self) -> bool:
        return not self.violations()

    def require_feasible(self) -> "StaticSchedule":
        """Return self, raising with diagnostics when infeasible."""
        problems = self.violations()
        if problems:
            detail = "; ".join(str(v) for v in problems[:5])
            raise SchedulingError(
                f"schedule is infeasible ({len(problems)} violations): {detail}"
            )
        return self

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"StaticSchedule(M={self.processors}, jobs={len(self.entries)}, "
            f"makespan={time_str(self.makespan())})"
        )
