"""repro — Fixed Priority Process Networks (FPPN).

A complete, executable reproduction of

    P. Poplavko, D. Socci, P. Bourgos, S. Bensalem, M. Bozga,
    "Models for Deterministic Execution of Real-Time Multiprocessor
    Applications", DATE 2015.

The library covers the full pipeline of the paper:

* **model** — FPPN networks: processes (automata or kernels), FIFO /
  blackboard channels, periodic and sporadic event generators, functional
  priorities (:mod:`repro.core`);
* **reference semantics** — zero-delay execution traces
  (:func:`repro.core.run_zero_delay`);
* **task graphs** — sporadic→server transformation, hyperperiod derivation,
  ASAP/ALAP, the precedence-aware load metric (:mod:`repro.taskgraph`);
* **scheduling** — non-preemptive multiprocessor list scheduling with SP
  heuristics, plus the uniprocessor fixed-priority baseline
  (:mod:`repro.scheduling`);
* **runtime** — the online static-order policy simulated on ``M``
  processors with overhead and jitter models (:mod:`repro.runtime`);
* **applications** — the paper's Fig. 1 example, the FFT streaming use
  case and the FMS avionics case study (:mod:`repro.apps`);
* **analysis** — mechanical determinism checking and paper-style reports
  (:mod:`repro.analysis`);
* **experiments** — the scenario-first API (:mod:`repro.experiment`):
  :class:`Scenario` describes one run as a frozen, serialisable value,
  :class:`Experiment` lazily computes and caches the pipeline stages, and
  :class:`ScenarioMatrix` + :func:`run_sweep` run STOMP-style cartesian
  sweeps that derive and schedule once per distinct compile-time cell.

Quickstart — describe the run once, then ask for any stage::

    from repro import ChannelKind, Experiment, Network, Scenario

    def build():
        net = Network("demo")
        net.add_periodic("producer", period=100,
                         kernel=lambda ctx: ctx.write("c", ctx.k))
        net.add_periodic("consumer", period=100,
                         kernel=lambda ctx: ctx.read("c"))
        net.connect("producer", "consumer", "c", kind=ChannelKind.FIFO)
        net.add_priority("producer", "consumer")
        net.validate()
        return net

    exp = Experiment(Scenario(
        workload=build,                     # or a registered name: "fms"
        wcet={"producer": 10, "consumer": 10},
        processors=1,
        n_frames=5,
    ))
    exp.task_graph()                        # derivation, computed once
    exp.schedule()                          # feasible static schedule
    assert not exp.run().misses()           # online static-order execution
    assert exp.check_determinism().deterministic

Sweeps vary any scenario fields over a matrix, reusing stages::

    from repro import ScenarioMatrix, run_sweep
    from repro.apps import fms_scenario

    matrix = ScenarioMatrix(fms_scenario(), {"jitter_seed": [0, 1, 2]})
    print(run_sweep(matrix).table())        # 1 derivation, 1 schedule, 3 runs

The loose pipeline functions (:func:`derive_task_graph`,
:func:`find_feasible_schedule`, :func:`run_static_order`,
:func:`run_zero_delay`, :func:`check_determinism`) remain first-class for
callers that want the stages by hand.
"""

from .errors import (
    ChannelError,
    EventError,
    FPPNError,
    InfeasibleError,
    ModelError,
    RuntimeModelError,
    SchedulingError,
    SemanticsError,
)
from .core import (
    Automaton,
    Behavior,
    ChannelKind,
    JobContext,
    KernelBehavior,
    NO_DATA,
    Network,
    PeriodicGenerator,
    Process,
    SporadicGenerator,
    Stimulus,
    TickDomain,
    Time,
    ZeroDelayExecutor,
    as_time,
    hyperperiod,
    is_no_data,
    run_zero_delay,
)
from .taskgraph import (
    Job,
    TaskGraph,
    compute_bounds,
    derive_task_graph,
    necessary_condition,
    task_graph_load,
    transitive_reduction,
)
from .scheduling import (
    StaticSchedule,
    UniprocessorFixedPriority,
    find_feasible_schedule,
    list_schedule,
    minimum_processors,
    rate_monotonic_priorities,
)
from .runtime import (
    MultiprocessorExecutor,
    OverheadModel,
    RuntimeResult,
    jittered_execution,
    miss_summary,
    run_static_order,
    runtime_gantt,
    schedule_gantt,
)
from .analysis import DeterminismReport, check_determinism
from .experiment import (
    Experiment,
    FaultPlan,
    MemorySweepStore,
    PipelineCache,
    Scenario,
    ScenarioMatrix,
    SqliteSweepStore,
    SweepCellError,
    SweepPool,
    SweepResult,
    SweepTicket,
    register_workload,
    run_sweep,
)

__version__ = "1.0.0"

__all__ = [
    "ChannelError",
    "EventError",
    "FPPNError",
    "InfeasibleError",
    "ModelError",
    "RuntimeModelError",
    "SchedulingError",
    "SemanticsError",
    "Automaton",
    "Behavior",
    "ChannelKind",
    "JobContext",
    "KernelBehavior",
    "NO_DATA",
    "Network",
    "PeriodicGenerator",
    "Process",
    "SporadicGenerator",
    "Stimulus",
    "TickDomain",
    "Time",
    "ZeroDelayExecutor",
    "as_time",
    "hyperperiod",
    "is_no_data",
    "run_zero_delay",
    "Job",
    "TaskGraph",
    "compute_bounds",
    "derive_task_graph",
    "necessary_condition",
    "task_graph_load",
    "transitive_reduction",
    "StaticSchedule",
    "UniprocessorFixedPriority",
    "find_feasible_schedule",
    "list_schedule",
    "minimum_processors",
    "rate_monotonic_priorities",
    "MultiprocessorExecutor",
    "OverheadModel",
    "RuntimeResult",
    "jittered_execution",
    "miss_summary",
    "run_static_order",
    "runtime_gantt",
    "schedule_gantt",
    "DeterminismReport",
    "check_determinism",
    "Experiment",
    "FaultPlan",
    "MemorySweepStore",
    "PipelineCache",
    "Scenario",
    "ScenarioMatrix",
    "SqliteSweepStore",
    "SweepCellError",
    "SweepPool",
    "SweepResult",
    "SweepTicket",
    "register_workload",
    "run_sweep",
    "__version__",
]
