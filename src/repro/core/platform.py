"""First-class platform model: ordered processor classes with counts.

The paper assumes ``m`` identical processors; the open-system extension
studied by STOMP-style schedulers needs *heterogeneous* platforms where a
job's duration depends on the class of the processor it lands on.  This
module introduces the platform as data:

* a :class:`ProcessorClass` is a named speed factor (exact rational —
  a class of speed ``1/2`` runs every job twice as long);
* a :class:`Platform` is an **ordered** tuple of ``(class, count)``
  entries.  Flat processor ids ``0 .. M-1`` enumerate the entries in
  order, so schedules keep addressing processors by a single integer
  while :meth:`Platform.identity` recovers the ``(class name, local
  index)`` pair a slot is bound to.

``Platform.homogeneous(m)`` is the degenerate single-class speed-1
platform that replaces the old ``processors: int`` spelling.  Every
layer gates its heterogeneous logic on :meth:`Platform.is_unit` so the
degenerate platform takes *exactly* the homogeneous code path — the
bit-identical invariant the differential suite pins.

Speeds stay exact: effective WCETs divide by the class speed in
:class:`~fractions.Fraction` arithmetic, never floats, so tick domains
remain LCM-exact and ``to_ticks`` keeps its raise-on-unrepresentable
contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Tuple, Union

from .timebase import Time, TimeLike, as_positive_time

__all__ = ["ProcessorClass", "Platform", "PlatformLike", "as_platform"]


@dataclass(frozen=True)
class ProcessorClass:
    """A named processor class with an exact rational speed factor.

    ``speed`` scales WCETs: a job with base WCET ``C`` runs for
    ``C / speed`` on this class (speed 2 halves durations, speed 1/2
    doubles them).  Jobs carrying an explicit per-class WCET table are
    *not* additionally speed-scaled — the table entry is authoritative.
    """

    name: str
    speed: Time = Fraction(1)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(
                f"processor class name must be a non-empty string, "
                f"got {self.name!r}"
            )
        object.__setattr__(
            self, "speed",
            as_positive_time(self.speed, f"speed of class {self.name!r}"),
        )

    def describe(self) -> str:
        if self.speed == 1:
            return self.name
        return f"{self.name}(x{self.speed})"


#: A platform spec entry: ``(name, count)`` or ``(name, count, speed)``.
_EntrySpec = Union[Tuple[str, int], Tuple[str, int, TimeLike]]

PlatformLike = Union["Platform", int]


@dataclass(frozen=True)
class Platform:
    """An ordered multiset of processor classes.

    ``entries`` is a tuple of ``(ProcessorClass, count)`` pairs; flat
    processor ids ``0 .. processors-1`` walk the entries in order (all
    of class 0 first, then class 1, ...).  Class names must be unique
    and counts positive, so a platform is hashable, comparable and
    usable as a sweep-axis value.
    """

    entries: Tuple[Tuple[ProcessorClass, int], ...]

    def __post_init__(self) -> None:
        entries = tuple(
            (cls, int(count)) for cls, count in self.entries
        )
        if not entries:
            raise ValueError("a platform needs at least one class entry")
        seen = set()
        for cls, count in entries:
            if not isinstance(cls, ProcessorClass):
                raise TypeError(
                    f"platform entries take ProcessorClass, got {cls!r}"
                )
            if count < 1:
                raise ValueError(
                    f"class {cls.name!r} needs a positive count, got {count}"
                )
            if cls.name in seen:
                raise ValueError(f"duplicate processor class {cls.name!r}")
            seen.add(cls.name)
        object.__setattr__(self, "entries", entries)

    # -- constructors ---------------------------------------------------
    @classmethod
    def homogeneous(
        cls, processors: int, *, speed: TimeLike = 1, name: str = "cpu"
    ) -> "Platform":
        """The degenerate single-class platform (``m`` identical cores)."""
        return cls(((ProcessorClass(name, as_positive_time(speed)),
                     int(processors)),))

    @classmethod
    def of(cls, *specs: _EntrySpec) -> "Platform":
        """Build a platform from ``(name, count[, speed])`` tuples.

        >>> Platform.of(("big", 2, 1), ("little", 4, "1/2")).processors
        6
        """
        entries = []
        for spec in specs:
            if len(spec) == 2:
                name, count = spec
                entries.append((ProcessorClass(name), int(count)))
            elif len(spec) == 3:
                name, count, speed = spec
                entries.append(
                    (ProcessorClass(name, as_positive_time(speed)),
                     int(count))
                )
            else:
                raise ValueError(
                    f"platform spec entries are (name, count[, speed]), "
                    f"got {spec!r}"
                )
        return cls(tuple(entries))

    # -- shape ----------------------------------------------------------
    @property
    def processors(self) -> int:
        """Total processor count across all classes (the old ``m``)."""
        return sum(count for _, count in self.entries)

    @property
    def classes(self) -> Tuple[ProcessorClass, ...]:
        return tuple(cls for cls, _ in self.entries)

    @property
    def is_unit(self) -> bool:
        """True for the degenerate platform: one class at speed 1.

        Every layer uses this gate to fall back to the exact homogeneous
        code path, which is what makes ``Platform.homogeneous(m)``
        bit-identical to ``processors=m``.
        """
        return len(self.entries) == 1 and self.entries[0][0].speed == 1

    # -- flat-id addressing ---------------------------------------------
    def class_of(self, processor: int) -> ProcessorClass:
        """The class owning flat processor id *processor*."""
        remaining = processor
        for cls, count in self.entries:
            if remaining < count:
                return cls
            remaining -= count
        raise IndexError(
            f"processor {processor} out of range for {self.describe()}"
        )

    def identity(self, processor: int) -> Tuple[str, int]:
        """``(class name, local index)`` of flat processor id *processor*."""
        remaining = processor
        for cls, count in self.entries:
            if remaining < count:
                return cls.name, remaining
            remaining -= count
        raise IndexError(
            f"processor {processor} out of range for {self.describe()}"
        )

    def class_per_processor(self) -> Tuple[ProcessorClass, ...]:
        """Per-flat-id class lookup table, length :attr:`processors`."""
        out = []
        for cls, count in self.entries:
            out.extend([cls] * count)
        return tuple(out)

    # -- keys / rendering -----------------------------------------------
    def classes_key(self) -> Tuple[Tuple[str, Time, int], ...]:
        """Hashable identity: ``(name, speed, count)`` per entry, in order."""
        return tuple(
            (cls.name, cls.speed, count) for cls, count in self.entries
        )

    def describe(self) -> str:
        return " + ".join(
            f"{count}x{cls.describe()}" for cls, count in self.entries
        )

    def __str__(self) -> str:
        return self.describe()


def as_platform(value: PlatformLike) -> Platform:
    """Coerce *value* (a :class:`Platform` or an ``int``) to a platform.

    The ``int`` spelling builds the degenerate homogeneous platform, so
    every API that historically took ``processors: int`` keeps working.
    """
    if isinstance(value, Platform):
        return value
    if isinstance(value, bool):
        raise TypeError("bool is not a valid platform")
    if isinstance(value, int):
        if value < 1:
            raise ValueError(f"processor count must be >= 1, got {value}")
        return Platform.homogeneous(value)
    raise TypeError(
        f"cannot interpret {value!r} as a platform — pass a Platform or "
        "a processor count"
    )
