"""Schedule-priority (SP) heuristics for list scheduling.

Section III-B: list scheduling assumes a heuristically computed *schedule
priority* ``SP`` — a total order on jobs where earlier jobs have higher
priority.  ``SP`` must not be confused with the functional priority ``FP``;
FP determines the precedence edges, SP only drives the list scheduler's
tie-breaking.

Implemented heuristics (the families the paper cites):

* ``alap`` — EDF adjusted for task graphs by using ALAP completion times
  ``D'_i`` instead of nominal deadlines (the paper's recommended variant).
* ``deadline`` — EDF on the nominal deadlines ``Di`` (the "modified
  deadline monotonic" flavour of [Forget et al.]).
* ``blevel`` — longest WCET-weighted path to any sink, descending
  (the classic b-level heuristic of [Kwok & Ahmad]).
* ``arrival`` — FIFO by arrival time (baseline; what a naive implementation
  would do).

Every heuristic returns a *rank list*: ``rank[i]`` is the position of job
``i`` in the SP total order (0 = highest priority).  All orders are made
total deterministically by final tie-breaks on the ``<J`` index.

Sort keys are built from the graph's integer tick view
(:meth:`TaskGraph.tick_times`): the tick map is strictly monotone, so the
resulting orders — and therefore the rank lists — are identical to sorting
the exact rational times, at a fraction of the comparison cost.

**Heterogeneous platforms.**  On a platform with several processor
classes a job has no single WCET before placement, so WCET-consuming
heuristics (``alap``, ``blevel``) rank against a configurable *aggregate*
over the classes — ``min`` (optimistic), ``max`` (conservative) or
``mean`` (STOMP-style expected duration; the default).  Built-in
heuristics are marked ``platform_aware`` and receive the platform and
aggregate as keywords; externally registered platform-blind heuristics
keep ranking on the base WCETs, which remains a valid total order.  A
degenerate platform never reaches the aggregate path, so homogeneous
rankings are bit-identical to the pre-platform ones.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import SchedulingError
from ..core.platform import Platform
from ..core.timebase import Time
from ..taskgraph.asap_alap import compute_bounds_ticks
from ..taskgraph.graph import TaskGraph

Heuristic = Callable[[TaskGraph], List[int]]

#: Supported per-class WCET aggregates for platform-aware ranking.
WCET_AGGREGATES = ("min", "max", "mean")

_REGISTRY: Dict[str, Heuristic] = {}


def register_heuristic(
    name: str, *, platform_aware: bool = False
) -> Callable[[Heuristic], Heuristic]:
    """Decorator registering a named SP heuristic.

    ``platform_aware`` heuristics additionally accept ``platform`` and
    ``wcet_aggregate`` keywords when scheduling targets a heterogeneous
    platform; plain heuristics are always called with the graph alone.
    """

    def deco(fn: Heuristic) -> Heuristic:
        if name in _REGISTRY:
            raise SchedulingError(f"heuristic {name!r} already registered")
        fn.platform_aware = platform_aware  # type: ignore[attr-defined]
        _REGISTRY[name] = fn
        return fn

    return deco


def aggregate_wcets(
    graph: TaskGraph, platform: Platform, aggregate: str = "mean"
) -> List[Time]:
    """Per-job WCETs aggregated over the platform's classes (exact).

    The ranking seam for heterogeneous platforms: ``min``/``max`` pick
    the best/worst class, ``mean`` the exact rational average — no
    floats, so tick domains extended with these values stay LCM-exact.
    """
    if aggregate not in WCET_AGGREGATES:
        raise SchedulingError(
            f"unknown WCET aggregate {aggregate!r}; "
            f"supported: {list(WCET_AGGREGATES)}"
        )
    classes = platform.classes
    out: List[Time] = []
    for job in graph.jobs:
        values = [job.wcet_on(cls) for cls in classes]
        if aggregate == "min":
            out.append(min(values))
        elif aggregate == "max":
            out.append(max(values))
        else:
            out.append(sum(values, Fraction(0)) / len(values))
    return out


def available_heuristics() -> List[str]:
    """Names of all registered heuristics."""
    return sorted(_REGISTRY)


def get_heuristic(name: str) -> Heuristic:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SchedulingError(
            f"unknown heuristic {name!r}; available: {available_heuristics()}"
        ) from None


def _ranks_from_keys(keys: Sequence) -> List[int]:
    """Convert per-job sort keys into rank positions (0 = highest)."""
    order = sorted(range(len(keys)), key=lambda i: keys[i])
    ranks = [0] * len(keys)
    for pos, i in enumerate(order):
        ranks[i] = pos
    return ranks


@register_heuristic("alap", platform_aware=True)
def alap_priority(
    graph: TaskGraph,
    platform: Optional[Platform] = None,
    wcet_aggregate: str = "mean",
) -> List[int]:
    """EDF on ALAP completion times (ties: ASAP, then ``<J`` index)."""
    if platform is None:
        asap_t, alap_t = compute_bounds_ticks(graph)
    else:
        asap_t, alap_t = compute_bounds_ticks(
            graph, aggregate_wcets(graph, platform, wcet_aggregate)
        )
    keys = [(alap_t[i], asap_t[i], i) for i in range(len(graph))]
    return _ranks_from_keys(keys)


@register_heuristic("deadline")
def deadline_priority(graph: TaskGraph) -> List[int]:
    """EDF on the nominal job deadlines ``Di`` (ties: arrival, index)."""
    tt = graph.tick_times()
    keys = [
        (tt.deadline[i], tt.arrival[i], i) for i in range(len(graph))
    ]
    return _ranks_from_keys(keys)


@register_heuristic("blevel", platform_aware=True)
def blevel_priority(
    graph: TaskGraph,
    platform: Optional[Platform] = None,
    wcet_aggregate: str = "mean",
) -> List[int]:
    """Descending b-level: longest WCET path from the job to any sink.

    Jobs on long critical paths are urgent even when their deadline is far;
    this is the classical list-scheduling heuristic for makespan.
    """
    n = len(graph)
    tt = graph.tick_times()
    if platform is None:
        wcet: Sequence = tt.wcet
    else:
        # Rank on platform-aggregated WCETs; exact rationals compare and
        # add exactly, and the b-level component is only ever compared to
        # other b-levels, so no shared tick domain is needed.
        wcet = aggregate_wcets(graph, platform, wcet_aggregate)
    succ_table = graph.successor_table()
    blevel: List[int] = [0] * n
    for i in range(n - 1, -1, -1):
        tail = 0
        for s in succ_table[i]:
            if blevel[s] > tail:
                tail = blevel[s]
        blevel[i] = wcet[i] + tail
    keys = [(-blevel[i], tt.deadline[i], i) for i in range(n)]
    return _ranks_from_keys(keys)


@register_heuristic("arrival")
def arrival_priority(graph: TaskGraph) -> List[int]:
    """FIFO by arrival time (baseline heuristic)."""
    tt = graph.tick_times()
    keys = [(tt.arrival[i], tt.deadline[i], i) for i in range(len(graph))]
    return _ranks_from_keys(keys)
