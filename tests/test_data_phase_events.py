"""Data-phase observer events: live emission, replay round-trip, guards.

Covers the satellite contract of the data-phase PR:

* ``on_job_data_start``/``on_job_data_end`` (kernel spans) and
  ``on_channel_write`` fire live in data-phase execution order with exact
  rational timestamps, and :func:`repro.runtime.observers.replay`
  reconstructs the identical stream from a stored result;
* the guarded ``RuntimeResult`` accessors and error paths:
  ``collect_records=False`` + record access, ``records_only=True`` +
  channel-log access, suppressed traces + data-event replay;
* ``records_only=True`` continues to skip the whole data phase (no kernel
  dispatch, no data events);
* ``MetricsObserver`` kernel-span statistics and the per-channel VCD wires
  agree between live runs and replays.
"""

import pytest

from repro.apps import (
    build_fig1_network,
    fig1_stimulus,
    fig1_wcets,
)
from repro.errors import RuntimeModelError
from repro.io.vcd import runtime_result_to_vcd, trace_to_vcd
from repro.runtime import (
    ExecutionObserver,
    MetricsObserver,
    TraceObserver,
    kernel_span_stats,
    replay,
    run_static_order,
)
from repro.scheduling import list_schedule
from repro.taskgraph import derive_task_graph


class DataEventLog(ExecutionObserver):
    """Records every data-phase event verbatim."""

    def __init__(self):
        self.events = []

    def on_job_data_start(self, process, k, frame, start):
        self.events.append(("start", process, k, frame, start))

    def on_job_data_end(self, process, k, frame, end):
        self.events.append(("end", process, k, frame, end))

    def on_channel_write(self, process, channel, value, time):
        self.events.append(("write", process, channel, value, time))


def fig1_run(**kwargs):
    net = build_fig1_network()
    graph = derive_task_graph(net, fig1_wcets())
    schedule = list_schedule(graph, 2, "alap")
    return net, schedule, fig1_stimulus(3), kwargs


def run_with(observers=(), **kwargs):
    net, schedule, stim, _ = fig1_run()
    return run_static_order(net, schedule, 3, stim, observers=observers, **kwargs)


class TestLiveEmission:
    def test_events_follow_data_phase_order(self):
        log = DataEventLog()
        result = run_with([log])
        # Span events pair up, per process[k], writes in between.
        open_spans = set()
        job_sequence = []
        for ev in log.events:
            if ev[0] == "start":
                open_spans.add((ev[1], ev[2]))
                job_sequence.append((ev[1], ev[2]))
            elif ev[0] == "end":
                open_spans.remove((ev[1], ev[2]))
            else:  # a write always belongs to the one open span
                assert len(open_spans) == 1
        assert not open_spans
        # The job sequence is exactly the trace's job order.
        assert job_sequence == result.trace.job_order()

    def test_span_times_match_records(self):
        log = DataEventLog()
        result = run_with([log])
        record_of = {
            (r.process, r.global_k): r for r in result.records if not r.is_false
        }
        starts = {(p, k): t for e, p, k, _f, t in log.events if e == "start"}
        ends = {(p, k): t for e, p, k, _f, t in log.events if e == "end"}
        assert set(starts) == set(record_of)
        for key, rec in record_of.items():
            assert starts[key] == rec.start
            assert ends[key] == rec.end

    def test_write_events_match_channel_logs(self):
        log = DataEventLog()
        result = run_with([log])
        by_channel = {}
        for ev in log.events:
            if ev[0] == "write":
                by_channel.setdefault(ev[2], []).append(ev[3])
        assert by_channel == {
            c: values for c, values in result.channel_logs.items() if values
        }

    def test_records_only_emits_no_data_events(self):
        log = DataEventLog()
        result = run_with([log], records_only=True)
        assert log.events == []
        assert not result.data_collected

    def test_collect_trace_false_still_emits_live_events(self):
        log_full, log_bare = DataEventLog(), DataEventLog()
        run_with([log_full])
        run_with([log_bare], collect_trace=False)
        assert log_bare.events == log_full.events


class TestReplayRoundTrip:
    def test_replay_reconstructs_identical_event_stream(self):
        live = DataEventLog()
        result = run_with([live])
        post = DataEventLog()
        replay(result, post)
        assert post.events == live.events

    def test_metrics_and_trace_observers_round_trip(self):
        live_m, live_t = MetricsObserver(), TraceObserver()
        result = run_with([live_m, live_t])
        post_m, post_t = MetricsObserver(), TraceObserver()
        replay(result, post_m, post_t)
        assert post_m.kernel_span_stats() == live_m.kernel_span_stats()
        assert post_m.channel_write_counts() == live_m.channel_write_counts()
        assert post_t.channel_write_times == live_t.channel_write_times
        assert kernel_span_stats(result) == live_m.kernel_span_stats()

    def test_vcd_channel_wires_round_trip(self):
        live_t = TraceObserver()
        result = run_with([live_t])
        live_vcd = trace_to_vcd(live_t)
        assert "c_" in live_vcd  # per-channel wires present
        assert runtime_result_to_vcd(result) == live_vcd

    def test_replay_of_suppressed_trace_keeps_timing_refuses_data(self):
        from repro.runtime import (
            frame_makespans,
            miss_summary,
            processor_utilization,
            response_times,
        )

        result = run_with([], collect_trace=False)
        # Data events cannot be reconstructed: custom data consumers see
        # nothing rather than a partial stream.
        log = DataEventLog()
        replay(result, log)
        assert log.events == []
        # Every record-derived metric keeps working post hoc...
        full = run_with([])
        assert miss_summary(result) == miss_summary(full)
        assert response_times(result) == response_times(full)
        assert processor_utilization(result) == processor_utilization(full)
        assert frame_makespans(result) == frame_makespans(full)
        # ...but the data-derived aggregates refuse to misreport as empty.
        m = MetricsObserver()
        replay(result, m)
        assert m.miss_summary() == miss_summary(full)
        with pytest.raises(RuntimeModelError, match="collect_trace=False"):
            m.kernel_span_stats()
        with pytest.raises(RuntimeModelError, match="collect_trace=False"):
            m.channel_write_counts()
        with pytest.raises(RuntimeModelError, match="collect_trace=False"):
            kernel_span_stats(result)

    def test_replay_of_records_only_result_emits_no_data_events(self):
        result = run_with([], records_only=True)
        log = DataEventLog()
        replay(result, log)
        assert log.events == []


class TestGuardedAccessors:
    def test_collect_records_false_refuses_record_access(self):
        result = run_with([], collect_records=False)
        for accessor in ("misses", "executed", "false_jobs", "makespan"):
            with pytest.raises(RuntimeModelError, match="collect_records=False"):
                getattr(result, accessor)()
        with pytest.raises(RuntimeModelError):
            result.max_response_time()
        with pytest.raises(RuntimeModelError, match="collect_records=False"):
            replay(result, MetricsObserver())

    def test_records_only_refuses_channel_log_access(self):
        result = run_with([], records_only=True)
        with pytest.raises(RuntimeModelError, match="records_only=True"):
            result.observable()
        with pytest.raises(RuntimeModelError, match="records_only=True"):
            result.action_trace()

    def test_full_run_guards_pass(self):
        result = run_with([])
        assert result.observable()["channels"]
        assert result.action_trace() is result.trace
        assert result.executed()

    def test_kernel_span_stats_values(self):
        m = MetricsObserver()
        result = run_with([m])
        stats = m.kernel_span_stats()
        # Every executing process appears, with exact rational totals.
        executed = {r.process for r in result.records if not r.is_false}
        assert set(stats) == executed
        for name, s in stats.items():
            recs = [
                r for r in result.records
                if r.process == name and not r.is_false
            ]
            assert s.jobs == len(recs)
            assert s.total_busy == sum((r.end - r.start) for r in recs)
            assert s.max_span == max(r.end - r.start for r in recs)
            assert s.mean_span == s.total_busy / s.jobs
