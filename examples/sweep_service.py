#!/usr/bin/env python3
"""The resident sweep service: one pool, many sweeps, warm caches.

``run_sweep(workers=N)`` pays the full service cost on every call: spawn
the worker processes (~a second each) and rebuild every per-schedule-key
``PipelineCache`` from scratch.  A :class:`repro.SweepPool` pays both
once.  It spawns its workers lazily on first use and keeps them resident
across many ``submit()`` calls; each worker retains a bounded LRU of
pipeline caches (one per schedule key) plus decoded scenario/stimulus
payloads keyed by content hash, so a resubmitted or overlapping matrix
performs **zero** new derivations or scheduling passes — and the
``SweepStats`` counters (``pool_reused``, ``warm_group_hits``,
``payload_cache_hits``) let you verify it.

Submissions queue: several matrices can be in flight, interleaving at
schedule-key-group granularity, each returning a ticket (``result()``,
``cancel()``) while rows stream back through ``on_row`` as cells
complete.  Rows stay bit-identical to a serial ``run_sweep`` — the
service changes *when* work happens, never *what* is computed.

Run:  python examples/sweep_service.py
"""

from repro import ScenarioMatrix, SweepPool, run_sweep
from repro.apps import fms_scenario

METRICS = ("executed_jobs", "missed_jobs", "worst_lateness", "makespan")


def fms_matrix():
    # The FMS case study over processors x jitter: two schedule-key
    # groups (one per processor count) of three runtime cells each.
    return ScenarioMatrix(
        fms_scenario(n_frames=1),
        {"processors": [1, 2], "jitter_seed": [0, 1, 2]},
    )


def main() -> None:
    serial = run_sweep(fms_matrix(), metrics=METRICS)

    with SweepPool(workers=2) as pool:
        # -- 1. first submission: spawns the workers, fills the caches ----
        streamed = []
        cold = pool.submit(
            fms_matrix(), METRICS, on_row=streamed.append
        ).result()
        print("-- cold submission (workers spawned, caches filled) --")
        print(
            f"rows streamed as cells completed: {len(streamed)}; "
            f"derivations {cold.stats.derivations_computed}, "
            f"schedules {cold.stats.schedules_computed}"
        )
        assert cold.rows == serial.rows
        assert not cold.stats.pool_reused

        # -- 2. resubmit: same workers, warm caches, zero stage work ------
        warm = pool.submit(fms_matrix(), METRICS).result()
        print("\n-- warm resubmission (resident workers, warm caches) --")
        print(
            f"pool reused: {warm.stats.pool_reused}; warm group hits "
            f"{warm.stats.warm_group_hits}, payload cache hits "
            f"{warm.stats.payload_cache_hits}; new derivations "
            f"{warm.stats.derivations_computed}, new schedules "
            f"{warm.stats.schedules_computed}"
        )
        assert warm.stats.pool_reused
        assert warm.stats.warm_group_hits == 2
        assert warm.stats.derivations_computed == 0
        assert warm.stats.schedules_computed == 0
        # Warmth never changes results: still bit-identical to serial.
        assert warm.rows == serial.rows

        # -- 3. the submission queue: tickets, interleaving, cancel -------
        ticket_a = pool.submit(fms_matrix(), METRICS)
        ticket_b = pool.submit(fms_matrix(), METRICS)
        ticket_b.cancel()  # withdrawn before any of its groups ran
        result_a = ticket_a.result()
        assert result_a.rows == serial.rows
        assert ticket_b.cancelled
        print(
            "\nqueued two more sweeps, cancelled one — the other still "
            "matches the serial table"
        )

        # -- 4. memory stays flat: caches are bounded, eviction explicit --
        pool.evict_caches()
        evicted = pool.submit(fms_matrix(), METRICS).result()
        assert evicted.stats.warm_group_hits == 0
        assert evicted.stats.derivations_computed == 2
        print(
            "after evict_caches(): same resident workers, stage work "
            "re-paid once"
        )

    # Leaving the `with` block reaps every worker — no orphan processes.
    print("\npool closed; all workers reaped")
    print(serial.table())


if __name__ == "__main__":
    main()
