"""Unit tests for the formal process automaton (Definition 2.2)."""

import pytest

from repro.core import ChannelKind, Network, run_zero_delay
from repro.core.automaton import (
    AssignOp,
    Automaton,
    NopOp,
    ReadExternalOp,
    ReadOp,
    WriteExternalOp,
    WriteOp,
    true_guard,
)
from repro.core.channels import is_no_data
from repro.errors import SemanticsError


def ctx_for(automaton, k=1):
    """Drive an automaton directly through a JobContext on scratch channels."""
    from fractions import Fraction

    from repro.core.channels import ChannelSpec, ExternalOutputSpec, ExternalOutputState
    from repro.core.process import JobContext

    fin = ChannelSpec("cin", ChannelKind.FIFO, "x", "p").new_state()
    fout = ChannelSpec("cout", ChannelKind.FIFO, "p", "y").new_state()
    ext = ExternalOutputState(ExternalOutputSpec("o", "p"))
    ctx = JobContext(
        process="p",
        k=k,
        now=Fraction(0),
        variables=automaton.initial_variables(),
        inputs={"cin": fin},
        outputs={"cout": fout},
        external_inputs={"i": {1: 11, 2: 22}},
        external_outputs={"o": ext},
    )
    return ctx, fin, fout, ext


class TestStructure:
    def test_locations_collected(self):
        a = Automaton("l0")
        a.add_transition("l0", "l1")
        a.add_transition("l1", "l0")
        assert a.locations == {"l0", "l1"}

    def test_initial_location(self):
        assert Automaton(0).initial_location == 0

    def test_transitions_exposed(self):
        a = Automaton("l0")
        t = a.add_transition("l0", "l0", ops=[NopOp()])
        assert a.transitions == (t,)

    def test_initial_variables_copied(self):
        a = Automaton("l0", {"x": 1})
        v = a.initial_variables()
        v["x"] = 5
        assert a.initial_variables()["x"] == 1

    def test_declared_reads_writes(self):
        a = Automaton("l0")
        a.add_transition("l0", "l0", ops=[ReadOp("v", "cin"), WriteOp("v", "cout")])
        assert a.declared_reads() == ["cin"]
        assert a.declared_writes() == ["cout"]


class TestJobRun:
    def test_simple_self_loop(self):
        a = Automaton("l0", {"n": 0})
        a.add_transition("l0", "l0", ops=[AssignOp("n", lambda v: v["n"] + 1)])
        ctx, *_ = ctx_for(a)
        a.run_job(ctx)
        assert ctx.vars["n"] == 1  # exactly one step back to l0

    def test_multi_step_run(self):
        a = Automaton("l0")
        a.add_transition("l0", "l1", ops=[AssignOp("x", lambda v: 1)])
        a.add_transition("l1", "l2", ops=[AssignOp("x", lambda v: v["x"] + 1)])
        a.add_transition("l2", "l0", ops=[AssignOp("x", lambda v: v["x"] * 10)])
        ctx, *_ = ctx_for(a)
        a.run_job(ctx)
        assert ctx.vars["x"] == 20

    def test_guard_selects_branch(self):
        a = Automaton("l0", {"mode": "big"})
        a.add_transition("l0", "l0", guard=lambda v: v["mode"] == "big",
                         ops=[AssignOp("out", lambda v: 100)])
        a.add_transition("l0", "l0", guard=lambda v: v["mode"] == "small",
                         ops=[AssignOp("out", lambda v: 1)])
        ctx, *_ = ctx_for(a)
        a.run_job(ctx)
        assert ctx.vars["out"] == 100

    def test_nondeterminism_detected(self):
        a = Automaton("l0")
        a.add_transition("l0", "l0")
        a.add_transition("l0", "l0", ops=[NopOp()])
        ctx, *_ = ctx_for(a)
        with pytest.raises(SemanticsError, match="non-deterministic"):
            a.run_job(ctx)

    def test_deadlock_detected(self):
        a = Automaton("l0")
        a.add_transition("l0", "l1")
        ctx, *_ = ctx_for(a)
        with pytest.raises(SemanticsError, match="no enabled transition"):
            a.run_job(ctx)

    def test_runaway_detected(self):
        a = Automaton("l0", max_steps=10)
        a.add_transition("l0", "l1")
        a.add_transition("l1", "l2")
        a.add_transition("l2", "l1")  # loop that never returns to l0
        ctx, *_ = ctx_for(a)
        with pytest.raises(SemanticsError, match="exceeded"):
            a.run_job(ctx)

    def test_guarded_loop_terminates(self):
        a = Automaton("l0", {"i": 0})
        a.add_transition("l0", "loop")
        a.add_transition("loop", "loop", guard=lambda v: v["i"] < 3,
                         ops=[AssignOp("i", lambda v: v["i"] + 1)])
        a.add_transition("loop", "l0", guard=lambda v: v["i"] >= 3)
        ctx, *_ = ctx_for(a)
        a.run_job(ctx)
        assert ctx.vars["i"] == 3


class TestOps:
    def test_read_write_ops(self):
        a = Automaton("l0")
        a.add_transition("l0", "l0", ops=[ReadOp("v", "cin"), WriteOp("v", "cout")])
        ctx, fin, fout, _ = ctx_for(a)
        fin.write(5)
        a.run_job(ctx)
        assert fout.read() == 5

    def test_read_empty_yields_no_data_value(self):
        a = Automaton("l0")
        a.add_transition("l0", "l0", ops=[ReadOp("v", "cin")])
        ctx, *_ = ctx_for(a)
        a.run_job(ctx)
        assert is_no_data(ctx.vars["v"])

    def test_write_undefined_variable(self):
        a = Automaton("l0")
        a.add_transition("l0", "l0", ops=[WriteOp("ghost", "cout")])
        ctx, *_ = ctx_for(a)
        with pytest.raises(SemanticsError, match="undefined variable"):
            a.run_job(ctx)

    def test_external_ops_use_sample_k(self):
        a = Automaton("l0")
        a.add_transition(
            "l0", "l0", ops=[ReadExternalOp("v", "i"), WriteExternalOp("v", "o")]
        )
        ctx, _, _, ext = ctx_for(a, k=2)
        a.run_job(ctx)
        assert ext.as_sequence() == [(2, 22)]

    def test_external_write_undefined(self):
        a = Automaton("l0")
        a.add_transition("l0", "l0", ops=[WriteExternalOp("ghost", "o")])
        ctx, *_ = ctx_for(a)
        with pytest.raises(SemanticsError):
            a.run_job(ctx)

    def test_true_guard(self):
        assert true_guard({})


class TestAutomatonInNetwork:
    def test_automaton_process_runs_under_zero_delay(self):
        """A Def-2.2 automaton plugs into a network like any kernel."""
        producer = Automaton("l0", {"x": 0})
        producer.add_transition(
            "l0", "l0",
            ops=[AssignOp("x", lambda v: v["x"] + 1), WriteOp("x", "c")],
        )
        consumer = Automaton("l0", {"acc": 0})
        consumer.add_transition("l0", "got", ops=[ReadOp("v", "c")])
        consumer.add_transition(
            "got", "l0",
            ops=[AssignOp("acc", lambda v: v["acc"] + (
                0 if is_no_data(v["v"]) else v["v"]))],
        )

        net = Network("auto")
        net.add_periodic("prod", period=10, behavior=producer)
        net.add_periodic("cons", period=10, behavior=consumer)
        net.connect("prod", "cons", "c", kind=ChannelKind.FIFO)
        net.add_priority("prod", "cons")
        net.validate()

        result = run_zero_delay(net, 50)
        assert result.channel_logs["c"] == [1, 2, 3, 4, 5]
        assert result.final_variables["cons"]["acc"] == 15

    def test_variables_persist_across_jobs(self):
        a = Automaton("l0", {"count": 0})
        a.add_transition("l0", "l0", ops=[AssignOp("count", lambda v: v["count"] + 1)])
        net = Network("auto2")
        net.add_periodic("p", period=10, behavior=a)
        net.validate()
        result = run_zero_delay(net, 40)
        assert result.final_variables["p"]["count"] == 4
