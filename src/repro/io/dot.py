"""Graphviz/DOT export of process networks and task graphs.

The paper's figures are exactly these two drawings:

* :func:`network_to_dot` — the process-network view (Figs. 1, 5, 7): one
  node per process labelled with its generator (``"2 per 700ms"`` style),
  solid edges for FIFO channels, dashed edges for blackboards, and dotted
  grey edges for functional priorities that are not implied by a channel;
* :func:`task_graph_to_dot` — the task-graph view (Figs. 3, 5): one node
  per job labelled ``p[k] (A,D,C)``, server jobs drawn as boxes.

The output is plain DOT text (no graphviz dependency); pipe it through
``dot -Tsvg`` to render.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..core.channels import ChannelKind
from ..core.network import Network
from ..core.timebase import time_str
from ..taskgraph.graph import TaskGraph


def _quote(name: str) -> str:
    escaped = name.replace('"', '\\"')
    return f'"{escaped}"'


def _process_label(network: Network, name: str) -> str:
    proc = network.processes[name]
    gen = proc.generator
    if gen.burst > 1:
        rate = f"{gen.burst} per {time_str(gen.period)}ms"
    else:
        rate = f"{time_str(gen.period)}ms"
    kind = "sporadic" if proc.is_sporadic else "periodic"
    return f"{name}\\n{rate} ({kind})"


def network_to_dot(
    network: Network,
    graph_name: Optional[str] = None,
    include_external: bool = True,
) -> str:
    """Render a network as DOT (the Fig. 1 / Fig. 7 drawing)."""
    lines: List[str] = [f"digraph {_quote(graph_name or network.name)} {{"]
    lines.append("  rankdir=LR;")
    lines.append("  node [fontsize=10];")

    for name, proc in network.processes.items():
        shape = "ellipse" if proc.is_sporadic else "box"
        style = "dashed" if proc.is_sporadic else "solid"
        lines.append(
            f"  {_quote(name)} [label={_quote(_process_label(network, name))}, "
            f"shape={shape}, style={style}];"
        )

    channel_pairs = set()
    for c in network.channels.values():
        style = "solid" if c.kind is ChannelKind.FIFO else "dashed"
        channel_pairs.add(c.endpoints)
        lines.append(
            f"  {_quote(c.writer)} -> {_quote(c.reader)} "
            f"[label={_quote(c.name)}, style={style}, fontsize=8];"
        )

    for hi, lo in sorted(network.priorities):
        if (hi, lo) in channel_pairs or (lo, hi) in channel_pairs:
            continue  # priority implied alongside a drawn channel
        lines.append(
            f"  {_quote(hi)} -> {_quote(lo)} "
            f"[style=dotted, color=gray, arrowhead=open];"
        )

    if include_external:
        for name, spec in network.external_inputs.items():
            node = f"ext_in_{name}"
            lines.append(
                f"  {_quote(node)} [label={_quote(name)}, shape=plaintext];"
            )
            lines.append(f"  {_quote(node)} -> {_quote(spec.owner)} [color=blue];")
        for name, spec in network.external_outputs.items():
            node = f"ext_out_{name}"
            lines.append(
                f"  {_quote(node)} [label={_quote(name)}, shape=plaintext];"
            )
            lines.append(f"  {_quote(spec.owner)} -> {_quote(node)} [color=blue];")

    lines.append("}")
    return "\n".join(lines)


def task_graph_to_dot(
    graph: TaskGraph, graph_name: str = "taskgraph"
) -> str:
    """Render a task graph as DOT (the Fig. 3 drawing)."""
    lines: List[str] = [f"digraph {_quote(graph_name)} {{"]
    lines.append("  rankdir=TB;")
    lines.append("  node [fontsize=10];")
    for job in graph.jobs:
        label = (
            f"{job.name}\\n({time_str(job.arrival)},"
            f"{time_str(job.deadline)},{time_str(job.wcet)})"
        )
        if job.wcet_by_class is not None:
            per_class = " ".join(
                f"{name}:{time_str(v)}" for name, v in job.wcet_by_class
            )
            label += f"\\nC by class: {per_class}"
        shape = "box" if job.is_server else "ellipse"
        lines.append(f"  {_quote(job.name)} [label={_quote(label)}, shape={shape}];")
    for i, j in graph.edges():
        lines.append(
            f"  {_quote(graph.jobs[i].name)} -> {_quote(graph.jobs[j].name)};"
        )
    lines.append("}")
    return "\n".join(lines)


def write_dot(text: str, path: str) -> None:
    """Write DOT text to *path* (convenience for examples/benchmarks)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
        if not text.endswith("\n"):
            fh.write("\n")
