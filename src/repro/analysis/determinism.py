"""Mechanical determinism checking (Proposition 2.1 / 4.1).

Proposition 2.1 states that the value sequences written to all channels are
a function of the event time stamps and the external input samples — i.e.
independent of platform, mapping, schedule and execution-time variation.

:func:`check_determinism` verifies this empirically and systematically: it
executes a network once under the zero-delay reference semantics and then
under a configurable family of runtime variants (different processor counts,
different SP heuristics, WCET jitter seeds, overhead models) and compares
the canonical observables.  Any mismatch is reported with the first
diverging channel.

This is the library's equivalent of the paper's "functionally equivalent,
which we verified by testing".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..core.invocations import Stimulus
from ..core.network import Network
from ..core.semantics import run_zero_delay
from ..core.timebase import TimeLike, as_positive_time
from ..taskgraph.derivation import WcetMap, derive_task_graph
from ..scheduling.list_scheduler import list_schedule
from ..runtime.executor import (
    MultiprocessorExecutor,
    jittered_execution,
)
from ..runtime.overheads import OverheadModel


@dataclass
class VariantOutcome:
    """Result of one runtime variant against the reference."""

    label: str
    matches: bool
    first_divergence: Optional[str] = None


@dataclass
class DeterminismReport:
    """Outcome of a determinism check across all variants."""

    reference_jobs: int
    variants: List[VariantOutcome] = field(default_factory=list)

    @property
    def deterministic(self) -> bool:
        return all(v.matches for v in self.variants)

    def failures(self) -> List[VariantOutcome]:
        return [v for v in self.variants if not v.matches]

    def summary(self) -> str:
        status = "DETERMINISTIC" if self.deterministic else "NON-DETERMINISTIC"
        lines = [
            f"{status}: {len(self.variants)} runtime variants vs zero-delay "
            f"reference ({self.reference_jobs} jobs)"
        ]
        for v in self.variants:
            mark = "ok " if v.matches else "FAIL"
            extra = "" if v.matches else f"  ({v.first_divergence})"
            lines.append(f"  [{mark}] {v.label}{extra}")
        return "\n".join(lines)


def first_divergence(a: Mapping[str, Any], b: Mapping[str, Any]) -> Optional[str]:
    """Human-readable description of the first difference between two
    observables (``None`` when identical)."""
    for section in ("channels", "outputs"):
        sa, sb = a.get(section, {}), b.get(section, {})
        for key in sorted(set(sa) | set(sb)):
            va, vb = sa.get(key), sb.get(key)
            if va != vb:
                return (
                    f"{section}[{key!r}]: reference has {_preview(va)}, "
                    f"variant has {_preview(vb)}"
                )
    return None


def _preview(seq, limit: int = 4) -> str:
    if seq is None:
        return "<absent>"
    head = list(seq)[:limit]
    suffix = "..." if len(seq) > limit else ""
    return f"{len(seq)} values {head!r}{suffix}"


def check_determinism(
    network: Network,
    wcet: WcetMap,
    n_frames: int,
    stimulus: Optional[Stimulus] = None,
    processor_counts: Sequence[int] = (1, 2, 4),
    heuristics: Sequence[str] = ("alap", "arrival"),
    jitter_seeds: Sequence[int] = (0, 7),
    overheads: Optional[OverheadModel] = None,
) -> DeterminismReport:
    """Run the determinism matrix: reference vs schedule/jitter variants.

    All variants consume the *same* stimulus, so by Prop. 2.1 every
    observable must be identical to the zero-delay reference over the same
    horizon ``n_frames * H``.

    Each variant runs through the executor's observer-based core with
    ``collect_records=False`` and ``collect_trace=False``: the matrix only
    compares data-phase observables (channel logs and external outputs), so
    neither :class:`~repro.runtime.executor.JobRecord` objects nor action
    traces are ever materialised — the timing recurrence stays in pure
    integer ticks and the sweep skips every per-record and per-action
    allocation.
    """
    graph = derive_task_graph(network, wcet)
    horizon = graph.hyperperiod * n_frames
    stimulus = stimulus or Stimulus()
    # Arrivals whose server window lies beyond the simulated frames would be
    # deferred by the runtime; exclude them from every execution so the
    # comparison is over the same event set.
    from ..runtime.static_order import served_horizon

    stimulus = stimulus.truncated(
        served_horizon(network, graph.hyperperiod, n_frames)
    )

    reference = run_zero_delay(network, horizon, stimulus)
    ref_obs = reference.observable()

    report = DeterminismReport(reference_jobs=reference.job_count)
    for m in processor_counts:
        for heuristic in heuristics:
            schedule = list_schedule(graph, m, heuristic)
            executor = MultiprocessorExecutor(network, schedule, overheads)
            variants = [("wcet", None)] + [
                (f"jitter#{seed}", jittered_execution(seed)) for seed in jitter_seeds
            ]
            for label, exec_time in variants:
                result = executor.run(
                    n_frames, stimulus, exec_time,
                    collect_records=False, collect_trace=False,
                )
                obs = result.observable()
                div = first_divergence(ref_obs, obs)
                report.variants.append(
                    VariantOutcome(
                        label=f"M={m} sp={heuristic} {label}",
                        matches=div is None,
                        first_divergence=div,
                    )
                )
    return report
