"""Deterministic process automata (Definition 2.2, implemented literally).

A process automaton is the tuple ``(lp0, Lp, Xp, Xp0, Ip, Op, Ap, Tp)``:

* ``Lp`` — set of locations (source-code line numbers, informally),
* ``lp0`` — initial location,
* ``Xp`` / ``Xp0`` — internal variables and their initial valuation,
* ``Ip`` / ``Op`` — input and output channels,
* ``Ap`` — actions: variable assignments, reads from ``Ip``, writes to ``Op``,
* ``Tp ⊆ Lp × Gp × Ap × Lp`` — the transition relation with guards ``Gp``
  (predicates over ``Xp``).

A **job execution run** is a non-empty sequence of steps from ``lp0`` back to
``lp0``.  Determinism of the automaton is *enforced at runtime*: if two
transitions are simultaneously enabled in the current location the run is
aborted with :class:`~repro.errors.SemanticsError`, because a
non-deterministic process would break Proposition 2.1.

Guards are predicates ``g(vars) -> bool`` over the variable valuation;
actions are small command objects (:class:`ReadOp`, :class:`WriteOp`,
:class:`AssignOp`, ...) so that a transition's effect is fully inspectable —
closer to the formal model than opaque callables, and what the structural
tests exercise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from ..errors import SemanticsError
from .process import Behavior, JobContext

Location = Hashable
Guard = Callable[[Dict[str, Any]], bool]


def true_guard(_vars: Dict[str, Any]) -> bool:
    """The trivially-true guard (used when a transition is unconditional)."""
    return True


class Op:
    """Base class of primitive automaton actions (elements of ``Ap``)."""

    def execute(self, ctx: JobContext) -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class ReadOp(Op):
    """``var ? channel`` — read internal channel into a variable."""

    variable: str
    channel: str

    def execute(self, ctx: JobContext) -> None:
        ctx.vars[self.variable] = ctx.read(self.channel)


@dataclass(frozen=True)
class WriteOp(Op):
    """``var ! channel`` — write a variable's value to an internal channel."""

    variable: str
    channel: str

    def execute(self, ctx: JobContext) -> None:
        if self.variable not in ctx.vars:
            raise SemanticsError(
                f"write of undefined variable {self.variable!r} in process "
                f"{ctx.process!r}"
            )
        ctx.write(self.channel, ctx.vars[self.variable])


@dataclass(frozen=True)
class ReadExternalOp(Op):
    """``var ?[k] Ie`` — read the job's external input sample into a variable."""

    variable: str
    channel: Optional[str] = None

    def execute(self, ctx: JobContext) -> None:
        ctx.vars[self.variable] = ctx.read_input(self.channel)


@dataclass(frozen=True)
class WriteExternalOp(Op):
    """``var ![k] Oe`` — write a variable's value as the job's output sample."""

    variable: str
    channel: Optional[str] = None

    def execute(self, ctx: JobContext) -> None:
        if self.variable not in ctx.vars:
            raise SemanticsError(
                f"write of undefined variable {self.variable!r} in process "
                f"{ctx.process!r}"
            )
        ctx.write_output(ctx.vars[self.variable], self.channel)


@dataclass(frozen=True)
class AssignOp(Op):
    """``var := f(vars)`` — compute a new value from the current valuation."""

    variable: str
    function: Callable[[Dict[str, Any]], Any]

    def execute(self, ctx: JobContext) -> None:
        ctx.assign(self.variable, self.function(ctx.vars))


@dataclass(frozen=True)
class NopOp(Op):
    """The empty action (a pure control-flow transition)."""

    def execute(self, ctx: JobContext) -> None:  # pragma: no cover - trivial
        return None


@dataclass(frozen=True)
class Transition:
    """One element of the transition relation ``Tp``."""

    source: Location
    guard: Guard
    ops: Tuple[Op, ...]
    target: Location

    def enabled(self, variables: Dict[str, Any]) -> bool:
        return bool(self.guard(variables))


class Automaton(Behavior):
    """Executable deterministic automaton implementing :class:`Behavior`.

    Parameters
    ----------
    initial_location:
        ``lp0``.
    initial_variables:
        ``Xp0`` — copied for each execution of the owning network.
    max_steps:
        Safety bound on the length of one job run; exceeded means the
        automaton does not return to its initial location (not a valid
        subroutine), reported as :class:`SemanticsError`.
    """

    def __init__(
        self,
        initial_location: Location,
        initial_variables: Optional[Dict[str, Any]] = None,
        max_steps: int = 100_000,
    ) -> None:
        self._l0 = initial_location
        self._x0 = dict(initial_variables or {})
        self._transitions: List[Transition] = []
        self._locations = {initial_location}
        self._max_steps = max_steps

    # -- construction -------------------------------------------------------
    def add_transition(
        self,
        source: Location,
        target: Location,
        guard: Guard = true_guard,
        ops: Sequence[Op] = (),
    ) -> Transition:
        """Add a transition ``(source, guard, ops, target)`` and return it."""
        tr = Transition(source, guard, tuple(ops), target)
        self._transitions.append(tr)
        self._locations.add(source)
        self._locations.add(target)
        return tr

    @property
    def locations(self) -> frozenset:
        """``Lp`` — the location set (implied by added transitions)."""
        return frozenset(self._locations)

    @property
    def transitions(self) -> Tuple[Transition, ...]:
        return tuple(self._transitions)

    @property
    def initial_location(self) -> Location:
        return self._l0

    # -- Behavior interface --------------------------------------------------
    def initial_variables(self) -> Dict[str, Any]:
        return dict(self._x0)

    def run_job(self, ctx: JobContext) -> None:
        """One job execution run: step from ``lp0`` until back at ``lp0``.

        The run must take at least one step (a job run is a *non-empty*
        step sequence).
        """
        location = self._l0
        steps = 0
        while True:
            enabled = [
                t for t in self._transitions
                if t.source == location and t.enabled(ctx.vars)
            ]
            if len(enabled) > 1:
                raise SemanticsError(
                    f"process {ctx.process!r}: {len(enabled)} transitions "
                    f"enabled at location {location!r} — automaton is "
                    "non-deterministic"
                )
            if not enabled:
                raise SemanticsError(
                    f"process {ctx.process!r}: no enabled transition at "
                    f"location {location!r} (deadlocked job run)"
                )
            tr = enabled[0]
            for op in tr.ops:
                op.execute(ctx)
            location = tr.target
            steps += 1
            if location == self._l0:
                return
            if steps >= self._max_steps:
                raise SemanticsError(
                    f"process {ctx.process!r}: job run exceeded "
                    f"{self._max_steps} steps without returning to the "
                    "initial location"
                )

    # -- static inspection ----------------------------------------------------
    def declared_reads(self) -> Optional[List[str]]:
        names = []
        for t in self._transitions:
            for op in t.ops:
                if isinstance(op, ReadOp):
                    names.append(op.channel)
        return sorted(set(names))

    def declared_writes(self) -> Optional[List[str]]:
        names = []
        for t in self._transitions:
            for op in t.ops:
                if isinstance(op, WriteOp):
                    names.append(op.channel)
        return sorted(set(names))
