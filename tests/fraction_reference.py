"""Pure-Fraction reference implementations for tick-domain equivalence tests.

These are faithful copies of the library's *pre-tick-domain* algorithms
(the seed implementations): every timestamp is computed with
:class:`fractions.Fraction` arithmetic end to end.  The equivalence suite
(``test_tick_equivalence.py``) asserts that the optimised integer-tick
implementations in ``repro`` produce *exactly* the same schedules, job
records and determinism observables.

Deliberately unoptimised — do not "improve" these; their value is being a
direct transliteration of the rational-domain definitions.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.channels import ChannelState, ExternalOutputState
from repro.core.invocations import Stimulus
from repro.core.network import Network
from repro.core.process import JobContext
from repro.core.timebase import (
    Time,
    TimeLike,
    as_positive_time,
    as_time,
    hyperperiod as lcm_periods,
)
from repro.core.trace import JobEnd, JobStart, Trace
from repro.errors import ModelError
from repro.runtime.executor import JobRecord, RuntimeResult
from repro.runtime.overheads import OverheadModel
from repro.runtime.static_order import ArrivalBinding, FramePlan
from repro.scheduling.list_scheduler import _resolve_priority
from repro.scheduling.schedule import ScheduledJob, StaticSchedule
from repro.taskgraph.derivation import WcetMap
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.jobs import Job
from repro.taskgraph.servers import TransformedNetwork, transform


# ----------------------------------------------------------------------
# Reference task-graph derivation (Section III-A steps 2-5, Fraction
# arithmetic end to end: Fraction invocation times, Fraction job
# parameters, graph-level transitive reduction over a second TaskGraph).
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class _RefInvocation:
    time: Time
    rank: int
    process: str
    k: int


def reference_simulate_invocations(
    pn: TransformedNetwork, H: Time
) -> List[_RefInvocation]:
    rank = {name: i for i, name in enumerate(pn.priority_order())}
    entries: List[_RefInvocation] = []
    for name, (period, burst) in pn.effective.items():
        count = 0
        n_periods = H / period
        if n_periods.denominator != 1:
            raise ModelError(
                f"frame {H} is not a multiple of period {period} of {name!r}"
            )
        for slot in range(int(n_periods)):
            t = slot * period
            for _ in range(burst):
                count += 1
                entries.append(_RefInvocation(t, rank[name], name, count))
    entries.sort(key=lambda e: (e.time, e.rank, e.process, e.k))
    return entries


def _reference_wcet_resolver(network: Network, wcet: WcetMap):
    if isinstance(wcet, Mapping):
        table = dict(wcet)
        missing = sorted(set(network.processes) - set(table))
        if missing:
            raise ModelError(f"missing WCET for processes {missing!r}")

        def resolve(process: str, k: int) -> Time:
            entry = table[process]
            if callable(entry):
                return as_positive_time(entry(process, k), f"WCET of {process}[{k}]")
            return as_positive_time(entry, f"WCET of {process!r}")

        return resolve

    uniform = as_positive_time(wcet, "WCET")
    return lambda process, k: uniform


def _reference_make_jobs(
    pn: TransformedNetwork,
    sequence: Sequence[_RefInvocation],
    wcet: WcetMap,
    H: Time,
) -> List[Job]:
    wcet_of = _reference_wcet_resolver(pn.network, wcet)
    jobs: List[Job] = []
    for inv in sequence:
        proc = pn.network.processes[inv.process]
        period, burst = pn.effective[inv.process]
        arrival = period * ((inv.k - 1) // burst)
        if proc.is_sporadic:
            spec = pn.servers[inv.process]
            deadline = arrival + proc.deadline - spec.period
            jobs.append(
                Job(
                    process=inv.process,
                    k=inv.k,
                    arrival=arrival,
                    deadline=min(H, deadline),
                    wcet=wcet_of(inv.process, inv.k),
                    is_server=True,
                    subset_index=(inv.k - 1) // burst + 1,
                    slot=(inv.k - 1) % burst + 1,
                )
            )
        else:
            deadline = arrival + proc.deadline
            jobs.append(
                Job(
                    process=inv.process,
                    k=inv.k,
                    arrival=arrival,
                    deadline=min(H, deadline),
                    wcet=wcet_of(inv.process, inv.k),
                )
            )
    return jobs


def _reference_generating_edges(
    pn: TransformedNetwork, sequence: Sequence[_RefInvocation]
) -> List[Tuple[int, int]]:
    by_process: Dict[str, List[int]] = {}
    for idx, inv in enumerate(sequence):
        by_process.setdefault(inv.process, []).append(idx)

    edges: List[Tuple[int, int]] = []
    for indices in by_process.values():
        edges.extend(zip(indices, indices[1:]))

    def next_of_partner(from_indices, to_indices):
        out = []
        j = 0
        for i in from_indices:
            while j < len(to_indices) and to_indices[j] < i:
                j += 1
            if j == len(to_indices):
                break
            out.append((i, to_indices[j]))
        return out

    names = sorted(by_process)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            if not pn.fp_related(a, b):
                continue
            edges.extend(next_of_partner(by_process[a], by_process[b]))
            edges.extend(next_of_partner(by_process[b], by_process[a]))
    return sorted(set(edges))


def reference_transitive_reduction(graph: TaskGraph) -> TaskGraph:
    """Seed's graph-level reduction: bitset sweep over a built TaskGraph."""
    n = len(graph)
    succ_sets: List[Set[int]] = [set(graph.successors(i)) for i in range(n)]
    reach: List[int] = [0] * n
    for v in range(n - 1, -1, -1):
        acc = 0
        for w in succ_sets[v]:
            acc |= (1 << w) | reach[w]
        reach[v] = acc

    kept: List[Tuple[int, int]] = []
    for u in range(n):
        succs = succ_sets[u]
        indirect = 0
        for w in succs:
            indirect |= reach[w]
        for v in succs:
            if not (indirect >> v) & 1:
                kept.append((u, v))
    return TaskGraph(graph.jobs, kept, graph.hyperperiod)


def reference_derive_task_graph(
    network: Network,
    wcet: WcetMap,
    horizon: Optional[TimeLike] = None,
    reduce_edges: bool = True,
) -> TaskGraph:
    """The seed's Fraction-domain derivation: two TaskGraph constructions,
    Fraction job parameters, graph-level reduction."""
    pn = transform(network)
    H = lcm_periods([period for period, _ in pn.effective.values()])
    if horizon is not None:
        h = as_positive_time(horizon, "horizon")
        for name, (period, _) in pn.effective.items():
            if (h / period).denominator != 1:
                raise ModelError(
                    f"horizon {h} is not a multiple of the effective period "
                    f"{period} of process {name!r}"
                )
        H = h
    sequence = reference_simulate_invocations(pn, H)
    jobs = _reference_make_jobs(pn, sequence, wcet, H)
    edges = _reference_generating_edges(pn, sequence)
    graph = TaskGraph(jobs, edges, H)
    if reduce_edges:
        graph = reference_transitive_reduction(graph)
    return graph


# ----------------------------------------------------------------------
# Reference list scheduler (Fraction event loop, list-based blocked set).
# ----------------------------------------------------------------------

def reference_list_schedule(
    graph: TaskGraph, processors: int, priority="alap"
) -> StaticSchedule:
    ranks = _resolve_priority(graph, priority)
    n = len(graph)
    remaining_preds = [len(graph.predecessors(i)) for i in range(n)]
    entries: List[ScheduledJob] = []

    arrivals = [(graph.jobs[i].arrival, ranks[i], i) for i in range(n)]
    heapq.heapify(arrivals)
    ready: List = []
    running: List = []
    free = list(range(processors))
    heapq.heapify(free)
    blocked: List[int] = []

    now = Time(0)
    scheduled = 0
    while scheduled < n:
        while arrivals and arrivals[0][0] <= now:
            _, rank, i = heapq.heappop(arrivals)
            if remaining_preds[i] == 0:
                heapq.heappush(ready, (rank, i))
            else:
                blocked.append(i)
        while ready and free:
            rank, i = heapq.heappop(ready)
            proc = heapq.heappop(free)
            entries.append(ScheduledJob(i, proc, now))
            finish = now + graph.jobs[i].wcet
            heapq.heappush(running, (finish, proc, i))
            scheduled += 1
        if scheduled >= n:
            break
        candidates: List[Time] = []
        if running:
            candidates.append(running[0][0])
        if arrivals:
            candidates.append(arrivals[0][0])
        assert candidates, "reference scheduler deadlocked"
        now = max(now, min(candidates))
        while running and running[0][0] <= now:
            finish, proc, i = heapq.heappop(running)
            heapq.heappush(free, proc)
            for s in graph.successors(i):
                remaining_preds[s] -= 1
                if remaining_preds[s] == 0 and s in blocked:
                    blocked.remove(s)
                    if graph.jobs[s].arrival <= now:
                        heapq.heappush(ready, (ranks[s], s))
                    else:
                        heapq.heappush(
                            arrivals, (graph.jobs[s].arrival, ranks[s], s)
                        )
    return StaticSchedule(graph, processors, entries)


# ----------------------------------------------------------------------
# Reference execution-time models.
# ----------------------------------------------------------------------

def reference_jittered_execution(
    seed: int, low_fraction: float = 0.5
) -> Callable[[Job, int], Time]:
    """Seed sampler: a fresh ``random.Random(key)`` per sample."""

    def sample(job: Job, frame: int) -> Time:
        rng = random.Random(f"{seed}/{job.process}/{job.k}/{frame}")
        frac = low_fraction + (1 - low_fraction) * rng.random()
        scaled = int(frac * 10_000)
        return job.wcet * scaled / 10_000

    return sample


def _resolve_execution_time(graph: TaskGraph, spec) -> Callable[[Job, int], Time]:
    if spec is None:
        return lambda job, frame: job.wcet
    if callable(spec):
        return lambda job, frame: as_time(spec(job, frame))
    table = {
        name: as_positive_time(value, f"execution time of {name!r}")
        for name, value in spec.items()
    }
    return lambda job, frame: table[job.process]


# ----------------------------------------------------------------------
# Reference runtime simulation (Fraction timing phase + data phase).
# ----------------------------------------------------------------------

def reference_run_static_order(
    network: Network,
    schedule: StaticSchedule,
    n_frames: int,
    stimulus: Optional[Stimulus] = None,
    execution_time=None,
    overheads: Optional[OverheadModel] = None,
) -> RuntimeResult:
    network.validate_taskgraph_subclass()
    graph = schedule.graph
    hyperperiod = graph.hyperperiod
    plan = FramePlan.from_schedule(schedule)
    overheads = overheads or OverheadModel.none()
    stimulus = stimulus or Stimulus()
    stimulus.validate(network)
    exec_of = _resolve_execution_time(graph, execution_time)
    binding = ArrivalBinding(network, hyperperiod, n_frames, stimulus)
    per_frame_counts = plan.per_process_count()

    records: List[JobRecord] = []
    instance_order: List[Tuple[Time, int, int]] = []
    chain_end: List[Time] = [Time(0)] * plan.processors
    ends: Dict[Tuple[int, int], Time] = {}
    record_at: Dict[Tuple[int, int], JobRecord] = {}
    overhead_intervals: List[Tuple[int, Time, Time]] = []

    topo = sorted(range(len(graph)), key=lambda i: (schedule.start(i), i))

    for frame in range(n_frames):
        base = hyperperiod * frame
        ov = overheads.frame_arrival(frame)
        if ov > 0:
            overhead_intervals.append((frame, base, base + ov))
        floor = base + ov
        for job_idx in topo:
            job = graph.jobs[job_idx]
            proc = plan.processor_of(job_idx)
            process = network.processes[job.process]
            if job.is_server:
                bound = binding.lookup(
                    job.process, frame, job.subset_index, job.slot
                )
                if bound is None:
                    nominal = base + job.arrival
                    visible, release, deadline = (
                        max(nominal, floor),
                        nominal,
                        nominal + process.deadline,
                    )
                    is_false = True
                    global_k = frame * per_frame_counts[job.process] + job.k
                else:
                    visible = max(bound.time, floor, base)
                    release = bound.time
                    deadline = bound.time + process.deadline
                    is_false = False
                    global_k = bound.global_k
            else:
                nominal = base + job.arrival
                visible = max(nominal, floor)
                release = nominal
                deadline = nominal + process.deadline
                is_false = False
                global_k = frame * per_frame_counts[job.process] + job.k
            start = max(visible, chain_end[proc])
            for p in graph.predecessors(job_idx):
                start = max(start, ends[(frame, p)])
            duration = Time(0)
            if not is_false:
                duration = exec_of(job, frame) + overheads.per_job
            end = start + duration
            chain_end[proc] = end
            ends[(frame, job_idx)] = end
            rec = JobRecord(
                process=job.process,
                frame=frame,
                k_frame=job.k,
                global_k=global_k,
                processor=proc,
                release=release,
                start=start,
                end=end,
                deadline=deadline,
                is_false=is_false,
                is_server=job.is_server,
            )
            records.append(rec)
            record_at[(frame, job_idx)] = rec
            if not is_false:
                instance_order.append((start, frame, job_idx))

    channel_logs, external_outputs, trace = _reference_data_phase(
        network, sorted(instance_order), record_at, stimulus
    )
    return RuntimeResult(
        network_name=network.name,
        frames=n_frames,
        hyperperiod=hyperperiod,
        processors=plan.processors,
        records=records,
        channel_logs=channel_logs,
        external_outputs=external_outputs,
        trace=trace,
        overhead_intervals=overhead_intervals,
    )


def reference_data_phase(
    network: Network,
    order: Sequence[Tuple[str, int, Time]],
    stimulus: Optional[Stimulus] = None,
):
    """The seed's naive data phase: one fresh ``JobContext`` per instance.

    *order* is the execution order of the true job instances as
    ``(process, global_k, release)`` tuples.  Every instance allocates a
    fresh context over freshly-built binding dicts, with fresh
    ``samples_for`` copies and an eager action :class:`Trace` — the exact
    unbatched allocation pattern the optimised
    ``MultiprocessorExecutor._data_phase`` replaced.  Returns
    ``(channel_logs, external_outputs, trace)``; the differential suite
    asserts these are bit-identical to the fast path's.
    """
    stimulus = stimulus or Stimulus()
    channel_states: Dict[str, ChannelState] = {
        name: spec.new_state() for name, spec in network.channels.items()
    }
    variables: Dict[str, Dict[str, Any]] = {
        name: proc.fresh_variables() for name, proc in network.processes.items()
    }
    ext_out: Dict[str, ExternalOutputState] = {
        name: ExternalOutputState(spec)
        for name, spec in network.external_outputs.items()
    }
    trace = Trace()
    for pname, global_k, release in order:
        proc = network.processes[pname]
        ctx = JobContext(
            process=pname,
            k=global_k,
            now=release,
            variables=variables[pname],
            inputs={n: channel_states[n] for n in proc.inputs},
            outputs={n: channel_states[n] for n in proc.outputs},
            external_inputs={
                n: stimulus.samples_for(n) for n in proc.external_inputs
            },
            external_outputs={n: ext_out[n] for n in proc.external_outputs},
            trace=trace,
        )
        trace.append(JobStart(pname, global_k))
        proc.behavior.run_job(ctx)
        trace.append(JobEnd(pname, global_k))
    return (
        {n: list(s.write_log) for n, s in channel_states.items()},
        {n: s.as_sequence() for n, s in ext_out.items()},
        trace,
    )


def _reference_data_phase(
    network: Network,
    order: List[Tuple[Time, int, int]],
    record_at: Dict[Tuple[int, int], JobRecord],
    stimulus: Stimulus,
):
    return reference_data_phase(
        network,
        [
            (record_at[(frame, job_idx)].process,
             record_at[(frame, job_idx)].global_k,
             record_at[(frame, job_idx)].release)
            for _start, frame, job_idx in order
        ],
        stimulus,
    )
