"""Tests for the Fig. 1 running-example application."""

import pytest

from repro.apps import build_fig1_network, fig1_stimulus, fig1_wcets
from repro.core import ChannelKind, run_zero_delay
from repro.taskgraph import derive_task_graph, task_graph_load


@pytest.fixture(scope="module")
def net():
    return build_fig1_network()


class TestStructure:
    def test_seven_processes(self, net):
        assert len(net.processes) == 7

    def test_periods_match_figure(self, net):
        periods = {name: int(p.period) for name, p in net.processes.items()}
        assert periods == {
            "InputA": 200, "FilterA": 100, "NormA": 200, "OutputA": 200,
            "FilterB": 200, "OutputB": 100, "CoefB": 700,
        }

    def test_coefb_is_sporadic_2_per_700(self, net):
        coef = net.processes["CoefB"]
        assert coef.is_sporadic and coef.burst == 2 and coef.period == 700

    def test_channel_kinds(self, net):
        assert net.channels["a_norm"].kind is ChannelKind.BLACKBOARD
        assert net.channels["b_coef"].kind is ChannelKind.BLACKBOARD
        assert net.channels["a_raw"].kind is ChannelKind.FIFO

    def test_process_graph_is_cyclic_fp_is_not(self, net):
        # feedback NormA -> FilterA exists while FP stays a DAG
        assert net.channels["a_norm"].endpoints == ("NormA", "FilterA")
        net.priority_order()  # raises if cyclic

    def test_coefb_user_is_filterb(self, net):
        assert net.user_of("CoefB").name == "FilterB"

    def test_external_channels(self, net):
        assert set(net.external_inputs) == {"InputChannel", "CoefCommands"}
        assert set(net.external_outputs) == {"OutputChannel1", "OutputChannel2"}


class TestBehaviour:
    def test_b_path_uses_default_coefficient(self, net):
        stim = fig1_stimulus(2, coef_arrivals=[])
        result = run_zero_delay(net, 400, stim)
        # default coefficient 1.0: b_out sees the raw samples
        assert result.channel_logs["b_out"] == [1.0, 2.0]

    def test_coefb_reconfigures_filter(self, net):
        # command value 0.5 arrives at t=350: frames at 0 and 200 use the
        # default coefficient, the frame at 400 (sample 3.0) is scaled.
        stim = fig1_stimulus(3, coef_arrivals=[350])
        result = run_zero_delay(net, 600, stim)
        assert result.channel_logs["b_out"] == [1.0, 2.0, 1.5]

    def test_outputb_holds_last_value(self, net):
        stim = fig1_stimulus(1, coef_arrivals=[])
        result = run_zero_delay(net, 200, stim)
        values = result.output_values("OutputChannel2")
        # OutputB runs twice per frame; second job holds the first's value.
        assert values == [1.0, 1.0]

    def test_feedback_gain_applied_on_next_frame(self, net):
        stim = fig1_stimulus(3, coef_arrivals=[])
        result = run_zero_delay(net, 600, stim)
        gains = result.channel_logs["a_norm"]
        assert len(gains) == 3
        assert all(0 < g <= 1 for g in gains)

    def test_output_a_present_each_frame(self, net):
        stim = fig1_stimulus(4, coef_arrivals=[])
        result = run_zero_delay(net, 800, stim)
        assert len(result.output_values("OutputChannel1")) == 4


class TestDerived:
    def test_wcets_cover_all_processes(self, net):
        assert set(fig1_wcets()) == set(net.processes)

    def test_load_and_min_processors(self, net):
        g = derive_task_graph(net, fig1_wcets())
        assert float(task_graph_load(g).load) == 1.5
        assert task_graph_load(g).min_processors == 2

    def test_stimulus_defaults_fit_horizon(self, net):
        stim = fig1_stimulus(2)
        stim.validate(net)
        assert stim.arrivals_for("CoefB") == [350]

    def test_stimulus_requires_frames(self):
        with pytest.raises(ValueError):
            fig1_stimulus(0)
