"""Result-file comparison: the CI perf/regression gate primitive.

One implementation behind both front-ends — ``python -m repro diff`` and
``benchmarks/run_bench.py --diff`` — comparing two result files of the
same kind:

* **sweep tables** (``"format": "fppn-sweep"``, written by
  ``python -m repro run/sweep`` or :func:`repro.io.json_io.
  sweep_result_to_dict`): rows are matched by their cell coordinates and
  every shared metric is compared numerically.  Sweep rows promise
  bit-identical exact-rational metrics across machines and commits, so
  *any* drift beyond the tolerance — in either direction — is a
  regression: an unexplained metric change in a deterministic pipeline
  is a bug even when it "improves".
* **bench snapshots** (``BENCH_*.json`` from ``benchmarks/run_bench.py``,
  recognised by their ``"cases"`` key): per-case wall times are compared
  as B/A ratios.  Wall time is noisy and one-directional, so only
  slowdowns past the tolerance count as regressions, and snapshots from
  hosts with different CPU counts refuse to compare at all (the
  parallel/pool lanes measure core overlap — a 1-CPU number against a
  multi-core number is noise presented as a trend).

The comparison is pure data in, :class:`Comparison` out — rendering and
process exit codes stay with the callers.  ``tolerance=None`` means
*report only* (the historical ``run_bench.py --diff`` behaviour): the
tables print, nothing is classified as a regression, and the exit code
stays 0 unless the files refuse to compare.

Exit-code contract (:attr:`Comparison.exit_code`): ``0`` comparable and
within tolerance, ``1`` regression(s) past the tolerance, ``2`` the
files cannot be meaningfully compared (different kinds, different CPU
counts, different metric sets, malformed input).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fractions import Fraction
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from ..io.json_io import value_from_jsonable

__all__ = ["Comparison", "compare_files", "compare_payloads"]


@dataclass
class Comparison:
    """Outcome of one file pair: rendered lines plus the classification.

    ``lines`` is the human-readable table (callers print it to stdout);
    ``warnings`` and ``refusal`` belong on stderr.  ``regressions``
    holds one line per deviation past the tolerance — empty when the
    files agree (or when ``tolerance=None`` made the run report-only).
    """

    kind: str  # "sweep" | "bench" | "unknown"
    lines: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    regressions: List[str] = field(default_factory=list)
    refusal: Optional[str] = None

    @property
    def exit_code(self) -> int:
        if self.refusal is not None:
            return 2
        return 1 if self.regressions else 0


def _load(path: str) -> Any:
    try:
        return json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"cannot read {path}: {exc}") from exc


def _kind_of(data: Any) -> str:
    if isinstance(data, Mapping):
        if data.get("format") == "fppn-sweep":
            return "sweep"
        if "cases" in data:
            return "bench"
    return "unknown"


def compare_files(
    path_a: str, path_b: str, tolerance: Optional[float] = None
) -> Comparison:
    """Compare two result files (baseline *path_a* vs candidate *path_b*).

    *tolerance* is a relative bound (``0.10`` = 10%); ``None`` reports
    without classifying regressions.  The file kind is auto-detected and
    must match between the two files.
    """
    try:
        a, b = _load(path_a), _load(path_b)
    except ValueError as exc:
        return Comparison(kind="unknown", refusal=str(exc))
    return compare_payloads(a, b, tolerance, names=(path_a, path_b))


def compare_payloads(
    a: Any,
    b: Any,
    tolerance: Optional[float] = None,
    *,
    names: tuple = ("A", "B"),
) -> Comparison:
    """The in-memory core of :func:`compare_files` (tested directly)."""
    kind_a, kind_b = _kind_of(a), _kind_of(b)
    if kind_a != kind_b:
        return Comparison(
            kind="unknown",
            refusal=(
                f"cannot compare a {kind_a!r} file against a {kind_b!r} "
                f"file — {names[0]} and {names[1]} are different kinds "
                "of results"
            ),
        )
    if kind_a == "sweep":
        return _compare_sweeps(a, b, tolerance, names)
    if kind_a == "bench":
        return _compare_benches(a, b, tolerance, names)
    return Comparison(
        kind="unknown",
        refusal=(
            f"unrecognised result files: expected an fppn-sweep document "
            f"or a BENCH_*.json snapshot in {names[0]} / {names[1]}"
        ),
    )


# ---------------------------------------------------------------------------
# sweep tables
# ---------------------------------------------------------------------------
def _cell_key(cell: Mapping[str, Any]) -> str:
    return json.dumps(cell, sort_keys=True)


def _rel_delta(va: Any, vb: Any) -> Optional[float]:
    """Relative |B-A| / |A| for numeric values, None for non-numeric."""
    if isinstance(va, bool) or isinstance(vb, bool):
        return None if va == vb else float("inf")
    if not isinstance(va, (int, float, Fraction)):
        return None if va == vb else float("inf")
    if not isinstance(vb, (int, float, Fraction)):
        return float("inf")
    if va == vb:
        return 0.0
    if va == 0:
        return float("inf")
    return abs(float(Fraction(vb) - Fraction(va)) / float(Fraction(va)))


def _fmt(value: Any) -> str:
    if isinstance(value, Fraction) and not isinstance(value, int):
        return f"{value.numerator}/{value.denominator}"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _compare_sweeps(
    a: Mapping[str, Any], b: Mapping[str, Any],
    tolerance: Optional[float], names: tuple,
) -> Comparison:
    comp = Comparison(kind="sweep")
    metrics_a = list(a.get("metrics", []))
    metrics_b = list(b.get("metrics", []))
    if metrics_a != metrics_b:
        comp.refusal = (
            f"sweep metric sets differ — {names[0]} has "
            f"{', '.join(metrics_a) or '(none)'}; {names[1]} has "
            f"{', '.join(metrics_b) or '(none)'}; re-run one side with "
            "matching metrics"
        )
        return comp

    def rows_by_cell(doc: Mapping[str, Any]) -> Dict[str, Dict[str, Any]]:
        out: Dict[str, Dict[str, Any]] = {}
        for row in doc.get("rows", []):
            cell = {
                k: value_from_jsonable(v)
                for k, v in row.get("cell", {}).items()
            }
            out[_cell_key(row.get("cell", {}))] = {
                "cell": cell,
                "metrics": {
                    k: value_from_jsonable(v)
                    for k, v in row.get("metrics", {}).items()
                },
            }
        return out

    rows_a, rows_b = rows_by_cell(a), rows_by_cell(b)
    gate = tolerance is not None
    deviations = 0
    compared = 0
    for key in sorted(set(rows_a) | set(rows_b)):
        in_a, in_b = key in rows_a, key in rows_b
        coords = ", ".join(
            f"{k}={_fmt(v)}"
            for k, v in (rows_a.get(key) or rows_b[key])["cell"].items()
        )
        if not (in_a and in_b):
            only = names[0] if in_a else names[1]
            line = f"({coords}): row only in {only}"
            comp.lines.append(line)
            if gate:
                comp.regressions.append(line)
            continue
        compared += 1
        for metric in metrics_a:
            va = rows_a[key]["metrics"].get(metric)
            vb = rows_b[key]["metrics"].get(metric)
            delta = _rel_delta(va, vb)
            if delta is None or delta == 0.0:
                continue
            deviations += 1
            line = (
                f"({coords}) {metric}: {_fmt(va)} -> {_fmt(vb)} "
                f"({delta:.2%} drift)"
                if delta != float("inf")
                else f"({coords}) {metric}: {_fmt(va)} -> {_fmt(vb)}"
            )
            comp.lines.append(line)
            if gate and delta > tolerance:
                comp.regressions.append(line)
    comp.lines.append(
        f"{compared} row(s) compared over {len(metrics_a)} metric(s): "
        + (
            "identical"
            if deviations == 0 and len(rows_a) == len(rows_b) == compared
            else f"{deviations} metric deviation(s)"
        )
    )
    failed = len(a.get("failed_rows", [])), len(b.get("failed_rows", []))
    if any(failed):
        comp.warnings.append(
            f"failed rows present ({names[0]}: {failed[0]}, "
            f"{names[1]}: {failed[1]}) — failed cells carry no metrics "
            "and are not compared"
        )
    return comp


# ---------------------------------------------------------------------------
# bench snapshots
# ---------------------------------------------------------------------------
def _compare_benches(
    a: Mapping[str, Any], b: Mapping[str, Any],
    tolerance: Optional[float], names: tuple,
) -> Comparison:
    comp = Comparison(kind="bench")
    cpus_a, cpus_b = a.get("cpus"), b.get("cpus")
    if cpus_a != cpus_b:
        comp.refusal = (
            f"refusing to diff: snapshots come from different hosts — "
            f"{names[0]} has cpus={cpus_a}, {names[1]} has cpus={cpus_b}; "
            "parallel/pool lanes are not comparable across core counts"
        )
        return comp
    if a.get("fast") != b.get("fast"):
        comp.warnings.append(
            "warning: comparing a --fast snapshot against a full one — "
            "frame counts differ"
        )
    gate = tolerance is not None
    comp.lines.append(
        f"{'case':24s} {'A [ms]':>10s} {'B [ms]':>10s} {'B/A':>7s}"
    )
    for name in sorted(set(a.get("cases", {})) | set(b.get("cases", {}))):
        wall_a = a.get("cases", {}).get(name, {}).get("wall_s")
        wall_b = b.get("cases", {}).get(name, {}).get("wall_s")
        if wall_a is None or wall_b is None:
            only = "A" if wall_b is None else "B"
            comp.lines.append(
                f"{name:24s} {'—':>10s} {'—':>10s}   (only in {only})"
            )
            continue
        ratio = wall_b / wall_a if wall_a else float("inf")
        comp.lines.append(
            f"{name:24s} {wall_a * 1000:10.2f} {wall_b * 1000:10.2f} "
            f"{ratio:6.2f}x"
        )
        # Wall time only regresses upward: faster is fine, slower past
        # the tolerance fails the gate.
        if gate and ratio > 1.0 + tolerance:
            comp.regressions.append(
                f"{name}: {wall_a * 1000:.2f} ms -> {wall_b * 1000:.2f} ms "
                f"({ratio:.2f}x, tolerance {tolerance:.0%})"
            )
    return comp
