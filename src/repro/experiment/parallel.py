"""Multiprocess sweep backend: one worker task per schedule-key group.

:func:`repro.experiment.sweep.run_sweep` with ``workers > 1`` lands here.
The matrix's cells are partitioned by
:meth:`~repro.experiment.scenario.Scenario.schedule_key` — the unit of
stage reuse — and each group is dispatched as one task to a pool of
spawned worker processes.  Every worker task builds its own
:class:`~repro.experiment.experiment.PipelineCache`, so a group still
pays exactly one task-graph derivation and one scheduling pass no matter
how many runtime-only cells (jitter seeds, overheads, frame counts,
stimuli) it contains; the per-task cache counters come back with the rows
and are summed into the sweep's :class:`~repro.experiment.sweep.
SweepStats`.

Everything that crosses the process boundary is *data*, carried by the
exact JSON wire format of :mod:`repro.io.json_io`:

* outbound, each cell's scenario goes through ``scenario_to_dict`` (the
  tagged value encoding keeps Fractions, complex samples and tuples
  exact — FFT stimuli survive);
* inbound, each row's metric values go through ``value_to_jsonable`` /
  ``value_from_jsonable``, so rational metrics (makespans, latenesses,
  utilizations) come back as the same exact :class:`~fractions.Fraction`
  values the serial path computes.

Combined with the shared per-cell execution helper
(:func:`repro.experiment.sweep._run_cell` — the only code path that
configures and runs a cell, serial or parallel) this makes parallel rows
**bit-identical** to a serial ``run_sweep`` of the same matrix, which the
test suite pins the same way the tick-domain and data-phase ports were
pinned.

Not every sweep can be dispatched.  :func:`serial_fallback_reason`
documents the rules: sweeps attaching live per-cell observers
(``observer_factory``) or retaining full results (``keep_results``) need
in-process objects; scenarios embedding code the child cannot
reconstruct (bare factory callables, per-job WCET callables, workload
names registered — or overridden — only in the parent process, which a
freshly-imported worker would not resolve) are refused per cell; a
caller-shared cache cannot be shared across processes; and a single
schedule-key group has nothing to fan out.  ``run_sweep`` records the
reason in ``SweepStats.parallel_fallback`` and runs serially.

The spawn start method is used unconditionally: it is the only method
that is safe and available everywhere (fork inherits arbitrary parent
state).  Workers re-import :mod:`repro` through the parent's ``sys.path``
and working directory, which multiprocessing's spawn preparation data
carries into every child.
Spawn's usual rule applies: a *script* calling ``run_sweep(workers=N)``
at import time must guard the call with ``if __name__ == "__main__":``
(the children re-import the main module), exactly as with any direct
:mod:`multiprocessing` use.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ModelError
from ..runtime.observers import ExecutionObserver
from .experiment import PipelineCache
from .sweep import (
    ScenarioMatrix,
    SweepCell,
    SweepResult,
    SweepRow,
    SweepStats,
    _check_cell_modes,
    _run_cell,
)

__all__ = [
    "run_sweep_parallel",
    "schedule_key_groups",
    "serial_fallback_reason",
]


def _group_cells(cells: Sequence[SweepCell]) -> List[List[SweepCell]]:
    groups: Dict[Any, List[SweepCell]] = {}
    for cell in cells:
        groups.setdefault(cell.scenario.schedule_key(), []).append(cell)
    return list(groups.values())


def schedule_key_groups(matrix: ScenarioMatrix) -> List[List[SweepCell]]:
    """The matrix's cells grouped by schedule key, in first-seen order.

    One group is the unit of dispatch *and* of stage reuse: all its cells
    share one derivation and one schedule, so a worker owning the whole
    group pays each exactly once from its private cache.
    """
    return _group_cells(list(matrix.cells()))


def _serial_fallback_reason(
    cells: Sequence[SweepCell],
    *,
    keep_results: bool = False,
    observer_factory: Optional[
        Callable[[SweepCell], Sequence[ExecutionObserver]]
    ] = None,
    cache: Optional[PipelineCache] = None,
) -> Optional[str]:
    if observer_factory is not None:
        return (
            "observer_factory attaches live in-process observers, which "
            "cannot be shipped to worker processes"
        )
    if keep_results:
        return (
            "keep_results retains full RuntimeResult objects, which are "
            "not serialised across the process boundary"
        )
    if cache is not None:
        return (
            "a caller-shared PipelineCache cannot be shared with worker "
            "processes — drop it to fan out"
        )
    # The *cells* are what gets dispatched, so they are the authority —
    # the base scenario may carry code an axis substitutes away (a
    # workload axis over registered names), or vice versa.
    for cell in cells:
        blocker = cell.scenario.dispatch_blocker()
        if blocker is not None:
            return f"scenario is not dispatchable: {blocker}"
    if len(_group_cells(cells)) < 2:
        return (
            "matrix has a single schedule-key group — nothing to fan out "
            "(parallelism is per distinct schedule key)"
        )
    return None


def serial_fallback_reason(
    matrix: ScenarioMatrix,
    *,
    keep_results: bool = False,
    observer_factory: Optional[
        Callable[[SweepCell], Sequence[ExecutionObserver]]
    ] = None,
    cache: Optional[PipelineCache] = None,
) -> Optional[str]:
    """Why this sweep must run serially, or ``None`` if it can fan out.

    The returned string is stored verbatim in
    ``SweepStats.parallel_fallback`` so a ``workers > 1`` caller can see
    which rule demoted the sweep.
    """
    return _serial_fallback_reason(
        list(matrix.cells()),
        keep_results=keep_results,
        observer_factory=observer_factory,
        cache=cache,
    )


# ---------------------------------------------------------------------------
# wire format (parent <-> worker), all JSON text
# ---------------------------------------------------------------------------
def _encode_group(
    group: Sequence[SweepCell], metrics: Tuple[str, ...], lean: bool
) -> str:
    from ..io.json_io import scenario_to_dict

    # Cells of one group usually share the base scenario's stimulus
    # *object* (axis substitution replaces other fields), and stimuli
    # dominate the payload (the FMS pilot-command stimulus is ~250 KB at
    # 25 frames).  Pool identical stimuli by object identity: each is
    # wired and decoded once per group, and the worker rebinds one shared
    # Stimulus across its cells — which also restores the serial path's
    # per-object `samples_view` memo sharing.
    pool: List[Any] = []
    pool_index: Dict[int, int] = {}
    cells = []
    for cell in group:
        stimulus = cell.scenario.stimulus
        if stimulus is None:
            data = scenario_to_dict(cell.scenario)
        else:
            index = pool_index.get(id(stimulus))
            if index is None:
                data = scenario_to_dict(cell.scenario)
                index = pool_index[id(stimulus)] = len(pool)
                pool.append(data["stimulus"])
            else:
                # Already pooled: encode the scenario without re-encoding
                # the (potentially large) stimulus a second time.
                data = scenario_to_dict(cell.scenario.replace(stimulus=None))
            data["stimulus"] = index
        cells.append({"index": cell.index, "scenario": data})
    return json.dumps({
        "metrics": list(metrics),
        "lean": lean,
        "stimulus_pool": pool,
        "cells": cells,
    })


def _worker_run_group(payload: str) -> str:
    """Run one schedule-key group in a worker process (spawn target).

    Decodes the scenarios, executes every cell through the same
    :func:`~repro.experiment.sweep._run_cell` path the serial sweep uses
    (with a fresh private :class:`PipelineCache`), and returns the rows'
    metric values plus the cache counters, all as tagged-JSON text.
    """
    from ..io.json_io import (
        scenario_from_dict,
        stimulus_from_dict,
        value_to_jsonable,
    )
    from .sweep import DATA_METRICS

    data = json.loads(payload)
    metrics = tuple(data["metrics"])
    lean = bool(data["lean"])
    stimuli = [stimulus_from_dict(s) for s in data.get("stimulus_pool", ())]
    want_data = any(name in DATA_METRICS for name in metrics)
    cache = PipelineCache()
    rows = []
    for item in data["cells"]:
        scenario_data = dict(item["scenario"])
        stimulus_ref = scenario_data.get("stimulus")
        if stimulus_ref is not None:
            scenario_data["stimulus"] = None
        scenario = scenario_from_dict(scenario_data)
        if stimulus_ref is not None:
            scenario = scenario.replace(stimulus=stimuli[stimulus_ref])
        cell = SweepCell(index=int(item["index"]), coords=(), scenario=scenario)
        cell_metrics, _ = _run_cell(
            cell, metrics, want_data,
            lean=lean, keep_results=False, cache=cache,
        )
        rows.append({
            "index": cell.index,
            "metrics": {
                name: value_to_jsonable(value)
                for name, value in cell_metrics.items()
            },
        })
    return json.dumps({
        "rows": rows,
        "stats": {
            "runs": len(rows),
            "networks_built": cache.networks_built,
            "derivations_computed": cache.derivations_computed,
            "schedules_computed": cache.schedules_computed,
        },
    })


def run_sweep_parallel(
    matrix: ScenarioMatrix,
    metrics: Tuple[str, ...],
    want_data: bool,
    *,
    lean: bool,
    workers: int,
    cells: Optional[Sequence[SweepCell]] = None,
) -> SweepResult:
    """Fan the matrix's schedule-key groups out across worker processes.

    ``run_sweep`` calls this only after :func:`serial_fallback_reason`
    returned ``None`` (passing the cells it already enumerated); callers
    should go through ``run_sweep(workers=N)`` rather than here.
    """
    import multiprocessing

    if workers < 2:
        raise ModelError("run_sweep_parallel needs workers >= 2")
    # Cell-mode conflicts (records_only base vs data metrics) are checked
    # up front so they raise identically to the serial path, before any
    # process is spawned.
    if cells is None:
        cells = list(matrix.cells())
    for cell in cells:
        _check_cell_modes(cell, metrics, want_data)
    groups = _group_cells(cells)
    payloads = [_encode_group(group, metrics, lean) for group in groups]
    n_workers = min(workers, len(groups))

    # Spawned children inherit the parent's sys.path and working
    # directory through multiprocessing's spawn preparation data, so
    # repro is importable in the workers however the parent found it
    # (PYTHONPATH, installed distribution, or sys.path manipulation) —
    # no process-global environment mutation needed here.
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(processes=n_workers) as pool:
        replies = pool.map(_worker_run_group, payloads, chunksize=1)

    from ..io.json_io import value_from_jsonable

    stats = SweepStats(
        cells=len(matrix), workers=n_workers, parallel_fallback=None
    )
    metrics_by_index: Dict[int, Dict[str, Any]] = {}
    for reply in replies:
        data = json.loads(reply)
        for row in data["rows"]:
            metrics_by_index[int(row["index"])] = {
                name: value_from_jsonable(value)
                for name, value in row["metrics"].items()
            }
        worker_stats = data["stats"]
        stats.runs += int(worker_stats["runs"])
        stats.networks_built += int(worker_stats["networks_built"])
        stats.derivations_computed += int(
            worker_stats["derivations_computed"]
        )
        stats.schedules_computed += int(worker_stats["schedules_computed"])
    # Rows come back grouped by schedule key; the table is in cell order.
    rows = [
        SweepRow(cell=dict(cell.coords), metrics=metrics_by_index[cell.index])
        for cell in cells
    ]
    return SweepResult(
        axes=dict(matrix.axes), metrics=metrics, rows=rows, stats=stats
    )
