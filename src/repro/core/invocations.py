"""Stimuli: the environment side of an FPPN execution.

An FPPN execution is driven by (Proposition 2.1) *"the time stamps of the
event generators and the data samples at the external inputs"*.  A
:class:`Stimulus` bundles exactly those two ingredients:

* ``input_samples`` — for each external input channel, the indexed samples
  ``{k: value}`` (the k-th job of the owning process reads sample ``[k]``);
* ``sporadic_arrivals`` — for each sporadic process, the concrete arrival
  trace used by this execution, validated against its ``(m, T)`` constraint.

Periodic invocation times are intrinsic to the network (the generators), so
they are not part of the stimulus.

The module also provides helpers to synthesize reproducible pseudo-random
sporadic traces (used by the FMS case study and the property-based tests).
"""

from __future__ import annotations

import random
import weakref
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from ..errors import EventError
from .events import SporadicGenerator
from .network import Network
from .timebase import Time, TimeLike, as_nonnegative_time, as_positive_time

SampleMap = Dict[int, Any]


class Stimulus:
    """External inputs of one FPPN execution.

    Parameters
    ----------
    input_samples:
        Mapping ``external input name -> samples``.  Samples may be given as
        a dict ``{k: value}`` (1-based) or a sequence (element ``i`` becomes
        sample ``[i+1]``).
    sporadic_arrivals:
        Mapping ``sporadic process name -> sorted arrival times``.
    """

    def __init__(
        self,
        input_samples: Optional[Mapping[str, Union[SampleMap, Sequence[Any]]]] = None,
        sporadic_arrivals: Optional[Mapping[str, Iterable[TimeLike]]] = None,
    ) -> None:
        self.input_samples: Dict[str, SampleMap] = {}
        for name, samples in (input_samples or {}).items():
            self.input_samples[name] = _normalize_samples(name, samples)
        self.sporadic_arrivals: Dict[str, List[Time]] = {
            name: [as_nonnegative_time(t, "arrival time") for t in times]
            for name, times in (sporadic_arrivals or {}).items()
        }
        self._samples_views: Dict[str, SampleMap] = {}
        self._validated_networks: "weakref.WeakSet[Network]" = weakref.WeakSet()

    def validate(self, network: Network) -> None:
        """Check the stimulus against a network definition.

        * every referenced external input / sporadic process exists;
        * every arrival trace satisfies its generator's sporadic constraint;
        * every sporadic process of the network has a trace (possibly empty —
          missing entries are treated as empty, so this only normalises).

        A successful validation is memoised per network (weakly), so sweeps
        re-running one stimulus against one network many times pay the
        arrival-constraint scan once; stimuli are treated as immutable after
        first use (the executors already rely on that via
        :meth:`samples_view`).
        """
        if network in self._validated_networks:
            return
        for name in self.input_samples:
            if name not in network.external_inputs:
                raise EventError(f"stimulus references unknown external input {name!r}")
        for pname, times in self.sporadic_arrivals.items():
            proc = network.processes.get(pname)
            if proc is None:
                raise EventError(f"stimulus references unknown process {pname!r}")
            gen = proc.generator
            if not isinstance(gen, SporadicGenerator):
                raise EventError(
                    f"process {pname!r} is not sporadic; periodic invocations "
                    "are defined by the network, not the stimulus"
                )
            gen.validate_trace(times)
        self._validated_networks.add(network)

    def truncated(self, horizon: TimeLike) -> "Stimulus":
        """A copy whose sporadic arrivals are restricted to ``t < horizon``.

        Used when comparing a finite runtime simulation against the
        zero-delay reference: arrivals whose server window lies beyond the
        simulated frames must be excluded from both executions (see
        :func:`repro.runtime.static_order.served_horizon`).
        """
        h = as_nonnegative_time(horizon, "horizon")
        return Stimulus(
            input_samples=self.input_samples,
            sporadic_arrivals={
                name: [t for t in times if t < h]
                for name, times in self.sporadic_arrivals.items()
            },
        )

    def arrivals_for(self, process: str) -> List[Time]:
        """Arrival trace of a sporadic process (empty when not stimulated)."""
        return list(self.sporadic_arrivals.get(process, []))

    def samples_for(self, channel: str) -> SampleMap:
        """A fresh copy of the samples of one external input channel."""
        return dict(self.input_samples.get(channel, {}))

    def samples_view(self, channel: str) -> SampleMap:
        """A memoised **read-only view** of one channel's samples.

        The executors build one sample mapping per process binding — the
        zero-delay and uniprocessor references even per job instance — so
        the per-call copy of :meth:`samples_for` is pure allocation churn on
        hot paths.  This returns one shared dict per channel, built on
        first access; callers must not mutate it (job contexts only ever
        ``get`` from it).
        """
        view = self._samples_views.get(channel)
        if view is None:
            view = self._samples_views[channel] = dict(
                self.input_samples.get(channel, {})
            )
        return view

    def __eq__(self, other: object) -> bool:
        """Structural equality over samples and arrival traces.

        Two stimuli are equal when they describe the same external data —
        what scenario comparison and JSON round-trip tests need; the
        memoised views are derived state and do not participate.
        """
        if not isinstance(other, Stimulus):
            return NotImplemented
        return (
            self.input_samples == other.input_samples
            and self.sporadic_arrivals == other.sporadic_arrivals
        )

    __hash__ = None  # mutable sample maps: structurally equal, unhashable

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"Stimulus(inputs={sorted(self.input_samples)}, "
            f"sporadics={sorted(self.sporadic_arrivals)})"
        )


def _normalize_samples(
    name: str, samples: Union[SampleMap, Sequence[Any]]
) -> SampleMap:
    if isinstance(samples, Mapping):
        out: SampleMap = {}
        for k, v in samples.items():
            if not isinstance(k, int) or k < 1:
                raise EventError(
                    f"external input {name!r}: sample indices are 1-based "
                    f"integers, got {k!r}"
                )
            out[k] = v
        return out
    return {i + 1: v for i, v in enumerate(samples)}


def random_sporadic_trace(
    generator: SporadicGenerator,
    horizon: TimeLike,
    rng: random.Random,
    intensity: float = 0.7,
    time_unit: int = 1000,
) -> List[Time]:
    """Synthesize a reproducible arrival trace satisfying the (m, T) bound.

    Candidate arrivals are proposed window-by-window (a binomial count with
    mean ``intensity * m`` per ``T``-length slice, at rational offsets with
    denominator *time_unit*) and then admitted greedily: a candidate ``t``
    is kept only while the trailing half-closed window ``(t - T, t]`` holds
    at most ``m`` kept arrivals.  Greedy suffix-window admission is sound:
    any over-full interval would make the trailing window of its last
    arrival over-full, which the filter prevents.  Deterministic given
    *rng*'s state; the result is re-validated before returning.

    Parameters
    ----------
    intensity:
        Fraction of the maximal event rate to use, in ``[0, 1]``.
    time_unit:
        Denominator of arrival offsets (1000 -> millisecond-grain offsets for
        second-grain periods).
    """
    if not 0.0 <= intensity <= 1.0:
        raise ValueError("intensity must be within [0, 1]")
    h = as_positive_time(horizon, "horizon")
    T = generator.period
    m = generator.burst
    candidates: List[Time] = []
    window_start = Time(0)
    while window_start < h:
        count = sum(1 for _ in range(m) if rng.random() < intensity)
        offsets = sorted(rng.randrange(0, time_unit) for _ in range(count))
        for off in offsets:
            t = window_start + T * off / time_unit
            if t < h:
                candidates.append(t)
        window_start += T
    candidates.sort()
    trace: List[Time] = []
    for t in candidates:
        in_window = sum(1 for kept in trace if kept > t - T)
        if in_window < m:
            trace.append(t)
    return generator.validate_trace(trace)


def random_stimulus(
    network: Network,
    horizon: TimeLike,
    seed: int = 0,
    intensity: float = 0.7,
    sample_value=None,
) -> Stimulus:
    """A reproducible stimulus for *network* over ``[0, horizon)``.

    Sporadic traces are synthesized with :func:`random_sporadic_trace`;
    external inputs receive enough samples for every possible job, generated
    by *sample_value(channel, k, rng)* (default: small integers).
    """
    rng = random.Random(seed)
    arrivals = {}
    for proc in network.sporadic_processes():
        gen = proc.generator
        assert isinstance(gen, SporadicGenerator)
        arrivals[proc.name] = random_sporadic_trace(gen, horizon, rng, intensity)
    samples: Dict[str, SampleMap] = {}
    h = as_positive_time(horizon, "horizon")
    for name, spec in network.external_inputs.items():
        owner = network.processes[spec.owner]
        if owner.is_sporadic:
            n = len(arrivals.get(owner.name, []))
        else:
            n = len(owner.generator.invocations(h))
        if sample_value is None:
            samples[name] = {k: rng.randrange(0, 1000) for k in range(1, n + 1)}
        else:
            samples[name] = {k: sample_value(name, k, rng) for k in range(1, n + 1)}
    stim = Stimulus(samples, arrivals)
    stim.validate(network)
    return stim
