"""Tests for the exception hierarchy and the experiment report renderer."""

import pytest

from repro.analysis import ExperimentReport, Row, approx
from repro.errors import (
    ChannelError,
    EventError,
    FPPNError,
    InfeasibleError,
    ModelError,
    RuntimeModelError,
    SchedulingError,
    SemanticsError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "cls",
        [
            ChannelError, EventError, InfeasibleError, ModelError,
            RuntimeModelError, SchedulingError, SemanticsError,
        ],
    )
    def test_all_derive_from_fppn_error(self, cls):
        assert issubclass(cls, FPPNError)

    def test_infeasible_is_scheduling_error(self):
        assert issubclass(InfeasibleError, SchedulingError)

    def test_infeasible_carries_diagnostics(self):
        err = InfeasibleError("no schedule", diagnostics="job x late by 5")
        assert err.diagnostics == "job x late by 5"

    def test_infeasible_diagnostics_default_empty(self):
        assert InfeasibleError("nope").diagnostics == ""

    def test_catch_all(self):
        with pytest.raises(FPPNError):
            raise ChannelError("boom")


class TestReport:
    def test_render_contains_rows(self):
        rep = ExperimentReport("E0 demo", "Fig. 0")
        rep.add("jobs", 10, 10)
        rep.add("load", "~1.2", "1.19", "close")
        text = rep.render()
        assert "== E0 demo (Fig. 0) ==" in text
        assert "quantity" in text and "paper" in text and "measured" in text
        assert "~1.2" in text and "1.19" in text and "close" in text

    def test_columns_aligned(self):
        rep = ExperimentReport("E", "a")
        rep.add("x", 1, 2)
        rep.add("longer-name", 100000, 2)
        lines = rep.render().splitlines()
        rows = [l for l in lines if l and not l.startswith("==")]
        # header/separator/rows share the position of the second column
        header = rows[0]
        data = rows[-1]
        assert header.index("paper") <= len(data)

    def test_preamble_text(self):
        rep = ExperimentReport("E", "a")
        rep.add_text("| gantt |")
        rep.add("x", 1, 1)
        assert "| gantt |" in rep.render()

    def test_show_prints(self, capsys):
        rep = ExperimentReport("E", "a")
        rep.add("x", 1, 1)
        rep.show()
        assert "== E (a) ==" in capsys.readouterr().out

    def test_row_render(self):
        row = Row("q", "p", "m", "n")
        assert row.render([3, 3, 3, 3]) == "q    p    m    n"

    def test_approx_formatting(self):
        assert approx(0.931234) == "0.931"
        assert approx(1.19149, 3) == "1.19"
