"""Static schedules (Definition 3.2) and feasibility checking.

A static schedule assigns every job ``Ji`` a processor ``μi`` and a start
time ``si``; it is **feasible** iff it satisfies:

* arrival:          ``si >= Ai``
* deadline:         ``ei = si + Ci <= Di``
* precedence:       ``(Ji, Jj) ∈ E  =>  ei <= sj``
* mutual exclusion: ``μi = μj  =>  ei <= sj  ∨  ej <= si``

The schedule repeats with the frame period ``H`` (Section IV); the online
static-order policy consumes only its per-processor *job order*, never its
absolute start times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SchedulingError
from ..core.timebase import Time, time_str
from ..taskgraph.graph import TaskGraph


@dataclass(frozen=True)
class ScheduledJob:
    """One schedule entry: job index, processor, start time."""

    job_index: int
    processor: int
    start: Time

    def __post_init__(self) -> None:
        if self.processor < 0:
            raise SchedulingError("processor ids are non-negative")
        if self.start < 0:
            raise SchedulingError("start times are non-negative")


@dataclass
class Violation:
    """A diagnosed feasibility violation (for reports and error messages)."""

    kind: str  # 'arrival' | 'deadline' | 'precedence' | 'mutex' | 'missing'
    detail: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.kind}: {self.detail}"


class StaticSchedule:
    """A complete static schedule for a task graph on ``M`` processors."""

    def __init__(
        self,
        graph: TaskGraph,
        processors: int,
        entries: Sequence[ScheduledJob],
    ) -> None:
        if processors < 1:
            raise SchedulingError("schedule needs at least one processor")
        self.graph = graph
        self.processors = processors
        self.entries: List[ScheduledJob] = sorted(
            entries, key=lambda e: (e.start, e.processor, e.job_index)
        )
        self._by_job: Dict[int, ScheduledJob] = {}
        for e in self.entries:
            if e.processor >= processors:
                raise SchedulingError(
                    f"entry for job {graph.jobs[e.job_index].name} uses "
                    f"processor {e.processor} >= M={processors}"
                )
            if e.job_index in self._by_job:
                raise SchedulingError(
                    f"job {graph.jobs[e.job_index].name} scheduled twice"
                )
            self._by_job[e.job_index] = e

    # ------------------------------------------------------------------
    def entry(self, job_index: int) -> ScheduledJob:
        try:
            return self._by_job[job_index]
        except KeyError:
            name = self.graph.jobs[job_index].name
            raise SchedulingError(f"job {name} is not scheduled") from None

    def start(self, job_index: int) -> Time:
        return self.entry(job_index).start

    def end(self, job_index: int) -> Time:
        return self.entry(job_index).start + self.graph.jobs[job_index].wcet

    def mapping(self, job_index: int) -> int:
        return self.entry(job_index).processor

    def makespan(self) -> Time:
        """Completion time of the last job in the frame."""
        return max((self.end(e.job_index) for e in self.entries), default=Time(0))

    def processor_order(self, processor: int) -> List[int]:
        """Job indices mapped to *processor*, in start-time order.

        This is exactly the per-processor static order consumed by the
        online policy (Section IV).
        """
        return [e.job_index for e in self.entries if e.processor == processor]

    def orders(self) -> List[List[int]]:
        """Per-processor static orders for all processors."""
        return [self.processor_order(m) for m in range(self.processors)]

    # ------------------------------------------------------------------
    def violations(self) -> List[Violation]:
        """All feasibility violations of Definition 3.2 (empty == feasible)."""
        out: List[Violation] = []
        jobs = self.graph.jobs
        for i in range(len(jobs)):
            if i not in self._by_job:
                out.append(Violation("missing", f"job {jobs[i].name} unscheduled"))
        for i, e in self._by_job.items():
            job = jobs[i]
            if e.start < job.arrival:
                out.append(
                    Violation(
                        "arrival",
                        f"{job.name} starts at {time_str(e.start)} before "
                        f"arrival {time_str(job.arrival)}",
                    )
                )
            if e.start + job.wcet > job.deadline:
                out.append(
                    Violation(
                        "deadline",
                        f"{job.name} ends at {time_str(e.start + job.wcet)} "
                        f"after deadline {time_str(job.deadline)}",
                    )
                )
        for i, j in self.graph.edges():
            if i in self._by_job and j in self._by_job:
                if self.end(i) > self.start(j):
                    out.append(
                        Violation(
                            "precedence",
                            f"{jobs[i].name} -> {jobs[j].name}: predecessor ends "
                            f"{time_str(self.end(i))} after successor start "
                            f"{time_str(self.start(j))}",
                        )
                    )
        for m in range(self.processors):
            order = self.processor_order(m)
            for a, b in zip(order, order[1:]):
                if self.end(a) > self.start(b):
                    out.append(
                        Violation(
                            "mutex",
                            f"jobs {jobs[a].name} and {jobs[b].name} overlap "
                            f"on processor {m}",
                        )
                    )
        return out

    def is_feasible(self) -> bool:
        return not self.violations()

    def require_feasible(self) -> "StaticSchedule":
        """Return self, raising with diagnostics when infeasible."""
        problems = self.violations()
        if problems:
            detail = "; ".join(str(v) for v in problems[:5])
            raise SchedulingError(
                f"schedule is infeasible ({len(problems)} violations): {detail}"
            )
        return self

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"StaticSchedule(M={self.processors}, jobs={len(self.entries)}, "
            f"makespan={time_str(self.makespan())})"
        )
