#!/usr/bin/env python3
"""Heterogeneous platforms: processor classes, WCET tables, platform sweeps.

The paper schedules on ``m`` identical processors.  This example walks the
heterogeneous extension end to end:

* a ``Platform`` is an ordered multiset of named ``ProcessorClass``es,
  each with an exact rational speed — ``Platform.homogeneous(m)`` is the
  degenerate platform, bit-identical to the classic ``processors=m``;
* per-process WCETs can be *tables* keyed by class name; a table entry is
  authoritative, every other class falls back to ``wcet / speed``;
* schedules bind each job to a concrete ``(class, local index)`` slot and
  job records carry the class name, so the timing analysis knows where
  every job ran;
* platforms are hashable scenario axes, and because WCET tables are keyed
  by class *name* the task-graph derivation is platform-independent —
  a platform sweep shares one derivation across all cells.

Run:  python examples/hetero_sweep.py
"""

from fractions import Fraction

from repro import Experiment, ScenarioMatrix, run_sweep
from repro.apps import build_fig1_network, fig1_scenario, fig1_wcets
from repro.core.platform import Platform
from repro.runtime import run_static_order
from repro.scheduling import find_feasible_schedule, list_schedule
from repro.taskgraph import derive_task_graph


def main() -> None:
    # -- 1. a two-class platform: one fast core, one half-speed core -------
    big_little = Platform.of(("big", 1), ("little", 1, Fraction(1, 2)))
    print(f"platform: {big_little} ({big_little.processors} processors)")
    for proc in range(big_little.processors):
        name, local = big_little.identity(proc)
        print(f"  processor {proc} -> class {name!r} (local index {local})")

    # -- 2. WCET tables: pin class-specific values per process -------------
    # FilterA gets an explicit per-class table (the authoritative values);
    # every other process keeps a scalar WCET that scales by class speed.
    wcets = dict(fig1_wcets())
    wcets["FilterA"] = {"big": Fraction(3, 10), "little": Fraction(2, 5)}
    graph = derive_task_graph(build_fig1_network(), wcets)
    job = next(j for j in graph.jobs if j.process == "FilterA")
    big, little = big_little.classes
    print(
        f"FilterA WCET: {job.wcet_on(big)} on big, {job.wcet_on(little)} on "
        f"little (table), worst case {job.wcet}"
    )
    scalar = next(j for j in graph.jobs if j.process == "InputA")
    assert scalar.wcet_on(little) == scalar.wcet * 2  # speed-1/2 fallback
    print(
        f"InputA WCET: {scalar.wcet_on(big)} on big, "
        f"{scalar.wcet_on(little)} on little (speed scaled, exact)"
    )

    # -- 3. scheduling is platform-aware -----------------------------------
    schedule = find_feasible_schedule(graph, big_little)
    print(f"schedule: feasible={schedule.is_feasible()}, "
          f"makespan={schedule.makespan()} on {schedule.platform}")

    # -- 4. job records carry the processor class --------------------------
    scenario = fig1_scenario(n_frames=1).replace(
        wcet=wcets, platform=big_little, label="fig1-hetero"
    )
    result = Experiment(scenario).run()
    by_class = {}
    for rec in result.records:
        if not rec.is_false:
            by_class[rec.processor_class] = by_class.get(rec.processor_class, 0) + 1
    print(f"jobs executed per class: {dict(sorted(by_class.items()))}")

    # -- 5. the exact speed-scaling guarantee ------------------------------
    # A single half-speed class doubles every duration *exactly* — the
    # relation holds in Fraction arithmetic, not within a float tolerance.
    # (Doubled fig1 WCETs miss deadlines, so schedule directly with
    # list_schedule instead of the feasibility-gated portfolio.)
    base_graph = derive_task_graph(build_fig1_network(), fig1_wcets())
    net = build_fig1_network()
    unit = run_static_order(
        net, list_schedule(base_graph, Platform.homogeneous(2)), 1
    )
    slow = run_static_order(
        net,
        list_schedule(base_graph, Platform.of(("slow", 2, Fraction(1, 2)))),
        1,
    )
    durations = {
        (r.process, r.k_frame): r.end - r.start
        for r in unit.records if not r.is_false
    }
    for r in slow.records:
        if not r.is_false:
            assert r.end - r.start == 2 * durations[(r.process, r.k_frame)]
    print("half-speed platform doubled every job duration exactly")

    # -- 6. platforms are sweep axes ---------------------------------------
    matrix = ScenarioMatrix(
        fig1_scenario(n_frames=2),
        {
            "platform": [Platform.homogeneous(2), big_little],
            "jitter_seed": [0, 1],
        },
    )
    table = run_sweep(matrix, metrics=("makespan", "worst_lateness",
                                       "executed_jobs"))
    assert not table.failed_rows
    # WCET tables key on class names, so the derivation never depends on
    # the platform: all four cells share one graph, each platform pays
    # exactly one scheduling pass.
    assert table.stats.derivations_computed == 1
    assert table.stats.schedules_computed == 2
    print("platform x jitter sweep (1 derivation, 2 schedules):")
    print(table.table())


if __name__ == "__main__":
    main()
