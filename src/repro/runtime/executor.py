"""Multiprocessor runtime simulator executing the static-order policy.

This is the library's substitute for the paper's MPPA/Linux runtime
(Section V): a deterministic discrete-event simulation of ``M`` processors
executing the frame-periodic static-order policy of Section IV, including:

* invocation synchronisation (periodic invocations, early/absent sporadic
  invocations with false-job marking),
* precedence synchronisation against task-graph predecessors,
* per-processor mutual exclusion in static-schedule order,
* the frame-arrival overhead model of Section V-A,
* actual execution times that may differ from WCETs (jitter injection) —
  the policy must stay correct because it synchronises instead of trusting
  the static start times (Prop. 4.1).

Timing and data are computed in two phases:

1. **Timing phase** — per frame, job starts/ends are resolved in a
   topological pass over the combined DAG (precedence edges + per-processor
   chains + invocation floors).  The combined relation is acyclic because a
   feasible static schedule orders both edge kinds by start time.
2. **Data phase** — the kernels of all *true* jobs run in ``(start, frame,
   <J index)`` order against fresh channel states.  Jobs sharing a channel
   can never overlap (they are precedence-ordered and the policy enforces
   it), so atomic-at-start execution reproduces the real interleaving; the
   resulting channel write sequences are the Prop. 2.1 observable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from ..errors import RuntimeModelError
from ..core.channels import ChannelState, ExternalOutputState
from ..core.invocations import Stimulus
from ..core.network import Network
from ..core.process import JobContext
from ..core.timebase import Time, TimeLike, as_positive_time, as_time
from ..core.trace import JobEnd, JobStart, Trace
from ..taskgraph.graph import TaskGraph
from ..taskgraph.jobs import Job
from ..scheduling.schedule import StaticSchedule
from .overheads import OverheadModel
from .static_order import ArrivalBinding, FramePlan

ExecutionTimeSpec = Union[
    None,
    Mapping[str, TimeLike],
    Callable[[Job, int], TimeLike],
]


def wcet_execution(job: Job, frame: int) -> Time:
    """The default execution-time model: every job takes exactly its WCET."""
    return job.wcet


def jittered_execution(
    seed: int, low_fraction: float = 0.5
) -> Callable[[Job, int], Time]:
    """Deterministic pseudo-random execution times in ``[low*C, C]``.

    The sample depends only on ``(seed, process, k, frame)``, so repeated
    runs with the same seed are identical — which the determinism tests rely
    on when comparing *different schedules* under the *same* jitter.
    """
    if not 0 < low_fraction <= 1:
        raise ValueError("low_fraction must be in (0, 1]")

    def sample(job: Job, frame: int) -> Time:
        rng = random.Random(f"{seed}/{job.process}/{job.k}/{frame}")
        frac = low_fraction + (1 - low_fraction) * rng.random()
        # keep it rational with millisecond-ish resolution
        scaled = int(frac * 10_000)
        return job.wcet * scaled / 10_000

    return sample


@dataclass(frozen=True)
class JobRecord:
    """Timing record of one job instance (one job in one frame)."""

    process: str
    frame: int
    k_frame: int        # invocation count within the frame (graph job's k)
    global_k: int       # invocation count over the whole run
    processor: int
    release: Time       # real release: invocation time (arrival for sporadic)
    start: Time
    end: Time
    deadline: Time      # real absolute deadline: release + dp
    is_false: bool
    is_server: bool

    @property
    def name(self) -> str:
        return f"{self.process}[{self.global_k}]"

    @property
    def missed(self) -> bool:
        """Deadline miss — false jobs never miss (they do not execute)."""
        return not self.is_false and self.end > self.deadline

    @property
    def response_time(self) -> Time:
        return self.end - self.release


@dataclass
class RuntimeResult:
    """Everything observable from one simulated run."""

    network_name: str
    frames: int
    hyperperiod: Time
    processors: int
    records: List[JobRecord]
    channel_logs: Dict[str, List[Any]]
    external_outputs: Dict[str, List[Tuple[int, Any]]]
    trace: Trace
    overhead_intervals: List[Tuple[int, Time, Time]] = field(default_factory=list)

    def observable(self) -> Dict[str, Any]:
        """Canonical determinism observable (same shape as zero-delay runs)."""
        return {
            "channels": {k: list(v) for k, v in sorted(self.channel_logs.items())},
            "outputs": {k: list(v) for k, v in sorted(self.external_outputs.items())},
        }

    def misses(self) -> List[JobRecord]:
        return [r for r in self.records if r.missed]

    def executed(self) -> List[JobRecord]:
        return [r for r in self.records if not r.is_false]

    def false_jobs(self) -> List[JobRecord]:
        return [r for r in self.records if r.is_false]

    def makespan(self) -> Time:
        return max((r.end for r in self.records), default=Time(0))

    def max_response_time(self, process: Optional[str] = None) -> Time:
        candidates = [
            r.response_time
            for r in self.executed()
            if process is None or r.process == process
        ]
        return max(candidates, default=Time(0))


class MultiprocessorExecutor:
    """Simulates the static-order policy for a network + static schedule."""

    def __init__(
        self,
        network: Network,
        schedule: StaticSchedule,
        overheads: Optional[OverheadModel] = None,
    ) -> None:
        network.validate_taskgraph_subclass()
        if schedule.graph.hyperperiod is None:
            raise RuntimeModelError("schedule's task graph has no hyperperiod")
        self.network = network
        self.schedule = schedule
        self.plan = FramePlan.from_schedule(schedule)
        self.overheads = overheads or OverheadModel.none()
        self.graph: TaskGraph = schedule.graph
        self.hyperperiod: Time = schedule.graph.hyperperiod

    # ------------------------------------------------------------------
    def run(
        self,
        n_frames: int,
        stimulus: Optional[Stimulus] = None,
        execution_time: ExecutionTimeSpec = None,
    ) -> RuntimeResult:
        """Simulate ``n_frames`` frames of the static-order policy."""
        if n_frames < 1:
            raise RuntimeModelError("n_frames must be >= 1")
        stimulus = stimulus or Stimulus()
        stimulus.validate(self.network)
        exec_of = self._resolve_execution_time(execution_time)
        binding = ArrivalBinding(self.network, self.hyperperiod, n_frames, stimulus)
        per_frame_counts = self.plan.per_process_count()

        records: List[JobRecord] = []
        instance_order: List[Tuple[Time, int, int]] = []  # (start, frame, job idx)
        # per-processor completion time of the previous round (chain state)
        chain_end: List[Time] = [Time(0)] * self.plan.processors
        # per (frame, job index) end times for precedence sync
        ends: Dict[Tuple[int, int], Time] = {}
        record_at: Dict[Tuple[int, int], JobRecord] = {}
        overhead_intervals: List[Tuple[int, Time, Time]] = []

        topo = self._frame_topological_order()

        for frame in range(n_frames):
            base = self.hyperperiod * frame
            ov = self.overheads.frame_arrival(frame)
            if ov > 0:
                overhead_intervals.append((frame, base, base + ov))
            floor = base + ov
            for job_idx in topo:
                job = self.graph.jobs[job_idx]
                proc = self.plan.processor_of(job_idx)
                visible, release, deadline, is_false, global_k = self._invocation(
                    job, frame, base, floor, binding, per_frame_counts
                )
                start = max(visible, chain_end[proc])
                for p in self.graph.predecessors(job_idx):
                    start = max(start, ends[(frame, p)])
                duration = Time(0)
                if not is_false:
                    duration = exec_of(job, frame) + self.overheads.per_job
                end = start + duration
                chain_end[proc] = end
                ends[(frame, job_idx)] = end
                rec = JobRecord(
                    process=job.process,
                    frame=frame,
                    k_frame=job.k,
                    global_k=global_k,
                    processor=proc,
                    release=release,
                    start=start,
                    end=end,
                    deadline=deadline,
                    is_false=is_false,
                    is_server=job.is_server,
                )
                records.append(rec)
                record_at[(frame, job_idx)] = rec
                if not is_false:
                    instance_order.append((start, frame, job_idx))

        channel_logs, external_outputs, trace = self._data_phase(
            sorted(instance_order), record_at, stimulus
        )
        return RuntimeResult(
            network_name=self.network.name,
            frames=n_frames,
            hyperperiod=self.hyperperiod,
            processors=self.plan.processors,
            records=records,
            channel_logs=channel_logs,
            external_outputs=external_outputs,
            trace=trace,
            overhead_intervals=overhead_intervals,
        )

    # ------------------------------------------------------------------
    def _frame_topological_order(self) -> List[int]:
        """Job indices ordered by (static start, index).

        For a feasible schedule this order is topological for the union of
        precedence edges and per-processor chains, so a single pass resolves
        all timing dependencies within a frame.
        """
        return sorted(
            range(len(self.graph)),
            key=lambda i: (self.schedule.start(i), i),
        )

    def _invocation(
        self,
        job: Job,
        frame: int,
        base: Time,
        floor: Time,
        binding: ArrivalBinding,
        per_frame_counts: Mapping[str, int],
    ) -> Tuple[Time, Time, Time, bool, int]:
        """Resolve a job instance's invocation.

        Returns ``(visible, release, deadline, is_false, global_k)`` where
        *visible* is when Synchronize-Invocation completes, *release* the
        real invocation time used for response-time accounting and
        *deadline* the real absolute deadline ``release + dp``.
        """
        process = self.network.processes[job.process]
        if job.is_server:
            bound = binding.lookup(
                job.process, frame, job.subset_index, job.slot
            )
            if bound is None:
                nominal = base + job.arrival
                return (max(nominal, floor), nominal, nominal + process.deadline,
                        True, frame * per_frame_counts[job.process] + job.k)
            visible = max(bound.time, floor, base)
            return (visible, bound.time, bound.time + process.deadline,
                    False, bound.global_k)
        nominal = base + job.arrival
        return (
            max(nominal, floor),
            nominal,
            nominal + process.deadline,
            False,
            frame * per_frame_counts[job.process] + job.k,
        )

    def _resolve_execution_time(
        self, spec: ExecutionTimeSpec
    ) -> Callable[[Job, int], Time]:
        if spec is None:
            return wcet_execution
        if callable(spec):
            def from_callable(job: Job, frame: int) -> Time:
                return as_time(spec(job, frame))
            return from_callable
        table = {
            name: as_positive_time(value, f"execution time of {name!r}")
            for name, value in spec.items()
        }
        missing = sorted(
            {j.process for j in self.graph.jobs} - set(table)
        )
        if missing:
            raise RuntimeModelError(f"missing execution time for {missing!r}")

        def from_table(job: Job, frame: int) -> Time:
            return table[job.process]

        return from_table

    # ------------------------------------------------------------------
    def _data_phase(
        self,
        order: List[Tuple[Time, int, int]],
        record_at: Dict[Tuple[int, int], JobRecord],
        stimulus: Stimulus,
    ) -> Tuple[Dict[str, List[Any]], Dict[str, List[Tuple[int, Any]]], Trace]:
        channel_states: Dict[str, ChannelState] = {
            name: spec.new_state() for name, spec in self.network.channels.items()
        }
        variables: Dict[str, Dict[str, Any]] = {
            name: proc.fresh_variables()
            for name, proc in self.network.processes.items()
        }
        ext_out: Dict[str, ExternalOutputState] = {
            name: ExternalOutputState(spec)
            for name, spec in self.network.external_outputs.items()
        }
        trace = Trace()
        for _start, frame, job_idx in order:
            rec = record_at[(frame, job_idx)]
            proc = self.network.processes[rec.process]
            ctx = JobContext(
                process=rec.process,
                k=rec.global_k,
                now=rec.release,
                variables=variables[rec.process],
                inputs={n: channel_states[n] for n in proc.inputs},
                outputs={n: channel_states[n] for n in proc.outputs},
                external_inputs={
                    n: stimulus.samples_for(n) for n in proc.external_inputs
                },
                external_outputs={n: ext_out[n] for n in proc.external_outputs},
                trace=trace,
            )
            trace.append(JobStart(rec.process, rec.global_k))
            proc.behavior.run_job(ctx)
            trace.append(JobEnd(rec.process, rec.global_k))
        return (
            {n: list(s.write_log) for n, s in channel_states.items()},
            {n: s.as_sequence() for n, s in ext_out.items()},
            trace,
        )


def run_static_order(
    network: Network,
    schedule: StaticSchedule,
    n_frames: int,
    stimulus: Optional[Stimulus] = None,
    execution_time: ExecutionTimeSpec = None,
    overheads: Optional[OverheadModel] = None,
) -> RuntimeResult:
    """One-call convenience wrapper around :class:`MultiprocessorExecutor`."""
    executor = MultiprocessorExecutor(network, schedule, overheads)
    return executor.run(n_frames, stimulus, execution_time)
