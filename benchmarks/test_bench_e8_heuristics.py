"""E8 — Section III-B ablation: schedule-priority heuristics.

The paper: "If the obtained static schedule satisfies the job deadlines then
it is feasible, otherwise the selected schedule priority may be sub-optimal.
Different heuristics exist for optimizing priority order SP."

We compare the registered SP heuristics (ALAP/EDF, b-level, nominal
deadline, arrival order) on the paper's applications and a pool of random
task graphs at several utilization levels, reporting feasibility rates and
makespans.  Expected shape: the ALAP variant of EDF (the paper's suggested
adjustment) dominates or ties every other heuristic.
"""

import pytest

from repro.analysis import ExperimentReport
from repro.apps import (
    build_fft_network,
    build_fig1_network,
    build_fms_network,
    fft_wcets,
    fig1_wcets,
    fms_wcets,
    random_network,
    random_wcets,
)
from repro.scheduling import available_heuristics, schedule_quality
from repro.taskgraph import derive_task_graph, task_graph_load

SEEDS = range(12)
UTILIZATIONS = (0.5, 0.8)


def _pool():
    graphs = [
        ("fig1", derive_task_graph(build_fig1_network(), fig1_wcets()), 2),
        ("fft", derive_task_graph(build_fft_network(), fft_wcets()), 1),
        ("fms", derive_task_graph(build_fms_network(), fms_wcets()), 1),
    ]
    for seed in SEEDS:
        for util in UTILIZATIONS:
            net = random_network(seed=seed, n_periodic=5, n_sporadic=2)
            wcets = random_wcets(net, seed=seed, utilization_target=util)
            graph = derive_task_graph(net, wcets)
            m = task_graph_load(graph).min_processors
            graphs.append((f"rand{seed}u{util}", graph, m))
    return graphs


@pytest.mark.experiment("E8")
def test_heuristic_ablation(benchmark):
    pool = _pool()
    heuristics = available_heuristics()

    def run_ablation():
        table = {h: [] for h in heuristics}
        for _name, graph, m in pool:
            for h in heuristics:
                table[h].append(schedule_quality(graph, m, h))
        return table

    table = benchmark(run_ablation)

    report = ExperimentReport(
        f"E8 SP-heuristic ablation ({len(pool)} task graphs at the load bound)",
        "Section III-B",
    )
    rates = {}
    for h in heuristics:
        rows = table[h]
        feasible = sum(1 for q in rows if q.feasible)
        misses = sum(q.deadline_violations for q in rows)
        rates[h] = feasible
        report.add(
            f"{h}",
            "alap dominates",
            f"{feasible}/{len(rows)} feasible, {misses} total deadline misses",
        )
    report.show()

    assert rates["alap"] == max(rates.values())


@pytest.mark.experiment("E8")
def test_alap_feasibility_not_worse_case_by_case(benchmark):
    """Stronger claim: wherever any heuristic finds a feasible schedule at
    the load lower bound, ALAP finds one too (on this pool)."""
    pool = benchmark(_pool)
    heuristics = available_heuristics()
    for name, graph, m in pool:
        results = {h: schedule_quality(graph, m, h).feasible for h in heuristics}
        if any(results.values()):
            assert results["alap"], (name, results)
