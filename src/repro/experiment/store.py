"""Content-addressed checkpoint store for sweep results.

A :class:`Scenario` is frozen, comparable and JSON-round-trippable, so
its tagged-JSON encoding is a *content key*: :func:`scenario_hash`
canonicalises ``scenario_to_dict`` (sorted keys, compact separators) and
SHA-256 hashes it.  A :class:`SweepStore` persists each sweep row's
metric values keyed by ``(scenario_hash, metrics_key)``, which makes
sweeps incremental:

* an interrupted or partially-failed sweep resumed with the same store
  recomputes only the missing/failed cells (the completed rows are
  hits);
* re-running a matrix after editing one axis recomputes only the
  changed cells;
* chained sweeps across sessions hit the store instead of the
  simulator.

Because sweep rows are deterministic (bit-identical across runs and
across the serial/parallel backends) a stored row *is* the row the
simulator would produce, and metric values go through the exact tagged
value encoding of :mod:`repro.io.json_io` — Fractions come back as the
same Fractions.  ``run_sweep(store=...)`` reports its traffic in
``SweepStats.store_hits`` / ``store_misses``.

Two backends ship (modelled on hypergraph's ``checkpointers/``
base/sqlite split): :class:`MemorySweepStore` for tests and ephemeral
chaining, :class:`SqliteSweepStore` for durable cross-session files.

Caveat: the hash keys the scenario *description*.  A workload name must
mean the same network wherever the store is reused — registering a
different factory under an old name makes stored rows silently stale
(exactly as it would make any cache stale).  Scenarios that cannot be
serialised (bare factory callables, per-job WCET callables) have no
content key: :func:`store_key` returns ``None`` and the sweep computes
them normally without consulting the store.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
from typing import Any, Dict, Iterable, Optional, Tuple

from ..errors import CheckpointError
from .scenario import Scenario

__all__ = [
    "MemorySweepStore",
    "SqliteSweepStore",
    "SweepStore",
    "metrics_key",
    "scenario_hash",
    "store_key",
]


def scenario_hash(scenario: Scenario) -> str:
    """SHA-256 content key of a scenario's canonical JSON encoding.

    Raises :class:`~repro.io.json_io.FormatError` for scenarios that do
    not serialise (code-bearing workloads/WCETs); use :func:`store_key`
    for the forgiving variant.
    """
    from ..io.json_io import scenario_to_dict

    data = scenario_to_dict(scenario)
    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def store_key(scenario: Scenario) -> Optional[str]:
    """:func:`scenario_hash`, or ``None`` when the scenario has no content key.

    ``None`` means the scenario embeds code (a bare factory callable, a
    per-job WCET callable) that the JSON encoding refuses; such cells are
    computed fresh on every sweep and never persisted.
    """
    from ..io.json_io import FormatError

    try:
        return scenario_hash(scenario)
    except FormatError:
        return None


def metrics_key(metrics: Iterable[str]) -> str:
    """Canonical key of a requested metric set (order-insensitive)."""
    return ",".join(sorted(metrics))


def _encode_row(metrics: Dict[str, Any]) -> str:
    from ..io.json_io import value_to_jsonable

    return json.dumps(
        {name: value_to_jsonable(v) for name, v in metrics.items()},
        sort_keys=True,
    )


def _decode_row(payload: str) -> Dict[str, Any]:
    from ..io.json_io import value_from_jsonable

    try:
        data = json.loads(payload)
    except ValueError as exc:
        raise CheckpointError(f"corrupt store row payload: {exc}") from exc
    return {name: value_from_jsonable(v) for name, v in data.items()}


class SweepStore:
    """Persisted sweep rows keyed by ``(scenario_hash, metrics_key)``.

    Only *healthy* rows are stored — failed cells are recomputed on
    resume, which is what makes a store-backed re-run the recovery path
    for partial sweeps.  Subclasses implement the four raw-text methods;
    the encode/decode (exact tagged values) is shared here.
    """

    # -- raw backend interface (text payloads) --------------------------
    def _load(self, scenario_key: str, metric_set: str) -> Optional[str]:
        raise NotImplementedError

    def _save(self, scenario_key: str, metric_set: str, payload: str) -> None:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def close(self) -> None:
        """Release any backing resources (no-op by default)."""

    # -- typed interface used by run_sweep ------------------------------
    def get(
        self, scenario_key: str, metric_set: str
    ) -> Optional[Dict[str, Any]]:
        """The stored metric row, decoded to exact values, or ``None``."""
        payload = self._load(scenario_key, metric_set)
        return None if payload is None else _decode_row(payload)

    def put(
        self, scenario_key: str, metric_set: str, metrics: Dict[str, Any]
    ) -> None:
        """Persist one healthy row (idempotent: last write wins)."""
        self._save(scenario_key, metric_set, _encode_row(metrics))

    def __contains__(self, key: Tuple[str, str]) -> bool:
        scenario_key, metric_set = key
        return self._load(scenario_key, metric_set) is not None

    def __enter__(self) -> "SweepStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class MemorySweepStore(SweepStore):
    """Dict-backed store: ephemeral, but byte-equivalent to the sqlite one.

    Rows go through the same text encoding as the durable backend, so a
    test passing against this store proves the round-trip exactness too.
    """

    def __init__(self) -> None:
        self._rows: Dict[Tuple[str, str], str] = {}

    def _load(self, scenario_key: str, metric_set: str) -> Optional[str]:
        return self._rows.get((scenario_key, metric_set))

    def _save(self, scenario_key: str, metric_set: str, payload: str) -> None:
        self._rows[(scenario_key, metric_set)] = payload

    def __len__(self) -> int:
        return len(self._rows)


class SqliteSweepStore(SweepStore):
    """Sqlite-file store: durable checkpoints shared across sessions.

    One table, primary-keyed by ``(scenario_hash, metrics_key)``, payload
    in the tagged-JSON text encoding.  ``":memory:"`` works for tests.
    The connection runs in autocommit mode — every ``put`` is durable on
    return — and the store is a context manager (``with`` closes it).

    The database runs in WAL journal mode with a busy timeout, so several
    connections — e.g. a resident :class:`~repro.experiment.pool.
    SweepPool` service and an interactive session sharing one checkpoint
    file — can read and write concurrently without ``database is locked``
    errors (readers never block the writer under WAL; a briefly-locked
    writer waits instead of raising).  In-memory databases have no WAL
    (sqlite reports ``memory`` journal mode) but need none: they are
    single-connection by construction.
    """

    #: How long [s] a connection waits on a locked database before
    #: giving up — generous, because checkpoint writes are tiny and the
    #: lock holder finishes in milliseconds.
    BUSY_TIMEOUT = 10.0

    def __init__(self, path: str) -> None:
        self.path = str(path)
        try:
            self._conn = sqlite3.connect(
                self.path, isolation_level=None, timeout=self.BUSY_TIMEOUT
            )
            self._conn.execute(
                f"PRAGMA busy_timeout = {int(self.BUSY_TIMEOUT * 1000)}"
            )
            self._conn.execute("PRAGMA journal_mode = WAL")
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS sweep_rows ("
                " scenario_hash TEXT NOT NULL,"
                " metrics_key TEXT NOT NULL,"
                " payload TEXT NOT NULL,"
                " PRIMARY KEY (scenario_hash, metrics_key))"
            )
        except sqlite3.Error as exc:
            raise CheckpointError(
                f"cannot open sweep store at {self.path!r}: {exc}"
            ) from exc

    def _load(self, scenario_key: str, metric_set: str) -> Optional[str]:
        row = self._conn.execute(
            "SELECT payload FROM sweep_rows"
            " WHERE scenario_hash = ? AND metrics_key = ?",
            (scenario_key, metric_set),
        ).fetchone()
        return None if row is None else row[0]

    def _save(self, scenario_key: str, metric_set: str, payload: str) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO sweep_rows"
            " (scenario_hash, metrics_key, payload) VALUES (?, ?, ?)",
            (scenario_key, metric_set, payload),
        )

    def __len__(self) -> int:
        return self._conn.execute(
            "SELECT COUNT(*) FROM sweep_rows"
        ).fetchone()[0]

    def close(self) -> None:
        self._conn.close()
