"""Observer/sink protocol for the runtime executor.

The :class:`~repro.runtime.executor.MultiprocessorExecutor` separates the
paper's deterministic timing core from its growing set of output consumers:
the timing phase (pure integer-tick recurrence) *emits events* — run
milestones, frame-arrival overhead windows, one :class:`~repro.runtime.
executor.JobRecord` per resolved job instance — and observers passed to
``run(observers=...)`` consume them as they happen.  VCD export
(:mod:`repro.io.vcd`), Gantt rendering (:mod:`repro.runtime.gantt`),
metrics (:mod:`repro.runtime.metrics`) and determinism sweeps
(:mod:`repro.analysis.determinism`) are all such consumers; new backends
plug in by subclassing :class:`ExecutionObserver` without touching the
executor core.

Event order and domain:

* ``on_run_start`` once, then per live frame the frame's overhead window
  (if any) followed by that frame's records in timing-resolution order
  (schedule-topological within the frame), then ``on_run_end`` once.
  :func:`replay` re-emits a finished run in the same shape except that all
  overhead windows precede all records — observers must not rely on the
  interleaving, only on the per-stream order.
* Every time stamp an observer sees is an **exact rational**
  (:class:`fractions.Fraction`): events are emitted at the tick→Fraction
  conversion boundary of the executor, so observers never handle raw ticks
  and never see rounded values.

``run(records_only=True)`` skips the data phase (no ``JobContext``, no
kernel dispatch, empty channel observables) for timing-only consumers.
``run(collect_records=False)`` keeps ``result.records`` empty: observers
still receive every ``on_record`` event, so streaming consumers (metrics
over a very long run) aggregate without the result accumulating
per-instance data, and with no observers attached records are never even
built — the determinism matrix's observable-only fast path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from ..core.timebase import Time, ZERO
from ..errors import RuntimeModelError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .executor import JobRecord, RuntimeResult
    from .metrics import MissSummary

__all__ = [
    "ExecutionObserver",
    "MetricsObserver",
    "RecordsObserver",
    "RunMeta",
    "TraceObserver",
    "replay",
]


@dataclass(frozen=True)
class RunMeta:
    """Run-level milestone data, emitted once at ``on_run_start``."""

    network: str
    processors: int
    frames: int
    hyperperiod: Time


class ExecutionObserver:
    """Base observer: every hook is a no-op — override what you consume."""

    def on_run_start(self, meta: RunMeta) -> None:
        """The run's static shape, before any timing is resolved."""

    def on_overhead(self, frame: int, start: Time, end: Time) -> None:
        """A frame-arrival overhead window ``[start, end)`` (Section V-A)."""

    def on_record(self, record: "JobRecord") -> None:
        """One resolved job instance (including false server jobs)."""

    def on_run_end(self, result: "RuntimeResult") -> None:
        """The assembled result, after timing (and data, unless skipped)."""


def replay(result: "RuntimeResult", *observers: ExecutionObserver) -> None:
    """Re-emit a finished run's events through *observers*.

    Lets every event consumer work identically live (``run(observers=...)``)
    and post-hoc (on a stored :class:`RuntimeResult`).  Results produced
    with ``collect_records=False`` cannot be replayed — their empty record
    list would misreport every count as zero — so they are rejected here;
    attach the observers during the run instead.
    """
    if not result.records_collected:
        raise RuntimeModelError(
            "cannot replay a result produced with collect_records=False — "
            "job records were not retained; attach observers to run() instead"
        )
    meta = RunMeta(
        network=result.network_name,
        processors=result.processors,
        frames=result.frames,
        hyperperiod=result.hyperperiod,
    )
    for ob in observers:
        ob.on_run_start(meta)
    for frame, start, end in result.overhead_intervals:
        for ob in observers:
            ob.on_overhead(frame, start, end)
    for rec in result.records:
        for ob in observers:
            ob.on_record(rec)
    for ob in observers:
        ob.on_run_end(result)


class RecordsObserver(ExecutionObserver):
    """Accumulates the raw event streams (records, overheads, meta).

    The executor assembles its :class:`RuntimeResult` from exactly these
    streams; external users get the same accumulation for live runs.
    """

    def __init__(self) -> None:
        self.meta: Optional[RunMeta] = None
        self.records: List["JobRecord"] = []
        self.overhead_intervals: List[Tuple[int, Time, Time]] = []

    def on_run_start(self, meta: RunMeta) -> None:
        # Full reset so a reused observer holds exactly one run's streams.
        self.meta = meta
        self.records = []
        self.overhead_intervals = []

    def on_overhead(self, frame: int, start: Time, end: Time) -> None:
        self.overhead_intervals.append((frame, start, end))

    def on_record(self, record: "JobRecord") -> None:
        self.records.append(record)


class MetricsObserver(ExecutionObserver):
    """Streaming aggregation of the Section V metrics.

    Computes miss statistics, worst response times, per-processor busy time,
    makespan and per-frame makespans from the event stream alone — no stored
    record list — so long determinism/overload sweeps can aggregate without
    retaining per-instance data.
    """

    def __init__(self) -> None:
        self.meta: Optional[RunMeta] = None
        self.total_jobs = 0
        self.executed_jobs = 0
        self.false_jobs = 0
        self.missed_jobs = 0
        self.worst_lateness: Time = ZERO
        self.makespan: Time = ZERO
        self._busy: List[Time] = []
        self._frame_spans: List[Time] = []
        self._responses: Dict[str, Time] = {}

    def on_run_start(self, meta: RunMeta) -> None:
        # Full reset: one observer instance can be reused across runs
        # without mixing their statistics.
        self.meta = meta
        self.total_jobs = 0
        self.executed_jobs = 0
        self.false_jobs = 0
        self.missed_jobs = 0
        self.worst_lateness = ZERO
        self.makespan = ZERO
        self._busy = [ZERO] * meta.processors
        self._frame_spans = [ZERO] * meta.frames
        self._responses = {}

    def on_record(self, record: "JobRecord") -> None:
        self.total_jobs += 1
        end = record.end
        # All records count toward the makespan (false jobs carry their
        # zero-length visibility instant), matching RuntimeResult.makespan().
        if end > self.makespan:
            self.makespan = end
        if record.is_false:
            self.false_jobs += 1
            return
        self.executed_jobs += 1
        if end > record.deadline:
            self.missed_jobs += 1
            lateness = end - record.deadline
            if lateness > self.worst_lateness:
                self.worst_lateness = lateness
        self._busy[record.processor] += end - record.start
        response = end - record.release
        if response > self._responses.get(record.process, ZERO):
            self._responses[record.process] = response
        base = self.meta.hyperperiod * record.frame
        span = end - base
        if span > self._frame_spans[record.frame]:
            self._frame_spans[record.frame] = span

    # -- consumers ------------------------------------------------------
    def _require_run(self) -> None:
        if self.meta is None:
            raise RuntimeModelError(
                "metrics observer has not seen a run (no on_run_start event) "
                "— pass it to run(observers=[...]) or replay(result, ...)"
            )

    def miss_summary(self) -> "MissSummary":
        from .metrics import MissSummary

        self._require_run()
        return MissSummary(
            total_jobs=self.total_jobs,
            executed_jobs=self.executed_jobs,
            false_jobs=self.false_jobs,
            missed_jobs=self.missed_jobs,
            worst_lateness=self.worst_lateness,
            miss_ratio=(
                self.missed_jobs / self.executed_jobs if self.executed_jobs else 0.0
            ),
        )

    def response_times(self) -> Dict[str, Time]:
        """Worst-case observed response time per process."""
        self._require_run()
        return dict(self._responses)

    def processor_utilization(self) -> List[float]:
        """Busy fraction per processor over the simulated horizon."""
        self._require_run()
        horizon = self.meta.hyperperiod * self.meta.frames
        return [float(b / horizon) for b in self._busy]

    def frame_makespans(self) -> List[Time]:
        """Per-frame completion time relative to the frame start."""
        self._require_run()
        return list(self._frame_spans)


class TraceObserver(ExecutionObserver):
    """Waveform-shaped view of a run: busy intervals and pulse times.

    Collects, in exact rational time, per-processor and per-process busy
    intervals, deadline-miss pulse instants and runtime-overhead windows —
    everything a waveform backend (e.g. the VCD serialiser in
    :mod:`repro.io.vcd`) needs, without retaining ``JobRecord`` objects.
    """

    def __init__(self) -> None:
        self.meta: Optional[RunMeta] = None
        self.processes: Set[str] = set()
        self.processor_intervals: Dict[int, List[Tuple[Time, Time]]] = {}
        self.process_intervals: Dict[str, List[Tuple[Time, Time]]] = {}
        self.miss_times: List[Time] = []
        self.overheads: List[Tuple[Time, Time]] = []

    def on_run_start(self, meta: RunMeta) -> None:
        # Full reset so a reused observer holds exactly one run's waveform.
        self.meta = meta
        self.processes = set()
        self.processor_intervals = {}
        self.process_intervals = {}
        self.miss_times = []
        self.overheads = []

    def on_overhead(self, frame: int, start: Time, end: Time) -> None:
        self.overheads.append((start, end))

    def on_record(self, record: "JobRecord") -> None:
        # False jobs still declare their process (a silent wire), exactly
        # like the record-list post-processing did.
        self.processes.add(record.process)
        if record.is_false or record.end == record.start:
            return
        span = (record.start, record.end)
        self.processor_intervals.setdefault(record.processor, []).append(span)
        self.process_intervals.setdefault(record.process, []).append(span)
        if record.end > record.deadline:
            self.miss_times.append(record.deadline)
