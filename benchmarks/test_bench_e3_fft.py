"""E3 — Figs. 5 & 6 + Section V-A narrative: the FFT streaming use case.

Reproduced numbers:

* load 0.93 without overhead (paper: 0.93);
* the extra 41 ms overhead job raises the load above 1 (paper: ~1.2),
  explaining the single-processor deadline misses;
* with the measured MPPA overhead model (41 ms first frame / 20 ms after),
  the 1-processor mapping misses deadlines while the 2-processor mapping
  has zero misses (paper: same);
* the FFT results equal numpy's FFT bit-for-bit in shape (determinism and
  correctness of the dataflow).
"""

import numpy as np
import pytest

from repro.analysis import ExperimentReport, approx
from repro.apps import build_fft_network, fft_stimulus, fft_wcets
from repro.core import run_zero_delay
from repro.runtime import (
    MultiprocessorExecutor,
    OverheadModel,
    miss_summary,
    run_static_order,
    runtime_gantt,
)
from repro.scheduling import find_feasible_schedule, list_schedule
from repro.taskgraph import derive_task_graph, task_graph_load

FRAMES = 8


def _stimulus():
    rng = np.random.RandomState(42)
    vecs = [list(rng.randn(4) + 1j * rng.randn(4)) for _ in range(FRAMES)]
    return fft_stimulus(vecs), vecs


@pytest.mark.experiment("E3")
def test_fft_mppa_execution(benchmark):
    net = build_fft_network()
    graph = derive_task_graph(net, fft_wcets())
    overheads = OverheadModel.mppa_like()
    stim, vecs = _stimulus()

    schedule_1 = list_schedule(graph, 1, "alap")
    schedule_2 = find_feasible_schedule(graph, 2)
    exec_2 = MultiprocessorExecutor(net, schedule_2, overheads)

    result_2 = benchmark(exec_2.run, FRAMES, stim)

    result_1 = MultiprocessorExecutor(net, schedule_1, overheads).run(FRAMES, stim)
    ms1, ms2 = miss_summary(result_1), miss_summary(result_2)

    load = task_graph_load(graph).load
    load_ov = task_graph_load(overheads.as_overhead_job(graph, 41)).load
    outs = result_2.external_outputs["fft_out"]
    fft_ok = all(
        np.allclose(np.array(v), np.fft.fft(np.array(vec)))
        for (_, v), vec in zip(outs, vecs)
    )

    report = ExperimentReport("E3 FFT streaming on simulated MPPA", "Figs. 5-6, V-A")
    report.add("processes / jobs per frame", 14, len(graph))
    report.add("load (no overhead)", 0.93, approx(float(load)))
    report.add("load with 41 ms overhead job", "~1.2", approx(float(load_ov)))
    report.add("M=1 deadline misses", ">0", ms1.missed_jobs,
               f"of {ms1.executed_jobs} jobs")
    report.add("M=2 deadline misses", 0, ms2.missed_jobs,
               f"of {ms2.executed_jobs} jobs")
    report.add("frame overhead (first/steady)", "41 / 20 ms",
               "41 / 20 ms", "modelled")
    report.add("FFT == numpy.fft", "n/a (correctness)", "yes" if fft_ok else "NO")
    report.add_text(runtime_gantt(result_2, frames=2))
    report.show()

    assert ms1.missed_jobs > 0
    assert ms2.missed_jobs == 0
    assert fft_ok
    assert float(load) == 0.93
    assert 1.1 < float(load_ov) < 1.25


@pytest.mark.experiment("E3")
def test_fft_zero_delay_reference(benchmark):
    """Throughput of the pure zero-delay semantics on the FFT network."""
    net = build_fft_network()
    stim, _ = _stimulus()
    result = benchmark(run_zero_delay, net, 200 * FRAMES, stim)
    assert result.job_count == 14 * FRAMES
