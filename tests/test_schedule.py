"""Tests for static schedules and Definition 3.2 feasibility checking."""

from fractions import Fraction

import pytest

from repro.errors import SchedulingError
from repro.scheduling.schedule import ScheduledJob, StaticSchedule
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.jobs import Job


def J(name, k=1, a=0, d=100, c=10):
    return Job(name, k, Fraction(a), Fraction(d), Fraction(c))


def chain():
    return TaskGraph([J("a"), J("b")], [(0, 1)], Fraction(100))


def sched(graph, entries, m=2):
    return StaticSchedule(graph, m, [ScheduledJob(i, p, Fraction(s)) for i, p, s in entries])


class TestConstruction:
    def test_basic(self):
        s = sched(chain(), [(0, 0, 0), (1, 0, 10)])
        assert s.start(0) == 0 and s.end(0) == 10
        assert s.mapping(1) == 0

    def test_duplicate_entry_rejected(self):
        with pytest.raises(SchedulingError, match="twice"):
            sched(chain(), [(0, 0, 0), (0, 1, 0)])

    def test_processor_out_of_range(self):
        with pytest.raises(SchedulingError, match=">= M"):
            sched(chain(), [(0, 5, 0)], m=2)

    def test_zero_processors_rejected(self):
        with pytest.raises(SchedulingError):
            StaticSchedule(chain(), 0, [])

    def test_unscheduled_job_lookup(self):
        s = sched(chain(), [(0, 0, 0)])
        with pytest.raises(SchedulingError, match="not scheduled"):
            s.start(1)

    def test_makespan(self):
        s = sched(chain(), [(0, 0, 0), (1, 1, 50)])
        assert s.makespan() == 60

    def test_processor_order(self):
        g = TaskGraph([J("a"), J("b"), J("c")], [], Fraction(100))
        s = sched(g, [(0, 0, 20), (1, 0, 0), (2, 1, 5)])
        assert s.processor_order(0) == [1, 0]
        assert s.orders() == [[1, 0], [2]]


class TestFeasibility:
    def test_feasible_schedule(self):
        s = sched(chain(), [(0, 0, 0), (1, 0, 10)])
        assert s.is_feasible()
        assert s.violations() == []

    def test_missing_job(self):
        s = sched(chain(), [(0, 0, 0)])
        kinds = [v.kind for v in s.violations()]
        assert "missing" in kinds

    def test_arrival_violation(self):
        g = TaskGraph([J("a", a=50)], [], Fraction(100))
        s = sched(g, [(0, 0, 0)])
        assert [v.kind for v in s.violations()] == ["arrival"]

    def test_deadline_violation(self):
        g = TaskGraph([J("a", d=15)], [], Fraction(100))
        s = sched(g, [(0, 0, 10)])
        assert [v.kind for v in s.violations()] == ["deadline"]

    def test_precedence_violation(self):
        s = sched(chain(), [(0, 0, 0), (1, 1, 5)])  # b starts before a ends
        assert [v.kind for v in s.violations()] == ["precedence"]

    def test_mutex_violation(self):
        g = TaskGraph([J("a"), J("b")], [], Fraction(100))
        s = sched(g, [(0, 0, 0), (1, 0, 5)])  # overlap on processor 0
        assert [v.kind for v in s.violations()] == ["mutex"]

    def test_mutex_ok_on_distinct_processors(self):
        g = TaskGraph([J("a"), J("b")], [], Fraction(100))
        s = sched(g, [(0, 0, 0), (1, 1, 5)])
        assert s.is_feasible()

    def test_back_to_back_is_legal(self):
        # e_i == s_j satisfies both precedence and mutual exclusion.
        s = sched(chain(), [(0, 0, 0), (1, 0, 10)])
        assert s.is_feasible()

    def test_require_feasible_raises_with_diagnostics(self):
        g = TaskGraph([J("a", d=15)], [], Fraction(100))
        s = sched(g, [(0, 0, 10)])
        with pytest.raises(SchedulingError, match="deadline"):
            s.require_feasible()

    def test_require_feasible_returns_self(self):
        s = sched(chain(), [(0, 0, 0), (1, 0, 10)])
        assert s.require_feasible() is s
