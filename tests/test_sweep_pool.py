"""Resident sweep service (ISSUE 7): warm-cache resubmits with zero new
derivations, streaming rows, submission queueing/cancel, pool lifecycle
(no orphans, crash respawn into the resident pool) and cross-sweep fault
isolation."""

import multiprocessing

import pytest

from repro import FaultPlan, MemorySweepStore, ScenarioMatrix, run_sweep
from repro.apps import fig1_scenario, fms_scenario
from repro.errors import ModelError
from repro.experiment import SweepPool

#: The headline acceptance matrix: the FMS 2x3 (processors x jitter) —
#: two schedule-key groups of three runtime cells each.
FMS_METRICS = ("executed_jobs", "missed_jobs", "worst_lateness", "makespan")


def fms_2x3_matrix():
    return ScenarioMatrix(
        fms_scenario(n_frames=1),
        {"processors": [1, 2], "jitter_seed": [0, 1, 2]},
    )


METRICS = ("executed_jobs", "makespan")


def fig1_matrix():
    return ScenarioMatrix(
        fig1_scenario(n_frames=1),
        {"processors": [2, 3], "jitter_seed": [0, 1]},
    )


def worker_pids(pool):
    return {
        slot.process.pid
        for slot in pool._slots
        if slot.process is not None and slot.process.is_alive()
    }


@pytest.fixture(scope="module")
def fms_serial():
    return run_sweep(fms_2x3_matrix(), metrics=FMS_METRICS)


@pytest.fixture(scope="module")
def fig1_serial():
    return run_sweep(fig1_matrix(), metrics=METRICS)


# ---------------------------------------------------------------------------
# the headline invariant: a warm resubmit pays zero stage work, no respawn
# ---------------------------------------------------------------------------
class TestWarmResubmit:
    def test_cold_then_warm(self, fms_serial):
        with SweepPool(workers=2) as pool:
            assert not pool.started
            cold = pool.submit(fms_2x3_matrix(), FMS_METRICS).result()
            assert pool.started
            pids = worker_pids(pool)
            assert len(pids) == 2

            # Cold: the transient-pool contract — one derivation and one
            # scheduling pass per group, no warm hits, no reuse.
            assert not cold.stats.pool_reused
            assert cold.stats.derivations_computed == 2
            assert cold.stats.schedules_computed == 2
            assert cold.stats.warm_group_hits == 0
            assert cold.rows == fms_serial.rows

            warm = pool.submit(fms_2x3_matrix(), FMS_METRICS).result()

            # No respawn: the very same worker processes served it.
            assert worker_pids(pool) == pids
            assert warm.stats.pool_reused
            # Zero new stage work: every group hit its worker's warm
            # PipelineCache, every payload its content-hash cache.
            assert warm.stats.derivations_computed == 0
            assert warm.stats.schedules_computed == 0
            assert warm.stats.networks_built == 0
            assert warm.stats.warm_group_hits == 2
            assert warm.stats.payload_cache_hits >= len(fms_2x3_matrix())
            # The cells still *execute* — only stage artifacts are cached.
            assert warm.stats.runs == len(fms_2x3_matrix())
            assert warm.stats.workers == 2
            # And the rows are still bit-identical to the serial sweep.
            assert warm.rows == fms_serial.rows
            assert warm.stats.failed_cells == 0

    def test_overlapping_matrix_reuses_shared_groups(self, fms_serial):
        # A matrix overlapping one schedule key (processors=2) with the
        # first submission pays derivation only for the new key.
        with SweepPool(workers=2) as pool:
            pool.submit(fms_2x3_matrix(), FMS_METRICS).result()
            overlap = ScenarioMatrix(
                fms_scenario(n_frames=1),
                {"processors": [2, 3], "jitter_seed": [0, 1, 2]},
            )
            result = pool.submit(overlap, FMS_METRICS).result()
            assert result.stats.pool_reused
            assert result.stats.warm_group_hits == 1   # processors=2
            assert result.stats.derivations_computed == 1  # processors=3
            assert result.stats.schedules_computed == 1

    def test_evict_caches_drops_warmth_but_not_workers(self):
        with SweepPool(workers=2) as pool:
            pool.submit(fms_2x3_matrix(), FMS_METRICS).result()
            pids = worker_pids(pool)
            pool.evict_caches()
            result = pool.submit(fms_2x3_matrix(), FMS_METRICS).result()
            # Same resident processes, but the stage work is re-paid.
            assert worker_pids(pool) == pids
            assert result.stats.pool_reused
            assert result.stats.warm_group_hits == 0
            assert result.stats.derivations_computed == 2

    def test_closed_pool_refuses_submissions(self):
        pool = SweepPool(workers=2)
        pool.close()
        with pytest.raises(ModelError, match="closed"):
            pool.submit(fms_2x3_matrix(), FMS_METRICS)

    def test_constructor_validation(self):
        with pytest.raises(ModelError):
            SweepPool(workers=0)
        with pytest.raises(ModelError):
            SweepPool(max_retries=-1)
        with pytest.raises(ModelError):
            SweepPool(retry_backoff=-0.1)
        with pytest.raises(ModelError):
            SweepPool(max_cached_groups=0)


# ---------------------------------------------------------------------------
# streaming rows and the submission queue
# ---------------------------------------------------------------------------
class TestSubmissionQueue:
    def test_rows_stream_through_on_row(self, fig1_serial):
        streamed = []
        with SweepPool(workers=2) as pool:
            ticket = pool.submit(
                fig1_matrix(), METRICS, on_row=streamed.append
            )
            result = ticket.result()
        # Every healthy row streamed exactly once (completion order);
        # the result table itself is in cell order.
        assert len(streamed) == len(result.rows)
        for row in streamed:
            assert row in result.rows
        assert result.rows == fig1_serial.rows

    def test_store_hits_stream_without_dispatch(self, fig1_serial):
        store = MemorySweepStore()
        run_sweep(fig1_matrix(), metrics=METRICS, store=store)
        streamed = []
        with SweepPool(workers=2) as pool:
            ticket = pool.submit(
                fig1_matrix(), METRICS, store=store, on_row=streamed.append
            )
            # All cells hit the store parent-side at submit: the rows
            # streamed already and no worker was ever spawned.
            assert ticket.done
            assert not pool.started
            result = ticket.result()
        assert len(streamed) == len(fig1_matrix())
        assert result.rows == fig1_serial.rows
        assert result.stats.store_hits == len(fig1_matrix())
        assert result.stats.runs == 0
        assert result.stats.workers == 1
        assert not result.stats.pool_reused

    def test_queued_submissions_interleave(self, fms_serial, fig1_serial):
        with SweepPool(workers=2) as pool:
            ticket_a = pool.submit(fms_2x3_matrix(), FMS_METRICS)
            ticket_b = pool.submit(fig1_matrix(), METRICS)
            # Neither has run yet — nothing executes until driven.
            assert not ticket_a.done and not ticket_b.done
            result_b = ticket_b.result()
            result_a = ticket_a.result()
        assert result_a.rows == fms_serial.rows
        assert result_b.rows == fig1_serial.rows

    def test_cancel_withdraws_pending_groups(self, fms_serial):
        with SweepPool(workers=2) as pool:
            ticket_a = pool.submit(fms_2x3_matrix(), FMS_METRICS)
            ticket_b = pool.submit(fig1_matrix(), METRICS)
            assert ticket_b.cancel()
            assert ticket_b.cancelled and ticket_b.done
            assert not ticket_b.cancel()  # already withdrawn
            result_a = ticket_a.result()
            result_b = ticket_b.result()
        assert result_a.rows == fms_serial.rows
        # The cancelled submission is an empty partial result.
        assert result_b.rows == []
        assert result_b.stats.interrupted

    def test_result_is_idempotent(self):
        with SweepPool(workers=2) as pool:
            ticket = pool.submit(fig1_matrix(), METRICS)
            first = ticket.result()
            assert ticket.result() is first


# ---------------------------------------------------------------------------
# pool lifecycle: orphans, crash respawn, cross-sweep fault isolation
# ---------------------------------------------------------------------------
class TestPoolLifecycle:
    def test_context_manager_leaves_no_orphans(self):
        with SweepPool(workers=2) as pool:
            pool.submit(fig1_matrix(), METRICS).result()
            assert pool.started
        assert multiprocessing.active_children() == []
        assert not pool.started

    def test_close_is_idempotent(self):
        pool = SweepPool(workers=2)
        pool.submit(fig1_matrix(), METRICS).result()
        pool.close()
        pool.close()
        assert multiprocessing.active_children() == []

    def test_crash_respawns_into_resident_pool(self, fig1_serial):
        with SweepPool(workers=2, retry_backoff=0.01) as pool:
            faulted = pool.submit(
                fig1_matrix(), METRICS, faults=FaultPlan(kill_at={2: 1})
            ).result()
            # The transient kill was absorbed: full clean table, the
            # redispatch charged to the retry budget.
            assert faulted.rows == fig1_serial.rows
            assert faulted.stats.failed_cells == 0
            assert faulted.stats.retries >= 1
            # The replacement worker joined the *resident* pool: the
            # service stays up and the next submission reuses it.
            assert pool.started
            assert len(worker_pids(pool)) == 2
            again = pool.submit(fig1_matrix(), METRICS).result()
            assert again.stats.pool_reused
            assert again.rows == fig1_serial.rows
        assert multiprocessing.active_children() == []

    def test_fault_in_sweep_a_does_not_taint_sweep_b(self, fig1_serial):
        # A FaultPlan kill during sweep A must leave sweep B's rows
        # bit-identical to serial — fault state is per submission.
        with SweepPool(workers=2, retry_backoff=0.01) as pool:
            ticket_a = pool.submit(
                fig1_matrix(), METRICS, faults=FaultPlan(kill_at={2: 1})
            )
            ticket_b = pool.submit(fig1_matrix(), METRICS)
            result_b = ticket_b.result()
            result_a = ticket_a.result()
        assert result_b.rows == fig1_serial.rows
        assert result_b.stats.failed_cells == 0
        assert result_a.rows == fig1_serial.rows


# ---------------------------------------------------------------------------
# callback / cancel / stats regressions (ISSUE 8 bugfixes)
# ---------------------------------------------------------------------------
class TestCallbackAndCancelRegressions:
    def test_raising_on_row_surfaces_but_never_wedges(self, fig1_serial):
        # Regression: a raising on_row used to escape after the group
        # left its slot but before _finish_group ran — the group was
        # stranded (neither pending nor on a slot), outstanding never
        # reached 0 and ticket.result() pumped forever.
        def exploding(row):
            raise RuntimeError("sink exploded")

        with SweepPool(workers=2) as pool:
            ticket = pool.submit(fig1_matrix(), METRICS, on_row=exploding)
            # The row stream is data, not telemetry: the sink error
            # surfaces to the caller ...
            with pytest.raises(RuntimeError, match="sink exploded"):
                ticket.result()
            # ... but only after the group's bookkeeping finished, so
            # result() completes within one retry per remaining group
            # instead of spinning forever on the stranded group.
            result = None
            for _ in range(4):  # bounded: >= number of groups
                try:
                    result = ticket.result()
                    break
                except RuntimeError:
                    continue
            assert result is not None and ticket.done
            # No row was lost: metrics merge before the sink runs.
            assert result.rows == fig1_serial.rows
            assert result.stats.failed_cells == 0
            # The pool survived the buggy sink: next submission is clean.
            again = pool.submit(fig1_matrix(), METRICS).result()
            assert again.rows == fig1_serial.rows

    def test_explicit_cells_subset_counts_submitted_cells(self):
        # Regression: stats.cells reported len(matrix) even when an
        # explicit cells= subset (a resubmission, say) was submitted.
        matrix = fig1_matrix()
        subset = list(matrix.cells())[:2]
        with SweepPool(workers=2) as pool:
            result = pool.submit(matrix, METRICS, cells=subset).result()
        assert result.stats.cells == len(subset) == 2
        assert len(result.rows) == 2

    def test_cancel_after_full_dispatch_changes_nothing(self, fig1_serial):
        # Regression: cancelling a fully-dispatched submission withdrew
        # nothing and returned False, yet still set cancelled/interrupted
        # — a sweep whose every row completed reported itself interrupted.
        import time

        with SweepPool(workers=2) as pool:
            ticket = pool.submit(fig1_matrix(), METRICS)
            pool._dispatch_ready(time.monotonic())  # both groups on slots
            assert all(
                group.submission is not ticket._submission
                for group in pool._pending
            )
            assert not ticket.cancel()  # nothing left to withdraw
            assert not ticket.cancelled
            result = ticket.result()
        assert result.rows == fig1_serial.rows
        assert not result.stats.interrupted
        assert not ticket.cancelled


# ---------------------------------------------------------------------------
# the on_progress telemetry stream (PoolEvent milestones)
# ---------------------------------------------------------------------------
class TestProgressEvents:
    def test_milestones_for_a_clean_sweep(self):
        events = []
        with SweepPool(workers=2) as pool:
            pool.submit(
                fig1_matrix(), METRICS, on_progress=events.append
            ).result()
        kinds = [e.kind for e in events]
        assert kinds[0] == "enqueued"
        assert kinds.count("dispatch") == 2
        assert kinds.count("group-done") == 2
        assert kinds[-1] == "finished"
        enq = events[0]
        assert enq.cells == len(fig1_matrix()) and enq.groups == 2
        # group-done precedes finished (causally ordered stream).
        assert kinds.index("group-done") < kinds.index("finished")

    def test_store_hits_and_raising_sink_are_best_effort(self):
        store = MemorySweepStore()
        run_sweep(fig1_matrix(), metrics=METRICS, store=store)

        def exploding(event):
            raise RuntimeError("telemetry must never break the sweep")

        with SweepPool(workers=2) as pool:
            # A raising on_progress sink is swallowed entirely.
            result = pool.submit(
                fig1_matrix(), METRICS, store=store, on_progress=exploding
            ).result()
            assert result.stats.store_hits == len(fig1_matrix())

            events = []
            ticket = pool.submit(
                fig1_matrix(), METRICS, store=store, on_progress=events.append
            )
            assert ticket.done  # all hits resolved at submit
            kinds = [e.kind for e in events]
            assert kinds[0] == "store-hits"
            assert events[0].cells == len(fig1_matrix())
            assert kinds[-1] == "finished"
            assert "dispatch" not in kinds


# ---------------------------------------------------------------------------
# fair scheduling across client tags (ISSUE 9)
# ---------------------------------------------------------------------------
class TestFairScheduling:
    def test_round_robin_across_client_tags(self):
        """Tagged clients take turns: a one-group submission from a
        second client dispatches between the first client's groups
        instead of queueing behind all of them."""
        events = []

        def sink(tag):
            return lambda e: events.append((tag, e.kind))

        with SweepPool(workers=1) as pool:
            big = pool.submit(
                fms_2x3_matrix(), METRICS, client="alice",
                on_progress=sink("alice"),
            )
            small = pool.submit(
                ScenarioMatrix(
                    fig1_scenario(n_frames=1), {"jitter_seed": [0, 1]}
                ),
                METRICS, client="bob", on_progress=sink("bob"),
            )
            big_result = big.result()
            small_result = small.result()
        dispatches = [tag for tag, kind in events if kind == "dispatch"]
        assert dispatches == ["alice", "bob", "alice"]
        assert len(big_result.rows) == 6 and not big_result.failed_rows
        assert len(small_result.rows) == 2 and not small_result.failed_rows

    def test_untagged_submissions_stay_fifo(self):
        """No tags (every pre-service caller) degenerates to the old
        FIFO-over-groups order — all of the first submission's groups
        dispatch before any of the second's."""
        events = []

        def sink(tag):
            return lambda e: events.append((tag, e.kind))

        with SweepPool(workers=1) as pool:
            first = pool.submit(
                fms_2x3_matrix(), METRICS, on_progress=sink("first")
            )
            second = pool.submit(
                fig1_matrix(), METRICS, on_progress=sink("second")
            )
            first.result()
            second.result()
        dispatches = [tag for tag, kind in events if kind == "dispatch"]
        assert dispatches == ["first", "first", "second", "second"]

    def test_pump_once_drives_to_completion(self):
        """The cooperative drive hook makes the same progress as
        ``result()``'s internal loop, one bounded cycle at a time."""
        with SweepPool(workers=1) as pool:
            ticket = pool.submit(fig1_matrix(), METRICS)
            assert pool.busy
            for _ in range(10_000):
                if ticket.done:
                    break
                pool.pump_once()
            assert ticket.done
            assert not pool.busy
            result = ticket.result()  # already finished: no more driving
        assert len(result.rows) == len(fig1_matrix())


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
