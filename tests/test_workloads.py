"""Tests for the random workload generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import random_network, random_wcets
from repro.core.invocations import random_stimulus
from repro.core.semantics import run_zero_delay
from repro.runtime import (
    MetricsObserver,
    RecordsObserver,
    TraceObserver,
    miss_summary,
    run_static_order,
)
from repro.scheduling import list_schedule
from repro.taskgraph import derive_task_graph, utilization

from fraction_reference import (
    reference_derive_task_graph,
    reference_list_schedule,
    reference_run_static_order,
)


class TestGeneration:
    @pytest.mark.parametrize("seed", range(5))
    def test_networks_are_valid_subclass(self, seed):
        net = random_network(seed=seed, n_periodic=5, n_sporadic=2)
        net.validate_taskgraph_subclass()

    def test_reproducible(self):
        a = random_network(seed=11)
        b = random_network(seed=11)
        assert sorted(a.processes) == sorted(b.processes)
        assert sorted(a.channels) == sorted(b.channels)
        assert a.priorities == b.priorities

    def test_seed_changes_structure(self):
        a = random_network(seed=1, n_periodic=6, n_sporadic=2)
        b = random_network(seed=2, n_periodic=6, n_sporadic=2)
        assert sorted(a.channels) != sorted(b.channels)

    def test_sporadic_count(self):
        net = random_network(seed=0, n_periodic=4, n_sporadic=3)
        assert len(net.sporadic_processes()) == 3

    def test_zero_periodic_rejected(self):
        with pytest.raises(ValueError):
            random_network(n_periodic=0)

    def test_executable_under_zero_delay(self):
        net = random_network(seed=5, n_periodic=4, n_sporadic=1)
        stim = random_stimulus(net, 2000, seed=5)
        result = run_zero_delay(net, 2000, stim)
        assert result.job_count > 0


class TestWcets:
    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_utilization_target_hit_exactly(self, seed):
        net = random_network(seed=seed, n_periodic=4, n_sporadic=1)
        wcets = random_wcets(net, seed=seed, utilization_target=0.5)
        g = derive_task_graph(net, wcets)
        assert utilization(g) == 0.5

    def test_target_validated(self):
        net = random_network(seed=0)
        with pytest.raises(ValueError):
            random_wcets(net, utilization_target=0)

    def test_all_processes_covered(self):
        net = random_network(seed=3, n_periodic=5, n_sporadic=2)
        wcets = random_wcets(net, seed=3)
        assert set(wcets) == set(net.processes)
        assert all(v > 0 for v in wcets.values())


class TestEndToEnd:
    """derive → schedule → execute with observers, on seeded random
    subclass FPPNs, against the pure-Fraction references.

    This is the property the paper's examples cannot cover: the tick-domain
    pipeline and the observer-based executor must be bit-identical to the
    Fraction-domain algorithms on *arbitrary* subclass networks.
    """

    FRAMES = 2

    def _pipeline(self, seed):
        net = random_network(seed=seed, n_periodic=4, n_sporadic=2)
        wcets = random_wcets(net, seed=seed, utilization_target=0.4)
        graph = derive_task_graph(net, wcets)
        stim = random_stimulus(
            net, graph.hyperperiod * self.FRAMES, seed=seed
        )
        return net, wcets, graph, stim

    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_tick_derivation_matches_fraction_reference(self, seed):
        net, wcets, graph, _ = self._pipeline(seed)
        ref = reference_derive_task_graph(net, wcets)
        assert len(graph) == len(ref)
        assert graph.hyperperiod == ref.hyperperiod
        for a, b in zip(graph.jobs, ref.jobs):
            assert a == b
            for attr in ("arrival", "deadline", "wcet"):
                fa, fb = getattr(a, attr), getattr(b, attr)
                assert (fa.numerator, fa.denominator) == (
                    fb.numerator, fb.denominator)
        assert graph.edges() == ref.edges()

    @pytest.mark.parametrize("seed", [0, 7, 23])
    @pytest.mark.parametrize("processors", [1, 2])
    def test_execution_with_observers_matches_reference(self, seed, processors):
        net, wcets, graph, stim = self._pipeline(seed)
        schedule = list_schedule(graph, processors, "alap")
        ref_schedule = reference_list_schedule(graph, processors, "alap")
        for a, b in zip(schedule.entries, ref_schedule.entries):
            assert (a.job_index, a.processor, a.start) == (
                b.job_index, b.processor, b.start)

        records_obs = RecordsObserver()
        metrics_obs = MetricsObserver()
        trace_obs = TraceObserver()
        result = run_static_order(
            net, schedule, self.FRAMES, stim,
            observers=[records_obs, metrics_obs, trace_obs],
        )
        ref = reference_run_static_order(net, ref_schedule, self.FRAMES, stim)

        assert result.records == ref.records
        for a, b in zip(result.records, ref.records):
            for attr in ("release", "start", "end", "deadline"):
                fa, fb = getattr(a, attr), getattr(b, attr)
                assert (fa.numerator, fa.denominator) == (
                    fb.numerator, fb.denominator)
        assert result.observable() == ref.observable()
        # observers saw the full event stream
        assert records_obs.records == result.records
        assert metrics_obs.miss_summary() == miss_summary(result)
        assert metrics_obs.total_jobs == len(result.records)
        executed = {r.process for r in result.records if not r.is_false}
        assert executed <= trace_obs.processes

    @pytest.mark.parametrize("seed", [0, 23])
    def test_records_only_matches_full_run(self, seed):
        net, _, graph, stim = self._pipeline(seed)
        schedule = list_schedule(graph, 2, "alap")
        full = run_static_order(net, schedule, self.FRAMES, stim)
        timing = run_static_order(
            net, schedule, self.FRAMES, stim, records_only=True)
        assert timing.records == full.records
