"""Heterogeneous-platform equivalence (the refactor's contract).

The platform model threads (task, processor-class) WCET tables through
derivation, scheduling and the runtime.  Its load-bearing invariant is
*degeneracy*: a single-class speed-1 platform must be **bit-identical** —
exact Fractions, not approximately equal — to the homogeneous
``processors: int`` path it replaced, end to end:

* identical ``StaticSchedule`` entries on Fig. 1 / FFT / FMS for every
  heuristic, against the pure-Fraction oracles in
  ``fraction_reference.py``;
* identical ``JobRecord`` timing and determinism observables, including
  under jittered execution times;
* identical rows after a JSON wire round-trip and from a ``workers=N``
  sweep with a platform axis.

On top of degeneracy, speed scaling is a *property*: a class of speed
``1/2`` executes every job for exactly twice as long — an exact rational
relation checked per record, never a float tolerance.
"""

from dataclasses import replace
from fractions import Fraction

import pytest

from repro import ScenarioMatrix, run_sweep
from repro.apps import (
    build_fft_network,
    build_fig1_network,
    build_fms_network,
    fft_stimulus,
    fft_wcets,
    fig1_scenario,
    fig1_stimulus,
    fig1_wcets,
    fms_stimulus,
    fms_wcets,
)
from repro.core.platform import Platform, ProcessorClass, as_platform
from repro.errors import ModelError, SchedulingError
from repro.io import schedule_from_dict, schedule_to_dict
from repro.runtime import jittered_execution, run_static_order
from repro.scheduling import available_heuristics, list_schedule
from repro.taskgraph import derive_task_graph

from fraction_reference import (
    reference_jittered_execution,
    reference_list_schedule,
    reference_run_static_order,
)

from test_tick_equivalence import (
    APPS,
    assert_same_result,
    assert_same_schedule,
)


UNIT2 = Platform.homogeneous(2)
HALF_SPEED = Platform.of(("slow", 2, Fraction(1, 2)))
BIG_LITTLE = Platform.of(("big", 1), ("little", 1, Fraction(1, 2)))


# ---------------------------------------------------------------------------
# degenerate platform == homogeneous integer, bit for bit
# ---------------------------------------------------------------------------
class TestDegenerateScheduling:
    @pytest.mark.parametrize("app", sorted(APPS))
    @pytest.mark.parametrize("heuristic", sorted(available_heuristics()))
    def test_unit_platform_schedule_matches_reference(self, app, heuristic):
        _net, graph, m, _stim = APPS[app]()
        assert_same_schedule(
            list_schedule(graph, Platform.homogeneous(m), priority=heuristic),
            reference_list_schedule(graph, m, priority=heuristic),
        )

    @pytest.mark.parametrize("app", sorted(APPS))
    def test_unit_platform_runtime_matches_reference(self, app):
        net, graph, m, stim = APPS[app]()
        schedule = list_schedule(graph, Platform.homogeneous(m))
        assert_same_result(
            run_static_order(net, schedule, 2, stim),
            reference_run_static_order(
                net, reference_list_schedule(graph, m), 2, stim
            ),
        )

    def test_unit_platform_jittered_runtime_matches_reference(self):
        net = build_fig1_network()
        graph = derive_task_graph(net, fig1_wcets())
        schedule = list_schedule(graph, UNIT2)
        assert_same_result(
            run_static_order(
                net, schedule, 3, fig1_stimulus(4), jittered_execution(11)
            ),
            reference_run_static_order(
                net,
                reference_list_schedule(graph, 2),
                3,
                fig1_stimulus(4),
                reference_jittered_execution(11),
            ),
        )

    def test_unit_platform_survives_json_wire(self):
        net = build_fig1_network()
        graph = derive_task_graph(net, fig1_wcets())
        schedule = list_schedule(graph, UNIT2)
        wired = schedule_from_dict(schedule_to_dict(schedule))
        assert wired.platform == UNIT2
        assert_same_result(
            run_static_order(net, wired, 2, fig1_stimulus(3)),
            reference_run_static_order(
                net, reference_list_schedule(graph, 2), 2, fig1_stimulus(3)
            ),
        )


# ---------------------------------------------------------------------------
# speed scaling: exact rational durations, no tolerance
# ---------------------------------------------------------------------------
def _durations(result):
    return {
        (r.process, r.frame, r.k_frame): r.end - r.start
        for r in result.records
        if not r.is_false
    }


class TestSpeedScaling:
    def test_half_speed_class_exactly_doubles_durations(self):
        net = build_fig1_network()
        graph = derive_task_graph(net, fig1_wcets())
        fast = _durations(
            run_static_order(net, list_schedule(graph, UNIT2), 2, fig1_stimulus(3))
        )
        slow = _durations(
            run_static_order(
                net, list_schedule(graph, HALF_SPEED), 2, fig1_stimulus(3)
            )
        )
        assert set(slow) == set(fast)
        for key, d in fast.items():
            assert slow[key] == 2 * d
            assert (slow[key].numerator, slow[key].denominator) == (
                (2 * d).numerator, (2 * d).denominator)

    def test_half_speed_scaling_holds_under_jitter(self):
        net = build_fig1_network()
        graph = derive_task_graph(net, fig1_wcets())
        fast = _durations(
            run_static_order(
                net, list_schedule(graph, UNIT2), 2, fig1_stimulus(3),
                jittered_execution(5),
            )
        )
        slow = _durations(
            run_static_order(
                net, list_schedule(graph, HALF_SPEED), 2, fig1_stimulus(3),
                jittered_execution(5),
            )
        )
        # The sampler draws the same fraction-of-WCET per (job, frame);
        # the slow class stretches every sample by exactly 2.
        for key, d in fast.items():
            assert slow[key] == 2 * d

    def test_explicit_table_overrides_speed_scaling(self):
        wcets = dict(fig1_wcets())
        # FilterA pinned per class: the table entry is authoritative, so
        # the little-class value is NOT wcet/speed but the given Fraction.
        wcets["FilterA"] = {
            "big": Fraction(3, 10), "little": Fraction(1, 2)
        }
        graph = derive_task_graph(build_fig1_network(), wcets)
        job = next(j for j in graph.jobs if j.process == "FilterA")
        big, little = BIG_LITTLE.classes
        assert job.wcet_on(big) == Fraction(3, 10)
        assert job.wcet_on(little) == Fraction(1, 2)
        # Unpinned jobs fall back to wcet / speed.
        other = next(j for j in graph.jobs if j.process == "InputA")
        assert other.wcet_on(little) == other.wcet * 2


# ---------------------------------------------------------------------------
# platform model semantics
# ---------------------------------------------------------------------------
class TestPlatformModel:
    def test_homogeneous_is_unit_and_degenerate(self):
        p = Platform.homogeneous(3)
        assert p.is_unit and p.processors == 3
        assert p == as_platform(3)

    def test_heterogeneous_identity_and_class_of(self):
        assert BIG_LITTLE.processors == 2
        assert [cls.name for cls in BIG_LITTLE.class_per_processor()] == [
            "big", "little"
        ]
        assert BIG_LITTLE.class_of(1).speed == Fraction(1, 2)
        assert not BIG_LITTLE.is_unit

    def test_bad_platforms_rejected(self):
        # Core platform validation follows the timebase idiom
        # (ValueError); the scheduling layer wraps it in SchedulingError
        # and the scenario layer in ModelError.
        with pytest.raises(ValueError):
            Platform.of(("big", 0))
        with pytest.raises(ValueError):
            Platform.of(("big", 1, 0))
        with pytest.raises(ValueError):
            Platform.of(("big", 1), ("big", 2))
        with pytest.raises(SchedulingError):
            graph = derive_task_graph(build_fig1_network(), fig1_wcets())
            list_schedule(graph, 0)
        with pytest.raises(ModelError):
            replace(fig1_scenario(), processors=0)

    def test_unknown_class_in_wcet_table_rejected(self):
        wcets = dict(fig1_wcets())
        wcets["FilterA"] = {"gpu": Fraction(1, 10)}
        graph = derive_task_graph(build_fig1_network(), wcets)
        job = next(j for j in graph.jobs if j.process == "FilterA")
        cls = ProcessorClass("big")
        with pytest.raises(KeyError):
            job.wcet_on(cls)


# ---------------------------------------------------------------------------
# sweeps: platform axis, serial == workers=2, exact metrics on the wire
# ---------------------------------------------------------------------------
SWEEP_METRICS = ("makespan", "worst_lateness", "executed_jobs")


def platform_matrix():
    return ScenarioMatrix(
        fig1_scenario(n_frames=2),
        {
            "platform": [UNIT2, BIG_LITTLE],
            "jitter_seed": [0, 3],
        },
    )


class TestPlatformSweeps:
    def test_platform_axis_serial_matches_parallel(self):
        serial = run_sweep(platform_matrix(), metrics=SWEEP_METRICS)
        pooled = run_sweep(platform_matrix(), metrics=SWEEP_METRICS, workers=2)
        assert not serial.failed_rows and not pooled.failed_rows
        assert pooled.rows == serial.rows
        for row in serial.rows:
            assert isinstance(row.metrics["makespan"], Fraction)

    def test_platform_axis_shares_one_derivation(self):
        result = run_sweep(platform_matrix(), metrics=SWEEP_METRICS)
        # WCET tables are keyed by class *name*, so the derivation is
        # platform-independent: both platform cells reuse one graph while
        # each platform gets its own schedule.
        assert result.stats.derivations_computed == 1
        assert result.stats.schedules_computed == 2

    def test_unit_platform_cell_matches_processors_cell(self):
        base = fig1_scenario(n_frames=2)
        via_platform = run_sweep(
            ScenarioMatrix(base, {"platform": [UNIT2]}), metrics=SWEEP_METRICS
        )
        via_processors = run_sweep(
            ScenarioMatrix(base, {"processors": [2]}), metrics=SWEEP_METRICS
        )
        assert (
            via_platform.rows[0].metrics == via_processors.rows[0].metrics
        )

    def test_scenario_platform_sets_processor_count(self):
        s = replace(fig1_scenario(), platform=BIG_LITTLE)
        assert s.processors == 2
        assert s.scheduling_target() == BIG_LITTLE
        assert "1xbig + 1xlittle" in s.describe()
