"""Stochastic local search over schedule-priority orders.

Section III-B: "If the obtained static schedule satisfies the job deadlines
then it is feasible, otherwise the selected schedule priority may be
sub-optimal.  Different heuristics exist for optimizing priority order SP."

The portfolio in :mod:`repro.scheduling.optimizer` tries fixed heuristics;
this module goes one step further with a randomized hill climber over SP
permutations — the classic fallback when constructive heuristics fail on a
tight instance:

* the search state is a rank permutation (seeded from a heuristic);
* the neighbourhood is pairwise swaps, biased toward jobs involved in
  deadline violations;
* the objective is lexicographic ``(#violations, total lateness, makespan)``
  so the search makes progress even while infeasible;
* restarts re-seed from other heuristics and random shuffles.

Deterministic given the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.timebase import Time
from ..errors import InfeasibleError
from ..taskgraph.graph import TaskGraph
from .list_scheduler import list_schedule
from .priorities import available_heuristics, get_heuristic
from .schedule import StaticSchedule

Objective = Tuple[int, Time, Time]


def _evaluate(graph: TaskGraph, processors: int, ranks: Sequence[int]):
    schedule = list_schedule(graph, processors, list(ranks))
    violations = 0
    lateness = Time(0)
    late_jobs: List[int] = []
    for entry in schedule.entries:
        job = graph.jobs[entry.job_index]
        end = entry.start + job.wcet
        if end > job.deadline:
            violations += 1
            lateness += end - job.deadline
            late_jobs.append(entry.job_index)
    return schedule, (violations, lateness, schedule.makespan()), late_jobs


@dataclass
class SearchResult:
    """Outcome of the priority search."""

    schedule: StaticSchedule
    ranks: List[int]
    objective: Objective
    iterations: int
    restarts: int

    @property
    def feasible(self) -> bool:
        return self.objective[0] == 0


def search_priorities(
    graph: TaskGraph,
    processors: int,
    seed: int = 0,
    max_iterations: int = 2000,
    restarts: int = 4,
    seeds_from: Optional[Sequence[str]] = None,
) -> SearchResult:
    """Hill-climb SP permutations; returns the best schedule found.

    Stops early as soon as a feasible schedule appears.  The result is the
    lexicographically best ``(violations, lateness, makespan)`` across all
    restarts.
    """
    n = len(graph)
    rng = random.Random(seed)
    heuristic_names = list(seeds_from or available_heuristics())

    best: Optional[SearchResult] = None
    total_iters = 0

    for restart in range(max(1, restarts)):
        if restart < len(heuristic_names):
            ranks = list(get_heuristic(heuristic_names[restart])(graph))
        else:
            ranks = list(range(n))
            rng.shuffle(ranks)
        schedule, objective, late = _evaluate(graph, processors, ranks)
        budget = max_iterations // max(1, restarts)

        for _ in range(budget):
            total_iters += 1
            if objective[0] == 0:
                break
            # Bias one endpoint of the swap toward a violating job.
            if late and rng.random() < 0.8:
                i = rng.choice(late)
            else:
                i = rng.randrange(n)
            j = rng.randrange(n)
            if i == j:
                continue
            ranks[i], ranks[j] = ranks[j], ranks[i]
            cand_schedule, cand_objective, cand_late = _evaluate(
                graph, processors, ranks
            )
            if cand_objective <= objective:
                schedule, objective, late = cand_schedule, cand_objective, cand_late
            else:
                ranks[i], ranks[j] = ranks[j], ranks[i]  # revert

        candidate = SearchResult(
            schedule=schedule,
            ranks=list(ranks),
            objective=objective,
            iterations=total_iters,
            restarts=restart + 1,
        )
        if best is None or candidate.objective < best.objective:
            best = candidate
        if best.feasible:
            break

    assert best is not None
    return best


def find_feasible_schedule_with_search(
    graph: TaskGraph,
    processors: int,
    seed: int = 0,
    max_iterations: int = 2000,
) -> StaticSchedule:
    """Portfolio heuristics first, local search as the fallback.

    Raises :class:`InfeasibleError` when even the search fails.
    """
    result = search_priorities(
        graph, processors, seed=seed, max_iterations=max_iterations
    )
    if not result.feasible:
        raise InfeasibleError(
            f"priority search exhausted ({result.iterations} iterations, "
            f"{result.restarts} restarts) with {result.objective[0]} "
            "remaining deadline violations"
        )
    return result.schedule
