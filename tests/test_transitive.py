"""Transitive reduction tests, cross-checked against networkx as an oracle."""

import random
from fractions import Fraction

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.jobs import Job
from repro.taskgraph.transitive import transitive_closure_sets, transitive_reduction


def graph_from_edges(n, edges):
    jobs = [Job(f"p{i}", 1, Fraction(0), Fraction(1000), Fraction(1)) for i in range(n)]
    return TaskGraph(jobs, edges, Fraction(1000))


class TestBasics:
    def test_triangle(self):
        g = graph_from_edges(3, [(0, 1), (1, 2), (0, 2)])
        r = transitive_reduction(g)
        assert r.edges() == [(0, 1), (1, 2)]

    def test_diamond_keeps_all(self):
        edges = [(0, 1), (0, 2), (1, 3), (2, 3)]
        g = graph_from_edges(4, edges)
        assert transitive_reduction(g).edges() == edges

    def test_long_shortcut_removed(self):
        g = graph_from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
        r = transitive_reduction(g)
        assert (0, 4) not in r.edges()

    def test_already_reduced_unchanged(self):
        edges = [(0, 1), (1, 2)]
        g = graph_from_edges(3, edges)
        assert transitive_reduction(g).edges() == edges

    def test_empty_graph(self):
        g = graph_from_edges(3, [])
        assert transitive_reduction(g).edges() == []

    def test_preserves_jobs_and_hyperperiod(self):
        g = graph_from_edges(3, [(0, 2)])
        r = transitive_reduction(g)
        assert r.jobs == g.jobs
        assert r.hyperperiod == g.hyperperiod

    def test_result_is_reduced(self):
        g = graph_from_edges(6, [(0, 1), (0, 2), (0, 3), (1, 3), (2, 3), (3, 4), (0, 4), (1, 4), (4, 5), (2, 5)])
        assert transitive_reduction(g).is_transitively_reduced()


class TestClosure:
    def test_closure_sets(self):
        g = graph_from_edges(4, [(0, 1), (1, 2), (2, 3)])
        closure = transitive_closure_sets(g)
        assert closure[0] == {1, 2, 3}
        assert closure[2] == {3}
        assert closure[3] == set()

    def test_closure_unaffected_by_reduction(self):
        g = graph_from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 4), (1, 4), (3, 4)])
        assert transitive_closure_sets(g) == transitive_closure_sets(
            transitive_reduction(g)
        )


def random_dag_edges(n, density, seed):
    rng = random.Random(seed)
    return [
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < density
    ]


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("density", [0.15, 0.5])
    def test_matches_networkx(self, seed, density):
        n = 24
        edges = random_dag_edges(n, density, seed)
        g = graph_from_edges(n, edges)
        ours = set(transitive_reduction(g).edges())
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(n))
        nxg.add_edges_from(edges)
        theirs = set(nx.transitive_reduction(nxg).edges())
        assert ours == theirs

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_property_closure_preserved(self, seed):
        n = 15
        edges = random_dag_edges(n, 0.3, seed)
        g = graph_from_edges(n, edges)
        r = transitive_reduction(g)
        assert set(map(tuple, r.edges())) <= set(map(tuple, g.edges()))
        assert transitive_closure_sets(g) == transitive_closure_sets(r)
        assert r.is_transitively_reduced()
