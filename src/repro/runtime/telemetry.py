"""Telemetry sinks: OTel-style execution spans and live sweep progress.

Two consumers of the event streams the repo already emits, built for the
operational layer (``python -m repro``):

* :class:`SpanObserver` — an :class:`~repro.runtime.observers.
  ExecutionObserver` that maps a run onto an OpenTelemetry-shaped span
  tree: one *run span* (opened at ``on_run_start``, closed at
  ``on_run_end``) parenting one *frame span* per executed frame (the
  frame's record envelope, from the ``on_record`` stream), each
  parenting the frame's *kernel spans* — one per executed job instance
  (opened/closed by the ``on_job_data_start/end`` pair).  The result is
  a plain list of :class:`Span` values — no OpenTelemetry dependency —
  serialisable via :func:`repro.io.json_io.spans_to_jsonable` and
  exportable from the CLI with ``python -m repro run --spans``.
* :class:`ProgressObserver` — a sweep-level sink rendering live
  progress to a text stream (stderr by default).  It is *not* an
  ``ExecutionObserver``: its two entry points plug into the sweep
  layer's existing callbacks — :meth:`ProgressObserver.on_row` consumes
  the ``run_sweep(on_row=...)`` row stream, and
  :meth:`ProgressObserver.on_event` consumes the pool's
  ``on_progress`` milestone stream
  (:class:`repro.experiment.pool.PoolEvent`).  Events are duck-typed
  (``kind`` / ``gid`` / ``cells`` / ``groups`` / ``detail`` attributes)
  so this module never imports the experiment package — the experiment
  package already imports the runtime.

Both sinks follow the pool's delivery contract: progress rendering is
best-effort decoration (the pool swallows ``on_progress`` exceptions),
while span collection is exact — spans carry the same exact rational
timestamps (:class:`fractions.Fraction`) every observer sees.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TextIO, Tuple

from ..core.timebase import Time, ZERO
from .observers import ExecutionObserver, RunMeta

__all__ = ["ProgressObserver", "Span", "SpanObserver"]


@dataclass
class Span:
    """One OTel-style span: a named ``[start, end)`` interval with context.

    ``span_id`` / ``parent_id`` encode the tree (the run span is id 1 and
    has no parent; kernel spans parent to it).  ``end`` is ``None`` while
    the span is open; a finished run leaves every span closed.  Times are
    exact rationals, converted to floats only at serialisation
    (:func:`repro.io.json_io.spans_to_jsonable`).
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    kind: str  # "run" | "frame" | "kernel"
    start: Time
    end: Optional[Time] = None
    attributes: Dict[str, Any] = field(default_factory=dict)


#: The run span's fixed id — kernel spans count up from 2 in open order.
_RUN_SPAN_ID = 1


class SpanObserver(ExecutionObserver):
    """Collect a run as an OTel-style span tree (run / frame / kernel).

    Three levels: one *run span* parents one *frame span* per executed
    frame (interval = the frame's record envelope, built from the
    ``on_record`` stream), and each frame span parents the *kernel
    spans* of the jobs it contains.  Attach to
    ``Experiment.run(observers=[...])`` or ``replay(result, ...)``;
    live and replayed runs produce identical span lists: kernel spans
    follow the trace's data-event order in both, and the frame level is
    assembled from the completed record stream at ``on_run_end`` —
    records arrive interleaved live but up-front in replay, so frames
    cannot be allocated ids in arrival order.  Because this observer
    overrides the data hooks, attaching it to a live run keeps the data
    phase on — a ``records_only`` scenario emits no kernel spans and
    yields the run span plus its frame envelopes.

    The run span closes at the latest record end time, tracked from the
    ``on_record`` stream rather than ``result.makespan()`` so the
    observer also works on lean runs that suppress record collection
    (those also see no frame spans — no records, no envelopes).
    """

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._next_id = _RUN_SPAN_ID
        self._open: Dict[Tuple[str, int], Span] = {}
        self._run_span: Optional[Span] = None
        self._run_end: Time = ZERO
        self._frame_bounds: Dict[int, Tuple[Time, Time]] = {}
        self._kernel_spans: List[Span] = []

    def on_run_start(self, meta: RunMeta) -> None:
        # Full reset so a reused observer holds exactly one run's spans.
        self.spans = []
        self._next_id = _RUN_SPAN_ID
        self._open = {}
        self._run_end = ZERO
        self._frame_bounds = {}
        self._kernel_spans = []
        self._run_span = Span(
            name=f"run:{meta.network}",
            span_id=self._next_id,
            parent_id=None,
            kind="run",
            start=ZERO,
            attributes={
                "network": meta.network,
                "processors": meta.processors,
                "frames": meta.frames,
                "hyperperiod": meta.hyperperiod,
            },
        )
        self._next_id += 1
        self.spans.append(self._run_span)

    def on_record(self, record: Any) -> None:
        if record.end > self._run_end:
            self._run_end = record.end
        bounds = self._frame_bounds.get(record.frame)
        if bounds is None:
            self._frame_bounds[record.frame] = (record.start, record.end)
        else:
            self._frame_bounds[record.frame] = (
                min(bounds[0], record.start), max(bounds[1], record.end)
            )

    def on_job_data_start(
        self, process: str, k: int, frame: int, start: Time
    ) -> None:
        # Parented to the run for now; frames re-parent at on_run_end,
        # once the record stream has named every frame envelope.
        span = Span(
            name=f"{process}[{k}]",
            span_id=self._next_id,
            parent_id=_RUN_SPAN_ID,
            kind="kernel",
            start=start,
            attributes={"process": process, "k": k, "frame": frame},
        )
        self._next_id += 1
        self._open[(process, k)] = span
        self._kernel_spans.append(span)
        self.spans.append(span)

    def on_job_data_end(self, process: str, k: int, frame: int, end: Time) -> None:
        self._open.pop((process, k)).end = end

    def on_run_end(self, result: Any) -> None:
        if self._run_span is None:
            return
        self._run_span.end = self._run_end
        # The frame level is assembled here, not as records arrive:
        # record order differs between live runs (interleaved with data
        # events) and replay (records first), and span ids must not.
        # Ids continue past the kernel spans, in frame order; the spans
        # sit between the run span and the kernels in the list.
        frame_ids: Dict[int, int] = {}
        frame_spans: List[Span] = []
        for frame in sorted(self._frame_bounds):
            start, end = self._frame_bounds[frame]
            span = Span(
                name=f"frame[{frame}]",
                span_id=self._next_id,
                parent_id=_RUN_SPAN_ID,
                kind="frame",
                start=start,
                end=end,
                attributes={"frame": frame},
            )
            self._next_id += 1
            frame_ids[frame] = span.span_id
            frame_spans.append(span)
        self.spans[1:1] = frame_spans
        for span in self._kernel_spans:
            frame_id = frame_ids.get(span.attributes["frame"])
            if frame_id is not None:
                span.parent_id = frame_id


class ProgressObserver:
    """Render live sweep progress as plain lines on a text stream.

    Wire it to the sweep layer's two callback streams::

        progress = ProgressObserver(total_cells=len(matrix))
        run_sweep(matrix, metrics, workers=2,
                  on_row=progress.on_row, on_progress=progress.on_event)
        progress.finish(result.stats)

    ``on_row`` fires once per completed cell (healthy or error row);
    ``on_event`` receives the parallel backend's milestone events and is
    simply never called on the serial path.  The renderer is
    deliberately plain (one line per event, no cursor control) so it
    composes with logs and CI output; *stream* defaults to stderr to
    keep stdout clean for the CLI's JSON results.
    """

    def __init__(
        self,
        total_cells: Optional[int] = None,
        *,
        label: str = "sweep",
        stream: Optional[TextIO] = None,
    ) -> None:
        self.total_cells = total_cells
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.rows_seen = 0

    def _emit(self, text: str) -> None:
        print(f"[{self.label}] {text}", file=self.stream, flush=True)

    def on_row(self, row: Any) -> None:
        """Consume one streamed :class:`~repro.experiment.sweep.SweepRow`."""
        self.rows_seen += 1
        total = f"/{self.total_cells}" if self.total_cells is not None else ""
        coords = ", ".join(f"{k}={v}" for k, v in row.cell.items())
        error = getattr(row, "error", None)
        if error is not None:
            self._emit(
                f"cell {self.rows_seen}{total} ({coords}) "
                f"FAILED: {error.describe()}"
            )
        else:
            self._emit(f"cell {self.rows_seen}{total} ({coords}) done")

    def on_event(self, event: Any) -> None:
        """Consume one pool milestone (duck-typed ``PoolEvent``)."""
        kind = getattr(event, "kind", "?")
        cells = getattr(event, "cells", 0)
        detail = getattr(event, "detail", "")
        gid = getattr(event, "gid", None)
        if kind == "store-hits":
            self._emit(f"{cells} cell(s) restored from checkpoint store")
        elif kind == "enqueued":
            groups = getattr(event, "groups", 0)
            self._emit(f"enqueued {cells} cell(s) in {groups} group(s)")
        elif kind == "dispatch":
            self._emit(f"group {gid} ({cells} cell(s)) -> {detail}")
        elif kind == "group-done":
            self._emit(f"group {gid} done ({cells} cell(s))")
        elif kind == "group-failed":
            self._emit(f"group {gid} FAILED: {detail}")
        elif kind == "retry":
            self._emit(f"group {gid} retrying: {detail}")
        elif kind == "finished":
            self._emit("all groups finished")
        else:  # forward-compatible: unknown kinds still render
            self._emit(f"{kind} {detail}".rstrip())

    def finish(self, stats: Any) -> None:
        """Render the closing summary from a ``SweepStats``."""
        parts = [
            f"{self.rows_seen} row(s)",
            f"{stats.runs} run(s)",
            f"{stats.workers} worker(s)",
        ]
        if stats.failed_cells:
            parts.append(f"{stats.failed_cells} failed")
        if stats.store_hits:
            parts.append(f"{stats.store_hits} store hit(s)")
        if stats.retries:
            parts.append(f"{stats.retries} retrie(s)")
        if stats.interrupted:
            parts.append("interrupted")
        self._emit("done: " + ", ".join(parts))
