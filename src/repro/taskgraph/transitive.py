"""Transitive reduction of task graphs (derivation step 5).

The transitive reduction of a DAG is the unique minimal edge set with the
same reachability relation; the derivation uses it to drop redundant
precedence edges (e.g. the ``InputA[1] -> NormA[1]`` edge of Fig. 3, implied
by the path through ``FilterA[1]``).

The implementation processes nodes in reverse topological order and keeps a
reachability bitset per node (Python big-ints as bitsets), giving
``O(V * E / wordsize)`` time — comfortably fast for the paper's graphs
(812 jobs / ~2k edges for the FMS case) and for the 40 s hyperperiod
scalability benchmark (~3.2k jobs).

``networkx.transitive_reduction`` is deliberately **not** used here; it
serves as an independent oracle in the test suite.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from .graph import TaskGraph


def reduce_edge_list(n: int, edges: Iterable[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Transitive reduction of a raw, topologically indexed edge list.

    Nodes are ``0..n-1`` and every edge ``(u, v)`` satisfies ``u < v`` (the
    ``<J`` invariant the derivation guarantees), so the node indices are a
    topological order.  An edge ``(u, v)`` is redundant iff some other
    direct successor ``w`` of ``u`` reaches ``v``; each node's reachability
    set is the union of its successors' sets, computed in one reverse sweep
    over big-int bitsets.

    This is the derivation's step-5 entry point: reducing the integer edge
    list *before* the :class:`TaskGraph` is materialised means only one
    graph (name index, adjacency sets) is ever built per derivation.
    """
    succ: List[List[int]] = [[] for _ in range(n)]
    for u, v in edges:
        succ[u].append(v)
    # reach[v] = bitset of nodes reachable from v by a path of length >= 1
    reach: List[int] = [0] * n
    for v in range(n - 1, -1, -1):
        acc = 0
        for w in succ[v]:
            acc |= (1 << w) | reach[w]
        reach[v] = acc

    kept: List[Tuple[int, int]] = []
    for u in range(n):
        succs = succ[u]
        # Union of what is reachable *through* each direct successor.
        indirect = 0
        for w in succs:
            indirect |= reach[w]
        for v in succs:
            if not (indirect >> v) & 1:
                kept.append((u, v))
    return kept


def transitive_reduction(graph: TaskGraph) -> TaskGraph:
    """Return a new :class:`TaskGraph` with redundant edges removed.

    Graph-level wrapper around :func:`reduce_edge_list` (the derivation
    calls the edge-list form directly, before any graph exists).
    """
    return TaskGraph(
        graph.jobs,
        reduce_edge_list(len(graph), graph.edges()),
        graph.hyperperiod,
    )


def transitive_closure_sets(graph: TaskGraph) -> List[Set[int]]:
    """Reachability sets (path length >= 1) for every node.

    Exposed for tests and for schedule-feasibility checking: two schedules
    are order-equivalent iff they agree on the closure, not on the raw edge
    set.
    """
    n = len(graph)
    reach_bits: List[int] = [0] * n
    for v in range(n - 1, -1, -1):
        acc = 0
        for w in graph.successors(v):
            acc |= (1 << w) | reach_bits[w]
        reach_bits[v] = acc
    out: List[Set[int]] = []
    for v in range(n):
        bits = reach_bits[v]
        members: Set[int] = set()
        idx = 0
        while bits:
            if bits & 1:
                members.add(idx)
            bits >>= 1
            idx += 1
        out.append(members)
    return out
