#!/usr/bin/env python3
"""The avionics Flight Management System case study (Section V-B).

Reproduces the paper's narrative numbers on the reduced-hyperperiod FMS:

* 812-job task graph over the 10 s frame, load ~0.23;
* feasible single-processor schedule with zero deadline misses;
* functional equivalence with the original uniprocessor fixed-priority
  prototype (the paper "verified [it] by testing" — so do we);
* the 40 s variant showing why the paper reduced the hyperperiod.

Run:  python examples/fms_avionics.py
"""

from repro import (
    UniprocessorFixedPriority,
    derive_task_graph,
    find_feasible_schedule,
    miss_summary,
    run_static_order,
    run_zero_delay,
    task_graph_load,
)
from repro.apps import (
    build_fms_network,
    fms_scheduling_priorities,
    fms_stimulus,
    fms_wcets,
)
from repro.runtime import response_times, served_horizon

FRAMES = 2


def main() -> None:
    net = build_fms_network()
    print(f"network: {net}")
    print(f"processes: {', '.join(net.process_names())}")

    graph = derive_task_graph(net, fms_wcets())
    load = task_graph_load(graph)
    print(
        f"task graph: {len(graph)} jobs / {graph.edge_count} edges over "
        f"{int(graph.hyperperiod) // 1000} s   (paper: 812 jobs)"
    )
    print(f"load: {float(load.load):.3f}   (paper: ~0.23)")

    schedule = find_feasible_schedule(graph, 1)
    print(f"single-processor schedule feasible: {schedule.is_feasible()}")

    horizon = graph.hyperperiod * FRAMES
    stimulus = fms_stimulus(net, horizon).truncated(
        served_horizon(net, graph.hyperperiod, FRAMES)
    )

    result = run_static_order(net, schedule, FRAMES, stimulus)
    summary = miss_summary(result)
    print(
        f"runtime ({FRAMES} frames): {summary.executed_jobs} jobs executed, "
        f"{summary.false_jobs} false server jobs skipped, "
        f"{summary.missed_jobs} deadline misses"
    )

    worst = response_times(result)
    print("worst observed response times (ms):")
    for name in ("SensorInput", "HighFreqBCP", "LowFreqBCP", "Performance"):
        print(f"  {name:<14} {float(worst[name]):.1f}")

    # -- functional equivalence with the uniprocessor prototype -------------
    reference = run_zero_delay(net, horizon, stimulus)
    prototype = UniprocessorFixedPriority(net, fms_scheduling_priorities(net))
    proto_result = prototype.functional_run(horizon, stimulus)
    assert proto_result.observable() == reference.observable()
    assert result.observable() == reference.observable()
    print(
        "FPPN multiprocessor runtime == zero-delay semantics == "
        "uniprocessor fixed-priority prototype (outputs identical)"
    )

    # -- the 40 s variant ----------------------------------------------------
    full = build_fms_network(reduced_hyperperiod=False)
    graph40 = derive_task_graph(full, fms_wcets())
    print(
        f"40 s hyperperiod variant: {len(graph40)} jobs "
        f"({len(graph40) / len(graph):.1f}x the reduced graph) — the code-"
        "generation cost the paper avoided by reducing MagnDeclin's period"
    )


if __name__ == "__main__":
    main()
