#!/usr/bin/env python3
"""Quickstart: author an FPPN, derive its task graph, schedule it, run it.

This walks the full pipeline of the paper on a small two-rate pipeline:

1. define processes, channels and functional priorities (Definition 2.1);
2. execute the zero-delay reference semantics (Section II-B);
3. derive the task graph over one hyperperiod (Section III-A);
4. list-schedule it on a multiprocessor (Section III-B);
5. simulate the online static-order policy and check that the outputs are
   identical to the reference and that no deadline is missed (Section IV).

Run:  python examples/quickstart.py
"""

from repro import (
    ChannelKind,
    Network,
    derive_task_graph,
    find_feasible_schedule,
    is_no_data,
    miss_summary,
    run_static_order,
    run_zero_delay,
    schedule_gantt,
    task_graph_load,
)
from repro.runtime import MetricsObserver


def sample_source(ctx):
    """Produce one sample per 100 ms period (the invocation count as data)."""
    ctx.write("raw", float(ctx.k))


def smoother(ctx):
    """Exponential smoothing at twice the source rate."""
    x = ctx.read("raw")
    state = ctx.get("state", 0.0)
    if not is_no_data(x):
        state = 0.75 * state + 0.25 * x
        ctx.assign("state", state)
    ctx.write("smooth", state)


def logger(ctx):
    """Emit every other smoothed value as an external output sample."""
    last = None
    while True:
        v = ctx.read("smooth")
        if is_no_data(v):
            break
        last = v
    ctx.write_output(last, "log")


def main() -> None:
    # -- 1. the model ----------------------------------------------------
    net = Network("quickstart")
    net.add_periodic("source", period=100, kernel=sample_source)
    net.add_periodic("smoother", period=50, kernel=smoother)
    net.add_periodic("logger", period=200, kernel=logger)
    net.connect("source", "smoother", "raw", kind=ChannelKind.FIFO)
    net.connect("smoother", "logger", "smooth", kind=ChannelKind.FIFO)
    net.add_priority_chain("source", "smoother", "logger")
    net.add_external_output("logger", "log")
    net.validate()
    print(f"network: {net}")

    # -- 2. reference semantics ------------------------------------------
    reference = run_zero_delay(net, horizon=600)
    print(f"zero-delay reference executed {reference.job_count} jobs")
    print(f"logged samples: {reference.output_values('log')}")

    # -- 3. task graph ----------------------------------------------------
    graph = derive_task_graph(net, wcet={"source": 10, "smoother": 15, "logger": 5})
    load = task_graph_load(graph)
    print(
        f"task graph: {len(graph)} jobs / {graph.edge_count} edges per "
        f"{graph.hyperperiod} ms frame, load {float(load.load):.3f} "
        f"=> >= {load.min_processors} processor(s)"
    )

    # -- 4. compile-time schedule ------------------------------------------
    schedule = find_feasible_schedule(graph, processors=load.min_processors)
    print("static schedule (one frame):")
    print(schedule_gantt(schedule))

    # -- 5. online static-order execution ----------------------------------
    # Metrics stream out of the executor through an observer: the same
    # aggregation works live (here) or by replaying a stored result.
    metrics = MetricsObserver()
    result = run_static_order(net, schedule, n_frames=3, observers=[metrics])
    summary = metrics.miss_summary()
    print(
        f"runtime: {summary.executed_jobs} jobs over {result.frames} frames, "
        f"{summary.missed_jobs} deadline misses"
    )
    assert summary == miss_summary(result)  # post-hoc replay agrees
    assert result.observable() == reference.observable(), "determinism violated!"
    print("runtime outputs identical to the zero-delay reference — Prop. 2.1 holds")

    # Data-phase events stream kernel spans and channel writes to the same
    # observer: per-process execution statistics with exact rational times.
    print("kernel spans per process:")
    for name, spans in metrics.kernel_span_stats().items():
        print(
            f"  {name:10s} {spans.jobs} jobs, busy {spans.total_busy} ms, "
            f"max {spans.max_span} ms, mean {spans.mean_span} ms"
        )
    print(f"channel writes: {metrics.channel_write_counts()}")

    # -- 6. timing-only re-run (records_only skips the kernels) -------------
    timing = run_static_order(net, schedule, n_frames=3, records_only=True)
    assert timing.records == result.records
    print("records-only re-run reproduced identical job timing, no kernels run")


if __name__ == "__main__":
    main()
