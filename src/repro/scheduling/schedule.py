"""Static schedules (Definition 3.2) and feasibility checking.

A static schedule assigns every job ``Ji`` a processor ``μi`` and a start
time ``si``; it is **feasible** iff it satisfies:

* arrival:          ``si >= Ai``
* deadline:         ``ei = si + Ci <= Di``
* precedence:       ``(Ji, Jj) ∈ E  =>  ei <= sj``
* mutual exclusion: ``μi = μj  =>  ei <= sj  ∨  ej <= si``

The schedule repeats with the frame period ``H`` (Section IV); the online
static-order policy consumes only its per-processor *job order*, never its
absolute start times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SchedulingError
from ..core.ticks import TickDomain
from ..core.timebase import Time, time_str
from ..taskgraph.graph import TaskGraph


@dataclass(frozen=True)
class ScheduledJob:
    """One schedule entry: job index, processor, start time."""

    job_index: int
    processor: int
    start: Time

    def __post_init__(self) -> None:
        if self.processor < 0:
            raise SchedulingError("processor ids are non-negative")
        if self.start < 0:
            raise SchedulingError("start times are non-negative")


@dataclass
class Violation:
    """A diagnosed feasibility violation (for reports and error messages)."""

    kind: str  # 'arrival' | 'deadline' | 'precedence' | 'mutex' | 'missing'
    detail: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.kind}: {self.detail}"


class StaticSchedule:
    """A complete static schedule for a task graph on ``M`` processors."""

    def __init__(
        self,
        graph: TaskGraph,
        processors: int,
        entries: Sequence[ScheduledJob],
    ) -> None:
        if processors < 1:
            raise SchedulingError("schedule needs at least one processor")
        self.graph = graph
        self.processors = processors
        self.entries: List[ScheduledJob] = sorted(
            entries, key=lambda e: (e.start, e.processor, e.job_index)
        )
        self._by_job: Dict[int, ScheduledJob] = {}
        #: lazy integer-tick view (domain, start ticks, job time arrays)
        self._ticks: Optional[
            Tuple[TickDomain, Dict[int, int], Sequence[int], Sequence[int], Sequence[int]]
        ] = None
        for e in self.entries:
            if e.processor >= processors:
                raise SchedulingError(
                    f"entry for job {graph.jobs[e.job_index].name} uses "
                    f"processor {e.processor} >= M={processors}"
                )
            if e.job_index in self._by_job:
                raise SchedulingError(
                    f"job {graph.jobs[e.job_index].name} scheduled twice"
                )
            self._by_job[e.job_index] = e

    # ------------------------------------------------------------------
    def entry(self, job_index: int) -> ScheduledJob:
        try:
            return self._by_job[job_index]
        except KeyError:
            name = self.graph.jobs[job_index].name
            raise SchedulingError(f"job {name} is not scheduled") from None

    def start(self, job_index: int) -> Time:
        return self.entry(job_index).start

    def end(self, job_index: int) -> Time:
        return self.entry(job_index).start + self.graph.jobs[job_index].wcet

    def mapping(self, job_index: int) -> int:
        return self.entry(job_index).processor

    def tick_view(
        self,
    ) -> Tuple[TickDomain, Dict[int, int], Sequence[int], Sequence[int], Sequence[int]]:
        """Integer-tick view ``(domain, start_ticks, arrival, wcet, deadline)``.

        The domain is the graph's tick domain, extended if hand-built entries
        carry start times outside it; all arrays are exact integer images of
        the rational values.  Built lazily once (schedules are immutable
        after construction) and shared by the feasibility checks and the
        runtime executor's frame ordering.
        """
        cached = self._ticks
        if cached is None:
            tt = self.graph.tick_times().rescaled_to(
                e.start for e in self.entries
            )
            to_ticks = tt.domain.to_ticks
            start_t = {e.job_index: to_ticks(e.start) for e in self.entries}
            cached = self._ticks = (
                tt.domain, start_t, tt.arrival, tt.wcet, tt.deadline
            )
        return cached

    def makespan(self) -> Time:
        """Completion time of the last job in the frame."""
        dom, start_t, _, wcet, _ = self.tick_view()
        return dom.from_ticks(
            max((t + wcet[i] for i, t in start_t.items()), default=0)
        )

    def processor_order(self, processor: int) -> List[int]:
        """Job indices mapped to *processor*, in start-time order.

        This is exactly the per-processor static order consumed by the
        online policy (Section IV).
        """
        return [e.job_index for e in self.entries if e.processor == processor]

    def orders(self) -> List[List[int]]:
        """Per-processor static orders for all processors."""
        return [self.processor_order(m) for m in range(self.processors)]

    # ------------------------------------------------------------------
    def violations(self) -> List[Violation]:
        """All feasibility violations of Definition 3.2 (empty == feasible).

        All comparisons run in the integer tick view; the diagnostic
        messages are rendered from the exact rational times, so they are
        identical to a pure-Fraction check.
        """
        out: List[Violation] = []
        jobs = self.graph.jobs
        _, start_t, arrival_t, wcet_t, deadline_t = self.tick_view()
        for i in range(len(jobs)):
            if i not in self._by_job:
                out.append(Violation("missing", f"job {jobs[i].name} unscheduled"))
        for i, e in self._by_job.items():
            job = jobs[i]
            s = start_t[i]
            if s < arrival_t[i]:
                out.append(
                    Violation(
                        "arrival",
                        f"{job.name} starts at {time_str(e.start)} before "
                        f"arrival {time_str(job.arrival)}",
                    )
                )
            if s + wcet_t[i] > deadline_t[i]:
                out.append(
                    Violation(
                        "deadline",
                        f"{job.name} ends at {time_str(e.start + job.wcet)} "
                        f"after deadline {time_str(job.deadline)}",
                    )
                )
        for i, j in self.graph.edges():
            if i in start_t and j in start_t:
                if start_t[i] + wcet_t[i] > start_t[j]:
                    out.append(
                        Violation(
                            "precedence",
                            f"{jobs[i].name} -> {jobs[j].name}: predecessor ends "
                            f"{time_str(self.end(i))} after successor start "
                            f"{time_str(self.start(j))}",
                        )
                    )
        for m in range(self.processors):
            order = self.processor_order(m)
            for a, b in zip(order, order[1:]):
                if start_t[a] + wcet_t[a] > start_t[b]:
                    out.append(
                        Violation(
                            "mutex",
                            f"jobs {jobs[a].name} and {jobs[b].name} overlap "
                            f"on processor {m}",
                        )
                    )
        return out

    def is_feasible(self) -> bool:
        return not self.violations()

    def require_feasible(self) -> "StaticSchedule":
        """Return self, raising with diagnostics when infeasible."""
        problems = self.violations()
        if problems:
            detail = "; ".join(str(v) for v in problems[:5])
            raise SchedulingError(
                f"schedule is infeasible ({len(problems)} violations): {detail}"
            )
        return self

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"StaticSchedule(M={self.processors}, jobs={len(self.entries)}, "
            f"makespan={time_str(self.makespan())})"
        )
