"""Multiprocess sweep backend: one worker task per schedule-key group.

:func:`repro.experiment.sweep.run_sweep` with ``workers > 1`` lands here.
The matrix's cells are partitioned by
:meth:`~repro.experiment.scenario.Scenario.schedule_key` — the unit of
stage reuse — and each group is dispatched as one task to a pool of
spawned worker processes.  Every worker task builds its own
:class:`~repro.experiment.experiment.PipelineCache`, so a group still
pays exactly one task-graph derivation and one scheduling pass no matter
how many runtime-only cells (jitter seeds, overheads, frame counts,
stimuli) it contains; the per-task cache counters come back with the rows
and are summed into the sweep's :class:`~repro.experiment.sweep.
SweepStats`.

Everything that crosses the process boundary is *data*, carried by the
exact JSON wire format of :mod:`repro.io.json_io`:

* outbound, each cell's scenario goes through ``scenario_to_dict`` (the
  tagged value encoding keeps Fractions, complex samples and tuples
  exact — FFT stimuli survive), alongside the group's share of any
  :class:`~repro.experiment.faults.FaultPlan`;
* inbound, each row's metric values go through ``value_to_jsonable`` /
  ``value_from_jsonable``, so rational metrics (makespans, latenesses,
  utilizations) come back as the same exact :class:`~fractions.Fraction`
  values the serial path computes, and each failed cell comes back as a
  structured error record.

Combined with the shared per-cell execution helper
(:func:`repro.experiment.sweep._run_cell` — the only code path that
configures and runs a cell, serial or parallel) this makes parallel rows
**bit-identical** to a serial ``run_sweep`` of the same matrix, which the
test suite pins the same way the tick-domain and data-phase ports were
pinned.

Groups are dispatched with ``apply_async`` under a **supervisor loop**
rather than a bare ``pool.map``, which is what makes sweeps survivable:

* a cell that raises inside a worker becomes an error row in the group's
  reply (the group's other cells still run);
* a worker that *dies* (OOM kill, segfault, hard exit) is detected by
  watching the pool's process set — a plain ``multiprocessing.Pool``
  silently loses the dead worker's task — and the pool is terminated,
  respawned, and the unfinished groups redispatched with exponential
  backoff, up to ``max_retries`` budget-charged attempts per group
  (crashes cannot be attributed to one group, so every unfinished
  in-flight group is charged); a group that exhausts its budget degrades
  to :class:`~repro.errors.WorkerCrashError` rows;
* with ``group_timeout`` set, a group that does not reply by its
  deadline is terminated and retried the same way (only the timed-out
  group is charged; innocent in-flight groups requeue for free), ending
  in :class:`~repro.errors.SweepTimeoutError` rows;
* ``KeyboardInterrupt`` drains the replies that already completed,
  terminates the pool (no orphaned workers), and returns the partial
  result with ``stats.interrupted`` set.

Not every sweep can be dispatched.  :func:`serial_fallback_reason`
documents the rules: sweeps attaching live per-cell observers
(``observer_factory``) or retaining full results (``keep_results``) need
in-process objects; scenarios embedding code the child cannot
reconstruct (bare factory callables, per-job WCET callables, workload
names registered — or overridden — only in the parent process, which a
freshly-imported worker would not resolve) are refused per cell; a
caller-shared cache cannot be shared across processes; and a single
schedule-key group has nothing to fan out.  ``run_sweep`` records the
reason in ``SweepStats.parallel_fallback`` and runs serially.  (A
checkpoint store never forces a fallback: the parent resolves hits and
persists rows itself, so workers need no store access.)

The spawn start method is used unconditionally: it is the only method
that is safe and available everywhere (fork inherits arbitrary parent
state).  Workers re-import :mod:`repro` through the parent's ``sys.path``
and working directory, which multiprocessing's spawn preparation data
carries into every child.
Spawn's usual rule applies: a *script* calling ``run_sweep(workers=N)``
at import time must guard the call with ``if __name__ == "__main__":``
(the children re-import the main module), exactly as with any direct
:mod:`multiprocessing` use.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..errors import (
    ModelError,
    SweepError,
    SweepTimeoutError,
    WorkerCrashError,
)
from ..runtime.observers import ExecutionObserver
from .experiment import PipelineCache
from .faults import FaultPlan, apply_cell_faults
from .store import SweepStore, metrics_key, store_key
from .sweep import (
    ScenarioMatrix,
    SweepCell,
    SweepCellError,
    SweepResult,
    SweepRow,
    SweepStats,
    _cell_error,
    _check_cell_modes,
    _run_cell,
)

__all__ = [
    "run_sweep_parallel",
    "schedule_key_groups",
    "serial_fallback_reason",
]

#: Supervisor poll period [s]: how often in-flight groups are checked for
#: replies, deadlines and dead workers.
_POLL_INTERVAL = 0.02

#: After a worker crash, how long [s] surviving workers get to finish
#: their in-flight groups before the pool is torn down.  Only the dead
#: worker's task is actually lost; draining the innocents first means
#: only genuinely unfinished groups are charged a retry.
_CRASH_GRACE = 5.0


def _group_cells(cells: Sequence[SweepCell]) -> List[List[SweepCell]]:
    groups: Dict[Any, List[SweepCell]] = {}
    for cell in cells:
        groups.setdefault(cell.scenario.schedule_key(), []).append(cell)
    return list(groups.values())


def schedule_key_groups(matrix: ScenarioMatrix) -> List[List[SweepCell]]:
    """The matrix's cells grouped by schedule key, in first-seen order.

    One group is the unit of dispatch *and* of stage reuse: all its cells
    share one derivation and one schedule, so a worker owning the whole
    group pays each exactly once from its private cache.
    """
    return _group_cells(list(matrix.cells()))


def _serial_fallback_reason(
    cells: Sequence[SweepCell],
    *,
    keep_results: bool = False,
    observer_factory: Optional[
        Callable[[SweepCell], Sequence[ExecutionObserver]]
    ] = None,
    cache: Optional[PipelineCache] = None,
) -> Optional[str]:
    if observer_factory is not None:
        return (
            "observer_factory attaches live in-process observers, which "
            "cannot be shipped to worker processes"
        )
    if keep_results:
        return (
            "keep_results retains full RuntimeResult objects, which are "
            "not serialised across the process boundary"
        )
    if cache is not None:
        return (
            "a caller-shared PipelineCache cannot be shared with worker "
            "processes — drop it to fan out"
        )
    # The *cells* are what gets dispatched, so they are the authority —
    # the base scenario may carry code an axis substitutes away (a
    # workload axis over registered names), or vice versa.
    for cell in cells:
        blocker = cell.scenario.dispatch_blocker()
        if blocker is not None:
            return f"scenario is not dispatchable: {blocker}"
    if len(_group_cells(cells)) < 2:
        return (
            "matrix has a single schedule-key group — nothing to fan out "
            "(parallelism is per distinct schedule key)"
        )
    return None


def serial_fallback_reason(
    matrix: ScenarioMatrix,
    *,
    keep_results: bool = False,
    observer_factory: Optional[
        Callable[[SweepCell], Sequence[ExecutionObserver]]
    ] = None,
    cache: Optional[PipelineCache] = None,
) -> Optional[str]:
    """Why this sweep must run serially, or ``None`` if it can fan out.

    The returned string is stored verbatim in
    ``SweepStats.parallel_fallback`` so a ``workers > 1`` caller can see
    which rule demoted the sweep.
    """
    return _serial_fallback_reason(
        list(matrix.cells()),
        keep_results=keep_results,
        observer_factory=observer_factory,
        cache=cache,
    )


# ---------------------------------------------------------------------------
# wire format (parent <-> worker), all JSON text
# ---------------------------------------------------------------------------
def _encode_group(
    group: Sequence[SweepCell],
    metrics: Tuple[str, ...],
    lean: bool,
    faults: Optional[FaultPlan] = None,
    attempt: int = 0,
) -> str:
    from ..io.json_io import scenario_to_dict

    # Cells of one group usually share the base scenario's stimulus
    # *object* (axis substitution replaces other fields), and stimuli
    # dominate the payload (the FMS pilot-command stimulus is ~250 KB at
    # 25 frames).  Pool identical stimuli by object identity: each is
    # wired and decoded once per group, and the worker rebinds one shared
    # Stimulus across its cells — which also restores the serial path's
    # per-object `samples_view` memo sharing.
    pool: List[Any] = []
    pool_index: Dict[int, int] = {}
    cells = []
    for cell in group:
        stimulus = cell.scenario.stimulus
        if stimulus is None:
            data = scenario_to_dict(cell.scenario)
        else:
            index = pool_index.get(id(stimulus))
            if index is None:
                data = scenario_to_dict(cell.scenario)
                index = pool_index[id(stimulus)] = len(pool)
                pool.append(data["stimulus"])
            else:
                # Already pooled: encode the scenario without re-encoding
                # the (potentially large) stimulus a second time.
                data = scenario_to_dict(cell.scenario.replace(stimulus=None))
            data["stimulus"] = index
        cells.append({"index": cell.index, "scenario": data})
    plan = (
        None if faults is None
        else faults.restrict([cell.index for cell in group])
    )
    return json.dumps({
        "metrics": list(metrics),
        "lean": lean,
        "stimulus_pool": pool,
        "cells": cells,
        "faults": None if plan is None or plan.is_empty
        else plan.to_jsonable(),
        "attempt": attempt,
    })


def _worker_warmup(index: int) -> int:
    """No-op pool task: forces worker boot before deadline clocks start."""
    return index


def _worker_run_group(payload: str) -> str:
    """Run one schedule-key group in a worker process (spawn target).

    Decodes the scenarios, executes every cell through the same
    :func:`~repro.experiment.sweep._run_cell` path the serial sweep uses
    (with a fresh private :class:`PipelineCache`), and returns the rows'
    metric values plus per-cell error records and the cache counters, all
    as tagged-JSON text.  A raising cell does not abort the group: its
    error joins the reply and the remaining cells still run — the same
    capture semantics as the serial path.
    """
    from ..io.json_io import (
        scenario_from_dict,
        stimulus_from_dict,
        value_to_jsonable,
    )
    from .sweep import DATA_METRICS

    data = json.loads(payload)
    metrics = tuple(data["metrics"])
    lean = bool(data["lean"])
    attempt = int(data.get("attempt", 0))
    plan_data = data.get("faults")
    plan = None if plan_data is None else FaultPlan.from_jsonable(plan_data)
    stimuli = [stimulus_from_dict(s) for s in data.get("stimulus_pool", ())]
    want_data = any(name in DATA_METRICS for name in metrics)
    cache = PipelineCache()
    rows = []
    errors = []
    for item in data["cells"]:
        scenario_data = dict(item["scenario"])
        stimulus_ref = scenario_data.get("stimulus")
        if stimulus_ref is not None:
            scenario_data["stimulus"] = None
        scenario = scenario_from_dict(scenario_data)
        if stimulus_ref is not None:
            scenario = scenario.replace(stimulus=stimuli[stimulus_ref])
        cell = SweepCell(index=int(item["index"]), coords=(), scenario=scenario)
        try:
            apply_cell_faults(plan, cell.index, in_worker=True)
            cell_metrics, _ = _run_cell(
                cell, metrics, want_data,
                lean=lean, keep_results=False, cache=cache,
            )
        except Exception as exc:
            errors.append({
                "index": cell.index,
                "error": {
                    "type": type(exc).__name__,
                    "message": str(exc),
                    "stage": getattr(exc, "_pipeline_stage", "run"),
                    "retries": attempt,
                },
            })
            continue
        rows.append({
            "index": cell.index,
            "metrics": {
                name: value_to_jsonable(value)
                for name, value in cell_metrics.items()
            },
        })
    return json.dumps({
        "rows": rows,
        "errors": errors,
        "stats": {
            "runs": len(rows),
            "networks_built": cache.networks_built,
            "derivations_computed": cache.derivations_computed,
            "schedules_computed": cache.schedules_computed,
        },
    })


# ---------------------------------------------------------------------------
# supervisor
# ---------------------------------------------------------------------------
@dataclass
class _GroupState:
    """One schedule-key group's dispatch bookkeeping in the supervisor."""

    gid: int
    cells: List[SweepCell]
    #: Budget-charged redispatches so far (crash / timeout recovery).
    attempt: int = 0
    #: Monotonic time before which the group must not be redispatched
    #: (exponential backoff after a charged retry).
    not_before: float = 0.0

    @property
    def indices(self) -> List[int]:
        return [cell.index for cell in self.cells]


def _pool_pids(pool: Any) -> Optional[Set[int]]:
    """The pids of the pool's live workers, or ``None`` if unreadable.

    ``Pool`` keeps its worker ``Process`` objects in the private ``_pool``
    list (stable across CPython versions, but guarded anyway: with no pid
    set, crash detection is disabled and deadlines are the only recovery
    trigger).  A worker that died shows up as a *missing* pid — the pool's
    maintenance thread reaps it and respawns a replacement — which is the
    only portable signal, because a plain ``Pool`` silently loses the
    dead worker's task instead of failing its ``AsyncResult``.
    """
    processes = getattr(pool, "_pool", None)
    if processes is None:
        return None
    try:
        return {p.pid for p in processes if p.is_alive()}
    except Exception:
        return None


class _Supervisor:
    """Per-group ``apply_async`` dispatch with crash/timeout recovery.

    Owns the pool: dispatches at most ``n_workers`` groups at a time (so
    a dispatch timestamp is also a start timestamp and deadlines mean
    per-group *runtime*), polls for replies, watches the worker pid set
    for crashes, and terminates/respawns the pool to requeue unfinished
    groups — bounded by each group's retry budget, with exponential
    backoff between a group's attempts.
    """

    def __init__(
        self,
        merge: Callable[[str, int], List[int]],
        metrics: Tuple[str, ...],
        lean: bool,
        n_workers: int,
        faults: Optional[FaultPlan],
        group_timeout: Optional[float],
        max_retries: int,
        retry_backoff: float,
        stats: SweepStats,
        errors_by_index: Dict[int, SweepCellError],
    ) -> None:
        self._merge = merge
        self._metrics = metrics
        self._lean = lean
        self.n_workers = n_workers
        self._plan = faults
        self._group_timeout = group_timeout
        self._max_retries = max_retries
        self._retry_backoff = retry_backoff
        self._stats = stats
        self._errors = errors_by_index
        self._pending: List[_GroupState] = []
        # gid -> (state, AsyncResult, deadline | None)
        self._inflight: Dict[int, Tuple[_GroupState, Any, Optional[float]]] = {}

    # -- pool lifecycle -------------------------------------------------
    def _spawn_pool(self) -> None:
        import multiprocessing

        ctx = multiprocessing.get_context("spawn")
        self._pool = ctx.Pool(processes=self.n_workers)
        if self._group_timeout is not None:
            # Deadlines start at dispatch, so absorb the worker boot
            # latency (spawned interpreters take ~a second each) first —
            # otherwise a tight timeout measures spawn, not the group.
            self._pool.map(
                _worker_warmup, range(self.n_workers), chunksize=1
            )
        self._pids = _pool_pids(self._pool)

    def _respawn_pool(self) -> None:
        self._pool.terminate()
        self._pool.join()
        self._spawn_pool()

    def shutdown(self, *, graceful: bool) -> None:
        if graceful:
            self._pool.close()
        else:
            self._pool.terminate()
        self._pool.join()

    # -- supervisor steps -----------------------------------------------
    def _dispatch_ready(self, now: float) -> None:
        for state in [s for s in self._pending if s.not_before <= now]:
            if len(self._inflight) >= self.n_workers:
                break
            self._pending.remove(state)
            payload = _encode_group(
                state.cells, self._metrics, self._lean,
                faults=self._plan, attempt=state.attempt,
            )
            result = self._pool.apply_async(_worker_run_group, (payload,))
            deadline = (
                None if self._group_timeout is None
                else now + self._group_timeout
            )
            self._inflight[state.gid] = (state, result, deadline)

    def _collect_ready(self, *, fire_interrupts: bool) -> bool:
        """Merge every completed in-flight reply; True if any merged."""
        done = [
            gid for gid, (_, result, _) in self._inflight.items()
            if result.ready()
        ]
        for gid in done:
            state, result, _ = self._inflight.pop(gid)
            try:
                reply = result.get()
            except Exception as exc:
                # The worker function itself failed (decode error, ...):
                # no per-cell attribution possible, the whole group
                # degrades to error rows.
                self._fail_group(state, exc)
                continue
            self._merge(reply, state.attempt)
            if (
                fire_interrupts
                and self._plan is not None
                and any(
                    i in self._plan.interrupt_at for i in state.indices
                )
            ):
                raise KeyboardInterrupt
        return bool(done)

    def _fail_group(
        self,
        state: _GroupState,
        exc: BaseException,
        retries: Optional[int] = None,
    ) -> None:
        """Degrade every cell of *state* to an error row for *exc*."""
        error = _cell_error(
            exc, retries=state.attempt if retries is None else retries
        )
        for index in state.indices:
            self._errors[index] = error
            self._stats.failed_cells += 1

    def _requeue(
        self, state: _GroupState, now: float, exc_type: type, what: str
    ) -> None:
        """Charge one retry to *state*; requeue it or exhaust its budget."""
        state.attempt += 1
        if state.attempt > self._max_retries:
            # ``retries`` records redispatches actually performed — the
            # exhausting event happened on the last permitted attempt.
            self._fail_group(
                state,
                exc_type(
                    f"{what}; retry budget exhausted after "
                    f"{self._max_retries} redispatches"
                ),
                retries=self._max_retries,
            )
            return
        self._stats.retries += 1
        if self._plan is not None:
            # The fault that (presumably) fired consumed one firing: a
            # transient (times=1) kill/delay lets the retry succeed.
            self._plan = self._plan.decrement(state.indices)
        state.not_before = (
            now + self._retry_backoff * 2 ** (state.attempt - 1)
        )
        self._pending.append(state)

    def _check_crash(self, now: float) -> bool:
        """Detect dead workers; respawn and requeue unfinished groups."""
        if self._pids is None:
            return False
        current = _pool_pids(self._pool)
        if current is None or self._pids <= current:
            self._pids = current if current is not None else self._pids
            return False
        # Some worker died.  Its task is silently lost, and the crash
        # cannot be attributed to one group, so: drain what finished,
        # give surviving workers a grace period to complete their groups
        # (down to the one unfinishable lost task), then charge every
        # still-unfinished group one retry and start over with a fresh
        # pool.
        self._collect_ready(fire_interrupts=True)
        grace_end = time.monotonic() + _CRASH_GRACE
        while len(self._inflight) > 1 and time.monotonic() < grace_end:
            time.sleep(_POLL_INTERVAL)
            self._collect_ready(fire_interrupts=True)
        unfinished = list(self._inflight.values())
        self._inflight.clear()
        for state, _, _ in unfinished:
            self._requeue(
                state, now, WorkerCrashError,
                "a sweep worker process died mid-group",
            )
        self._respawn_pool()
        return True

    def _check_timeouts(self, now: float) -> bool:
        """Terminate and retry groups that blew their deadline."""
        timed_out = [
            gid for gid, (_, result, deadline) in self._inflight.items()
            if deadline is not None and now > deadline and not result.ready()
        ]
        if not timed_out:
            return False
        self._collect_ready(fire_interrupts=True)
        # Terminating the pool is the only portable way to stop a wedged
        # task, so innocent in-flight groups requeue too — but free of
        # charge and without backoff: only the timed-out groups pay.
        unfinished = list(self._inflight.values())
        self._inflight.clear()
        for state, _, _ in unfinished:
            if state.gid in timed_out:
                self._requeue(
                    state, now, SweepTimeoutError,
                    f"group exceeded its {self._group_timeout}s deadline",
                )
            else:
                self._pending.append(state)
        self._respawn_pool()
        return True

    # -- main loop ------------------------------------------------------
    def run(self, groups: Sequence[Sequence[SweepCell]]) -> None:
        """Supervise *groups* to completion (or KeyboardInterrupt).

        On interrupt, completed replies are drained into the result, the
        pool is terminated (no orphaned workers) and ``stats.interrupted``
        is set; the partial result is the caller's to assemble.
        """
        self._pending = [
            _GroupState(gid=i, cells=list(group))
            for i, group in enumerate(groups)
        ]
        self._spawn_pool()
        try:
            while self._pending or self._inflight:
                now = time.monotonic()
                self._dispatch_ready(now)
                if self._collect_ready(fire_interrupts=True):
                    continue
                if self._check_crash(now):
                    continue
                if self._check_timeouts(now):
                    continue
                time.sleep(_POLL_INTERVAL)
            self.shutdown(graceful=True)
        except KeyboardInterrupt:
            self._stats.interrupted = True
            try:
                self._collect_ready(fire_interrupts=False)
            finally:
                self.shutdown(graceful=False)
        except BaseException:
            self.shutdown(graceful=False)
            raise


def run_sweep_parallel(
    matrix: ScenarioMatrix,
    metrics: Tuple[str, ...],
    want_data: bool,
    *,
    lean: bool,
    workers: int,
    cells: Optional[Sequence[SweepCell]] = None,
    store: Optional[SweepStore] = None,
    faults: Optional[FaultPlan] = None,
    on_error: str = "capture",
    group_timeout: Optional[float] = None,
    max_retries: int = 2,
    retry_backoff: float = 0.25,
) -> SweepResult:
    """Fan the matrix's schedule-key groups out across worker processes.

    ``run_sweep`` calls this only after :func:`serial_fallback_reason`
    returned ``None`` (passing the cells it already enumerated); callers
    should go through ``run_sweep(workers=N)`` rather than here.
    """
    from ..io.json_io import value_from_jsonable

    if workers < 2:
        raise ModelError("run_sweep_parallel needs workers >= 2")
    # Cell-mode conflicts (records_only base vs data metrics) are checked
    # up front so they raise identically to the serial path, before any
    # process is spawned.
    if cells is None:
        cells = list(matrix.cells())
    for cell in cells:
        _check_cell_modes(cell, metrics, want_data)

    stats = SweepStats(cells=len(matrix), workers=1, parallel_fallback=None)
    metrics_by_index: Dict[int, Dict[str, Any]] = {}
    errors_by_index: Dict[int, SweepCellError] = {}

    # The parent owns the store: hits are resolved before any dispatch
    # (hit cells never reach a worker) and computed rows are persisted as
    # their group replies merge — workers stay store-free.
    skey_by_index: Dict[int, str] = {}
    mkey = metrics_key(metrics) if store is not None else ""
    compute_cells: List[SweepCell] = []
    for cell in cells:
        if store is not None:
            skey = store_key(cell.scenario)
            if skey is not None:
                skey_by_index[cell.index] = skey
                stored = store.get(skey, mkey)
                if stored is not None:
                    stats.store_hits += 1
                    metrics_by_index[cell.index] = stored
                    continue
                stats.store_misses += 1
        compute_cells.append(cell)

    if compute_cells:
        def merge_reply(reply: str, attempt: int) -> List[int]:
            data = json.loads(reply)
            merged = []
            for row in data["rows"]:
                index = int(row["index"])
                cell_metrics = {
                    name: value_from_jsonable(value)
                    for name, value in row["metrics"].items()
                }
                metrics_by_index[index] = cell_metrics
                merged.append(index)
                if store is not None and index in skey_by_index:
                    store.put(skey_by_index[index], mkey, cell_metrics)
            for item in data.get("errors", ()):
                error = item["error"]
                errors_by_index[int(item["index"])] = SweepCellError(
                    error_type=error["type"],
                    message=error["message"],
                    stage=error.get("stage", "run"),
                    retries=int(error.get("retries", 0)),
                )
                stats.failed_cells += 1
            worker_stats = data["stats"]
            stats.runs += int(worker_stats["runs"])
            stats.networks_built += int(worker_stats["networks_built"])
            stats.derivations_computed += int(
                worker_stats["derivations_computed"]
            )
            stats.schedules_computed += int(
                worker_stats["schedules_computed"]
            )
            return merged

        groups = _group_cells(compute_cells)
        stats.workers = min(workers, len(groups))
        supervisor = _Supervisor(
            merge_reply, metrics, lean, stats.workers,
            faults, group_timeout, max_retries, retry_backoff,
            stats, errors_by_index,
        )
        supervisor.run(groups)

    # Rows come back grouped by schedule key; the table is in cell order.
    # Interrupted sweeps only have the drained groups' rows — cells never
    # merged appear in neither list.
    rows = [
        SweepRow(cell=dict(cell.coords), metrics=metrics_by_index[cell.index])
        for cell in cells
        if cell.index in metrics_by_index
    ]
    failed_rows = [
        SweepRow(
            cell=dict(cell.coords), metrics={},
            error=errors_by_index[cell.index],
        )
        for cell in cells
        if cell.index in errors_by_index
    ]
    result = SweepResult(
        axes=dict(matrix.axes), metrics=metrics, rows=rows, stats=stats,
        failed_rows=failed_rows,
    )
    if on_error == "raise" and failed_rows:
        first = failed_rows[0]
        raise SweepError(
            f"sweep cell {first.cell!r} failed — {first.error.describe()}"
        )
    return result
