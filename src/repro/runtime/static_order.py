"""The online static-order policy: frame plan and sporadic-arrival binding.

Section IV: the online policy repeats the static schedule's frame with
period ``H``.  Jobs are bound to processors by the static mapping ``μi``;
on each processor, *only the order* of the static start times ``si`` is kept
(start times themselves are not robust against WCET estimation error).  Each
round on a processor:

1. **Synchronize Invocation** — wait for the invocation corresponding to the
   current job; for a sporadic (server) job the invocation may come at
   ``Ai``, earlier, or never — in which case the job is marked **false** at
   time ``Ai``;
2. **Synchronize Precedence** — wait for all task-graph predecessors mapped
   to other processors;
3. **Execute** — unless marked false.

This module computes the *frame plan* (per-processor static orders plus
per-job metadata the executor needs) and implements the binding of real
sporadic arrivals to server-job slots, including the boundary rule: a real
job arriving exactly at a window boundary ``b`` belongs to the window ending
at ``b`` iff ``p -> u(p)`` (window ``(a, b]``), else to the next window
(window ``[a, b)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from itertools import chain

from ..errors import RuntimeModelError
from ..core.invocations import Stimulus
from ..core.network import Network
from ..core.ticks import TickDomain
from ..core.timebase import Time, TimeLike, as_positive_time
from ..taskgraph.graph import TaskGraph
from ..taskgraph.servers import ServerSpec, transform
from ..scheduling.schedule import StaticSchedule


@dataclass(frozen=True)
class BoundArrival:
    """One real sporadic arrival bound to a server-job slot.

    ``global_k`` is the arrival's 1-based index over the whole run — the
    invocation count the zero-delay semantics would use, so runtime and
    reference executions agree on sample indices.
    """

    process: str
    time: Time
    global_k: int
    frame: int
    subset: int
    slot: int


class ArrivalBinding:
    """Maps every real sporadic arrival to ``(frame, subset, slot)``.

    The binding is a pure function of the arrival trace and the server
    specs — independent of scheduling — which is what makes the policy
    deterministic (Prop. 4.1).
    """

    def __init__(
        self,
        network: Network,
        hyperperiod: Time,
        n_frames: int,
        stimulus: Stimulus,
    ) -> None:
        if n_frames < 1:
            raise RuntimeModelError("need at least one frame")
        pn = transform(network)
        self.hyperperiod = hyperperiod
        self.n_frames = n_frames
        self._slots: Dict[Tuple[str, int, int, int], BoundArrival] = {}
        self._dropped: List[BoundArrival] = []
        arrivals_by_name = {
            name: sorted(stimulus.arrivals_for(name)) for name in pn.servers
        }
        # One tick domain over every period and arrival: the per-arrival
        # window arithmetic below is pure integer floor division.
        dom = TickDomain.for_values(chain(
            (hyperperiod,),
            (spec.period for spec in pn.servers.values()),
            (t for arr in arrivals_by_name.values() for t in arr),
        ))
        H_t = dom.to_ticks(hyperperiod)
        for name, spec in pn.servers.items():
            self._bind_process(name, spec, arrivals_by_name[name], dom, H_t)

    # ------------------------------------------------------------------
    def _bind_process(
        self,
        name: str,
        spec: ServerSpec,
        arrivals: Sequence[Time],
        dom: TickDomain,
        H_t: int,
    ) -> None:
        horizon_t = H_t * self.n_frames
        T_t = dom.to_ticks(spec.period)
        to_ticks = dom.to_ticks
        closed_right = spec.boundary_closed_right
        per_window: Dict[Tuple[int, int], List[BoundArrival]] = {}
        for global_k, t in enumerate(arrivals, start=1):
            t_t = to_ticks(t)
            frame, subset = _window_of_ticks(t_t, T_t, H_t, closed_right)
            bound = BoundArrival(name, t, global_k, frame, subset, slot=0)
            if frame >= self.n_frames or t_t >= horizon_t:
                self._dropped.append(bound)
                continue
            per_window.setdefault((frame, subset), []).append(bound)
        for (frame, subset), items in per_window.items():
            if len(items) > spec.burst:
                raise RuntimeModelError(
                    f"{len(items)} arrivals of {name!r} bound to one server "
                    f"window but burst size is {spec.burst} — the arrival "
                    "trace violates the sporadic constraint"
                )
            for slot, bound in enumerate(sorted(items, key=lambda b: (b.time, b.global_k)), 1):
                key = (name, frame, subset, slot)
                self._slots[key] = BoundArrival(
                    name, bound.time, bound.global_k, frame, subset, slot
                )

    # ------------------------------------------------------------------
    def lookup(
        self, process: str, frame: int, subset: int, slot: int
    ) -> Optional[BoundArrival]:
        """The real arrival served by a server-job slot, or ``None`` (false job)."""
        return self._slots.get((process, frame, subset, slot))

    def dropped(self) -> List[BoundArrival]:
        """Arrivals beyond the simulated horizon (not served by any frame)."""
        return list(self._dropped)

    def served(self) -> List[BoundArrival]:
        """All bound arrivals, ordered by ``global_k`` per process."""
        return sorted(self._slots.values(), key=lambda b: (b.process, b.global_k))


def _window_of_ticks(
    t_t: int, T_t: int, H_t: int, closed_right: bool
) -> Tuple[int, int]:
    """The (frame, subset) whose server window contains arrival tick ``t_t``.

    ``closed_right`` selects the boundary rule of Section IV: a window
    ``(b - T, b]`` keeps a boundary arrival (``b`` = smallest multiple of
    ``T`` with ``b >= t``), a window ``[b - T, b)`` defers it (``b`` =
    smallest multiple strictly greater than ``t``).
    """
    if closed_right:
        b_index = -(-t_t // T_t)  # ceil
    else:
        b_index = t_t // T_t + 1
    b_t = b_index * T_t
    frame = b_t // H_t
    subset = (b_t - frame * H_t) // T_t + 1
    return frame, subset


def served_horizon(network: Network, hyperperiod: Time, n_frames: int) -> Time:
    """Latest time up to which every sporadic arrival is served in-frame.

    A finite simulation of ``n_frames`` frames serves, for each sporadic
    process, only the server windows whose subset arrives within the
    simulated frames; the last subset of the last frame arrives at
    ``n_frames*H - T'`` and serves the window ending there.  Arrivals later
    than that are deferred to unsimulated frames (the runtime would handle
    them in frame ``n_frames``), so equivalence comparisons against the
    zero-delay semantics must truncate stimuli at this horizon.

    Returns ``n_frames * H`` when the network has no sporadic processes.
    """
    if n_frames < 1:
        raise RuntimeModelError("need at least one frame")
    pn = transform(network)
    horizon = hyperperiod * n_frames
    if not pn.servers:
        return horizon
    margin = max(spec.period for spec in pn.servers.values())
    return horizon - margin


@dataclass(frozen=True)
class PlannedJob:
    """Executor-facing record of one static-schedule entry."""

    job_index: int          # index into the task graph's job list
    processor: int
    static_start: Time      # si — used for ordering only, never for timing


@dataclass
class FramePlan:
    """Per-processor static orders plus job metadata for the executor."""

    graph: TaskGraph
    schedule: StaticSchedule
    orders: List[List[PlannedJob]] = field(default_factory=list)

    @classmethod
    def from_schedule(cls, schedule: StaticSchedule) -> "FramePlan":
        graph = schedule.graph
        orders: List[List[PlannedJob]] = []
        for m in range(schedule.processors):
            row = [
                PlannedJob(i, m, schedule.start(i))
                for i in schedule.processor_order(m)
            ]
            orders.append(row)
        return cls(graph, schedule, orders)

    @property
    def processors(self) -> int:
        return self.schedule.processors

    @property
    def platform(self):
        """The schedule's platform (degenerate for classic int schedules)."""
        return self.schedule.platform

    def processor_of(self, job_index: int) -> int:
        return self.schedule.mapping(job_index)

    def identity_of(self, job_index: int) -> Tuple[str, int]:
        """Concrete ``(class name, local index)`` binding of a job's slot."""
        return self.schedule.processor_identity(job_index)

    def jobs_per_frame(self) -> int:
        return len(self.graph)

    def per_process_count(self) -> Dict[str, int]:
        """Jobs per process per frame (to compute global invocation counts)."""
        counts: Dict[str, int] = {}
        for job in self.graph.jobs:
            counts[job.process] = counts.get(job.process, 0) + 1
        return counts
