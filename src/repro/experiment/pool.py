"""Persistent sweep service: a resident worker pool with warm caches.

:class:`SweepPool` promotes the one-shot parallel sweep backend
(:mod:`repro.experiment.parallel`) into a resident service.  The pool
spawns its worker processes once and keeps them alive across many
:meth:`~SweepPool.submit` calls, so repeated sweep traffic — the
ROADMAP north-star — stops paying the two dominant fixed costs of
``run_sweep(workers=N)``:

* **process spawn**: each spawned interpreter takes ~a second to boot
  and re-import :mod:`repro`; a resident pool pays it once per worker
  slot, not once per sweep (``SweepStats.pool_reused`` tells a
  submission it ran on an already-warm pool);
* **stage recomputation**: workers retain warm state between sweeps — a
  :class:`~repro.experiment.experiment.PipelineCache` per
  ``schedule_key`` plus decoded :class:`Scenario` / :class:`Stimulus`
  payloads keyed by content hash — so a resubmitted or overlapping
  matrix pays **zero** new derivations/scheduling passes
  (``SweepStats.warm_group_hits`` / ``payload_cache_hits`` count the
  reuse; the test suite pins the zero).

Warmth only helps if a group reliably lands on the worker that cached
it, which a shared task queue cannot promise.  Each worker therefore
owns a dedicated inbox queue and the pool routes groups by **schedule-
key affinity**: the first dispatch of a key picks a worker (idle first,
growing the pool up to ``workers`` slots on demand) and every later
dispatch of the same key waits for — and reuses — that worker.  Both
worker-side caches are bounded LRUs (``max_cached_groups`` /
``max_cached_payloads``) and :meth:`~SweepPool.evict_caches` clears
them on demand, so resident memory stays flat under churning traffic.

Submissions go through a queue.  :meth:`~SweepPool.submit` enqueues the
matrix's schedule-key groups and returns a :class:`SweepTicket`
immediately; multiple pending matrices interleave at group granularity
(the pending queue is FIFO over *groups*, not submissions), rows stream
back through the ``on_row`` callback as cells complete, and
``ticket.result()`` drives the pool until its submission finishes.

Everything the one-shot backend guarantees carries over, because the
pool reuses the same wire format and the same per-cell execution path
(:func:`repro.experiment.sweep._run_cell`):

* rows are **bit-identical** to a serial ``run_sweep`` of the matrix;
* checkpoint-store hits are resolved parent-side before dispatch
  (workers stay store-free) and computed rows are persisted as replies
  merge;
* the supervisor is rehosted onto the resident pool: a worker that dies
  is respawned *into its slot* (the dedicated queues make crash
  attribution exact — only the dead worker's group is charged a retry),
  per-group deadlines terminate and retry wedged groups with
  exponential backoff up to ``max_retries``, and ``KeyboardInterrupt``
  drains completed replies, tears the workers down (no orphans) and
  returns the partial result with ``stats.interrupted`` set;
* deterministic :class:`~repro.experiment.faults.FaultPlan` injection
  works per submission, exactly as under ``run_sweep(faults=...)``.

``run_sweep(workers=N)`` itself is now a thin wrapper that opens a
transient ``SweepPool`` for one submission, so the one-shot path stays
behaviourally identical while sharing this implementation.

Spawn's usual rule applies: a *script* using a ``SweepPool`` at import
time must guard it with ``if __name__ == "__main__":`` (workers use the
spawn start method unconditionally and re-import the main module).
"""

from __future__ import annotations

import hashlib
import json
import queue as _queue_mod
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import (
    ModelError,
    SweepError,
    SweepTimeoutError,
    WorkerCrashError,
)
from .experiment import PipelineCache
from .faults import FaultPlan, apply_cell_faults
from .store import SweepStore, metrics_key, store_key
from .sweep import (
    DEFAULT_METRICS,
    ScenarioMatrix,
    SweepCell,
    SweepCellError,
    SweepResult,
    SweepRow,
    SweepStats,
    _cell_error,
    _check_cell_modes,
    _check_metrics,
    _run_cell,
)

__all__ = ["PoolEvent", "SweepPool", "SweepTicket"]

#: Supervisor poll period [s]: how long a collect blocks for replies
#: before re-checking dispatch, crashes and deadlines.
_POLL_INTERVAL = 0.02


def _payload_hash(data: Any) -> str:
    """Content hash of a JSON-able payload (canonical encoding)."""
    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class PoolEvent:
    """One milestone in a submission's lifecycle (telemetry stream).

    Emitted to the ``on_progress`` callback of :meth:`SweepPool.submit`
    at group granularity — the complement of the per-cell ``on_row``
    stream.  Delivery is **best-effort**: a raising progress sink is
    swallowed and never perturbs the sweep (unlike ``on_row``, whose
    errors are surfaced after bookkeeping — rows are data, progress is
    telemetry).

    ``kind`` is one of ``"store-hits"`` (cells resolved from the
    checkpoint store at submit), ``"enqueued"`` (groups queued behind
    the pending queue), ``"dispatch"`` (group handed to a worker slot),
    ``"group-done"`` (reply merged), ``"group-failed"`` (retry budget
    exhausted — detail carries the error), ``"retry"`` (group requeued
    after a crash/timeout) and ``"finished"`` (submission complete).
    """

    kind: str
    gid: Optional[int] = None
    cells: int = 0
    groups: int = 0
    detail: str = ""


# ---------------------------------------------------------------------------
# wire format (parent <-> worker), all JSON text
# ---------------------------------------------------------------------------
def _encode_service_group(
    group: Sequence[SweepCell],
    metrics: Tuple[str, ...],
    lean: bool,
    faults: Optional[FaultPlan] = None,
    attempt: int = 0,
) -> str:
    """One group as wire JSON, with content hashes for the warm caches.

    Stimuli are pooled by object identity (cells of a group usually
    share the base scenario's stimulus, and stimuli dominate the
    payload) and every scenario body / pooled stimulus carries its
    content hash, so a worker that already decoded the same bytes in an
    earlier sweep reuses the decoded object instead of re-parsing it.
    The scenario hash is computed over the stimulus-free body — stimulus
    identity is covered by the pool entry's own hash.
    """
    from ..io.json_io import scenario_to_dict

    pool: List[Dict[str, Any]] = []
    pool_index: Dict[int, int] = {}
    cells = []
    for cell in group:
        stimulus = cell.scenario.stimulus
        if stimulus is None:
            data = scenario_to_dict(cell.scenario)
            data.pop("stimulus", None)
            stim_ref = None
        else:
            stim_ref = pool_index.get(id(stimulus))
            if stim_ref is None:
                data = scenario_to_dict(cell.scenario)
                stim_ref = pool_index[id(stimulus)] = len(pool)
                stim_data = data.pop("stimulus")
                pool.append(
                    {"hash": _payload_hash(stim_data), "data": stim_data}
                )
            else:
                # Already pooled: encode the scenario without re-encoding
                # the (potentially large) stimulus a second time.
                data = scenario_to_dict(cell.scenario.replace(stimulus=None))
                data.pop("stimulus", None)
        cells.append({
            "index": cell.index,
            "scenario": data,
            "hash": _payload_hash(data),
            "stimulus": stim_ref,
        })
    plan = (
        None if faults is None
        else faults.restrict([cell.index for cell in group])
    )
    return json.dumps({
        "metrics": list(metrics),
        "lean": lean,
        "stimulus_pool": pool,
        "cells": cells,
        "faults": None if plan is None or plan.is_empty
        else plan.to_jsonable(),
        "attempt": attempt,
    })


class _WorkerCaches:
    """The warm state a resident worker keeps between sweeps.

    Three bounded LRUs: one :class:`PipelineCache` per schedule key
    (the unit of stage reuse — evicting an entry drops that key's
    network/derivation/schedule in one piece), plus decoded ``Scenario``
    and ``Stimulus`` payloads keyed by content hash.  ``payload_hits``
    and the per-group pipeline hit are reported back with each reply so
    the parent can surface per-sweep reuse in :class:`SweepStats`.
    """

    def __init__(self, max_groups: int, max_payloads: int) -> None:
        self.max_groups = max_groups
        self.max_payloads = max_payloads
        self.pipelines: "OrderedDict[str, PipelineCache]" = OrderedDict()
        self.scenarios: "OrderedDict[str, Any]" = OrderedDict()
        self.stimuli: "OrderedDict[str, Any]" = OrderedDict()
        self.payload_hits = 0

    def begin_group(self) -> None:
        self.payload_hits = 0

    def clear(self) -> None:
        self.pipelines.clear()
        self.scenarios.clear()
        self.stimuli.clear()

    def pipeline(self, key: str) -> Tuple[PipelineCache, bool]:
        cache = self.pipelines.get(key)
        if cache is not None:
            self.pipelines.move_to_end(key)
            return cache, True
        cache = PipelineCache()
        self.pipelines[key] = cache
        while len(self.pipelines) > self.max_groups:
            self.pipelines.popitem(last=False)
        return cache, False

    def _memo(
        self, table: "OrderedDict[str, Any]", key: str,
        decode: Callable[[], Any],
    ) -> Any:
        value = table.get(key)
        if value is not None:
            table.move_to_end(key)
            self.payload_hits += 1
            return value
        value = decode()
        table[key] = value
        while len(table) > self.max_payloads:
            table.popitem(last=False)
        return value

    def scenario(self, key: str, data: Dict[str, Any]) -> Any:
        from ..io.json_io import scenario_from_dict

        return self._memo(self.scenarios, key,
                          lambda: scenario_from_dict(data))

    def stimulus(self, key: str, data: Any) -> Any:
        from ..io.json_io import stimulus_from_dict

        return self._memo(self.stimuli, key,
                          lambda: stimulus_from_dict(data))


def _service_run_group(payload: str, caches: _WorkerCaches) -> str:
    """Run one schedule-key group against the worker's warm caches.

    Identical execution semantics to the one-shot backend — every cell
    goes through :func:`~repro.experiment.sweep._run_cell`, a raising
    cell becomes an error record while the rest of the group still runs
    — but the :class:`PipelineCache` is fetched from (or installed
    into) the per-schedule-key LRU, and scenario/stimulus decoding is
    skipped when the content hash hits.  The reply's stats report cache
    counter *deltas*, so a warm group contributes exactly zero
    derivations/schedules to the sweep's totals.
    """
    from ..io.json_io import value_to_jsonable
    from .sweep import DATA_METRICS

    data = json.loads(payload)
    metrics = tuple(data["metrics"])
    lean = bool(data["lean"])
    attempt = int(data.get("attempt", 0))
    plan_data = data.get("faults")
    plan = None if plan_data is None else FaultPlan.from_jsonable(plan_data)
    want_data = any(name in DATA_METRICS for name in metrics)

    caches.begin_group()
    stimuli = [
        caches.stimulus(entry["hash"], entry["data"])
        for entry in data.get("stimulus_pool", ())
    ]
    cells = []
    for item in data["cells"]:
        scenario = caches.scenario(item["hash"], item["scenario"])
        stim_ref = item.get("stimulus")
        if stim_ref is not None:
            scenario = scenario.replace(stimulus=stimuli[stim_ref])
        cells.append(
            SweepCell(index=int(item["index"]), coords=(), scenario=scenario)
        )

    # All cells of a group share one schedule key by construction; repr
    # is a stable worker-local identity for it (the cache never leaves
    # this process).
    cache_key = repr(cells[0].scenario.schedule_key()) if cells else ""
    cache, warm = caches.pipeline(cache_key)
    nets0 = cache.networks_built
    derivs0 = cache.derivations_computed
    scheds0 = cache.schedules_computed

    rows = []
    errors = []
    for cell in cells:
        try:
            apply_cell_faults(plan, cell.index, in_worker=True)
            cell_metrics, _ = _run_cell(
                cell, metrics, want_data,
                lean=lean, keep_results=False, cache=cache,
            )
        except Exception as exc:
            errors.append({
                "index": cell.index,
                "error": {
                    "type": type(exc).__name__,
                    "message": str(exc),
                    "stage": getattr(exc, "_pipeline_stage", "run"),
                    "retries": attempt,
                },
            })
            continue
        rows.append({
            "index": cell.index,
            "metrics": {
                name: value_to_jsonable(value)
                for name, value in cell_metrics.items()
            },
        })
    return json.dumps({
        "rows": rows,
        "errors": errors,
        "stats": {
            "runs": len(rows),
            "networks_built": cache.networks_built - nets0,
            "derivations_computed": cache.derivations_computed - derivs0,
            "schedules_computed": cache.schedules_computed - scheds0,
            "group_cache_hit": warm,
            "payload_hits": caches.payload_hits,
        },
    })


def _service_worker(
    index: int, inbox: Any, outbox: Any,
    max_cached_groups: int, max_cached_payloads: int,
) -> None:
    """Resident worker main loop (spawn target).

    Announces readiness (the parent starts deadline clocks only after
    the boot, so a tight ``group_timeout`` measures group runtime, not
    interpreter spawn), then serves ``run`` / ``evict`` messages until
    ``stop``.  Warm state lives in :class:`_WorkerCaches` and survives
    across messages — that persistence *is* the service.
    """
    caches = _WorkerCaches(max_cached_groups, max_cached_payloads)
    try:
        outbox.put(("ready", index, None))
        while True:
            message = inbox.get()
            kind = message[0]
            if kind == "stop":
                return
            if kind == "evict":
                caches.clear()
                continue
            if kind == "run":
                _, job_id, payload = message
                reply = _service_run_group(payload, caches)
                outbox.put(("reply", index, (job_id, reply)))
    except (KeyboardInterrupt, EOFError):
        return


# ---------------------------------------------------------------------------
# parent-side bookkeeping
# ---------------------------------------------------------------------------
@dataclass
class _Submission:
    """One submitted matrix: its cells, options and accumulating result."""

    sid: int
    axes: Dict[str, Tuple[Any, ...]]
    cells: List[SweepCell]
    metrics: Tuple[str, ...]
    want_data: bool
    lean: bool
    stats: SweepStats
    on_error: str
    on_row: Optional[Callable[[SweepRow], None]]
    on_progress: Optional[Callable[[PoolEvent], None]]
    group_timeout: Optional[float]
    max_retries: int
    retry_backoff: float
    faults: Optional[FaultPlan] = None
    store: Optional[SweepStore] = None
    #: Fair-scheduling tag: the pending-group queue round-robins across
    #: distinct client tags, FIFO within a tag (``None`` is a tag too).
    client: Optional[str] = None
    mkey: str = ""
    skey_by_index: Dict[int, str] = field(default_factory=dict)
    metrics_by_index: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    errors_by_index: Dict[int, SweepCellError] = field(default_factory=dict)
    outstanding: int = 0
    finished: bool = False
    cancelled: bool = False
    result: Optional[SweepResult] = None


@dataclass
class _PoolGroup:
    """One schedule-key group's dispatch bookkeeping."""

    gid: int
    submission: _Submission
    cells: List[SweepCell]
    key: Any
    #: Budget-charged redispatches so far (crash / timeout recovery).
    attempt: int = 0
    #: Monotonic time before which the group must not be redispatched.
    not_before: float = 0.0

    @property
    def indices(self) -> List[int]:
        return [cell.index for cell in self.cells]


class _WorkerSlot:
    """Parent-side record of one resident worker process."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: Any = None
        self.inbox: Any = None
        self.ready = False
        self.current: Optional[_PoolGroup] = None
        self.job_id: Optional[int] = None
        self.deadline: Optional[float] = None

    @property
    def idle(self) -> bool:
        return self.current is None


class SweepTicket:
    """Handle for one :meth:`SweepPool.submit` call.

    ``result()`` drives the pool until the submission finishes and
    returns its :class:`SweepResult` (subsequent calls return the same
    object); ``cancel()`` withdraws groups not yet dispatched.  Rows
    stream through the submission's ``on_row`` callback as replies
    merge, in completion order — the final result is in cell order.
    """

    def __init__(self, pool: "SweepPool", submission: _Submission) -> None:
        self._pool = pool
        self._submission = submission

    @property
    def done(self) -> bool:
        """True once every group finished (or was cancelled/failed)."""
        return self._submission.finished

    @property
    def cancelled(self) -> bool:
        return self._submission.cancelled

    def cancel(self) -> bool:
        """Withdraw the submission's not-yet-dispatched groups.

        Groups already running complete normally and their rows are
        kept; everything still queued is dropped.  The result becomes a
        partial table with ``stats.interrupted`` set (the same shape an
        interrupted sweep returns).  Returns ``True`` if anything was
        actually withdrawn.
        """
        return self._pool._cancel(self._submission)

    def result(self) -> SweepResult:
        """Drive the pool until this submission completes; its table."""
        sub = self._submission
        if not sub.finished:
            self._pool._pump(sub)
        if sub.result is None:
            sub.result = self._pool._assemble(sub)
        if sub.on_error == "raise" and sub.result.failed_rows:
            first = sub.result.failed_rows[0]
            raise SweepError(
                f"sweep cell {first.cell!r} failed — "
                f"{first.error.describe()}"
            )
        return sub.result


class SweepPool:
    """Resident sweep service: spawn once, stay warm, stream rows.

    Parameters
    ----------
    workers:
        Maximum resident worker processes.  Slots are spawned lazily as
        groups demand them (a submission fully served by its checkpoint
        store spawns nothing) and then stay alive until :meth:`close`.
    group_timeout, max_retries, retry_backoff:
        Pool-wide supervision defaults, overridable per ``submit``;
        semantics identical to :func:`~repro.experiment.sweep.run_sweep`.
    max_cached_groups, max_cached_payloads:
        Bounds of each worker's warm LRUs (pipeline caches per schedule
        key / decoded payloads by content hash).

    The pool is a context manager; ``with SweepPool(...) as pool:``
    guarantees the workers are torn down (no orphan processes) on exit.
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        group_timeout: Optional[float] = None,
        max_retries: int = 2,
        retry_backoff: float = 0.25,
        max_cached_groups: int = 8,
        max_cached_payloads: int = 64,
    ) -> None:
        if workers < 1:
            raise ModelError("SweepPool needs workers >= 1")
        if max_retries < 0:
            raise ModelError("max_retries must be >= 0")
        if retry_backoff < 0:
            raise ModelError("retry_backoff must be >= 0")
        if max_cached_groups < 1 or max_cached_payloads < 1:
            raise ModelError("worker cache bounds must be >= 1")
        self.workers = workers
        self.group_timeout = group_timeout
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.max_cached_groups = max_cached_groups
        self.max_cached_payloads = max_cached_payloads
        self._slots: List[_WorkerSlot] = []
        #: schedule_key -> slot index; the routing table that guarantees
        #: a resubmitted group reaches the worker holding its warm cache.
        self._affinity: Dict[Any, int] = {}
        self._pending: List[_PoolGroup] = []
        #: The client tag served by the most recent dispatch — the
        #: round-robin cursor of the fair scheduler (see `_dispatch_next`).
        self._last_client: Optional[str] = None
        self._outbox: Any = None
        self._ctx: Any = None
        self._next_sid = 0
        self._next_gid = 0
        self._next_job = 0
        self._closed = False

    # -- lifecycle ------------------------------------------------------
    @property
    def started(self) -> bool:
        """True while at least one resident worker process is alive."""
        return any(
            slot.process is not None and slot.process.is_alive()
            for slot in self._slots
        )

    def __enter__(self) -> "SweepPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close(graceful=exc_info[0] is None)

    def close(self, *, graceful: bool = True) -> None:
        """Shut the service down and reap every worker process.

        ``graceful`` lets in-flight groups finish (their replies are
        discarded); otherwise workers are terminated immediately.
        Unfinished submissions become partial results with
        ``stats.interrupted`` set.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        for group in self._pending:
            self._mark_interrupted(group.submission)
        for slot in self._slots:
            if slot.current is not None:
                self._mark_interrupted(slot.current.submission)
        self._pending.clear()
        for slot in self._slots:
            process = slot.process
            if process is None:
                continue
            if graceful and process.is_alive():
                try:
                    slot.inbox.put(("stop", None, None))
                except Exception:
                    process.terminate()
            else:
                process.terminate()
        for slot in self._slots:
            process = slot.process
            if process is None:
                continue
            process.join(timeout=10.0)
            if process.is_alive():
                process.terminate()
                process.join()
        self._slots = []
        self._affinity.clear()
        self._outbox = None

    def evict_caches(self) -> None:
        """Clear every worker's warm caches (memory back to baseline).

        The workers stay resident — only their cached pipeline stages
        and decoded payloads are dropped, so the next submission pays
        stage computation again but no respawn.
        """
        for slot in self._slots:
            if slot.process is not None and slot.process.is_alive():
                slot.inbox.put(("evict", None, None))

    # -- submission -----------------------------------------------------
    def submit(
        self,
        matrix: ScenarioMatrix,
        metrics: Sequence[str] = DEFAULT_METRICS,
        *,
        lean: bool = True,
        cells: Optional[Sequence[SweepCell]] = None,
        store: Optional[SweepStore] = None,
        faults: Optional[FaultPlan] = None,
        on_error: str = "capture",
        on_row: Optional[Callable[[SweepRow], None]] = None,
        on_progress: Optional[Callable[[PoolEvent], None]] = None,
        group_timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
        retry_backoff: Optional[float] = None,
        client: Optional[str] = None,
    ) -> SweepTicket:
        """Enqueue a matrix; returns a :class:`SweepTicket` immediately.

        Store hits are resolved here, parent-side, before anything is
        dispatched (hit rows stream through ``on_row`` right away and
        never reach a worker).  The remaining cells are enqueued as
        schedule-key groups behind whatever other submissions are
        pending — interleaving is at group granularity.  Nothing
        executes until the pool is driven (``ticket.result()``).

        ``client`` tags the submission for the fair scheduler: the
        pending queue round-robins across distinct client tags (FIFO
        within a tag), so one client's huge matrix cannot starve
        another client's small one.  Untagged submissions all share the
        ``None`` tag, which degenerates to plain FIFO — the pre-service
        behaviour.

        ``on_progress`` receives a best-effort :class:`PoolEvent` stream
        at group granularity (store hits, enqueue, dispatch, done,
        retry, failure, finish) — the live-telemetry complement of the
        per-cell ``on_row`` row stream.

        Every cell must be dispatchable (scenarios that embed code the
        workers cannot reconstruct are refused with
        :class:`~repro.errors.ModelError`); callers wanting the
        serial-fallback behaviour go through ``run_sweep(workers=N)``.
        """
        from .parallel import _group_cells

        if self._closed:
            raise ModelError("SweepPool is closed")
        metrics, want_data = _check_metrics(metrics)
        if on_error not in ("capture", "raise"):
            raise ModelError(
                f"on_error must be 'capture' or 'raise', got {on_error!r}"
            )
        if cells is None:
            cells = list(matrix.cells())
        else:
            cells = list(cells)
        for cell in cells:
            _check_cell_modes(cell, metrics, want_data)
            blocker = cell.scenario.dispatch_blocker()
            if blocker is not None:
                raise ModelError(
                    f"scenario is not dispatchable: {blocker}"
                )

        # Count the cells actually submitted: an explicit ``cells=``
        # subset (a resubmission of failed/missing cells, say) must not
        # report the full matrix size — ``table()``'s "interrupted:
        # N/M cells" line and any hit-rate computed from ``stats.cells``
        # would misreport the subset run.
        stats = SweepStats(
            cells=len(cells), workers=1, parallel_fallback=None,
            pool_reused=self.started,
        )
        submission = _Submission(
            sid=self._next_sid,
            axes=dict(matrix.axes),
            cells=cells,
            metrics=metrics,
            want_data=want_data,
            lean=lean,
            stats=stats,
            on_error=on_error,
            on_row=on_row,
            on_progress=on_progress,
            group_timeout=(
                self.group_timeout if group_timeout is None else group_timeout
            ),
            max_retries=(
                self.max_retries if max_retries is None else max_retries
            ),
            retry_backoff=(
                self.retry_backoff if retry_backoff is None else retry_backoff
            ),
            faults=faults,
            store=store,
            client=client,
        )
        self._next_sid += 1

        # The parent owns the store: hits are resolved before dispatch
        # (hit cells never reach a worker) and computed rows are
        # persisted as group replies merge — workers stay store-free.
        submission.mkey = metrics_key(metrics) if store is not None else ""
        compute_cells: List[SweepCell] = []
        for cell in cells:
            if store is not None:
                skey = store_key(cell.scenario)
                if skey is not None:
                    submission.skey_by_index[cell.index] = skey
                    stored = store.get(skey, submission.mkey)
                    if stored is not None:
                        stats.store_hits += 1
                        submission.metrics_by_index[cell.index] = stored
                        self._stream_row(submission, cell, stored)
                        continue
                    stats.store_misses += 1
            compute_cells.append(cell)
        if stats.store_hits:
            self._notify(submission, "store-hits", cells=stats.store_hits)

        groups = _group_cells(compute_cells)
        stats.workers = min(self.workers, len(groups)) if groups else 1
        submission.outstanding = len(groups)
        for group_cells in groups:
            self._pending.append(_PoolGroup(
                gid=self._next_gid,
                submission=submission,
                cells=list(group_cells),
                key=group_cells[0].scenario.schedule_key(),
            ))
            self._next_gid += 1
        self._notify(
            submission, "enqueued",
            cells=len(compute_cells), groups=len(groups),
        )
        if submission.outstanding == 0:
            submission.finished = True
            self._notify(submission, "finished")
        return SweepTicket(self, submission)

    def _notify(self, submission: _Submission, kind: str, **fields: Any) -> None:
        """Deliver one :class:`PoolEvent`, best-effort.

        Progress is telemetry, not data: a raising sink must never
        wedge or fail a sweep, so exceptions are swallowed here (the
        ``on_row`` stream, which *is* data, surfaces its errors after
        group bookkeeping instead).
        """
        if submission.on_progress is None:
            return
        try:
            submission.on_progress(PoolEvent(kind=kind, **fields))
        except Exception:
            pass

    # -- worker slots ---------------------------------------------------
    def _spawn_slot(self) -> _WorkerSlot:
        slot = _WorkerSlot(len(self._slots))
        self._slots.append(slot)
        self._spawn_process(slot)
        return slot

    def _spawn_process(self, slot: _WorkerSlot) -> None:
        import multiprocessing

        if self._ctx is None:
            # Spawn unconditionally: the only start method that is safe
            # and available everywhere (fork inherits arbitrary state).
            self._ctx = multiprocessing.get_context("spawn")
        if self._outbox is None:
            self._outbox = self._ctx.Queue()
        slot.inbox = self._ctx.Queue()
        slot.ready = False
        slot.current = None
        slot.job_id = None
        slot.deadline = None
        slot.process = self._ctx.Process(
            target=_service_worker,
            args=(
                slot.index, slot.inbox, self._outbox,
                self.max_cached_groups, self.max_cached_payloads,
            ),
            daemon=True,
        )
        slot.process.start()

    def _respawn_slot(self, slot: _WorkerSlot) -> None:
        """Replace a dead/wedged worker process in its slot (cold caches)."""
        process = slot.process
        if process is not None:
            if process.is_alive():
                process.terminate()
            process.join()
        self._spawn_process(slot)

    # -- scheduling -----------------------------------------------------
    def _worker_for(self, group: _PoolGroup) -> Optional[_WorkerSlot]:
        """The slot this group must run on, or ``None`` to keep waiting.

        Affinity first: a schedule key always returns to the slot that
        computed it (waiting for that slot if busy — warmth beats a
        cold start elsewhere).  New keys take an idle slot, growing the
        pool lazily up to its ``workers`` bound.
        """
        index = self._affinity.get(group.key)
        if index is not None:
            slot = self._slots[index]
            return slot if slot.idle else None
        for slot in self._slots:
            if slot.idle:
                self._affinity[group.key] = slot.index
                return slot
        if len(self._slots) < self.workers:
            slot = self._spawn_slot()
            self._affinity[group.key] = slot.index
            return slot
        return None

    def _dispatch_ready(self, now: float) -> None:
        while self._dispatch_next(now):
            pass

    def _dispatch_next(self, now: float) -> bool:
        """Dispatch one pending group, fair across client tags.

        Clients take turns: the scheduler cycles through the distinct
        client tags present in the pending queue, starting after the tag
        served by the previous dispatch, and hands out the first
        dispatchable group (backoff elapsed, a worker available —
        affinity still wins over fairness: a group whose warm slot is
        busy keeps waiting for it) of the first tag that has one.  FIFO
        within a tag preserves each client's own submission order, and a
        single tag — every pre-service caller — reduces to the original
        FIFO-over-groups behaviour.  Returns True when a group was
        dispatched.
        """
        order: List[Optional[str]] = []
        seen = set()
        for group in self._pending:
            tag = group.submission.client
            if tag not in seen:
                seen.add(tag)
                order.append(tag)
        if not order:
            return False
        if self._last_client in seen:
            pivot = order.index(self._last_client) + 1
            order = order[pivot:] + order[:pivot]
        for tag in order:
            for group in self._pending:
                if group.submission.client != tag:
                    continue
                if group.not_before > now:
                    continue
                slot = self._worker_for(group)
                if slot is None:
                    continue
                self._dispatch_group(group, slot, now)
                self._last_client = tag
                return True
        return False

    def _dispatch_group(
        self, group: _PoolGroup, slot: _WorkerSlot, now: float
    ) -> None:
        self._pending.remove(group)
        submission = group.submission
        payload = _encode_service_group(
            group.cells, submission.metrics, submission.lean,
            faults=submission.faults, attempt=group.attempt,
        )
        job_id = self._next_job
        self._next_job += 1
        slot.inbox.put(("run", job_id, payload))
        slot.current = group
        slot.job_id = job_id
        self._notify(
            submission, "dispatch",
            gid=group.gid, cells=len(group.cells),
            detail=f"slot {slot.index}" + (
                f", attempt {group.attempt}" if group.attempt else ""
            ),
        )
        # Deadlines measure group runtime: the clock starts at
        # dispatch only for booted workers, otherwise when the
        # worker's ready message arrives.
        timeout = submission.group_timeout
        slot.deadline = (
            now + timeout if timeout is not None and slot.ready else None
        )

    # -- collection -----------------------------------------------------
    def _collect_ready(self, *, block: bool, fire_interrupts: bool) -> bool:
        """Merge every available reply; True if any group finished."""
        if self._outbox is None:
            if block:
                time.sleep(_POLL_INTERVAL)
            return False
        merged_any = False
        timeout: Optional[float] = _POLL_INTERVAL if block else None
        while True:
            try:
                if timeout is not None:
                    message = self._outbox.get(timeout=timeout)
                else:
                    message = self._outbox.get_nowait()
            except _queue_mod.Empty:
                return merged_any
            timeout = None  # drain the rest without blocking
            kind, index, body = message
            slot = self._slots[index] if index < len(self._slots) else None
            if slot is None:
                continue
            if kind == "ready":
                slot.ready = True
                if slot.current is not None and slot.deadline is None:
                    group_timeout = slot.current.submission.group_timeout
                    if group_timeout is not None:
                        slot.deadline = time.monotonic() + group_timeout
                continue
            if kind != "reply":
                continue
            job_id, payload = body
            if slot.job_id != job_id:
                continue  # stale reply from before a respawn/requeue
            group = slot.current
            slot.current = None
            slot.job_id = None
            slot.deadline = None
            merged_any = True
            # Group finalisation is exception-safe: once the group has
            # left its slot it is on neither the pending queue nor a
            # slot, so an escaping error from the merge (a raising user
            # ``on_row`` callback or ``store.put``) would otherwise
            # strand it — ``submission.outstanding`` never reaches 0
            # and ``ticket.result()`` pumps forever.  Finish the
            # group's bookkeeping first, then let the error surface.
            try:
                self._merge_reply(group, payload)
            except BaseException:
                self._finish_group(group)
                raise
            if (
                fire_interrupts
                and group.submission.faults is not None
                and any(
                    i in group.submission.faults.interrupt_at
                    for i in group.indices
                )
            ):
                # Merge-then-interrupt, like a real Ctrl-C landing after
                # the reply: the firing group's own rows are kept, its
                # submission is cut short.
                self._mark_interrupted(group.submission)
                raise KeyboardInterrupt
            # group-done precedes the "finished" milestone _finish_group
            # may emit — the stream stays causally ordered for renderers.
            self._notify(
                group.submission, "group-done",
                gid=group.gid, cells=len(group.cells),
            )
            self._finish_group(group)

    def _merge_reply(self, group: _PoolGroup, payload: str) -> None:
        """Fold one group reply into its submission's accumulating state.

        User code runs inside this merge (``store.put`` and the
        ``on_row`` callback), and it may raise.  The merge is structured
        so bookkeeping always completes first: every row's metrics are
        recorded in ``metrics_by_index`` regardless, callback/store
        errors are *deferred*, and the first one re-raises only after
        the whole reply (rows, errors, stats) has merged — the caller
        then finishes the group before letting it propagate, so a buggy
        sink degrades to a visible exception instead of a wedged ticket.
        """
        from ..io.json_io import value_from_jsonable

        submission = group.submission
        stats = submission.stats
        data = json.loads(payload)
        cell_by_index = {cell.index: cell for cell in group.cells}
        callback_error: Optional[BaseException] = None
        for row in data["rows"]:
            index = int(row["index"])
            cell_metrics = {
                name: value_from_jsonable(value)
                for name, value in row["metrics"].items()
            }
            submission.metrics_by_index[index] = cell_metrics
            try:
                if (
                    submission.store is not None
                    and index in submission.skey_by_index
                ):
                    submission.store.put(
                        submission.skey_by_index[index], submission.mkey,
                        cell_metrics,
                    )
                self._stream_row(
                    submission, cell_by_index[index], cell_metrics
                )
            except Exception as exc:
                if callback_error is None:
                    callback_error = exc
        for item in data.get("errors", ()):
            error = item["error"]
            submission.errors_by_index[int(item["index"])] = SweepCellError(
                error_type=error["type"],
                message=error["message"],
                stage=error.get("stage", "run"),
                retries=int(error.get("retries", 0)),
            )
            stats.failed_cells += 1
        worker_stats = data["stats"]
        stats.runs += int(worker_stats["runs"])
        stats.networks_built += int(worker_stats["networks_built"])
        stats.derivations_computed += int(
            worker_stats["derivations_computed"]
        )
        stats.schedules_computed += int(worker_stats["schedules_computed"])
        if worker_stats.get("group_cache_hit"):
            stats.warm_group_hits += 1
        stats.payload_cache_hits += int(worker_stats.get("payload_hits", 0))
        if callback_error is not None:
            raise callback_error

    def _stream_row(
        self, submission: _Submission, cell: SweepCell,
        metrics: Dict[str, Any],
    ) -> None:
        if submission.on_row is not None:
            submission.on_row(
                SweepRow(cell=dict(cell.coords), metrics=metrics)
            )

    def _finish_group(self, group: _PoolGroup) -> None:
        submission = group.submission
        submission.outstanding -= 1
        if submission.outstanding <= 0:
            submission.finished = True
            self._notify(submission, "finished")

    # -- supervision ----------------------------------------------------
    def _fail_group(
        self, group: _PoolGroup, exc: BaseException,
        retries: Optional[int] = None,
    ) -> None:
        """Degrade every cell of *group* to an error row for *exc*."""
        submission = group.submission
        error = _cell_error(
            exc, retries=group.attempt if retries is None else retries
        )
        for index in group.indices:
            submission.errors_by_index[index] = error
            submission.stats.failed_cells += 1
        self._notify(
            submission, "group-failed",
            gid=group.gid, cells=len(group.cells), detail=error.describe(),
        )
        self._finish_group(group)

    def _requeue(
        self, group: _PoolGroup, now: float, exc_type: type, what: str
    ) -> None:
        """Charge one retry to *group*; requeue it or exhaust its budget."""
        submission = group.submission
        group.attempt += 1
        if group.attempt > submission.max_retries:
            # ``retries`` records redispatches actually performed — the
            # exhausting event happened on the last permitted attempt.
            self._fail_group(
                group,
                exc_type(
                    f"{what}; retry budget exhausted after "
                    f"{submission.max_retries} redispatches"
                ),
                retries=submission.max_retries,
            )
            return
        submission.stats.retries += 1
        if submission.faults is not None:
            # The fault that (presumably) fired consumed one firing: a
            # transient (times=1) kill/delay lets the retry succeed.
            submission.faults = submission.faults.decrement(group.indices)
        group.not_before = (
            now + submission.retry_backoff * 2 ** (group.attempt - 1)
        )
        self._pending.append(group)
        self._notify(
            submission, "retry",
            gid=group.gid, cells=len(group.cells),
            detail=f"{what} (attempt {group.attempt})",
        )

    def _check_crashes(self, now: float) -> bool:
        """Respawn dead workers in place; requeue their in-flight group.

        Dedicated per-worker queues make crash attribution exact: only
        the dead worker's group is charged a retry, and the other
        workers keep running untouched (no pool-wide teardown).
        """
        recovered = False
        for slot in self._slots:
            if slot.process is None or slot.process.is_alive():
                continue
            group = slot.current
            slot.current = None
            slot.job_id = None
            slot.deadline = None
            self._respawn_slot(slot)
            recovered = True
            if group is not None:
                self._requeue(
                    group, now, WorkerCrashError,
                    "a sweep worker process died mid-group",
                )
        return recovered

    def _check_timeouts(self, now: float) -> bool:
        """Terminate and retry groups that blew their deadline."""
        recovered = False
        for slot in self._slots:
            if slot.current is None or slot.deadline is None:
                continue
            if now <= slot.deadline:
                continue
            group = slot.current
            timeout = group.submission.group_timeout
            slot.current = None
            slot.job_id = None
            slot.deadline = None
            # Terminating the worker is the only portable way to stop a
            # wedged task; only its own slot respawns (cold), the rest
            # of the pool keeps its warmth.
            self._respawn_slot(slot)
            recovered = True
            self._requeue(
                group, now, SweepTimeoutError,
                f"group exceeded its {timeout}s deadline",
            )
        return recovered

    # -- driving --------------------------------------------------------
    def _pump(self, submission: Optional[_Submission] = None) -> None:
        """Drive dispatch/collect until *submission* (or everything) done.

        On ``KeyboardInterrupt`` — real or :class:`FaultPlan`-injected —
        completed replies are drained into their submissions, every
        worker is terminated and reaped (no orphans), and all active
        submissions become partial results with ``stats.interrupted``.
        """
        try:
            while True:
                if submission is not None:
                    if submission.finished:
                        return
                elif not self._pending and all(s.idle for s in self._slots):
                    return
                now = time.monotonic()
                self._dispatch_ready(now)
                if self._collect_ready(block=True, fire_interrupts=True):
                    continue
                self._check_crashes(now)
                self._check_timeouts(now)
        except KeyboardInterrupt:
            self._interrupt()

    def pump_once(self) -> bool:
        """Run one dispatch/collect/supervise cycle and return.

        The cooperative alternative to blocking on
        :meth:`SweepTicket.result`: an external driver (the sweep
        service's orchestrator thread) interleaves ``pump_once`` with
        its own work — accepting new submissions between cycles — while
        the pool makes progress on everything outstanding.  Blocks at
        most ~`_POLL_INTERVAL` waiting for worker replies.  Returns
        True when any reply was merged this cycle (results may have
        completed).  A ``KeyboardInterrupt`` — real or
        :class:`FaultPlan`-injected — tears the pool down exactly as
        the blocking path does and resolves all tickets as interrupted
        partials.
        """
        try:
            now = time.monotonic()
            self._dispatch_ready(now)
            if self._collect_ready(block=True, fire_interrupts=True):
                return True
            self._check_crashes(now)
            self._check_timeouts(now)
            return False
        except KeyboardInterrupt:
            self._interrupt()
            return True

    @property
    def busy(self) -> bool:
        """True while any group is pending or dispatched."""
        return bool(self._pending) or any(
            not s.idle for s in self._slots
        )

    def _interrupt(self) -> None:
        try:
            self._collect_ready(block=False, fire_interrupts=False)
        except Exception:
            pass
        for group in self._pending:
            self._mark_interrupted(group.submission)
        self._pending.clear()
        for slot in self._slots:
            if slot.current is not None:
                self._mark_interrupted(slot.current.submission)
            if slot.process is not None:
                slot.process.terminate()
        for slot in self._slots:
            if slot.process is not None:
                slot.process.join()
        # The service survives an interrupt: slots are gone (cold), the
        # next submission respawns lazily.
        self._slots = []
        self._affinity.clear()
        self._outbox = None

    def _mark_interrupted(self, submission: _Submission) -> None:
        if not submission.finished:
            submission.stats.interrupted = True
            submission.finished = True
        elif not submission.stats.interrupted and submission.outstanding > 0:
            submission.stats.interrupted = True

    def _cancel(self, submission: _Submission) -> bool:
        if submission.finished:
            return False
        withdrawn = [
            group for group in self._pending
            if group.submission is submission
        ]
        if not withdrawn:
            # Nothing to withdraw — every group is already dispatched
            # (or merged).  The submission will complete normally, so
            # its state must not be touched: marking it cancelled/
            # interrupted here would make a sweep whose every row
            # completed report itself interrupted.
            return False
        for group in withdrawn:
            self._pending.remove(group)
            submission.outstanding -= 1
        submission.cancelled = True
        submission.stats.interrupted = True
        if submission.outstanding <= 0:
            submission.finished = True
        return True

    # -- result assembly ------------------------------------------------
    def _assemble(self, submission: _Submission) -> SweepResult:
        # Rows come back grouped by schedule key; the table is in cell
        # order.  Interrupted/cancelled submissions only have the merged
        # groups' rows — cells never merged appear in neither list.
        rows = [
            SweepRow(
                cell=dict(cell.coords),
                metrics=submission.metrics_by_index[cell.index],
            )
            for cell in submission.cells
            if cell.index in submission.metrics_by_index
        ]
        failed_rows = [
            SweepRow(
                cell=dict(cell.coords), metrics={},
                error=submission.errors_by_index[cell.index],
            )
            for cell in submission.cells
            if cell.index in submission.errors_by_index
        ]
        return SweepResult(
            axes=submission.axes, metrics=submission.metrics, rows=rows,
            stats=submission.stats, failed_rows=failed_rows,
        )
