"""Runtime-overhead model.

Section V-A measures, on the Kalray MPPA, a runtime overhead *"at the
beginning of each frame, which is 41 ms for the first frame (probably due to
initial cache misses) and 20 ms for all subsequent frames, required to manage
the arrival of 14 jobs"*; per-access read/write synchronisation costs are
folded into the WCETs.

We reproduce this as an explicit model:

* ``first_frame_arrival`` / ``steady_frame_arrival`` — the frame-arrival
  management cost: no invocation of frame ``f`` becomes visible to the
  application processors before ``f*H + overhead(f)``;
* ``per_job`` — synchronisation cost added to every executed job's execution
  time (the paper's read/write overhead, normally folded into WCETs, exposed
  for the granularity study E7);
* :meth:`as_overhead_job` — the paper's schedulability-analysis trick: model
  the arrival overhead as an extra job with a precedence edge *to* the
  generator, so the load metric accounts for it ("we modeled it by an extra
  41 ms job with a precedence edge directed to the generator").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.timebase import Time, TimeLike, as_nonnegative_time
from ..taskgraph.graph import TaskGraph
from ..taskgraph.jobs import Job


@dataclass(frozen=True)
class OverheadModel:
    """Frame-arrival and per-job runtime overheads (all default to zero)."""

    first_frame_arrival: Time = Time(0)
    steady_frame_arrival: Time = Time(0)
    per_job: Time = Time(0)

    @classmethod
    def create(
        cls,
        first_frame_arrival: TimeLike = 0,
        steady_frame_arrival: TimeLike = 0,
        per_job: TimeLike = 0,
    ) -> "OverheadModel":
        """Normalising constructor accepting any time-like values."""
        return cls(
            as_nonnegative_time(first_frame_arrival, "first_frame_arrival"),
            as_nonnegative_time(steady_frame_arrival, "steady_frame_arrival"),
            as_nonnegative_time(per_job, "per_job"),
        )

    @classmethod
    def none(cls) -> "OverheadModel":
        """The zero-overhead model (ideal platform)."""
        return cls()

    @classmethod
    def mppa_like(cls) -> "OverheadModel":
        """The overheads measured in Section V-A (41 ms / 20 ms)."""
        return cls.create(first_frame_arrival=41, steady_frame_arrival=20)

    def frame_arrival(self, frame: int) -> Time:
        """Arrival-management overhead of 0-based frame *frame*."""
        if frame < 0:
            raise ValueError("frame index must be non-negative")
        return self.first_frame_arrival if frame == 0 else self.steady_frame_arrival

    @property
    def is_zero(self) -> bool:
        return (
            self.first_frame_arrival == 0
            and self.steady_frame_arrival == 0
            and self.per_job == 0
        )

    # ------------------------------------------------------------------
    def as_overhead_job(
        self, graph: TaskGraph, overhead: TimeLike = None
    ) -> TaskGraph:
        """A copy of *graph* with the paper's extra overhead job prepended.

        The synthetic job ``__overhead__[1]`` arrives at 0, consumes the
        (worst-case) frame-arrival overhead, and precedes every source job of
        the graph, so ASAP times and the load metric see the arrival delay.
        """
        value = as_nonnegative_time(
            overhead if overhead is not None else
            max(self.first_frame_arrival, self.steady_frame_arrival),
            "overhead",
        )
        if value == 0:
            return graph.copy()
        deadline = graph.hyperperiod if graph.hyperperiod is not None else max(
            j.deadline for j in graph.jobs
        )
        ojob = Job(
            process="__overhead__",
            k=1,
            arrival=Time(0),
            deadline=deadline,
            wcet=value,
        )
        jobs = [ojob] + list(graph.jobs)
        edges: List[Tuple[int, int]] = [(i + 1, j + 1) for i, j in graph.edges()]
        for src in graph.sources():
            edges.append((0, src + 1))
        return TaskGraph(jobs, edges, graph.hyperperiod)
