"""Exception hierarchy for the FPPN library.

Every error raised by :mod:`repro` derives from :class:`FPPNError` so callers
can catch library failures with a single ``except`` clause while still being
able to discriminate the failure class.
"""

from __future__ import annotations


class FPPNError(Exception):
    """Base class of all errors raised by the repro library."""


class ModelError(FPPNError):
    """An FPPN network definition violates the model's well-formedness rules.

    Examples: a cyclic functional-priority relation, a channel whose
    writer/reader pair is not ordered by functional priority, duplicate
    process names, or a sporadic process without a valid user process.
    """


class ChannelError(FPPNError):
    """Illegal channel access (unknown channel, wrong endpoint, type error)."""


class EventError(FPPNError):
    """An event-generator definition or arrival trace is invalid.

    Raised, for instance, when a sporadic arrival trace violates the
    "at most m events in any half-open window of length T" constraint.
    """


class SemanticsError(FPPNError):
    """Execution of the model semantics failed (e.g. non-returning automaton)."""


class SchedulingError(FPPNError):
    """The scheduler could not produce a schedule or was misconfigured."""


class InfeasibleError(SchedulingError):
    """No feasible schedule exists (or was found) for the requested platform.

    Attributes
    ----------
    diagnostics:
        Optional human-readable details, e.g. which job missed its deadline
        in the best candidate schedule, or the load bound that was violated.
    """

    def __init__(self, message: str, diagnostics: str = "") -> None:
        super().__init__(message)
        self.diagnostics = diagnostics


class RuntimeModelError(FPPNError):
    """The online policy / runtime simulator was driven with invalid input."""


class SweepError(FPPNError):
    """A scenario sweep could not complete as requested.

    Raised by ``run_sweep(..., on_error="raise")`` when a cell fails, and
    by the parallel supervisor for conditions it cannot express as a
    per-cell error row.  The default ``on_error="capture"`` mode never
    raises this: failures become structured error rows on the partial
    :class:`~repro.experiment.sweep.SweepResult` instead.
    """


class WorkerCrashError(SweepError):
    """A sweep worker process died (killed, OOM, hard exit) mid-group.

    The supervisor respawns the pool and requeues unfinished groups; this
    error names the cells of a group that exhausted its retry budget.
    """


class SweepTimeoutError(SweepError):
    """A sweep group exceeded its per-group deadline and was terminated."""


class CheckpointError(FPPNError):
    """The sweep checkpoint store was misused or its backing file is bad."""


class ServiceError(FPPNError):
    """The sweep service (orchestrator, server or client) failed.

    Raised for service-level conditions that are not a sweep cell's own
    failure: submitting to a closed orchestrator, an unknown ticket, a
    server that refused a request, or a connection that dropped while a
    reply was outstanding.
    """


class ProtocolError(ServiceError):
    """A JSON-RPC wire message is malformed or violates the protocol."""


class UnknownTicketError(ServiceError):
    """A service ticket id does not resolve to a live record.

    Raised for ids that never existed *and* for finished tickets whose
    records were garbage-collected by the orchestrator's bounded ticket
    history — callers distinguishing the two must poll before the record
    ages out of the ``max_finished_tickets`` window.
    """
