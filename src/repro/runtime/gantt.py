"""ASCII Gantt charts of schedules and runtime traces (Figs. 4 and 6).

Two renderers:

* :func:`schedule_gantt` — a static schedule's frame, one row per processor
  (the Fig. 4 view);
* :func:`runtime_gantt` — a simulated run, one row per processor plus a
  ``runtime`` row showing frame-arrival overhead intervals (the Fig. 6
  view).  The bars come from a :class:`GanttObserver` consuming executor
  events, so the chart can be built live (``run(observers=[obs])``) or by
  replaying a finished :class:`~repro.runtime.executor.RuntimeResult`.

The renderers are deliberately plain-text so benchmark output embeds them
directly in reports.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.timebase import Time, time_str
from ..scheduling.schedule import StaticSchedule
from .executor import RuntimeResult
from .observers import ExecutionObserver, RunMeta, replay

Bar = Tuple[Time, Time, str]  # (start, end, label)


class GanttObserver(ExecutionObserver):
    """Collects Fig. 6-style bars from executor events.

    One bar per executed job instance on its processor's row, plus the
    frame-arrival overhead bars for the ``runtime`` row.
    """

    def __init__(self) -> None:
        self.meta: Optional[RunMeta] = None
        self.processor_bars: Dict[int, List[Bar]] = {}
        self.runtime_bars: List[Bar] = []

    def on_run_start(self, meta: RunMeta) -> None:
        # Full reset so a reused observer holds exactly one run's bars.
        self.meta = meta
        self.processor_bars = {m: [] for m in range(meta.processors)}
        self.runtime_bars = []

    def on_overhead(self, frame: int, start: Time, end: Time) -> None:
        self.runtime_bars.append((start, end, "rt"))

    def on_record(self, record) -> None:
        if record.is_false:
            return
        self.processor_bars[record.processor].append(
            (record.start, record.end, record.name)
        )


def _render_rows(
    rows: Sequence[Tuple[str, Sequence[Bar]]],
    t_end: Time,
    width: int,
) -> str:
    """Shared fixed-width renderer: each row is scaled onto *width* columns."""
    if t_end <= 0:
        t_end = Time(1)
    lines: List[str] = []
    label_w = max((len(name) for name, _ in rows), default=4)
    scale = Fraction(width, 1) / t_end

    for name, bars in rows:
        canvas = [" "] * width
        for start, end, label in sorted(bars):
            c0 = int(start * scale)
            c1 = max(c0 + 1, int(end * scale))
            c1 = min(c1, width)
            for c in range(c0, c1):
                canvas[c] = "="
            text = label[: max(0, c1 - c0)]
            for i, ch in enumerate(text):
                if c0 + i < width:
                    canvas[c0 + i] = ch
        lines.append(f"{name.rjust(label_w)} |{''.join(canvas)}|")

    axis = f"{' ' * label_w} 0{' ' * (width - len(time_str(t_end)) - 1)}{time_str(t_end)}"
    lines.append(axis)
    return "\n".join(lines)


def schedule_gantt(schedule: StaticSchedule, width: int = 72) -> str:
    """Render one frame of a static schedule (Fig. 4 style)."""
    rows: List[Tuple[str, List[Bar]]] = []
    for m in range(schedule.processors):
        bars: List[Bar] = []
        for i in schedule.processor_order(m):
            job = schedule.graph.jobs[i]
            bars.append((schedule.start(i), schedule.end(i), job.name))
        rows.append((f"M{m + 1}", bars))
    horizon = schedule.graph.hyperperiod or schedule.makespan()
    return _render_rows(rows, max(horizon, schedule.makespan()), width)


def gantt_from_observer(
    observer: GanttObserver,
    frames: Optional[int] = None,
    width: int = 96,
) -> str:
    """Render the bars a :class:`GanttObserver` collected (Fig. 6 style)."""
    meta = observer.meta
    if meta is None:
        raise ValueError("observer has not seen a run (no on_run_start event)")
    limit = meta.hyperperiod * (frames if frames is not None else meta.frames)
    rows: List[Tuple[str, List[Bar]]] = []
    for m in range(meta.processors):
        bars = [b for b in observer.processor_bars[m] if b[0] < limit]
        rows.append((f"M{m + 1}", bars))
    # Job bars (not the runtime row) define the time axis, so an overhead
    # tail never stretches the chart.
    t_end = max(
        [limit] + [end for _, bars in rows for _start, end, _label in bars]
    )
    runtime_bars = [b for b in observer.runtime_bars if b[0] < limit]
    if runtime_bars:
        rows.append(("runtime", runtime_bars))
    return _render_rows(rows, t_end, width)


def runtime_gantt(
    source: Union[RuntimeResult, GanttObserver],
    frames: Optional[int] = None,
    width: int = 96,
) -> str:
    """Render a simulated run (Fig. 6 style), including the runtime row."""
    if isinstance(source, GanttObserver):
        return gantt_from_observer(source, frames, width)
    observer = GanttObserver()
    replay(source, observer)
    return gantt_from_observer(observer, frames, width)
