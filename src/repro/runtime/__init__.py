"""Online static-order policy and multiprocessor runtime simulation."""

from .executor import (
    JobRecord,
    MultiprocessorExecutor,
    RuntimeResult,
    jittered_execution,
    run_static_order,
    wcet_execution,
)
from .gantt import GanttObserver, gantt_from_observer, runtime_gantt, schedule_gantt
from .metrics import (
    KernelSpanStats,
    MissSummary,
    frame_makespans,
    jobs_of_process,
    kernel_span_stats,
    miss_summary,
    processor_utilization,
    response_times,
)
from .observers import (
    ExecutionObserver,
    MetricsObserver,
    RecordsObserver,
    RunMeta,
    TraceObserver,
    replay,
)
from .overheads import OverheadModel
from .telemetry import ProgressObserver, Span, SpanObserver
from .static_order import (
    ArrivalBinding,
    BoundArrival,
    FramePlan,
    PlannedJob,
    served_horizon,
)

__all__ = [
    "JobRecord",
    "MultiprocessorExecutor",
    "RuntimeResult",
    "jittered_execution",
    "run_static_order",
    "wcet_execution",
    "GanttObserver",
    "gantt_from_observer",
    "runtime_gantt",
    "schedule_gantt",
    "ExecutionObserver",
    "MetricsObserver",
    "RecordsObserver",
    "RunMeta",
    "TraceObserver",
    "replay",
    "KernelSpanStats",
    "MissSummary",
    "frame_makespans",
    "jobs_of_process",
    "kernel_span_stats",
    "miss_summary",
    "processor_utilization",
    "response_times",
    "OverheadModel",
    "ProgressObserver",
    "Span",
    "SpanObserver",
    "ArrivalBinding",
    "BoundArrival",
    "FramePlan",
    "PlannedJob",
    "served_horizon",
]
