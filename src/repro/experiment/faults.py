"""Deterministic fault injection for sweep robustness testing.

The fault-tolerance layer of :mod:`repro.experiment.sweep` /
:mod:`repro.experiment.parallel` has three recovery paths — per-cell
error capture, worker-crash respawn and per-group deadline timeouts —
none of which a healthy sweep ever exercises.  A :class:`FaultPlan`
makes every path testable *deterministically*: it names sweep cells (by
matrix index) at which a fault fires, travels through the JSON wire
format into worker processes unchanged, and fires the same way on every
run, so the recovery matrix can be pinned by ordinary tests while
healthy rows stay bit-identical to a fault-free serial run.

Fault kinds
-----------

``raise_at``
    Raise :class:`InjectedFault` when the cell is about to execute —
    the stand-in for a kernel / runtime exception inside the cell.  The
    sweep captures it as a structured error row and carries on.
``kill_at``
    Hard-kill the worker process (``os._exit(1)``) holding the cell,
    ``times`` times — the stand-in for an OOM kill or segfault.  The
    parallel supervisor detects the dead worker, respawns the pool and
    requeues the group; a serial sweep has no worker to kill, so the
    fault degrades to an :class:`InjectedFault` error row.
``delay_at``
    Sleep ``seconds`` before the cell executes, ``times`` times — the
    stand-in for a wedged cell, used to trip per-group deadlines.
``interrupt_at``
    Raise :class:`KeyboardInterrupt` in the *parent* process when the
    cell is reached (serial) or when its group's reply is merged
    (parallel) — the stand-in for Ctrl-C, exercising the partial-result
    drain.

``kill_at`` / ``delay_at`` entries carry a remaining-fire count: when
the supervisor requeues a group after a crash or timeout it decrements
the counts for that group's cells (:meth:`FaultPlan.decrement`), so a
``times=1`` fault is transient — the retry succeeds — while a large
count exhausts the retry budget and produces error rows.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from ..errors import FPPNError, ModelError

__all__ = ["FaultPlan", "InjectedFault", "apply_cell_faults"]


class InjectedFault(FPPNError):
    """The deterministic failure raised by an active :class:`FaultPlan` entry."""


def _normalize_indices(value: Any, what: str) -> Tuple[int, ...]:
    if value is None:
        return ()
    if isinstance(value, int):
        value = (value,)
    try:
        indices = tuple(sorted(int(v) for v in value))
    except (TypeError, ValueError) as exc:
        raise ModelError(f"{what} must be cell indices, got {value!r}") from exc
    if any(i < 0 for i in indices):
        raise ModelError(f"{what} indices must be >= 0")
    return indices


def _normalize_kills(value: Any) -> Tuple[Tuple[int, int], ...]:
    if not value:
        return ()
    if isinstance(value, Mapping):
        items: Iterable[Tuple[Any, Any]] = value.items()
    else:
        items = value
    out = []
    for index, times in items:
        index, times = int(index), int(times)
        if index < 0 or times < 1:
            raise ModelError(
                "kill_at takes {cell index: times >= 1} entries"
            )
        out.append((index, times))
    return tuple(sorted(out))


def _normalize_delays(value: Any) -> Tuple[Tuple[int, float, int], ...]:
    if not value:
        return ()
    if isinstance(value, Mapping):
        items: Iterable[Tuple[Any, Any]] = value.items()
    else:
        # Already-normalised triples round-trip through replace/json.
        items = [(t[0], t[1:] if len(t) > 2 else t[1]) for t in value]
    out = []
    for index, spec in items:
        if isinstance(spec, (tuple, list)):
            seconds, times = float(spec[0]), int(spec[1])
        else:
            seconds, times = float(spec), 1
        index = int(index)
        if index < 0 or seconds <= 0 or times < 1:
            raise ModelError(
                "delay_at takes {cell index: seconds} or "
                "{cell index: (seconds, times)} entries"
            )
        out.append((index, seconds, times))
    return tuple(sorted(out))


@dataclass(frozen=True)
class FaultPlan:
    """Where (and how often) deterministic faults fire during a sweep.

    All fields key faults by the cell's matrix index
    (:attr:`~repro.experiment.sweep.SweepCell.index`).  Constructor
    arguments accept friendly shapes — ``raise_at=(2,)``,
    ``kill_at={5: 1}``, ``delay_at={3: (2.0, 1)}`` — and are normalised
    to sorted tuples so plans are comparable and JSON-round-trippable.
    """

    raise_at: Tuple[int, ...] = ()
    kill_at: Tuple[Tuple[int, int], ...] = ()
    delay_at: Tuple[Tuple[int, float, int], ...] = ()
    interrupt_at: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        set_ = object.__setattr__
        set_(self, "raise_at", _normalize_indices(self.raise_at, "raise_at"))
        set_(self, "kill_at", _normalize_kills(self.kill_at))
        set_(self, "delay_at", _normalize_delays(self.delay_at))
        set_(self, "interrupt_at",
             _normalize_indices(self.interrupt_at, "interrupt_at"))

    @property
    def is_empty(self) -> bool:
        return not (self.raise_at or self.kill_at or self.delay_at
                    or self.interrupt_at)

    # -- lookups --------------------------------------------------------
    def kill_times(self, index: int) -> int:
        for i, times in self.kill_at:
            if i == index:
                return times
        return 0

    def delay_seconds(self, index: int) -> Optional[float]:
        for i, seconds, times in self.delay_at:
            if i == index and times > 0:
                return seconds
        return None

    # -- plan algebra ---------------------------------------------------
    def restrict(self, indices: Iterable[int]) -> "FaultPlan":
        """The sub-plan touching only *indices* (one group's wire share)."""
        keep = set(indices)
        return FaultPlan(
            raise_at=tuple(i for i in self.raise_at if i in keep),
            kill_at=tuple(e for e in self.kill_at if e[0] in keep),
            delay_at=tuple(e for e in self.delay_at if e[0] in keep),
            interrupt_at=tuple(i for i in self.interrupt_at if i in keep),
        )

    def decrement(self, indices: Iterable[int]) -> "FaultPlan":
        """One firing consumed for *indices*' kill/delay entries.

        The parallel supervisor calls this when it requeues a group after
        a crash or timeout: the faults that (presumably) fired lose one
        remaining count, entries at zero drop out, and a transient fault
        lets the retry succeed.  ``raise_at`` / ``interrupt_at`` entries
        are not consumed — they never trigger a group redispatch.
        """
        hit = set(indices)
        kills = tuple(
            (i, times - 1) if i in hit else (i, times)
            for i, times in self.kill_at
        )
        delays = tuple(
            (i, seconds, times - 1) if i in hit else (i, seconds, times)
            for i, seconds, times in self.delay_at
        )
        return FaultPlan(
            raise_at=self.raise_at,
            kill_at=tuple(e for e in kills if e[1] > 0),
            delay_at=tuple(e for e in delays if e[2] > 0),
            interrupt_at=self.interrupt_at,
        )

    # -- wire format ----------------------------------------------------
    def to_jsonable(self) -> Dict[str, Any]:
        """Plain-JSON form, embedded in the parallel group payloads."""
        return {
            "raise_at": list(self.raise_at),
            "kill_at": [list(e) for e in self.kill_at],
            "delay_at": [list(e) for e in self.delay_at],
            "interrupt_at": list(self.interrupt_at),
        }

    @classmethod
    def from_jsonable(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`to_jsonable`."""
        return cls(
            raise_at=tuple(data.get("raise_at", ())),
            kill_at=tuple((int(i), int(t)) for i, t in data.get("kill_at", ())),
            delay_at=tuple(
                (int(i), float(s), int(t))
                for i, s, t in data.get("delay_at", ())
            ),
            interrupt_at=tuple(data.get("interrupt_at", ())),
        )


def apply_cell_faults(
    plan: Optional[FaultPlan], index: int, *, in_worker: bool
) -> None:
    """Fire any fault *plan* holds for cell *index* (called pre-execution).

    *in_worker* selects the habitat-appropriate behaviour: kill faults
    ``os._exit`` a worker process but degrade to :class:`InjectedFault`
    error rows in a serial sweep (which has no worker to lose), and
    interrupt faults fire only in the parent (the parallel supervisor
    raises them itself when the group's reply is merged).
    """
    if plan is None:
        return
    if not in_worker and index in plan.interrupt_at:
        raise KeyboardInterrupt
    delay = plan.delay_seconds(index)
    if delay is not None:
        time.sleep(delay)
    if plan.kill_times(index) > 0:
        if in_worker:
            os._exit(1)
        raise InjectedFault(
            f"kill-worker fault at cell {index} ran in a serial sweep "
            "(no worker process to kill)"
        )
    if index in plan.raise_at:
        raise InjectedFault(f"injected kernel fault at cell {index}")
