#!/usr/bin/env python3
"""Scenario sweep over the FMS avionics case study (Section V-B).

A ``ScenarioMatrix`` takes a base scenario and named axes over its fields;
``run_sweep`` executes the cartesian product and tabulates streaming
metrics.  The axes here — execution-time jitter seeds × runtime overhead
models × frame counts — are all *runtime* parameters, so the sweep derives
the 812-job task graph and computes the static schedule exactly **once**
and reuses them across every cell (the ``SweepStats`` line proves it);
each cell then runs in the executor's lean observer-streaming mode.

Sweep tables are deterministic (exact rational metrics, seed-keyed jitter)
and JSON-serialisable (``repro.io.sweep_result_to_dict``), so they can be
diffed across commits.  The second sweep below fans its cells out across
worker processes (``run_sweep(workers=2)``): one spawned worker per
schedule-key group, rows bit-identical to the serial path.  Spawn rule:
keep the call under ``if __name__ == "__main__":``.

Run:  python examples/sweep_fms.py
"""

from repro import ScenarioMatrix, run_sweep
from repro.apps import fms_scenario
from repro.runtime import OverheadModel


def main() -> None:
    # The base stimulus must cover the largest frame count on the
    # n_frames axis below — axis values substitute fields verbatim.
    base = fms_scenario(n_frames=2)
    matrix = ScenarioMatrix(
        base,
        {
            "jitter_seed": [0, 7],
            "overheads": [OverheadModel.none(), OverheadModel.mppa_like()],
            "n_frames": [1, 2],
        },
    )
    print(f"sweeping {len(matrix)} cells: {', '.join(matrix.axes)}")

    result = run_sweep(
        matrix,
        metrics=(
            "executed_jobs",
            "missed_jobs",
            "makespan",
            "frame_makespan_max",
            "peak_utilization",
            "channel_writes",
        ),
    )
    print(result.table())

    s = result.stats
    print(
        f"\nstage reuse: {s.runs} runs shared "
        f"{s.derivations_computed} derivation(s) and "
        f"{s.schedules_computed} schedule(s) "
        f"({s.networks_built} network build(s))"
    )
    assert s.derivations_computed == 1 and s.schedules_computed == 1
    print("runtime-only axes -> one derivation, one scheduling pass: OK")

    # A processors axis splits the matrix into one schedule-key group per
    # processor count — the unit the multiprocess backend dispatches.
    par_matrix = ScenarioMatrix(
        base, {"processors": [1, 2], "jitter_seed": [0, 7]}
    )
    par = run_sweep(
        par_matrix,
        metrics=("executed_jobs", "missed_jobs", "makespan"),
        workers=2,
    )
    serial = run_sweep(
        par_matrix,
        metrics=("executed_jobs", "missed_jobs", "makespan"),
    )
    ps = par.stats
    print(
        f"\nparallel sweep: {ps.runs} runs on {ps.workers} workers, "
        f"{ps.schedules_computed} schedule-key group(s), "
        f"rows bit-identical to serial: {par.rows == serial.rows}"
    )
    assert par.rows == serial.rows


if __name__ == "__main__":
    main()
