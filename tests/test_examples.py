"""The examples are part of the public contract: they must run clean."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout  # every example narrates what it does


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "fft_streaming.py", "fms_avionics.py",
            "deterministic_replay.py", "resilient_sweep.py",
            "sweep_service.py"} <= names
