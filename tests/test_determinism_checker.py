"""Tests for the mechanical determinism checker (Prop. 2.1 verification)."""

import pytest

from repro.analysis import check_determinism, first_divergence
from repro.apps import build_fig1_network, fig1_stimulus, fig1_wcets
from repro.runtime import OverheadModel


class TestFirstDivergence:
    def test_identical(self):
        obs = {"channels": {"c": [1, 2]}, "outputs": {}}
        assert first_divergence(obs, obs) is None

    def test_value_difference_reported(self):
        a = {"channels": {"c": [1, 2]}, "outputs": {}}
        b = {"channels": {"c": [1, 3]}, "outputs": {}}
        msg = first_divergence(a, b)
        assert "channels['c']" in msg

    def test_length_difference_reported(self):
        a = {"channels": {"c": [1, 2]}, "outputs": {}}
        b = {"channels": {"c": [1]}, "outputs": {}}
        assert "2 values" in first_divergence(a, b)

    def test_missing_channel_reported(self):
        a = {"channels": {"c": [1]}, "outputs": {}}
        b = {"channels": {}, "outputs": {}}
        assert "<absent>" in first_divergence(a, b)

    def test_output_section_checked(self):
        a = {"channels": {}, "outputs": {"o": [(1, "x")]}}
        b = {"channels": {}, "outputs": {"o": [(1, "y")]}}
        assert "outputs" in first_divergence(a, b)


class TestCheckDeterminism:
    def test_fig1_matrix_deterministic(self):
        net = build_fig1_network()
        report = check_determinism(
            net, fig1_wcets(), n_frames=3,
            stimulus=fig1_stimulus(3),
            processor_counts=(2, 3),
            heuristics=("alap", "arrival"),
            jitter_seeds=(0,),
        )
        assert report.deterministic
        assert report.failures() == []
        # 2 proc counts x 2 heuristics x (wcet + 1 jitter) = 8 variants
        assert len(report.variants) == 8

    def test_deterministic_under_overhead(self):
        net = build_fig1_network()
        report = check_determinism(
            net, fig1_wcets(), n_frames=2,
            stimulus=fig1_stimulus(2),
            processor_counts=(2,),
            heuristics=("alap",),
            jitter_seeds=(),
            overheads=OverheadModel.mppa_like(),
        )
        assert report.deterministic

    def test_summary_format(self):
        net = build_fig1_network()
        report = check_determinism(
            net, fig1_wcets(), n_frames=1,
            stimulus=fig1_stimulus(1),
            processor_counts=(2,),
            heuristics=("alap",),
            jitter_seeds=(),
        )
        text = report.summary()
        assert "DETERMINISTIC" in text
        assert "M=2 sp=alap wcet" in text

    def test_reference_job_count_reported(self):
        net = build_fig1_network()
        report = check_determinism(
            net, fig1_wcets(), n_frames=1,
            stimulus=fig1_stimulus(1, coef_arrivals=[]),
            processor_counts=(2,),
            heuristics=("alap",),
            jitter_seeds=(),
        )
        # 8 real jobs in one frame (no sporadic arrivals)
        assert report.reference_jobs == 8
