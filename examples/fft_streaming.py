#!/usr/bin/env python3
"""The paper's FFT streaming use case (Section V-A) on the simulated MPPA.

Reproduces the experiment end-to-end:

* builds the 14-process FFT network of Fig. 5;
* checks the computed spectra against a direct DFT;
* derives the task graph (load 0.93) and the overhead-inclusive load (~1.2);
* runs the static-order policy on 1 and 2 processors under the measured
  MPPA overhead model (41 ms first frame, 20 ms after) and prints the
  Fig. 6-style Gantt chart plus the deadline-miss counts.

Run:  python examples/fft_streaming.py
"""

import math
import random

from repro import (
    MultiprocessorExecutor,
    OverheadModel,
    derive_task_graph,
    find_feasible_schedule,
    list_schedule,
    miss_summary,
    run_zero_delay,
    runtime_gantt,
    task_graph_load,
)
from repro.apps import build_fft_network, fft_stimulus, fft_wcets, reference_fft

FRAMES = 6


def make_input_vectors(n, seed=2015):
    rng = random.Random(seed)
    return [
        [complex(rng.uniform(-1, 1), rng.uniform(-1, 1)) for _ in range(4)]
        for _ in range(n)
    ]


def main() -> None:
    net = build_fft_network()
    print(f"network: {net} (generator + 3x4 FFT2 grid + consumer)")

    vectors = make_input_vectors(FRAMES)
    stimulus = fft_stimulus(vectors)

    # -- numerical correctness against a direct DFT ------------------------
    reference = run_zero_delay(net, 200 * FRAMES, stimulus)
    for (k, out), vec in zip(reference.external_outputs["fft_out"], vectors):
        expect = reference_fft(vec)
        err = max(abs(a - b) for a, b in zip(out, expect))
        assert err < 1e-9, f"sample {k}: max error {err}"
    print(f"{FRAMES} spectra match the direct DFT (max error < 1e-9)")

    # -- scheduling analysis ------------------------------------------------
    graph = derive_task_graph(net, fft_wcets())
    overheads = OverheadModel.mppa_like()
    load = task_graph_load(graph).load
    load_ov = task_graph_load(overheads.as_overhead_job(graph, 41)).load
    print(f"load without overhead: {float(load):.3f}   (paper: 0.93)")
    print(f"load with 41 ms overhead job: {float(load_ov):.3f}   (paper: ~1.2)")

    # -- single processor: misses; two processors: clean --------------------
    for m, schedule in (
        (1, list_schedule(graph, 1, "alap")),
        (2, find_feasible_schedule(graph, 2)),
    ):
        result = MultiprocessorExecutor(net, schedule, overheads).run(
            FRAMES, stimulus
        )
        summary = miss_summary(result)
        print(
            f"M={m}: {summary.missed_jobs} deadline misses "
            f"out of {summary.executed_jobs} jobs"
        )
        assert result.observable() == reference.observable()
        if m == 2:
            print("Fig. 6-style Gantt chart (first two frames):")
            print(runtime_gantt(result, frames=2))
    print("outputs identical across 1- and 2-processor runs — determinism holds")


if __name__ == "__main__":
    main()
