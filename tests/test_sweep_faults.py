"""Fault-tolerant sweeps (ISSUE 6): per-cell error capture with identical
serial/parallel semantics, worker supervision (crash respawn, deadlines,
bounded retry), interrupt draining, and the deterministic FaultPlan
machinery itself."""

import json
import multiprocessing

import pytest

from repro import FaultPlan, ScenarioMatrix, SweepCellError, run_sweep
from repro.apps import fig1_scenario
from repro.errors import ModelError, SweepError
from repro.experiment.faults import InjectedFault, apply_cell_faults
from repro.io import sweep_result_from_dict, sweep_result_to_dict

#: The standard fault matrix: two schedule-key groups (processors 2 / 3),
#: two runtime cells each.  Cell indices: 0,1 -> p=2; 2,3 -> p=3.
METRICS = ("executed_jobs", "makespan")


def fig1_matrix():
    return ScenarioMatrix(
        fig1_scenario(n_frames=1),
        {"processors": [2, 3], "jitter_seed": [0, 1]},
    )


@pytest.fixture(scope="module")
def clean():
    """The fault-free serial oracle every recovery path is compared to."""
    return run_sweep(fig1_matrix(), metrics=METRICS)


# ---------------------------------------------------------------------------
# FaultPlan: normalisation, algebra, wire format
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_normalises_friendly_shapes(self):
        plan = FaultPlan(
            raise_at=2, kill_at={5: 1}, delay_at={3: 2.0}, interrupt_at=[7]
        )
        assert plan.raise_at == (2,)
        assert plan.kill_at == ((5, 1),)
        assert plan.delay_at == ((3, 2.0, 1),)
        assert plan.interrupt_at == (7,)
        assert not plan.is_empty
        assert FaultPlan().is_empty

    def test_validation(self):
        with pytest.raises(ModelError):
            FaultPlan(raise_at=(-1,))
        with pytest.raises(ModelError):
            FaultPlan(kill_at={2: 0})
        with pytest.raises(ModelError):
            FaultPlan(delay_at={2: 0.0})

    def test_restrict_keeps_only_named_cells(self):
        plan = FaultPlan(raise_at=(0, 2), kill_at={1: 2, 3: 1})
        sub = plan.restrict([0, 1])
        assert sub.raise_at == (0,)
        assert sub.kill_at == ((1, 2),)

    def test_decrement_consumes_one_firing(self):
        plan = FaultPlan(kill_at={2: 2}, delay_at={3: (1.0, 1)})
        once = plan.decrement([2, 3])
        assert once.kill_at == ((2, 1),)
        assert once.delay_at == ()  # times=1 entry dropped at zero
        # Cells not requeued keep their counts.
        assert plan.decrement([9]) == plan

    def test_json_round_trip(self):
        plan = FaultPlan(
            raise_at=(1,), kill_at={2: 3}, delay_at={0: (0.5, 2)},
            interrupt_at=(3,),
        )
        assert FaultPlan.from_jsonable(
            json.loads(json.dumps(plan.to_jsonable()))
        ) == plan

    def test_apply_raise_and_interrupt(self):
        plan = FaultPlan(raise_at=(1,), interrupt_at=(2,))
        apply_cell_faults(plan, 0, in_worker=False)  # no fault: no-op
        apply_cell_faults(None, 1, in_worker=False)
        with pytest.raises(InjectedFault):
            apply_cell_faults(plan, 1, in_worker=False)
        with pytest.raises(KeyboardInterrupt):
            apply_cell_faults(plan, 2, in_worker=False)
        # Interrupts are parent-side only: a worker never raises them.
        apply_cell_faults(plan, 2, in_worker=True)

    def test_serial_kill_degrades_to_error(self):
        with pytest.raises(InjectedFault, match="serial sweep"):
            apply_cell_faults(FaultPlan(kill_at={0: 1}), 0, in_worker=False)


# ---------------------------------------------------------------------------
# serial capture semantics
# ---------------------------------------------------------------------------
class TestSerialCapture:
    def test_injected_fault_yields_partial_table(self, clean):
        result = run_sweep(
            fig1_matrix(), metrics=METRICS, faults=FaultPlan(raise_at=(2,))
        )
        # Healthy rows are bit-identical to the fault-free run's rows.
        assert result.rows == [clean.rows[0], clean.rows[1], clean.rows[3]]
        assert result.stats.failed_cells == 1
        assert result.stats.runs == 3
        [failed] = result.failed_rows
        assert failed.cell == {"processors": 3, "jitter_seed": 0}
        assert failed.metrics == {}
        assert failed.error == SweepCellError(
            error_type="InjectedFault",
            message="injected kernel fault at cell 2",
            stage="run",
            retries=0,
        )

    def test_real_failure_gets_stage_attribution(self):
        # fig1 is infeasible on one processor: a *real* scheduling-stage
        # failure, captured with its stage, while other cells survive.
        result = run_sweep(
            ScenarioMatrix(
                fig1_scenario(n_frames=1), {"processors": [1, 2]}
            ),
            metrics=METRICS,
        )
        assert len(result.rows) == 1
        [failed] = result.failed_rows
        assert failed.error.error_type == "InfeasibleError"
        assert failed.error.stage == "scheduling"

    def test_network_stage_attribution(self):
        bad = fig1_scenario(n_frames=1).replace(workload="no-such-workload")
        result = run_sweep(
            ScenarioMatrix(bad, {"jitter_seed": [0]}), metrics=METRICS
        )
        [failed] = result.failed_rows
        assert failed.error.error_type == "ModelError"
        assert failed.error.stage == "network"

    def test_on_error_raise_restores_abort(self):
        with pytest.raises(InjectedFault):
            run_sweep(
                fig1_matrix(), metrics=METRICS,
                faults=FaultPlan(raise_at=(2,)), on_error="raise",
            )

    def test_interrupt_returns_partial_table(self, clean):
        result = run_sweep(
            fig1_matrix(), metrics=METRICS,
            faults=FaultPlan(interrupt_at=(2,)),
        )
        assert result.stats.interrupted
        assert result.stats.runs == 2
        assert result.rows == clean.rows[:2]
        assert result.failed_rows == []

    def test_table_renders_failures_and_interrupts(self):
        result = run_sweep(
            fig1_matrix(), metrics=METRICS, faults=FaultPlan(raise_at=(2,))
        )
        text = result.table()
        assert "failed cells (1):" in text
        assert "! processors=3, jitter_seed=0: InjectedFault" in text
        partial = run_sweep(
            fig1_matrix(), metrics=METRICS,
            faults=FaultPlan(interrupt_at=(2,)),
        )
        assert "interrupted: 2/4 cells" in partial.table()

    def test_parameter_validation(self):
        matrix = fig1_matrix()
        with pytest.raises(ModelError):
            run_sweep(matrix, metrics=METRICS, on_error="ignore")
        with pytest.raises(ModelError):
            run_sweep(matrix, metrics=METRICS, max_retries=-1)
        with pytest.raises(ModelError):
            run_sweep(matrix, metrics=METRICS, retry_backoff=-0.1)


# ---------------------------------------------------------------------------
# the shared invariant: serial and parallel capture identically
# ---------------------------------------------------------------------------
class TestSharedFailureSemantics:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_capture_is_backend_independent(self, clean, workers):
        result = run_sweep(
            fig1_matrix(), metrics=METRICS,
            faults=FaultPlan(raise_at=(2,)), workers=workers,
        )
        assert result.rows == [clean.rows[0], clean.rows[1], clean.rows[3]]
        assert result.stats.failed_cells == 1
        assert result.stats.runs == 3
        [failed] = result.failed_rows
        # The whole structured record — type, message, stage, retries —
        # is identical whichever backend captured it.
        assert failed.error == SweepCellError(
            error_type="InjectedFault",
            message="injected kernel fault at cell 2",
            stage="run",
            retries=0,
        )

    def test_parallel_on_error_raise(self):
        with pytest.raises(SweepError, match="processors"):
            run_sweep(
                fig1_matrix(), metrics=METRICS,
                faults=FaultPlan(raise_at=(2,)), on_error="raise", workers=2,
            )


# ---------------------------------------------------------------------------
# worker supervision: crash, timeout, interrupt
# ---------------------------------------------------------------------------
class TestWorkerSupervision:
    def test_transient_worker_crash_recovers(self, clean):
        # The worker holding cells 2,3 hard-exits once; the supervisor
        # respawns the pool, requeues, and the retry completes the table.
        result = run_sweep(
            fig1_matrix(), metrics=METRICS, workers=2,
            faults=FaultPlan(kill_at={2: 1}), retry_backoff=0.01,
        )
        assert result.rows == clean.rows
        assert result.stats.failed_cells == 0
        assert result.stats.retries >= 1
        assert not result.stats.interrupted

    def test_crash_exhausts_retry_budget(self, clean):
        result = run_sweep(
            fig1_matrix(), metrics=METRICS, workers=2,
            faults=FaultPlan(kill_at={2: 9}),
            max_retries=1, retry_backoff=0.01,
        )
        # The crashing group degrades to error rows; the other group's
        # rows are still the fault-free rows.
        assert result.rows == clean.rows[:2]
        assert len(result.failed_rows) == 2
        assert result.stats.failed_cells == 2
        for failed in result.failed_rows:
            assert failed.error.error_type == "WorkerCrashError"
            assert failed.error.retries == 1
        assert {tuple(f.cell.items()) for f in result.failed_rows} == {
            (("processors", 3), ("jitter_seed", 0)),
            (("processors", 3), ("jitter_seed", 1)),
        }

    def test_transient_timeout_recovers(self, clean):
        result = run_sweep(
            fig1_matrix(), metrics=METRICS, workers=2,
            faults=FaultPlan(delay_at={2: (5.0, 1)}),
            group_timeout=1.5, retry_backoff=0.01,
        )
        assert result.rows == clean.rows
        assert result.stats.failed_cells == 0
        assert result.stats.retries >= 1

    def test_timeout_exhausts_retry_budget(self, clean):
        result = run_sweep(
            fig1_matrix(), metrics=METRICS, workers=2,
            faults=FaultPlan(delay_at={2: (30.0, 5)}),
            group_timeout=1.5, max_retries=0, retry_backoff=0.01,
        )
        assert result.rows == clean.rows[:2]
        assert len(result.failed_rows) == 2
        for failed in result.failed_rows:
            assert failed.error.error_type == "SweepTimeoutError"
            assert "deadline" in failed.error.message

    def test_interrupt_drains_completed_groups(self, clean):
        # Delaying the interrupting group lets the other group finish
        # first, so the drain has a completed reply to keep; the pool is
        # torn down promptly with no orphaned workers.
        result = run_sweep(
            fig1_matrix(), metrics=METRICS, workers=2,
            faults=FaultPlan(interrupt_at=(2,), delay_at={2: (0.5, 1)}),
        )
        assert result.stats.interrupted
        assert multiprocessing.active_children() == []
        kept = {tuple(sorted(row.cell.items())) for row in result.rows}
        # The interrupting group's own reply was merged before the
        # interrupt fired.
        assert (("jitter_seed", 0), ("processors", 3)) in kept
        for row in result.rows:
            assert row in clean.rows


# ---------------------------------------------------------------------------
# error rows and stats survive the JSON format
# ---------------------------------------------------------------------------
class TestFailureFormat:
    def test_failed_result_round_trips(self):
        result = run_sweep(
            fig1_matrix(), metrics=METRICS, faults=FaultPlan(raise_at=(2,))
        )
        restored = sweep_result_from_dict(
            json.loads(json.dumps(sweep_result_to_dict(result)))
        )
        assert restored.rows == result.rows
        assert restored.failed_rows == result.failed_rows
        assert restored.stats == result.stats
        assert restored.stats.failed_cells == 1

    def test_pre_fault_payloads_default_new_fields(self):
        result = run_sweep(
            ScenarioMatrix(fig1_scenario(n_frames=1), {"jitter_seed": [0]}),
            metrics=("executed_jobs",),
        )
        data = sweep_result_to_dict(result)
        assert "failed_rows" not in data  # clean payloads stay clean
        for key in (
            "failed_cells", "retries", "store_hits", "store_misses",
            "interrupted",
        ):
            del data["stats"][key]
        restored = sweep_result_from_dict(json.loads(json.dumps(data)))
        assert restored.stats == result.stats
        assert restored.failed_rows == []
        assert not restored.stats.interrupted
