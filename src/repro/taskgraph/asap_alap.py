"""ASAP start times and ALAP completion times (Section III-B).

For a task graph they are the recursive fixpoints::

    A'_i = max(A_i, max_{j in Pred(i)} A'_j + C_j)
    D'_i = min(D_i, min_{j in Succ(i)} D'_j - C_j)

``A'_i`` lower-bounds any feasible start ``s_i`` and ``D'_i`` upper-bounds
any feasible completion ``e_i``.  Because the job list is stored in
topological order, one forward and one backward pass suffice.

These times feed (a) the necessary schedulability condition of
Proposition 3.1, (b) the precedence-aware load metric
(:mod:`repro.taskgraph.load`), and (c) the ALAP/EDF schedule-priority
heuristic (:mod:`repro.scheduling.priorities`).

Both passes run in the graph's integer tick domain (the fixpoints are pure
max/add recurrences, so the tick results convert back to the exact rational
bounds); :func:`compute_bounds_ticks` exposes the raw integer arrays for
hot callers like the SP heuristics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.timebase import Time, TimeLike
from .graph import TaskGraph


@dataclass(frozen=True)
class TimingBounds:
    """ASAP starts and ALAP completions, indexed like ``graph.jobs``."""

    asap: List[Time]
    alap: List[Time]

    def window(self, i: int) -> Time:
        """Length of job *i*'s feasible execution window ``D'_i - A'_i``."""
        return self.alap[i] - self.asap[i]


def compute_bounds_ticks(
    graph: TaskGraph,
    wcet_override: Optional[Sequence[TimeLike]] = None,
) -> Tuple[List[int], List[int]]:
    """ASAP/ALAP fixpoints as integer tick arrays of ``graph.tick_times()``.

    ``wcet_override`` substitutes per-job execution times (exact
    rationals) for the nominal WCETs — the heterogeneous ranking path
    passes platform-aggregated WCETs here.  The tick domain is extended
    to represent the overrides exactly, so both returned arrays live in
    that (possibly finer) domain; relative comparisons are unaffected.
    """
    n = len(graph)
    tt = graph.tick_times()
    if wcet_override is not None:
        tt = tt.rescaled_to(wcet_override)
        arrival, deadline = tt.arrival, tt.deadline
        wcet = [tt.domain.to_ticks(v) for v in wcet_override]
    else:
        arrival, deadline, wcet = tt.arrival, tt.deadline, tt.wcet
    pred_table = graph.predecessor_table()
    succ_table = graph.successor_table()

    asap: List[int] = [0] * n
    for i in range(n):
        best = arrival[i]
        for p in pred_table[i]:
            cand = asap[p] + wcet[p]
            if cand > best:
                best = cand
        asap[i] = best

    alap: List[int] = [0] * n
    for i in range(n - 1, -1, -1):
        best = deadline[i]
        for s in succ_table[i]:
            cand = alap[s] - wcet[s]
            if cand < best:
                best = cand
        alap[i] = best

    return asap, alap


def compute_bounds(graph: TaskGraph) -> TimingBounds:
    """Compute ASAP/ALAP for every job of *graph* (exact rationals)."""
    asap_t, alap_t = compute_bounds_ticks(graph)
    from_ticks = graph.tick_times().domain.from_ticks
    return TimingBounds(
        [from_ticks(t) for t in asap_t],
        [from_ticks(t) for t in alap_t],
    )


def precedence_feasible(graph: TaskGraph, bounds: TimingBounds = None) -> bool:
    """First half of Proposition 3.1: ``A'_i + C_i <= D'_i`` for every job.

    A violated bound means some job cannot fit its window even on infinitely
    many processors — the graph is infeasible regardless of platform.
    """
    if bounds is None:
        asap_t, alap_t = compute_bounds_ticks(graph)
        wcet_t = graph.tick_times().wcet
        return all(
            asap_t[i] + wcet_t[i] <= alap_t[i] for i in range(len(graph))
        )
    return all(
        bounds.asap[i] + graph.jobs[i].wcet <= bounds.alap[i]
        for i in range(len(graph))
    )


def critical_path_length(graph: TaskGraph) -> Time:
    """Length of the longest WCET-weighted path (ignoring arrivals/deadlines).

    Useful as a makespan lower bound and in reports.
    """
    n = len(graph)
    tt = graph.tick_times()
    wcet = tt.wcet
    pred_table = graph.predecessor_table()
    finish: List[int] = [0] * n
    best = 0
    for i in range(n):
        start = 0
        for p in pred_table[i]:
            if finish[p] > start:
                start = finish[p]
        finish[i] = start + wcet[i]
        if finish[i] > best:
            best = finish[i]
    return tt.domain.from_ticks(best)
