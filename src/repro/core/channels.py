"""Channel substrate: FIFO and blackboard channel types.

Section II-A of the paper defines two default channel types:

* a **FIFO** with queue semantics, and
* a **blackboard** that remembers the last written value and can be read
  multiple times.

Reading from an empty FIFO or a never-written blackboard returns an explicit
*indicator of non-availability of data*; we model that indicator with the
singleton :data:`NO_DATA` rather than ``None`` so that ``None`` remains a
legal payload value.

A channel *specification* (:class:`ChannelSpec`) is the static object held by
an FPPN definition: name, type, writer/reader endpoints and an optional
alphabet predicate.  A channel *state* (:class:`FifoState`,
:class:`BlackboardState`) is the mutable runtime object created per
execution.  Keeping the two separate lets a single network definition be
executed many times (zero-delay run, multiprocessor simulation, determinism
replays) without cross-talk.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, List, Optional, Tuple

from ..errors import ChannelError


class _NoData:
    """Singleton sentinel returned when a read finds no available data."""

    _instance: Optional["_NoData"] = None

    def __new__(cls) -> "_NoData":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "NO_DATA"

    def __bool__(self) -> bool:
        return False

    def __reduce__(self):
        return (_NoData, ())


#: Indicator of non-availability of data (Section II-A).
NO_DATA = _NoData()


def is_no_data(value: Any) -> bool:
    """True when *value* is the non-availability indicator.

    An identity check suffices — ``_NoData.__new__`` (and its
    ``__reduce__``, for unpickling) guarantee the singleton — and it keeps
    this call cheap inside kernel bodies on the simulator's hot path.
    """
    return value is NO_DATA


class ChannelKind(enum.Enum):
    """The two default channel types of the FPPN model."""

    FIFO = "fifo"
    BLACKBOARD = "blackboard"


@dataclass(frozen=True)
class ChannelSpec:
    """Static description of an internal channel ``c = (writer, reader)``.

    Parameters
    ----------
    name:
        Unique channel name within the network.
    kind:
        :class:`ChannelKind` selecting queue vs last-value semantics.
    writer / reader:
        Names of the writer and reader processes.  By Definition 2.1 a
        channel is simultaneously a state variable and a writer/reader pair.
    alphabet:
        Optional predicate restricting legal payload values (``Σc`` in the
        paper).  ``None`` means any Python object is accepted.
    initial:
        Optional initial value.  A blackboard with an initial value can be
        read before the first write; a FIFO with an initial value starts
        with that single token enqueued (classic dataflow "initial token",
        required for feedback loops).
    """

    name: str
    kind: ChannelKind
    writer: str
    reader: str
    alphabet: Optional[Callable[[Any], bool]] = None
    initial: Any = NO_DATA

    def __post_init__(self) -> None:
        if not self.name:
            raise ChannelError("channel name must be non-empty")
        if self.writer == self.reader:
            raise ChannelError(
                f"channel {self.name!r}: writer and reader must be distinct "
                f"processes (both are {self.writer!r})"
            )

    @property
    def endpoints(self) -> Tuple[str, str]:
        """The ``(writer, reader)`` process-name pair."""
        return (self.writer, self.reader)

    def check_value(self, value: Any) -> None:
        """Raise :class:`ChannelError` if *value* is outside the alphabet."""
        if self.alphabet is not None and not self.alphabet(value):
            raise ChannelError(
                f"value {value!r} rejected by alphabet of channel {self.name!r}"
            )

    def new_state(self) -> "ChannelState":
        """Create a fresh mutable runtime state for this channel."""
        if self.kind is ChannelKind.FIFO:
            return FifoState(self)
        return BlackboardState(self)


class ChannelState:
    """Mutable runtime state of a channel; subclassed per channel kind."""

    def __init__(self, spec: ChannelSpec) -> None:
        self.spec = spec
        #: Chronological log of every value ever written (used by the
        #: determinism checker, Prop. 2.1: "sequences of values written at
        #: all ... internal channels").
        self.write_log: List[Any] = []

    # -- interface -----------------------------------------------------
    def write(self, value: Any) -> None:
        raise NotImplementedError

    def read(self) -> Any:
        """Read one value, or :data:`NO_DATA` when nothing is available."""
        raise NotImplementedError

    def peek(self) -> Any:
        """Non-destructive read (same availability rules as :meth:`read`)."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class FifoState(ChannelState):
    """Queue-semantics channel state.

    Reads are *non-blocking* (unlike classic KPN): an empty queue yields
    :data:`NO_DATA`.  The FPPN model moves all blocking into the event
    structure, which is what makes it schedulable (Section II-A).
    """

    def __init__(self, spec: ChannelSpec) -> None:
        super().__init__(spec)
        self._queue: Deque[Any] = deque()
        if not is_no_data(spec.initial):
            self._queue.append(spec.initial)

    def write(self, value: Any) -> None:
        self.spec.check_value(value)
        self._queue.append(value)
        self.write_log.append(value)

    def read(self) -> Any:
        if not self._queue:
            return NO_DATA
        return self._queue.popleft()

    def peek(self) -> Any:
        if not self._queue:
            return NO_DATA
        return self._queue[0]

    def __len__(self) -> int:
        return len(self._queue)


class BlackboardState(ChannelState):
    """Last-value-semantics channel state.

    The blackboard remembers the most recently written value; reads are
    idempotent and never consume.  Before the first write (and with no
    initial value) reads yield :data:`NO_DATA`.
    """

    def __init__(self, spec: ChannelSpec) -> None:
        super().__init__(spec)
        self._value: Any = spec.initial

    def write(self, value: Any) -> None:
        self.spec.check_value(value)
        self._value = value
        self.write_log.append(value)

    def read(self) -> Any:
        return self._value

    def peek(self) -> Any:
        return self._value

    def __len__(self) -> int:
        return 0 if is_no_data(self._value) else 1


@dataclass
class ExternalInputSpec:
    """An external input channel ``I`` fed by an event generator.

    The k-th job of the owning process reads sample ``[k]`` (1-based, as in
    the paper's action notation ``x?[k]Ie``) within the window
    ``[τk, τk + de]``.  Samples are supplied per execution via
    :class:`repro.core.invocations.Stimulus`.
    """

    name: str
    owner: str  # process whose generator owns this external channel

    def __post_init__(self) -> None:
        if not self.name:
            raise ChannelError("external input name must be non-empty")


@dataclass
class ExternalOutputSpec:
    """An external output channel ``O`` written by an event generator's process."""

    name: str
    owner: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ChannelError("external output name must be non-empty")


@dataclass
class ExternalOutputState:
    """Runtime log of samples written to an external output.

    ``samples[k]`` holds the value written by job ``k`` (1-based index kept in
    a dict so skipped/false jobs leave holes rather than shifting later
    samples — exactly the indexed-sample semantics of the paper).
    """

    spec: ExternalOutputSpec
    samples: dict = field(default_factory=dict)

    def write(self, k: int, value: Any) -> None:
        if k in self.samples:
            raise ChannelError(
                f"external output {self.spec.name!r}: sample [{k}] written twice"
            )
        self.samples[k] = value

    def as_sequence(self) -> List[Tuple[int, Any]]:
        """Samples as a list of ``(k, value)`` sorted by sample index."""
        return sorted(self.samples.items())
