"""Async orchestrator: many coroutine clients, one resident SweepPool.

The pool and the SQLite store are single-threaded by design (store hits
resolve inside ``submit``, rows persist as replies merge, and sqlite3
connections refuse cross-thread use), so the orchestrator funnels
**every** pool/store interaction through one dedicated *driver thread*:
coroutines post commands to a queue and await their outcome; the driver
alternates between handling commands and :meth:`SweepPool.pump_once`
cycles that make progress on everything outstanding.  Rows and
:class:`~repro.experiment.PoolEvent` milestones stream back through
per-ticket item queues; a waiting coroutine is woken with
``call_soon_threadsafe`` on whatever loop it awaited from, so the
orchestrator serves any number of event loops (the JSON-RPC server's,
a test's ``asyncio.run``, ...) concurrently.

Fairness is the pool's own: each submission carries its client tag into
:meth:`SweepPool.submit`, whose pending queue round-robins across tags
— one client's huge matrix cannot starve another's small one.
"""

from __future__ import annotations

import asyncio
import queue
import threading
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import (
    Any,
    AsyncIterator,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..errors import ServiceError, UnknownTicketError
from ..experiment.faults import FaultPlan
from ..experiment.pool import SweepPool, SweepTicket
from ..experiment.store import SqliteSweepStore, SweepStore
from ..experiment.sweep import DEFAULT_METRICS, ScenarioMatrix, SweepResult

__all__ = ["SweepOrchestrator", "TicketStatus", "TICKET_STATES"]

#: Ticket lifecycle: ``queued`` (accepted, not yet handed to the pool
#: driver), ``running`` (groups pending/dispatched), then exactly one of
#: ``done`` (result ready — possibly a partial after ``cancel``),
#: ``failed`` (``on_error="raise"`` sweep raised) or ``cancelled``
#: (cancel withdrew groups; the partial result is still available).
TICKET_STATES = frozenset(
    {"queued", "running", "done", "failed", "cancelled"}
)

_TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


@dataclass(frozen=True)
class TicketStatus:
    """Point-in-time snapshot of one submission's service state."""

    ticket: int
    client: Optional[str]
    state: str
    cells: int
    rows_streamed: int
    done: bool


class _Ticket:
    """Server-side record of one submission.

    ``items`` is the stream seen by :meth:`SweepOrchestrator.stream`:
    ``("row", SweepRow)`` / ``("event", PoolEvent)`` entries pushed from
    the driver thread, closed by a single terminal ``("done",
    SweepResult)`` or ``("error", Exception)``.  At most one coroutine
    may wait on it at a time (one stream consumer per ticket).
    """

    def __init__(self, tid: int, client: Optional[str], cells: int) -> None:
        self.tid = tid
        self.client = client
        self.cells = cells
        self.state = "queued"
        self.rows_streamed = 0
        self.pool_ticket: Optional[SweepTicket] = None
        self.result: Optional[SweepResult] = None
        self.error: Optional[BaseException] = None
        self.lock = threading.Lock()
        self.items: Deque[Tuple[str, Any]] = deque()
        self.waiter: Optional[
            Tuple[asyncio.AbstractEventLoop, asyncio.Future]
        ] = None

    def push(self, kind: str, payload: Any) -> None:
        """Append one stream item and wake the waiting consumer, if any.

        Driver-thread side.  The waiter's loop may already be closed (a
        client that went away mid-stream) — that wake-up is dropped; the
        item stays queued for a later consumer.
        """
        with self.lock:
            self.items.append((kind, payload))
            waiter, self.waiter = self.waiter, None
        if waiter is not None:
            loop, future = waiter
            try:
                loop.call_soon_threadsafe(_wake, future)
            except RuntimeError:
                pass

    def status(self) -> TicketStatus:
        return TicketStatus(
            ticket=self.tid,
            client=self.client,
            state=self.state,
            cells=self.cells,
            rows_streamed=self.rows_streamed,
            done=self.state in _TERMINAL_STATES,
        )


def _wake(future: asyncio.Future) -> None:
    if not future.done():
        future.set_result(None)


class SweepOrchestrator:
    """Serve one shared pool (and optional store) to async clients.

    Parameters
    ----------
    pool:
        An existing :class:`~repro.experiment.SweepPool` to serve, or
        ``None`` to create (and own) one from ``workers`` and
        ``pool_options``.  An owned pool is closed by :meth:`close`.
    store:
        The shared cache tier fronting the pool, attached to every
        submission: a :class:`~repro.experiment.SweepStore` instance,
        or a path string opened as a WAL-mode
        :class:`~repro.experiment.SqliteSweepStore` **on the driver
        thread** (sqlite3 connections are single-threaded; passing the
        path is the safe spelling).  Hit rows stream back without any
        dispatch; computed rows persist for every later client.
    max_finished_tickets:
        Bound on retained *finished* ticket records.  A long-lived
        service would otherwise grow its ticket table forever (every
        submission leaves a record); once a terminal ticket ages past
        the newest ``max_finished_tickets`` finished ones, its record is
        dropped and later :meth:`status`/:meth:`stream` lookups raise
        :class:`~repro.errors.UnknownTicketError`.  Live (queued or
        running) tickets are never evicted.
    """

    def __init__(
        self,
        pool: Optional[SweepPool] = None,
        *,
        workers: int = 2,
        store: Union[None, str, SweepStore] = None,
        max_finished_tickets: int = 256,
        **pool_options: Any,
    ) -> None:
        if max_finished_tickets < 1:
            raise ServiceError("max_finished_tickets must be >= 1")
        self._max_finished = max_finished_tickets
        self._finished: Deque[int] = deque()
        self._owns_pool = pool is None
        self._pool = (
            SweepPool(workers=workers, **pool_options)
            if pool is None else pool
        )
        self._store_spec = store
        self._store: Optional[SweepStore] = None
        self._owns_store = isinstance(store, str)
        self._commands: "queue.Queue[Tuple[Any, ...]]" = queue.Queue()
        self._tickets: Dict[int, _Ticket] = {}
        self._active: List[_Ticket] = []
        self._next_tid = 1
        self._closed = False
        self._tickets_lock = threading.Lock()
        self._startup = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._driver = threading.Thread(
            target=self._drive, name="sweep-orchestrator", daemon=True
        )
        self._driver.start()
        self._startup.wait()
        if self._startup_error is not None:
            raise ServiceError(
                f"orchestrator failed to start: {self._startup_error}"
            ) from self._startup_error

    # -- async client API ----------------------------------------------
    async def submit(
        self,
        matrix: ScenarioMatrix,
        metrics: Sequence[str] = DEFAULT_METRICS,
        *,
        client: Optional[str] = None,
        faults: Optional[FaultPlan] = None,
        on_error: str = "capture",
        lean: bool = True,
        group_timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
    ) -> int:
        """Enqueue a matrix on the shared pool; returns the ticket id.

        The submission is tagged with ``client`` for the pool's fair
        scheduler and fronted by the shared store (hit rows appear on
        the ticket stream without touching a worker).  Returns as soon
        as the driver accepted the submission — consume rows with
        :meth:`stream`, poll with :meth:`status`.
        """
        if self._closed:
            raise ServiceError("orchestrator is closed")
        with self._tickets_lock:
            tid = self._next_tid
            self._next_tid += 1
            ticket = _Ticket(tid, client, len(matrix))
            self._tickets[tid] = ticket
        kwargs = {
            "metrics": metrics,
            "faults": faults,
            "on_error": on_error,
            "lean": lean,
            "group_timeout": group_timeout,
            "max_retries": max_retries,
            "client": client,
        }
        outcome: Future = Future()
        self._commands.put(("submit", ticket, matrix, kwargs, outcome))
        try:
            await asyncio.wrap_future(outcome)
        except BaseException:
            with self._tickets_lock:
                self._tickets.pop(tid, None)
            raise
        return tid

    async def stream(
        self, ticket: int
    ) -> AsyncIterator[Tuple[str, Any]]:
        """Yield a ticket's live stream until its terminal item.

        Items are ``("row", SweepRow)`` and ``("event", PoolEvent)`` in
        arrival order, closed by one ``("done", SweepResult)``.  A
        failed ``on_error="raise"`` sweep raises its error instead.
        One consumer at a time; rows pushed before the consumer
        attached (store hits, an earlier disconnected consumer) are
        replayed from the queue, nothing is lost.
        """
        record = self._ticket(ticket)
        while True:
            kind, payload = await self._next_item(record)
            if kind == "error":
                raise payload
            yield kind, payload
            if kind == "done":
                return

    async def _next_item(self, record: _Ticket) -> Tuple[str, Any]:
        while True:
            with record.lock:
                if record.items:
                    return record.items.popleft()
                if record.waiter is not None:
                    raise ServiceError(
                        f"ticket {record.tid} already has a stream "
                        "consumer"
                    )
                loop = asyncio.get_running_loop()
                future: asyncio.Future = loop.create_future()
                record.waiter = (loop, future)
            try:
                await future
            finally:
                with record.lock:
                    if record.waiter == (loop, future):
                        record.waiter = None

    def status(self, ticket: int) -> TicketStatus:
        """Snapshot a ticket's state (thread-safe, non-blocking)."""
        return self._ticket(ticket).status()

    async def cancel(self, ticket: int) -> bool:
        """Withdraw a ticket's not-yet-dispatched groups.

        Dispatched groups finish normally (their rows are kept); the
        ticket then terminates with a partial result.  True if anything
        was withdrawn.  Cancelling a finished ticket is a no-op.
        """
        record = self._ticket(ticket)
        outcome: Future = Future()
        self._commands.put(("cancel", record, outcome))
        return await asyncio.wrap_future(outcome)

    async def close(self) -> None:
        """Async wrapper over :meth:`close_sync` (runs it off-loop)."""
        await asyncio.get_running_loop().run_in_executor(
            None, self.close_sync
        )

    # -- sync lifecycle -------------------------------------------------
    def close_sync(self) -> None:
        """Stop the driver; unfinished tickets become interrupted partials.

        Owned resources (pool created here, store opened from a path)
        are closed on the driver thread on its way out.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        outcome: Future = Future()
        self._commands.put(("close", outcome))
        outcome.result(timeout=60.0)
        self._driver.join(timeout=60.0)

    def __enter__(self) -> "SweepOrchestrator":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close_sync()

    def _ticket(self, ticket: int) -> _Ticket:
        with self._tickets_lock:
            record = self._tickets.get(ticket)
        if record is None:
            raise UnknownTicketError(
                f"unknown ticket {ticket} (never issued, or finished and "
                "evicted from the bounded ticket history)"
            )
        return record

    def _retire(self, ticket: _Ticket) -> None:
        """Book a terminal ticket into the bounded finished history.

        Driver-thread side, called at every terminal transition.  The
        oldest finished records beyond ``max_finished_tickets`` are
        dropped; live tickets are untouched (they are not in the
        finished deque until they terminate).
        """
        with self._tickets_lock:
            self._finished.append(ticket.tid)
            while len(self._finished) > self._max_finished:
                evicted = self._finished.popleft()
                self._tickets.pop(evicted, None)

    # -- driver thread ---------------------------------------------------
    def _drive(self) -> None:
        try:
            if isinstance(self._store_spec, str):
                self._store = SqliteSweepStore(self._store_spec)
            else:
                self._store = self._store_spec
        except BaseException as exc:
            self._startup_error = exc
            self._startup.set()
            return
        self._startup.set()
        try:
            while True:
                if self._handle_commands():
                    break
                if self._active:
                    self._pool.pump_once()
                    self._reap()
                else:
                    try:
                        command = self._commands.get(timeout=0.05)
                    except queue.Empty:
                        continue
                    if self._handle(command):
                        break
        finally:
            if self._owns_store and self._store is not None:
                try:
                    self._store.close()
                except Exception:
                    pass

    def _handle_commands(self) -> bool:
        while True:
            try:
                command = self._commands.get_nowait()
            except queue.Empty:
                return False
            if self._handle(command):
                return True

    def _handle(self, command: Tuple[Any, ...]) -> bool:
        kind = command[0]
        if kind == "submit":
            _, ticket, matrix, kwargs, outcome = command
            try:
                self._do_submit(ticket, matrix, kwargs)
            except BaseException as exc:
                outcome.set_exception(exc)
            else:
                outcome.set_result(ticket.tid)
            return False
        if kind == "cancel":
            _, ticket, outcome = command
            try:
                withdrawn = (
                    ticket.pool_ticket is not None
                    and ticket.pool_ticket.cancel()
                )
                self._reap()
            except BaseException as exc:
                outcome.set_exception(exc)
            else:
                outcome.set_result(withdrawn)
            return False
        if kind == "close":
            _, outcome = command
            try:
                self._shutdown()
            except BaseException as exc:
                outcome.set_exception(exc)
            else:
                outcome.set_result(None)
            return True
        raise AssertionError(f"unknown driver command {kind!r}")

    def _do_submit(
        self, ticket: _Ticket, matrix: ScenarioMatrix, kwargs: Dict[str, Any]
    ) -> None:
        def on_row(row: Any) -> None:
            ticket.rows_streamed += 1
            ticket.push("row", row)

        def on_progress(event: Any) -> None:
            ticket.push("event", event)

        ticket.pool_ticket = self._pool.submit(
            matrix,
            kwargs["metrics"],
            lean=kwargs["lean"],
            store=self._store,
            faults=kwargs["faults"],
            on_error=kwargs["on_error"],
            on_row=on_row,
            on_progress=on_progress,
            group_timeout=kwargs["group_timeout"],
            max_retries=kwargs["max_retries"],
            client=kwargs["client"],
        )
        ticket.state = "running"
        self._active.append(ticket)
        # A submission fully served by the store is already finished.
        self._reap()

    def _reap(self) -> None:
        """Resolve finished pool tickets into terminal stream items."""
        for ticket in list(self._active):
            pool_ticket = ticket.pool_ticket
            if pool_ticket is None or not pool_ticket.done:
                continue
            self._active.remove(ticket)
            try:
                result = pool_ticket.result()
            except Exception as exc:
                ticket.error = exc
                ticket.state = "failed"
                self._retire(ticket)
                ticket.push("error", exc)
                continue
            ticket.result = result
            ticket.state = (
                "cancelled" if pool_ticket.cancelled else "done"
            )
            self._retire(ticket)
            ticket.push("done", result)

    def _shutdown(self) -> None:
        """Drain-or-cancel everything outstanding, then release the pool.

        Pending groups are withdrawn; dispatched groups are abandoned by
        ``close(graceful=True)`` (their submissions become interrupted
        partials), so shutdown is prompt even mid-sweep.  Each active
        ticket still resolves to a terminal item — late stream consumers
        see a partial result, never a hang.
        """
        for ticket in self._active:
            if ticket.pool_ticket is not None:
                ticket.pool_ticket.cancel()
        if self._owns_pool:
            self._pool.close(graceful=True)
        self._reap()
        # Tickets whose groups were mid-dispatch at close never finish
        # through the pool; resolve them as interrupted partials.
        for ticket in list(self._active):
            self._active.remove(ticket)
            pool_ticket = ticket.pool_ticket
            try:
                result = (
                    pool_ticket.result() if pool_ticket is not None
                    else None
                )
            except Exception as exc:
                ticket.error = exc
                ticket.state = "failed"
                self._retire(ticket)
                ticket.push("error", exc)
                continue
            ticket.result = result
            ticket.state = "cancelled"
            self._retire(ticket)
            ticket.push("done", result)
