"""The task graph ``TG(J, E)``: a DAG of jobs with precedence edges.

Jobs are stored in the total order ``<J`` produced by the derivation's
hyperperiod simulation, so the node list itself is a topological order —
every edge ``(i, j)`` satisfies ``i < j``.  The class enforces this, which
makes downstream algorithms (ASAP/ALAP, list scheduling, transitive
reduction) single forward/backward passes.

Adjacency queries (``successors``/``predecessors``/``sources``/``sinks``/
``edges``/``jobs_of``) return **cached immutable tuples**: the sorted views
are built lazily on first use and invalidated by ``add_edge``/
``remove_edge``, so the hot scheduling and simulation loops pay no per-call
sorting.  The job list itself is frozen at construction (the name index and
the integer-tick time view both rely on that).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import ModelError
from ..core.ticks import JobTicks
from ..core.timebase import Time
from .jobs import Job

Edge = Tuple[int, int]


class TaskGraph:
    """A directed acyclic graph of jobs with index-based edges.

    Parameters
    ----------
    jobs:
        Jobs in ``<J`` order (arrival-time–major total order from the
        derivation).
    edges:
        Iterable of ``(i, j)`` index pairs, each with ``i < j``.
    hyperperiod:
        The frame length ``H`` the graph was derived for (kept for the
        online policy and feasibility checks); optional for hand-built
        graphs in tests.
    """

    def __init__(
        self,
        jobs: Sequence[Job],
        edges: Iterable[Edge] = (),
        hyperperiod: Optional[Time] = None,
    ) -> None:
        # A tuple: the job list is frozen at construction (the name index,
        # the jobs_of grouping and the tick-time view all cache over it).
        self.jobs: Tuple[Job, ...] = tuple(jobs)
        self.hyperperiod = hyperperiod
        names = [j.name for j in self.jobs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ModelError(f"duplicate job names in task graph: {dupes!r}")
        self._index: Dict[str, int] = {name: i for i, name in enumerate(names)}
        self._succs: List[Set[int]] = [set() for _ in self.jobs]
        self._preds: List[Set[int]] = [set() for _ in self.jobs]
        # Lazily built immutable adjacency views, all keyed in one dict so
        # edge mutations invalidate with a single (usually no-op) clear.
        self._adj_cache: Dict[str, object] = {}
        # Job-derived caches (jobs are frozen at construction, never stale).
        self._jobs_of_view: Optional[Dict[str, Tuple[int, ...]]] = None
        self._tick_times: Optional[JobTicks] = None
        for i, j in edges:
            self.add_edge(i, j)

    def _invalidate_adjacency(self) -> None:
        if self._adj_cache:
            self._adj_cache = {}

    # ------------------------------------------------------------------
    def add_edge(self, i: int, j: int) -> None:
        """Add precedence edge ``jobs[i] -> jobs[j]`` (requires ``i < j``)."""
        n = len(self.jobs)
        if not (0 <= i < n and 0 <= j < n):
            raise ModelError(f"edge ({i}, {j}) out of range for {n} jobs")
        if i == j:
            raise ModelError(f"self-loop on job {self.jobs[i].name}")
        if i > j:
            raise ModelError(
                f"edge ({i}, {j}) violates the <J total order "
                f"({self.jobs[i].name} comes after {self.jobs[j].name})"
            )
        self._succs[i].add(j)
        self._preds[j].add(i)
        self._invalidate_adjacency()

    def remove_edge(self, i: int, j: int) -> None:
        self._succs[i].discard(j)
        self._preds[j].discard(i)
        self._invalidate_adjacency()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs)

    def index_of(self, name: str) -> int:
        """Index of the job named ``p[k]``."""
        try:
            return self._index[name]
        except KeyError:
            raise ModelError(f"no job named {name!r} in task graph") from None

    def job(self, name: str) -> Job:
        return self.jobs[self.index_of(name)]

    def has_edge(self, i: int, j: int) -> bool:
        return j in self._succs[i]

    def has_edge_named(self, a: str, b: str) -> bool:
        return self.has_edge(self.index_of(a), self.index_of(b))

    def successors(self, i: int) -> Tuple[int, ...]:
        """Direct successors of job *i* as a cached sorted tuple."""
        return self.successor_table()[i]

    def predecessors(self, i: int) -> Tuple[int, ...]:
        """Direct predecessors of job *i* as a cached sorted tuple."""
        return self.predecessor_table()[i]

    def successor_table(self) -> List[Tuple[int, ...]]:
        """The whole successor adjacency, indexed like ``jobs`` (cached)."""
        view = self._adj_cache.get("succ")
        if view is None:
            view = self._adj_cache["succ"] = [
                tuple(sorted(s)) for s in self._succs
            ]
        return view

    def predecessor_table(self) -> List[Tuple[int, ...]]:
        """The whole predecessor adjacency, indexed like ``jobs`` (cached)."""
        view = self._adj_cache.get("pred")
        if view is None:
            view = self._adj_cache["pred"] = [
                tuple(sorted(s)) for s in self._preds
            ]
        return view

    def edges(self) -> List[Edge]:
        """All edges as sorted ``(i, j)`` pairs."""
        view = self._adj_cache.get("edges")
        if view is None:
            view = self._adj_cache["edges"] = tuple(
                sorted((i, j) for i, succs in enumerate(self._succs) for j in succs)
            )
        return list(view)

    @property
    def edge_count(self) -> int:
        return sum(len(s) for s in self._succs)

    def sources(self) -> Tuple[int, ...]:
        """Jobs with no predecessors (cached tuple)."""
        view = self._adj_cache.get("sources")
        if view is None:
            view = self._adj_cache["sources"] = tuple(
                i for i in range(len(self.jobs)) if not self._preds[i]
            )
        return view

    def sinks(self) -> Tuple[int, ...]:
        """Jobs with no successors (cached tuple)."""
        view = self._adj_cache.get("sinks")
        if view is None:
            view = self._adj_cache["sinks"] = tuple(
                i for i in range(len(self.jobs)) if not self._succs[i]
            )
        return view

    # ------------------------------------------------------------------
    def jobs_of(self, process: str) -> Tuple[int, ...]:
        """Indices of all jobs of *process*, in k order (cached tuple)."""
        view = self._jobs_of_view
        if view is None:
            grouped: Dict[str, List[int]] = {}
            for i, j in enumerate(self.jobs):
                grouped.setdefault(j.process, []).append(i)
            view = self._jobs_of_view = {
                name: tuple(sorted(idxs, key=lambda i: self.jobs[i].k))
                for name, idxs in grouped.items()
            }
        return view.get(process, ())

    def tick_times(self) -> JobTicks:
        """The graph's integer-tick time view (cached; see :mod:`repro.core.ticks`).

        Contains every job arrival, deadline and WCET plus the hyperperiod,
        so all list-scheduling and priority arithmetic over this graph can
        run on plain integers and convert back exactly.
        """
        tt = self._tick_times
        if tt is None:
            tt = self._tick_times = JobTicks(self.jobs, self.hyperperiod)
        return tt

    def total_wcet(self) -> Time:
        """Sum of all job WCETs (the numerator of utilization over a frame)."""
        total = Time(0)
        for j in self.jobs:
            total += j.wcet
        return total

    def reachable_from(self, i: int) -> Set[int]:
        """All jobs reachable from *i* by a non-empty path."""
        seen: Set[int] = set()
        stack = list(self._succs[i])
        while stack:
            v = stack.pop()
            if v in seen:
                continue
            seen.add(v)
            stack.extend(self._succs[v] - seen)
        return seen

    def is_transitively_reduced(self) -> bool:
        """True when no edge is implied by a longer path."""
        for i in range(len(self.jobs)):
            for mid in self._succs[i]:
                implied = self.reachable_from(mid)
                if implied & self._succs[i]:
                    return False
        return True

    def copy(self) -> "TaskGraph":
        return TaskGraph(self.jobs, self.edges(), self.hyperperiod)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"TaskGraph(jobs={len(self.jobs)}, edges={self.edge_count}, "
            f"H={self.hyperperiod})"
        )
