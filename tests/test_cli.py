"""The ``python -m repro`` CLI (ISSUE 8): config round-trips, sweep rows
bit-identical to in-process runs, diff exit codes, progress and spans."""

import json
import subprocess
import sys

import pytest

from repro import ScenarioMatrix, run_sweep
from repro.apps import fig1_scenario
from repro.cli import main
from repro.io.json_io import (
    matrix_to_dict,
    scenario_to_dict,
    sweep_result_from_dict,
    sweep_result_to_dict,
)

METRICS = ["executed_jobs", "missed_jobs", "makespan"]


def write_json(path, payload):
    # No sort_keys: matrix axis order is enumeration order and must
    # survive the round trip.
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return str(path)


@pytest.fixture
def run_config(tmp_path):
    return write_json(tmp_path / "run.json", {
        "format": "fppn-config",
        "version": 1,
        "scenario": scenario_to_dict(fig1_scenario(n_frames=2)),
        "metrics": METRICS,
    })


def sweep_matrix():
    return ScenarioMatrix(
        fig1_scenario(n_frames=1),
        {"processors": [2, 3], "jitter_seed": [0, 1]},
    )


@pytest.fixture
def sweep_config(tmp_path):
    return write_json(tmp_path / "sweep.json", {
        "format": "fppn-config",
        "version": 1,
        "matrix": matrix_to_dict(sweep_matrix()),
        "metrics": METRICS,
    })


# ---------------------------------------------------------------------------
# run
# ---------------------------------------------------------------------------
class TestRun:
    def test_run_config_round_trip(self, run_config, tmp_path, capsys):
        out = tmp_path / "out.json"
        assert main(["run", run_config, "-o", str(out)]) == 0
        document = json.loads(out.read_text())
        assert document["format"] == "fppn-sweep"
        result = sweep_result_from_dict(document)

        reference = run_sweep(
            ScenarioMatrix(fig1_scenario(n_frames=2), {}), tuple(METRICS)
        )
        assert result.rows == reference.rows
        assert result.metrics == tuple(METRICS)

    def test_run_writes_json_to_stdout_by_default(self, run_config, capsys):
        assert main(["run", run_config]) == 0
        captured = capsys.readouterr()
        document = json.loads(captured.out)
        assert document["format"] == "fppn-sweep"
        assert len(document["rows"]) == 1

    def test_bare_scenario_document_is_accepted(self, tmp_path, capsys):
        config = write_json(
            tmp_path / "scenario.json",
            scenario_to_dict(fig1_scenario(n_frames=1)),
        )
        assert main(["run", config]) == 0
        document = json.loads(capsys.readouterr().out)
        # No metrics named: the full default metric set is computed.
        assert "kernel_busy" in document["metrics"]

    def test_spans_export(self, run_config, tmp_path, capsys):
        spans_path = tmp_path / "spans.json"
        out = tmp_path / "out.json"
        assert main([
            "run", run_config, "-o", str(out), "--spans", str(spans_path)
        ]) == 0
        document = json.loads(spans_path.read_text())
        assert document["format"] == "fppn-spans"
        spans = document["spans"]
        assert spans[0]["kind"] == "run" and spans[0]["parent_id"] is None
        frame_ids = {s["span_id"] for s in spans if s["kind"] == "frame"}
        assert frame_ids  # the frame level sits between run and kernels
        assert all(
            s["parent_id"] == 1 for s in spans if s["kind"] == "frame"
        )
        kernels = [s for s in spans if s["kind"] == "kernel"]
        assert kernels and all(s["parent_id"] in frame_ids for s in kernels)
        # The metrics table is still produced alongside the spans.
        assert json.loads(out.read_text())["rows"]

    def test_progress_renders_on_stderr(self, run_config, capsys):
        assert main(["run", run_config, "--progress"]) == 0
        captured = capsys.readouterr()
        assert "[run] cell 1/1" in captured.err
        assert "[run] done:" in captured.err
        json.loads(captured.out)  # stdout stays pure JSON

    def test_matrix_config_is_refused_for_run(self, sweep_config, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", sweep_config])
        assert excinfo.value.code == 2


# ---------------------------------------------------------------------------
# sweep
# ---------------------------------------------------------------------------
class TestSweep:
    def test_parallel_store_sweep_rows_bit_identical(
        self, sweep_config, tmp_path, capsys
    ):
        # The acceptance criterion: CLI sweep with --workers 2 --store
        # produces rows bit-identical to an in-process serial run_sweep.
        out = tmp_path / "out.json"
        store = tmp_path / "s.db"
        assert main([
            "sweep", sweep_config, "--workers", "2",
            "--store", str(store), "-o", str(out),
        ]) == 0
        result = sweep_result_from_dict(json.loads(out.read_text()))
        reference = run_sweep(sweep_matrix(), tuple(METRICS))
        assert result.rows == reference.rows
        assert result.stats.workers == 2

        # Rerun resumes from the store: zero executions, same rows.
        out2 = tmp_path / "out2.json"
        assert main([
            "sweep", sweep_config, "--store", str(store), "-o", str(out2),
        ]) == 0
        resumed = sweep_result_from_dict(json.loads(out2.read_text()))
        assert resumed.rows == reference.rows
        assert resumed.stats.store_hits == len(sweep_matrix())
        assert resumed.stats.runs == 0

    def test_serial_sweep_to_stdout(self, sweep_config, capsys):
        assert main(["sweep", sweep_config]) == 0
        document = json.loads(capsys.readouterr().out)
        assert len(document["rows"]) == len(sweep_matrix())

    def test_progress_renders_cells_and_groups(self, sweep_config, capsys):
        assert main([
            "sweep", sweep_config, "--workers", "2", "--progress"
        ]) == 0
        captured = capsys.readouterr()
        assert "enqueued 4 cell(s) in 2 group(s)" in captured.err
        assert "cell 4/4" in captured.err
        assert "[sweep] done:" in captured.err
        json.loads(captured.out)

    def test_scenario_config_sweeps_as_single_cell(self, run_config, capsys):
        assert main(["sweep", run_config]) == 0
        document = json.loads(capsys.readouterr().out)
        assert len(document["rows"]) == 1

    def test_faults_from_config_become_error_rows(self, tmp_path, capsys):
        config = write_json(tmp_path / "faulted.json", {
            "format": "fppn-config",
            "version": 1,
            "matrix": matrix_to_dict(sweep_matrix()),
            "metrics": METRICS,
            "faults": {"raise_at": [1]},
        })
        assert main(["sweep", config]) == 0
        document = json.loads(capsys.readouterr().out)
        assert len(document["rows"]) == 3
        assert len(document["failed_rows"]) == 1
        assert document["stats"]["failed_cells"] == 1


# ---------------------------------------------------------------------------
# diff
# ---------------------------------------------------------------------------
@pytest.fixture
def sweep_docs(tmp_path):
    result = run_sweep(sweep_matrix(), tuple(METRICS))
    doc = sweep_result_to_dict(result)
    a = write_json(tmp_path / "a.json", doc)
    regressed = json.loads(json.dumps(doc))
    regressed["rows"][0]["metrics"]["makespan"] = {"$frac": "99999/1"}
    b_same = write_json(tmp_path / "b_same.json", doc)
    b_reg = write_json(tmp_path / "b_reg.json", regressed)
    return a, b_same, b_reg


class TestDiff:
    def test_identical_files_exit_zero(self, sweep_docs, capsys):
        a, b_same, _ = sweep_docs
        assert main(["diff", a, b_same]) == 0
        assert "identical" in capsys.readouterr().out

    def test_regression_exits_one_and_names_the_metric(
        self, sweep_docs, capsys
    ):
        a, _, b_reg = sweep_docs
        assert main(["diff", a, b_reg]) == 1
        captured = capsys.readouterr()
        assert "makespan" in captured.out
        assert "regression(s) past tolerance" in captured.err

    def test_tolerance_admits_the_drift(self, sweep_docs):
        a, _, b_reg = sweep_docs
        # Enormous tolerance: the drift is reported but not a failure.
        assert main(["diff", a, b_reg, "--tolerance", "1e9"]) == 0

    def test_cross_cpus_bench_snapshots_refuse(self, tmp_path, capsys):
        a = write_json(tmp_path / "ba.json",
                       {"cpus": 1, "cases": {"x": {"wall_s": 0.1}}})
        b = write_json(tmp_path / "bb.json",
                       {"cpus": 8, "cases": {"x": {"wall_s": 0.1}}})
        assert main(["diff", a, b]) == 2
        assert "different hosts" in capsys.readouterr().err

    def test_bench_snapshots_gate_on_slowdown(self, tmp_path, capsys):
        a = write_json(tmp_path / "ba.json",
                       {"cpus": 2, "cases": {"x": {"wall_s": 0.1}}})
        b = write_json(tmp_path / "bb.json",
                       {"cpus": 2, "cases": {"x": {"wall_s": 0.2}}})
        assert main(["diff", a, b, "--tolerance", "0.5"]) == 1
        assert main(["diff", a, b, "--tolerance", "1.5"]) == 0
        capsys.readouterr()

    def test_mismatched_kinds_refuse(self, sweep_docs, tmp_path, capsys):
        a, _, _ = sweep_docs
        bench = write_json(tmp_path / "bench.json",
                           {"cpus": 2, "cases": {}})
        assert main(["diff", a, bench]) == 2
        assert "different kinds" in capsys.readouterr().err

    def test_mismatched_metric_sets_refuse(self, sweep_docs, tmp_path, capsys):
        a, _, _ = sweep_docs
        other = sweep_result_to_dict(
            run_sweep(sweep_matrix(), ("executed_jobs",))
        )
        b = write_json(tmp_path / "other.json", other)
        assert main(["diff", a, b]) == 2
        assert "metric sets differ" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# config errors and the module entry point
# ---------------------------------------------------------------------------
class TestEntryPoint:
    def test_missing_file_exits_two(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "/nonexistent/config.json"])
        assert excinfo.value.code == 2

    def test_invalid_json_exits_two(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SystemExit) as excinfo:
            main(["run", str(path)])
        assert excinfo.value.code == 2

    def test_unknown_format_exits_two(self, tmp_path, capsys):
        config = write_json(tmp_path / "odd.json", {"format": "whatever"})
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", config])
        assert excinfo.value.code == 2

    def test_python_dash_m_entry(self, run_config):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "run", run_config],
            capture_output=True, text=True, timeout=180,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        document = json.loads(proc.stdout)
        assert document["format"] == "fppn-sweep"


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
