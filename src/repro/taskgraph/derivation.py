"""Task-graph derivation (Section III-A, steps 1–5).

Given a validated subclass FPPN and per-process WCETs, derive the task graph
``TG(J, E)``:

1. build ``PN'`` replacing sporadic processes by ``m``-periodic servers
   (:mod:`repro.taskgraph.servers`);
2. simulate the job invocation order of ``PN'`` over one hyperperiod
   ``[0, H)``, ``H = lcm(T_p in PN')``, yielding the total order ``<J``;
3. add precedence edges ``(Ja, Jb)`` for ``Ja <J Jb`` whenever
   ``pa ⋈ pb  ∨  pa = pb`` (⋈ = directly FP'-related), with job parameters

   * periodic ``p``:  ``Ai = Tp * floor((k-1)/mp)``, ``Di = Ai + dp``;
   * sporadic ``p``:  ``Ai = Tp' * floor((k-1)/mp')``, ``Di = Ai + dp - Tp'``;

4. truncate required times to the hyperperiod: ``Di := min(H, Di)``;
5. remove redundant edges by transitive reduction.

The edge rule of step 3 quantifies over *all* ordered pairs; building that
quadratic edge set only to reduce it away is wasteful, so by default we emit
the **generating subset** — consecutive same-process edges plus, per related
process pair, each job's edge to the next job of the other process — whose
transitive closure provably equals the full rule's (the reduction of step 5
is unique per closure, so the result is identical).  ``dense=True`` forces
the literal quadratic construction; the test suite cross-checks both paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import ModelError
from ..core.network import Network
from ..core.timebase import Time, TimeLike, as_positive_time, hyperperiod as lcm_periods
from .graph import TaskGraph
from .jobs import Job
from .servers import TransformedNetwork, transform
from .transitive import transitive_reduction

WcetLike = Union[TimeLike, Callable[[str, int], TimeLike]]
WcetMap = Union[Mapping[str, WcetLike], TimeLike]


@dataclass(frozen=True)
class _Invocation:
    """One entry of the simulated invocation sequence of PN'."""

    time: Time
    rank: int       # FP' topological rank of the process
    process: str
    k: int          # 1-based invocation count


def derive_task_graph(
    network: Network,
    wcet: WcetMap,
    horizon: Optional[TimeLike] = None,
    dense: bool = False,
    reduce_edges: bool = True,
) -> TaskGraph:
    """Derive the task graph of a subclass FPPN.

    Parameters
    ----------
    network:
        A network satisfying the Section III-A subclass restrictions.
    wcet:
        Either a single value (uniform WCET, like the 25 ms of Fig. 3), or a
        mapping ``process name -> value`` where each value is a time-like or
        a callable ``(process, k) -> time-like`` for per-job WCETs.
    horizon:
        Frame length; defaults to the hyperperiod of ``PN'``.  Must be a
        positive multiple of every effective period when given (the paper
        always uses exactly ``H``).
    dense:
        Build the literal quadratic edge set of step 3 before reduction.
    reduce_edges:
        Apply step 5 (transitive reduction).  Disabled only by tests that
        verify the reduction itself.
    """
    pn = transform(network)
    H = _frame_length(pn, horizon)
    sequence = simulate_invocations(pn, H)
    jobs = _make_jobs(pn, sequence, wcet, H)
    edges = (_dense_edges if dense else _generating_edges)(pn, sequence)
    graph = TaskGraph(jobs, edges, H)
    if reduce_edges:
        graph = transitive_reduction(graph)
    return graph


def _frame_length(pn: TransformedNetwork, horizon: Optional[TimeLike]) -> Time:
    H = lcm_periods([period for period, _ in pn.effective.values()])
    if horizon is None:
        return H
    h = as_positive_time(horizon, "horizon")
    for name, (period, _) in pn.effective.items():
        if (h / period).denominator != 1:
            raise ModelError(
                f"horizon {h} is not a multiple of the effective period "
                f"{period} of process {name!r}"
            )
    return h


def simulate_invocations(
    pn: TransformedNetwork, H: Time
) -> List[_Invocation]:
    """Step 2: simulate the PN' job invocation order over ``[0, H)``.

    The resulting list *is* the total order ``<J``: sorted by invocation
    time, then FP' rank (higher priority first), then process name (for
    FP'-unrelated ties — harmless, as unrelated processes get no edges),
    then invocation count within a burst.
    """
    rank = {name: i for i, name in enumerate(pn.priority_order())}
    entries: List[_Invocation] = []
    for name, (period, burst) in pn.effective.items():
        count = 0
        n_periods = H / period
        if n_periods.denominator != 1:
            raise ModelError(
                f"frame {H} is not a multiple of period {period} of {name!r}"
            )
        for slot in range(int(n_periods)):
            t = slot * period
            for _ in range(burst):
                count += 1
                entries.append(_Invocation(t, rank[name], name, count))
    entries.sort(key=lambda e: (e.time, e.rank, e.process, e.k))
    return entries


def _make_jobs(
    pn: TransformedNetwork,
    sequence: Sequence[_Invocation],
    wcet: WcetMap,
    H: Time,
) -> List[Job]:
    wcet_of = _wcet_resolver(pn.network, wcet)
    jobs: List[Job] = []
    for inv in sequence:
        proc = pn.network.processes[inv.process]
        period, burst = pn.effective[inv.process]
        arrival = period * ((inv.k - 1) // burst)
        if proc.is_sporadic:
            spec = pn.servers[inv.process]
            deadline = arrival + proc.deadline - spec.period
            subset = (inv.k - 1) // burst + 1
            slot = (inv.k - 1) % burst + 1
            jobs.append(
                Job(
                    process=inv.process,
                    k=inv.k,
                    arrival=arrival,
                    deadline=min(H, deadline),
                    wcet=wcet_of(inv.process, inv.k),
                    is_server=True,
                    subset_index=subset,
                    slot=slot,
                )
            )
        else:
            deadline = arrival + proc.deadline
            jobs.append(
                Job(
                    process=inv.process,
                    k=inv.k,
                    arrival=arrival,
                    deadline=min(H, deadline),
                    wcet=wcet_of(inv.process, inv.k),
                )
            )
    return jobs


def _wcet_resolver(
    network: Network, wcet: WcetMap
) -> Callable[[str, int], Time]:
    if isinstance(wcet, Mapping):
        table: Dict[str, WcetLike] = dict(wcet)
        missing = sorted(set(network.processes) - set(table))
        if missing:
            raise ModelError(f"missing WCET for processes {missing!r}")

        def resolve(process: str, k: int) -> Time:
            entry = table[process]
            if callable(entry):
                return as_positive_time(entry(process, k), f"WCET of {process}[{k}]")
            return as_positive_time(entry, f"WCET of {process!r}")

        return resolve

    uniform = as_positive_time(wcet, "WCET")
    return lambda process, k: uniform


def _generating_edges(
    pn: TransformedNetwork, sequence: Sequence[_Invocation]
) -> List[Tuple[int, int]]:
    """Compact generating set with the same transitive closure as step 3."""
    by_process: Dict[str, List[int]] = {}
    for idx, inv in enumerate(sequence):
        by_process.setdefault(inv.process, []).append(idx)

    edges: List[Tuple[int, int]] = []
    # Same process: chain of consecutive jobs.
    for indices in by_process.values():
        edges.extend(zip(indices, indices[1:]))

    # Related pairs: each job -> the next job of the partner process.
    names = sorted(by_process)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            if not pn.fp_related(a, b):
                continue
            edges.extend(_next_of_partner(by_process[a], by_process[b]))
            edges.extend(_next_of_partner(by_process[b], by_process[a]))
    return sorted(set(edges))


def _next_of_partner(
    from_indices: Sequence[int], to_indices: Sequence[int]
) -> List[Tuple[int, int]]:
    """For each index in *from_indices*, edge to the first larger index in
    *to_indices* (both sequences are sorted)."""
    out: List[Tuple[int, int]] = []
    j = 0
    for i in from_indices:
        while j < len(to_indices) and to_indices[j] < i:
            j += 1
        if j == len(to_indices):
            break
        out.append((i, to_indices[j]))
    return out


def _dense_edges(
    pn: TransformedNetwork, sequence: Sequence[_Invocation]
) -> List[Tuple[int, int]]:
    """The literal step-3 rule: all ordered pairs of related jobs."""
    n = len(sequence)
    edges: List[Tuple[int, int]] = []
    for i in range(n):
        a = sequence[i]
        for j in range(i + 1, n):
            b = sequence[j]
            if a.process == b.process or pn.fp_related(a.process, b.process):
                edges.append((i, j))
    return edges
