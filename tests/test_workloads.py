"""Tests for the random workload generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import random_network, random_wcets
from repro.core.invocations import random_stimulus
from repro.core.semantics import run_zero_delay
from repro.taskgraph import derive_task_graph, utilization


class TestGeneration:
    @pytest.mark.parametrize("seed", range(5))
    def test_networks_are_valid_subclass(self, seed):
        net = random_network(seed=seed, n_periodic=5, n_sporadic=2)
        net.validate_taskgraph_subclass()

    def test_reproducible(self):
        a = random_network(seed=11)
        b = random_network(seed=11)
        assert sorted(a.processes) == sorted(b.processes)
        assert sorted(a.channels) == sorted(b.channels)
        assert a.priorities == b.priorities

    def test_seed_changes_structure(self):
        a = random_network(seed=1, n_periodic=6, n_sporadic=2)
        b = random_network(seed=2, n_periodic=6, n_sporadic=2)
        assert sorted(a.channels) != sorted(b.channels)

    def test_sporadic_count(self):
        net = random_network(seed=0, n_periodic=4, n_sporadic=3)
        assert len(net.sporadic_processes()) == 3

    def test_zero_periodic_rejected(self):
        with pytest.raises(ValueError):
            random_network(n_periodic=0)

    def test_executable_under_zero_delay(self):
        net = random_network(seed=5, n_periodic=4, n_sporadic=1)
        stim = random_stimulus(net, 2000, seed=5)
        result = run_zero_delay(net, 2000, stim)
        assert result.job_count > 0


class TestWcets:
    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_utilization_target_hit_exactly(self, seed):
        net = random_network(seed=seed, n_periodic=4, n_sporadic=1)
        wcets = random_wcets(net, seed=seed, utilization_target=0.5)
        g = derive_task_graph(net, wcets)
        assert utilization(g) == 0.5

    def test_target_validated(self):
        net = random_network(seed=0)
        with pytest.raises(ValueError):
            random_wcets(net, utilization_target=0)

    def test_all_processes_covered(self):
        net = random_network(seed=3, n_periodic=5, n_sporadic=2)
        wcets = random_wcets(net, seed=3)
        assert set(wcets) == set(net.processes)
        assert all(v > 0 for v in wcets.values())
