"""Paper-style experiment reporting helpers.

The benchmark harness prints, for every figure / narrative result of
Section V, a row comparing the paper's number with the measured one.  These
helpers keep that output uniform across benchmark modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence


@dataclass
class Row:
    """One paper-vs-measured comparison row."""

    quantity: str
    paper: Any
    measured: Any
    note: str = ""

    def render(self, widths: Sequence[int]) -> str:
        cells = [str(self.quantity), str(self.paper), str(self.measured), self.note]
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()


@dataclass
class ExperimentReport:
    """A titled collection of comparison rows, renderable as a text table."""

    experiment: str
    artifact: str  # e.g. "Fig. 3", "Section V-B narrative"
    rows: List[Row] = field(default_factory=list)
    preamble: List[str] = field(default_factory=list)

    def add(self, quantity: str, paper: Any, measured: Any, note: str = "") -> None:
        self.rows.append(Row(quantity, paper, measured, note))

    def add_text(self, text: str) -> None:
        self.preamble.append(text)

    def render(self) -> str:
        header = Row("quantity", "paper", "measured", "note")
        table = [header] + self.rows
        widths = [
            max(len(str(getattr(r, attr))) for r in table)
            for attr in ("quantity", "paper", "measured", "note")
        ]
        lines = [f"== {self.experiment} ({self.artifact}) =="]
        lines.extend(self.preamble)
        lines.append(header.render(widths))
        lines.append("  ".join("-" * w for w in widths).rstrip())
        lines.extend(r.render(widths) for r in self.rows)
        return "\n".join(lines)

    def show(self) -> None:
        """Print the rendered report (used by benchmarks)."""
        print()
        print(self.render())


def approx(measured: float, digits: int = 3) -> str:
    """Uniform float formatting for measured values."""
    return f"{measured:.{digits}g}"
