"""Sweep service: a shared :class:`~repro.experiment.SweepPool` served
to many concurrent clients.

Three layers, lowest to highest:

* :mod:`repro.service.orchestrator` — an asyncio front over the pool.
  One driver thread owns every pool and store interaction; coroutines
  submit matrices, stream rows/milestones and cancel through ticket
  handles.  Fair scheduling across client tags is the pool's own
  round-robin (``SweepPool.submit(client=...)``).
* :mod:`repro.service.protocol` + :mod:`repro.service.server` — a
  stdlib-only newline-delimited JSON-RPC 2.0 wire protocol over TCP and
  the asyncio server speaking it.  All payloads travel through the
  :mod:`repro.io.json_io` tagged codecs, so exact rationals and FFT
  stimuli survive the wire and served rows are bit-identical to an
  in-process ``run_sweep``.
* :mod:`repro.service.client` — a blocking socket client whose
  ``run_sweep`` mirrors the in-process signature (``on_row`` /
  ``on_progress`` callbacks included), plus the CLI verbs
  ``python -m repro serve`` and ``sweep --server HOST:PORT``.
"""

from .client import ServiceClient
from .orchestrator import SweepOrchestrator, TicketStatus
from .server import SweepServer

__all__ = [
    "ServiceClient",
    "SweepOrchestrator",
    "SweepServer",
    "TicketStatus",
]
