"""Unit tests for the FIFO / blackboard channel substrate (Section II-A)."""

import pickle

import pytest

from repro.core.channels import (
    BlackboardState,
    ChannelKind,
    ChannelSpec,
    ExternalOutputSpec,
    ExternalOutputState,
    FifoState,
    NO_DATA,
    is_no_data,
)
from repro.errors import ChannelError


def fifo_spec(**kw):
    defaults = dict(name="c", kind=ChannelKind.FIFO, writer="w", reader="r")
    defaults.update(kw)
    return ChannelSpec(**defaults)


def bb_spec(**kw):
    defaults = dict(name="b", kind=ChannelKind.BLACKBOARD, writer="w", reader="r")
    defaults.update(kw)
    return ChannelSpec(**defaults)


class TestNoData:
    def test_singleton(self):
        from repro.core.channels import _NoData

        assert _NoData() is NO_DATA

    def test_falsy(self):
        assert not NO_DATA

    def test_is_no_data(self):
        assert is_no_data(NO_DATA)
        assert not is_no_data(None)
        assert not is_no_data(0)

    def test_repr(self):
        assert repr(NO_DATA) == "NO_DATA"

    def test_pickle_preserves_identity(self):
        assert pickle.loads(pickle.dumps(NO_DATA)) is NO_DATA


class TestChannelSpec:
    def test_endpoints(self):
        assert fifo_spec().endpoints == ("w", "r")

    def test_empty_name_rejected(self):
        with pytest.raises(ChannelError):
            fifo_spec(name="")

    def test_self_loop_rejected(self):
        with pytest.raises(ChannelError, match="distinct"):
            fifo_spec(reader="w")

    def test_alphabet_enforced(self):
        spec = fifo_spec(alphabet=lambda v: isinstance(v, int))
        state = spec.new_state()
        state.write(3)
        with pytest.raises(ChannelError, match="rejected by alphabet"):
            state.write("nope")

    def test_new_state_dispatch(self):
        assert isinstance(fifo_spec().new_state(), FifoState)
        assert isinstance(bb_spec().new_state(), BlackboardState)


class TestFifo:
    def test_empty_read_returns_no_data(self):
        assert is_no_data(fifo_spec().new_state().read())

    def test_queue_order(self):
        s = fifo_spec().new_state()
        s.write(1)
        s.write(2)
        assert s.read() == 1
        assert s.read() == 2
        assert is_no_data(s.read())

    def test_peek_does_not_consume(self):
        s = fifo_spec().new_state()
        s.write(9)
        assert s.peek() == 9
        assert s.read() == 9

    def test_peek_empty(self):
        assert is_no_data(fifo_spec().new_state().peek())

    def test_len(self):
        s = fifo_spec().new_state()
        assert len(s) == 0
        s.write(1)
        s.write(1)
        assert len(s) == 2

    def test_initial_token(self):
        s = fifo_spec(initial=42).new_state()
        assert len(s) == 1
        assert s.read() == 42

    def test_write_log_records_everything(self):
        s = fifo_spec().new_state()
        s.write("a")
        s.write("b")
        s.read()
        assert s.write_log == ["a", "b"]

    def test_none_is_a_legal_payload(self):
        s = fifo_spec().new_state()
        s.write(None)
        assert s.read() is None


class TestBlackboard:
    def test_unwritten_read_is_no_data(self):
        assert is_no_data(bb_spec().new_state().read())

    def test_remembers_last_value(self):
        s = bb_spec().new_state()
        s.write(1)
        s.write(2)
        assert s.read() == 2

    def test_read_is_idempotent(self):
        s = bb_spec().new_state()
        s.write(5)
        assert s.read() == 5
        assert s.read() == 5

    def test_initial_value(self):
        s = bb_spec(initial=0.5).new_state()
        assert s.read() == 0.5
        assert len(s) == 1

    def test_len_zero_when_unset(self):
        assert len(bb_spec().new_state()) == 0

    def test_write_log(self):
        s = bb_spec().new_state()
        s.write(1)
        s.write(1)
        assert s.write_log == [1, 1]


class TestExternalOutput:
    def test_write_and_sequence(self):
        s = ExternalOutputState(ExternalOutputSpec("o", "p"))
        s.write(2, "b")
        s.write(1, "a")
        assert s.as_sequence() == [(1, "a"), (2, "b")]

    def test_double_write_rejected(self):
        s = ExternalOutputState(ExternalOutputSpec("o", "p"))
        s.write(1, "a")
        with pytest.raises(ChannelError, match="written twice"):
            s.write(1, "b")

    def test_holes_are_preserved(self):
        s = ExternalOutputState(ExternalOutputSpec("o", "p"))
        s.write(1, "a")
        s.write(3, "c")
        assert s.as_sequence() == [(1, "a"), (3, "c")]

    def test_empty_name_rejected(self):
        with pytest.raises(ChannelError):
            ExternalOutputSpec("", "p")
