"""Random FPPN workload generator.

Produces reproducible random networks satisfying the Section III-A subclass
restrictions (layered periodic dataflow + sporadic configuration processes
attached to periodic users).  Used by:

* property-based tests — determinism and schedule correctness must hold on
  *arbitrary* subclass networks, not just the paper's three examples;
* scalability benchmarks (E9) — job counts grow with the hyperperiod.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.channels import ChannelKind, is_no_data
from ..core.network import Network
from ..core.process import JobContext
from ..core.timebase import Time, TimeLike

#: Harmonic-friendly period menu (ms) keeping hyperperiods moderate.
DEFAULT_PERIODS: Tuple[int, ...] = (100, 200, 400, 500, 1000)


def _accumulator_kernel(inputs: Sequence[str], outputs: Sequence[str],
                        external_in: Optional[str], external_out: Optional[str],
                        salt: int):
    """A deterministic numeric kernel touching every connected channel."""

    def kernel(ctx: JobContext) -> None:
        acc = ctx.get("acc", float(salt))
        if external_in is not None:
            v = ctx.read_input(external_in)
            if not is_no_data(v):
                acc += float(v)
        for name in inputs:
            v = ctx.read(name)
            if not is_no_data(v):
                acc = 0.75 * acc + 0.25 * float(v) + 1.0
        acc = round(acc, 9)
        ctx.assign("acc", acc)
        for name in outputs:
            ctx.write(name, acc)
        if external_out is not None:
            ctx.write_output(acc, external_out)

    return kernel


def random_network(
    seed: int = 0,
    n_periodic: int = 5,
    n_sporadic: int = 2,
    periods: Sequence[int] = DEFAULT_PERIODS,
    fifo_probability: float = 0.5,
    extra_channel_probability: float = 0.35,
) -> Network:
    """Generate a random subclass FPPN.

    Structure: periodic processes are ordered in a random rate-monotonic-
    compatible priority chain; channels go from higher- to lower-priority
    processes (plus occasional feedback blackboards, which keep the FP DAG
    acyclic because they reuse the forward ordering).  Each sporadic process
    attaches to one periodic user with ``T_u <= T_p`` and carries
    ``d_p = 2 T_p``.
    """
    if n_periodic < 1:
        raise ValueError("need at least one periodic process")
    rng = random.Random(seed)
    net = Network(f"random-{seed}")

    chosen = sorted(rng.choice(periods) for _ in range(n_periodic))
    periodic_names: List[str] = []
    wiring: Dict[str, Dict[str, List[str]]] = {}
    for i, period in enumerate(chosen):
        name = f"P{i}"
        periodic_names.append(name)
        wiring[name] = {"in": [], "out": []}
        net.add_periodic(name, period=period, kernel=lambda ctx: None)

    # Priority: the period-sorted order (rate-monotonic compatible).
    for hi, lo in zip(periodic_names, periodic_names[1:]):
        net.add_priority(hi, lo)

    channels: List[Tuple[str, str, str, ChannelKind]] = []

    def connect(writer: str, reader: str) -> None:
        kind = (
            ChannelKind.FIFO
            if rng.random() < fifo_probability
            else ChannelKind.BLACKBOARD
        )
        cname = f"{writer}->{reader}#{len(channels)}"
        channels.append((writer, reader, cname, kind))
        if not net.fp_related(writer, reader):
            net.add_priority(writer, reader)

    # Backbone: each process feeds the next (guarantees connectivity).
    for a, b in zip(periodic_names, periodic_names[1:]):
        connect(a, b)
    # Extra forward channels.
    for i, a in enumerate(periodic_names):
        for b in periodic_names[i + 1:]:
            if rng.random() < extra_channel_probability:
                connect(a, b)
    # Occasional feedback blackboard (cyclic process graph, acyclic FP).
    for a, b in zip(periodic_names, periodic_names[1:]):
        if rng.random() < 0.2:
            cname = f"{b}->{a}#fb{len(channels)}"
            channels.append((b, a, cname, ChannelKind.BLACKBOARD))

    sporadic_names: List[str] = []
    for s in range(n_sporadic):
        user = rng.choice(periodic_names)
        user_period = net.processes[user].period
        factor = rng.choice((1, 2, 4))
        s_period = user_period * factor
        name = f"S{s}"
        sporadic_names.append(name)
        net.add_sporadic(
            name,
            min_period=s_period,
            deadline=s_period * 2,
            burst=rng.choice((1, 2, 3)),
            kernel=lambda ctx: None,
        )
        cname = f"{name}->{user}#cfg{s}"
        channels.append((name, user, cname, ChannelKind.BLACKBOARD))
        # Paper-style: configs below their users.
        net.add_priority(user, name)

    # Create the channels and re-bind kernels now that wiring is known.
    for writer, reader, cname, kind in channels:
        net.connect(writer, reader, cname, kind=kind)

    for i, name in enumerate(periodic_names + sporadic_names):
        proc = net.processes[name]
        ext_in = None
        ext_out = None
        if proc.is_sporadic or rng.random() < 0.4:
            ext_in = f"{name}_in"
            net.add_external_input(name, ext_in)
        if rng.random() < 0.4:
            ext_out = f"{name}_out"
            net.add_external_output(name, ext_out)
        proc.behavior = _rebound_behavior(proc, ext_in, ext_out, salt=i)

    net.validate_taskgraph_subclass()
    return net


def _rebound_behavior(proc, ext_in, ext_out, salt):
    from ..core.process import KernelBehavior

    return KernelBehavior(
        _accumulator_kernel(
            list(proc.inputs), list(proc.outputs), ext_in, ext_out, salt
        )
    )


def random_wcets(
    network: Network, seed: int = 0, utilization_target: float = 0.5
) -> Dict[str, Time]:
    """WCETs scaled so frame utilization is roughly *utilization_target*.

    Each process gets a WCET proportional to a random weight and its period,
    then everything is scaled so that ``sum(C_i per frame) / H`` hits the
    target (exact rational arithmetic; useful for schedulability sweeps).
    """
    if not 0 < utilization_target <= 1:
        raise ValueError("utilization_target must be in (0, 1]")
    rng = random.Random(seed + 1)
    from ..taskgraph.servers import transform

    pn = transform(network)
    weights = {name: 1 + rng.randrange(1, 10) for name in network.processes}
    # jobs per frame and effective period of each process
    H = Time(1)
    from ..core.timebase import rational_lcm

    for period, _ in pn.effective.values():
        H = rational_lcm(H, period)
    total = Time(0)
    for name, (period, burst) in pn.effective.items():
        jobs = (H / period) * burst
        total += weights[name] * jobs
    scale = H * Time(str(utilization_target)) / total
    return {
        name: weights[name] * scale for name in network.processes
    }
