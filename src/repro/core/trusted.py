"""Import-time guard for ``__dict__``-based trusted constructors.

The derivation and simulation hot loops build their frozen dataclasses
(:class:`~repro.taskgraph.jobs.Job`, :class:`~repro.runtime.executor.
JobRecord`) through explicit trusted constructors that bypass the frozen
``__setattr__`` guards and any ``__post_init__`` validation.  Each such
constructor registers itself here at module import: the check fails the
import **loudly** — never falls back to a slow path silently — if the
dataclass's fields drift from the constructor's explicit field list, or if
the ``__dict__`` construction path itself stops reproducing the public
constructor (e.g. a future ``slots=True``).
"""

from __future__ import annotations

import inspect
from dataclasses import fields
from typing import Any, Callable, Dict, Tuple


def check_trusted_constructor(
    cls: type,
    expected_fields: Tuple[str, ...],
    make: Callable[..., Any],
    sample_kwargs: Dict[str, Any],
) -> None:
    """Fail the import if *make* cannot stand in for ``cls(**kwargs)``.

    Two checks: the dataclass field names must equal *expected_fields*
    (so adding a field without updating the trusted constructor is caught
    immediately), and building *sample_kwargs* through *make* must equal
    the public constructor's result (so the ``__dict__`` fast path itself
    is exercised once, at import, where a failure is cheap to diagnose).
    """
    actual = tuple(f.name for f in fields(cls))
    if actual != expected_fields:
        raise AssertionError(
            f"{cls.__name__}'s dataclass fields changed ({actual} != "
            f"{expected_fields}) — update its trusted constructor "
            f"{make.__name__} and the expected field tuple to match, or the "
            "hot loops would build incomplete instances"
        )
    try:
        ok = make(**sample_kwargs) == cls(**sample_kwargs)
    except Exception:  # pragma: no cover - e.g. slots=True breaking __dict__
        ok = False
    if not ok:  # pragma: no cover - guard for future dataclass changes
        raise AssertionError(
            f"{cls.__name__}.{make.__name__} no longer reproduces the public "
            f"constructor — did {cls.__name__} gain slots=True or "
            "field-altering logic? Update the trusted constructor before "
            "shipping"
        )


def check_trusted_rebind(
    cls: type,
    expected_params: Tuple[str, ...],
    base_kwargs: Dict[str, Any],
    rebound_kwargs: Dict[str, Any],
    rebind: Callable[..., Any],
) -> None:
    """Fail the import if rebinding cannot stand in for fresh construction.

    The simulation hot loop reuses one mutable context object per process and
    *rebinds* only the per-instance fields instead of reallocating
    (:meth:`repro.core.process.JobContext._rebind`).  That is sound only
    while every ``__init__`` parameter that is **not** rebound stays
    run-constant per process.  Two import-time checks keep it honest:

    * the ``__init__`` parameter list must equal *expected_params* — adding
      a new per-instance parameter without teaching ``_rebind`` about it
      fails here loudly instead of silently leaking stale state;
    * constructing with *base_kwargs* and rebinding the keys of
      *rebound_kwargs* must reproduce, attribute for attribute, a fresh
      construction with the rebound values.
    """
    actual = tuple(inspect.signature(cls.__init__).parameters)[1:]  # drop self
    if actual != expected_params:
        raise AssertionError(
            f"{cls.__name__}.__init__ parameters changed ({actual} != "
            f"{expected_params}) — update {cls.__name__}._rebind and this "
            "guard, or the hot loops would reuse contexts with stale fields"
        )
    reused = cls(**base_kwargs)
    rebind(reused, **rebound_kwargs)
    fresh = cls(**{**base_kwargs, **rebound_kwargs})
    if vars(reused) != vars(fresh):  # pragma: no cover - future drift guard
        raise AssertionError(
            f"{cls.__name__}._rebind no longer reproduces fresh construction "
            f"({vars(reused)} != {vars(fresh)}) — update the rebind method "
            "before shipping"
        )
