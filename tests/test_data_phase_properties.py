"""Property tests for channel/variable semantics under the rebound context.

The data phase reuses one mutable ``JobContext`` per process and rebinds
``k``/``now`` per instance.  These tests pin the two invariants that reuse
must not break:

* **Xp persistence** — a process's variable store survives rebinding: state
  written by job ``k`` is visible to job ``k+1`` of the same process, across
  frame boundaries;
* **isolation** — no state leaks between processes, even when several
  processes share the *same* kernel function object (each keeps its own
  ``Xp`` and channel endpoints).

Plus the randomized differential property: on arbitrary subclass networks
from :mod:`repro.apps.workloads`, the optimised executor's observables and
action trace are bit-identical to the naive Fraction-domain reference.
"""

import pytest

from repro.apps.workloads import random_network, random_wcets
from repro.core import Network
from repro.core.invocations import random_stimulus
from repro.runtime import jittered_execution, run_static_order
from repro.scheduling import list_schedule
from repro.taskgraph import derive_task_graph

from fraction_reference import (
    reference_jittered_execution,
    reference_run_static_order,
)


# ----------------------------------------------------------------------
# Randomized differential property over arbitrary subclass networks.
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(6))
def test_random_network_data_phase_identical(seed):
    net = random_network(seed=seed, n_periodic=4, n_sporadic=2)
    wcets = random_wcets(net, seed=seed, utilization_target=0.45)
    graph = derive_task_graph(net, wcets)
    stim = random_stimulus(net, graph.hyperperiod * 2, seed=seed)
    schedule = list_schedule(graph, 2, "alap")
    ours = run_static_order(net, schedule, 2, stim)
    ref = reference_run_static_order(net, schedule, 2, stim)
    assert ours.records == ref.records
    assert ours.channel_logs == ref.channel_logs
    assert ours.external_outputs == ref.external_outputs
    assert list(ours.trace) == list(ref.trace)


@pytest.mark.parametrize("seed", (1, 3))
def test_random_network_jittered_identical(seed):
    net = random_network(seed=seed, n_periodic=3, n_sporadic=1)
    wcets = random_wcets(net, seed=seed, utilization_target=0.4)
    graph = derive_task_graph(net, wcets)
    stim = random_stimulus(net, graph.hyperperiod * 2, seed=seed)
    schedule = list_schedule(graph, 2, "arrival")
    ours = run_static_order(
        net, schedule, 2, stim, execution_time=jittered_execution(seed)
    )
    ref = reference_run_static_order(
        net, schedule, 2, stim,
        execution_time=reference_jittered_execution(seed),
    )
    assert ours.records == ref.records
    assert ours.channel_logs == ref.channel_logs
    assert ours.external_outputs == ref.external_outputs
    assert list(ours.trace) == list(ref.trace)


# ----------------------------------------------------------------------
# Xp persistence across rebinding.
# ----------------------------------------------------------------------

def _counter_kernel(ctx):
    """Counts its own invocations in Xp and emits the running count."""
    count = ctx.get("count", 0) + 1
    ctx.assign("count", count)
    # The reused context must present the fresh invocation index each time.
    assert ctx.k == count, (ctx.process, ctx.k, count)
    ctx.write_output(count, f"{ctx.process}_out")


def _counting_network(n_procs: int) -> Network:
    net = Network("counters")
    names = [f"C{i}" for i in range(n_procs)]
    for name in names:
        # All processes share the *same* kernel function object.
        net.add_periodic(name, period=100, kernel=_counter_kernel)
        net.add_external_output(name, f"{name}_out")
    for hi, lo in zip(names, names[1:]):
        net.add_priority(hi, lo)
    net.validate()
    return net


def test_variable_state_survives_rebinding_across_frames():
    net = _counting_network(1)
    graph = derive_task_graph(net, {"C0": 10})
    schedule = list_schedule(graph, 1, "alap")
    frames = 5
    result = run_static_order(net, schedule, frames)
    # One invocation per frame: the persistent counter must reach `frames`,
    # incrementing by exactly one per rebound job run.
    assert result.external_outputs["C0_out"] == [
        (k, k) for k in range(1, frames + 1)
    ]


def test_no_state_leak_between_processes_sharing_a_kernel():
    n = 4
    net = _counting_network(n)
    graph = derive_task_graph(net, {f"C{i}": 5 for i in range(n)})
    schedule = list_schedule(graph, 2, "alap")
    frames = 3
    result = run_static_order(net, schedule, frames)
    # Every process counts only its own invocations: 1, 2, 3 — never the
    # shared kernel's global call total.
    for i in range(n):
        assert result.external_outputs[f"C{i}_out"] == [
            (k, k) for k in range(1, frames + 1)
        ]


def test_fifo_backlog_survives_rebinding():
    """Unread FIFO tokens persist across frames under the reused context."""
    net = Network("backlog")

    def fast(ctx):
        ctx.write("q", ctx.k)

    def slow(ctx):
        ctx.write_output(ctx.read("q"), "drained")

    # Fast enqueues twice per frame, Slow drains once: the queue must grow
    # by one token per frame and reads must come out in FIFO order.
    net.add_periodic("Fast", period=50, kernel=fast)
    net.add_periodic("Slow", period=100, kernel=slow)
    net.connect("Fast", "Slow", "q")
    net.add_priority("Fast", "Slow")
    net.add_external_output("Slow", "drained")
    net.validate()
    graph = derive_task_graph(net, {"Fast": 5, "Slow": 5})
    schedule = list_schedule(graph, 1, "alap")
    result = run_static_order(net, schedule, 4)
    assert result.channel_logs["q"] == [1, 2, 3, 4, 5, 6, 7, 8]
    assert result.external_outputs["drained"] == [
        (1, 1), (2, 2), (3, 3), (4, 4)
    ]
