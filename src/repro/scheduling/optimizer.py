"""Heuristic portfolio and processor-count search.

The paper notes that when a list schedule misses deadlines *"the selected
schedule priority may be sub-optimal — different heuristics exist for
optimizing [the] priority order SP"*.  This module operationalises that:

* :func:`find_feasible_schedule` — run a portfolio of SP heuristics and
  return the first feasible schedule (or raise with diagnostics from the
  best attempt);
* :func:`minimum_processors` — smallest ``M`` on which some portfolio
  heuristic is feasible, starting the search at the Proposition 3.1 lower
  bound ``ceil(Load(TG))``;
* :func:`schedule_quality` — summary metrics used by the heuristic ablation
  benchmark (E8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import InfeasibleError
from ..core.platform import Platform, PlatformLike
from ..core.timebase import Time
from ..taskgraph.graph import TaskGraph
from ..taskgraph.load import task_graph_load
from .list_scheduler import list_schedule
from .priorities import available_heuristics
from .schedule import StaticSchedule

DEFAULT_PORTFOLIO: Tuple[str, ...] = ("alap", "blevel", "deadline", "arrival")


@dataclass
class Attempt:
    """Outcome of one heuristic attempt (for diagnostics and ablations)."""

    heuristic: str
    schedule: StaticSchedule
    violations: int

    @property
    def feasible(self) -> bool:
        return self.violations == 0


def try_portfolio(
    graph: TaskGraph,
    processors: PlatformLike,
    heuristics: Sequence[str] = DEFAULT_PORTFOLIO,
) -> List[Attempt]:
    """Run every heuristic and report all attempts (no early exit)."""
    attempts = []
    for name in heuristics:
        schedule = list_schedule(graph, processors, name)
        attempts.append(Attempt(name, schedule, len(schedule.violations())))
    return attempts


def find_feasible_schedule(
    graph: TaskGraph,
    processors: PlatformLike,
    heuristics: Sequence[str] = DEFAULT_PORTFOLIO,
) -> StaticSchedule:
    """First feasible schedule over the heuristic portfolio.

    ``processors`` is a core count or a
    :class:`~repro.core.platform.Platform`; heterogeneous platforms
    schedule with class-resolved durations throughout the portfolio.

    Raises
    ------
    InfeasibleError
        When no portfolio heuristic produces a feasible schedule; the error
        carries the lowest-violation attempt's diagnostics.
    """
    best: Optional[Attempt] = None
    for name in heuristics:
        schedule = list_schedule(graph, processors, name)
        violations = schedule.violations()
        if not violations:
            return schedule
        attempt = Attempt(name, schedule, len(violations))
        if best is None or attempt.violations < best.violations:
            best = attempt
    assert best is not None
    sample = "; ".join(str(v) for v in best.schedule.violations()[:3])
    platform_str = (
        processors.describe() if isinstance(processors, Platform)
        else f"{processors} processors"
    )
    raise InfeasibleError(
        f"no feasible schedule on {platform_str} "
        f"(best: {best.heuristic!r} with {best.violations} violations)",
        diagnostics=sample,
    )


def minimum_processors(
    graph: TaskGraph,
    heuristics: Sequence[str] = DEFAULT_PORTFOLIO,
    max_processors: int = 64,
) -> Tuple[int, StaticSchedule]:
    """Smallest ``M`` with a feasible portfolio schedule.

    The search starts at the Proposition 3.1 bound ``ceil(Load(TG))`` —
    values below it cannot be feasible, so they are never tried.
    """
    lower = task_graph_load(graph).min_processors
    for m in range(lower, max_processors + 1):
        try:
            return m, find_feasible_schedule(graph, m, heuristics)
        except InfeasibleError:
            continue
    raise InfeasibleError(
        f"no feasible schedule found up to {max_processors} processors "
        f"(load lower bound was {lower})"
    )


@dataclass(frozen=True)
class QualityReport:
    """Ablation metrics of one heuristic on one graph/platform."""

    heuristic: str
    feasible: bool
    makespan: Time
    deadline_violations: int
    total_lateness: Time


def schedule_quality(
    graph: TaskGraph, processors: PlatformLike, heuristic: str
) -> QualityReport:
    """Evaluate one heuristic: feasibility, makespan, lateness (bench E8)."""
    schedule = list_schedule(graph, processors, heuristic)
    dom, start_t, _, wcet_t, deadline_t = schedule.tick_view()
    lateness_t = 0
    misses = 0
    for entry in schedule.entries:
        i = entry.job_index
        end = start_t[i] + wcet_t[i]
        if end > deadline_t[i]:
            misses += 1
            lateness_t += end - deadline_t[i]
    lateness = dom.from_ticks(lateness_t)
    return QualityReport(
        heuristic=heuristic,
        feasible=schedule.is_feasible(),
        makespan=schedule.makespan(),
        deadline_violations=misses,
        total_lateness=lateness,
    )


def all_heuristic_names() -> List[str]:
    """Every registered heuristic (re-exported for benchmark sweeps)."""
    return available_heuristics()
