"""Aggregate metrics over simulated runs: misses, responses, utilization.

These are the quantities Section V reports narratively ("no deadline misses
were observed", overhead per frame, load): each gets a first-class function
so the benchmark harness prints paper-style rows from one call.

All aggregation lives in :class:`~repro.runtime.observers.MetricsObserver`
(a streaming event consumer); the functions here replay a finished
:class:`RuntimeResult` through it, so live runs (``run(observers=[obs])``)
and post-hoc analysis compute identical values from the same code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.timebase import Time
from .executor import JobRecord, RuntimeResult
from .observers import MetricsObserver, replay


@dataclass(frozen=True)
class MissSummary:
    """Deadline-miss statistics of one run."""

    total_jobs: int
    executed_jobs: int
    false_jobs: int
    missed_jobs: int
    worst_lateness: Time
    miss_ratio: float

    @property
    def any_missed(self) -> bool:
        return self.missed_jobs > 0


def _metrics_of(result: RuntimeResult) -> MetricsObserver:
    obs = MetricsObserver()
    replay(result, obs)
    return obs


def miss_summary(result: RuntimeResult) -> MissSummary:
    """Summarise deadline behaviour of a run."""
    return _metrics_of(result).miss_summary()


def response_times(result: RuntimeResult) -> Dict[str, Time]:
    """Worst-case observed response time per process."""
    return _metrics_of(result).response_times()


def processor_utilization(result: RuntimeResult) -> List[float]:
    """Busy fraction per processor over the simulated horizon."""
    return _metrics_of(result).processor_utilization()


def frame_makespans(result: RuntimeResult) -> List[Time]:
    """Per-frame completion time relative to the frame start."""
    return _metrics_of(result).frame_makespans()


def jobs_of_process(result: RuntimeResult, process: str) -> List[JobRecord]:
    """All records of one process, ordered by frame then invocation."""
    result._require_records()
    return sorted(
        (r for r in result.records if r.process == process),
        key=lambda r: (r.frame, r.k_frame),
    )
