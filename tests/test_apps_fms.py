"""Tests for the FMS avionics case study (Section V-B, Fig. 7)."""

from fractions import Fraction

import pytest

from repro.apps import (
    build_fms_network,
    fms_scheduling_priorities,
    fms_stimulus,
    fms_wcets,
)
from repro.core import run_zero_delay
from repro.runtime import miss_summary, run_static_order, served_horizon
from repro.scheduling import UniprocessorFixedPriority, find_feasible_schedule
from repro.taskgraph import derive_task_graph, task_graph_load


@pytest.fixture(scope="module")
def net():
    return build_fms_network()


@pytest.fixture(scope="module")
def graph(net):
    return derive_task_graph(net, fms_wcets())


class TestStructure:
    def test_twelve_processes(self, net):
        assert len(net.processes) == 12

    def test_periods_match_fig7(self, net):
        assert net.processes["SensorInput"].period == 200
        assert net.processes["LowFreqBCP"].period == 5000
        assert net.processes["Performance"].period == 1000
        assert net.processes["MagnDeclin"].period == 400  # reduced variant

    def test_full_variant_magndeclin(self):
        full = build_fms_network(reduced_hyperperiod=False)
        assert full.processes["MagnDeclin"].period == 1600

    def test_sporadic_bursts(self, net):
        assert net.processes["AnemoConfig"].burst == 2
        assert net.processes["MagnDeclinConfig"].burst == 5
        assert net.processes["PerformanceConfig"].burst == 5

    def test_sporadics_below_users(self, net):
        """'The sporadic processes had less functional priority than their
        periodic users.'"""
        for sporadic in net.sporadic_processes():
            user = net.user_of(sporadic.name)
            assert net.higher_priority(user.name, sporadic.name)

    def test_periodic_priority_is_rate_monotonic(self, net):
        rank = net.priority_rank()
        periodic = sorted(net.periodic_processes(), key=lambda p: rank[p.name])
        periods = [p.period for p in periodic]
        assert periods == sorted(periods)


class TestTaskGraph:
    def test_812_jobs(self, graph):
        """The paper's headline number for the reduced hyperperiod."""
        assert len(graph) == 812

    def test_hyperperiod_10s(self, graph):
        assert graph.hyperperiod == 10000

    def test_full_variant_40s(self):
        g = derive_task_graph(
            build_fms_network(reduced_hyperperiod=False), fms_wcets()
        )
        assert g.hyperperiod == 40000
        assert len(g) > 2500  # ~4x the reduced graph

    def test_jobs_per_process(self, graph):
        counts = {}
        for j in graph.jobs:
            counts[j.process] = counts.get(j.process, 0) + 1
        assert counts == {
            "SensorInput": 50, "HighFreqBCP": 50, "LowFreqBCP": 2,
            "MagnDeclin": 25, "Performance": 10,
            "AnemoConfig": 100, "GPSConfig": 100, "IRSConfig": 100,
            "DopplerConfig": 100, "BCPConfig": 100,
            "MagnDeclinConfig": 125, "PerformanceConfig": 50,
        }

    def test_edge_count_order_of_magnitude(self, graph):
        """Paper: 1977 edges.  Our fully-reduced graph has ~1.1k (the
        generating set before reduction has ~2.2k); same order, see
        EXPERIMENTS.md for the discussion."""
        assert 800 <= graph.edge_count <= 2500

    def test_load_023(self, graph):
        """Paper: 'The load of this task graph was low, ~0.23'."""
        assert task_graph_load(graph).load == Fraction(23, 100)

    def test_single_processor_feasible(self, graph):
        s = find_feasible_schedule(graph, 1)
        assert s.is_feasible()


class TestRuntime:
    def test_no_misses_on_single_processor(self, net, graph):
        """'a single-processor mapping encountered no deadline misses'."""
        s = find_feasible_schedule(graph, 1)
        stim = fms_stimulus(net, 20000).truncated(
            served_horizon(net, graph.hyperperiod, 2)
        )
        result = run_static_order(net, s, 2, stim)
        assert miss_summary(result).missed_jobs == 0

    def test_multiprocessor_outputs_identical(self, net, graph):
        stim = fms_stimulus(net, 20000).truncated(
            served_horizon(net, graph.hyperperiod, 2)
        )
        obs = []
        for m in (1, 2):
            s = find_feasible_schedule(graph, m)
            obs.append(run_static_order(net, s, 2, stim).observable())
        assert obs[0] == obs[1]

    def test_functionally_equivalent_to_uniprocessor_prototype(self, net, graph):
        """The paper's V-B claim, 'which we verified by testing': the FPPN
        implementation and the original RM uniprocessor prototype produce
        identical outputs."""
        stim = fms_stimulus(net, 20000).truncated(
            served_horizon(net, graph.hyperperiod, 2)
        )
        ref = run_zero_delay(net, 20000, stim)
        proto = UniprocessorFixedPriority(net, fms_scheduling_priorities(net))
        assert proto.functional_run(20000, stim).observable() == ref.observable()
        s = find_feasible_schedule(graph, 2)
        result = run_static_order(net, s, 2, stim)
        assert result.observable() == ref.observable()

    def test_magndeclin_body_every_four(self, net):
        """The period-reduction trick: 25 invocations per frame but only
        ~6 main-body executions (once per four invocations)."""
        stim = fms_stimulus(net, 10000)
        result = run_zero_delay(net, 10000, stim)
        writes = result.channel_logs["magn_decl"]
        assert len(writes) == 6  # invocations 4, 8, ..., 24

    def test_stimulus_reproducible(self, net):
        a = fms_stimulus(net, 10000, seed=9)
        b = fms_stimulus(net, 10000, seed=9)
        assert a.sporadic_arrivals == b.sporadic_arrivals

    def test_outputs_produced(self, net):
        stim = fms_stimulus(net, 10000)
        result = run_zero_delay(net, 10000, stim)
        assert len(result.output_values("BCPOut")) == 50
        assert len(result.output_values("PerformanceData")) == 10
        fuel = result.output_values("PerformanceData")
        assert all(b > a for a, b in zip(fuel[1:], fuel))  # fuel decreases
