"""Aggregate metrics over simulated runs: misses, responses, utilization.

These are the quantities Section V reports narratively ("no deadline misses
were observed", overhead per frame, load): each gets a first-class function
so the benchmark harness prints paper-style rows from one call.

All aggregation lives in :class:`~repro.runtime.observers.MetricsObserver`
(a streaming event consumer); the functions here replay a finished
:class:`RuntimeResult` through it, so live runs (``run(observers=[obs])``)
and post-hoc analysis compute identical values from the same code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.timebase import Time
from .executor import JobRecord, RuntimeResult
from .observers import ExecutionObserver, MetricsObserver, replay


class _TimingMetricsObserver(MetricsObserver):
    """MetricsObserver with the data hooks restored to the base no-ops.

    The record-derived metrics below need only the timing event stream;
    presenting un-overridden data hooks lets :func:`replay` skip the trace
    materialisation and per-action walk entirely (and keeps these helpers
    working on results whose trace was suppressed).
    """

    on_job_data_start = ExecutionObserver.on_job_data_start
    on_job_data_end = ExecutionObserver.on_job_data_end
    on_channel_write = ExecutionObserver.on_channel_write


@dataclass(frozen=True)
class MissSummary:
    """Deadline-miss statistics of one run."""

    total_jobs: int
    executed_jobs: int
    false_jobs: int
    missed_jobs: int
    worst_lateness: Time
    miss_ratio: float

    @property
    def any_missed(self) -> bool:
        return self.missed_jobs > 0


@dataclass(frozen=True)
class KernelSpanStats:
    """Per-process kernel-span statistics from the data-phase events.

    A *kernel span* is the resolved ``[start, end)`` execution interval of
    one true job instance, delimited by the ``on_job_data_start`` /
    ``on_job_data_end`` events of the executor's data phase.  All times are
    exact rationals.
    """

    jobs: int
    total_busy: Time
    max_span: Time
    mean_span: Time


def kernel_span_stats(result: RuntimeResult) -> Dict[str, KernelSpanStats]:
    """Per-process kernel-span statistics of a finished run.

    Replays the stored run through a
    :class:`~repro.runtime.observers.MetricsObserver`; requires the run to
    have collected both records and the action trace (the replay source of
    the data-phase events).
    """
    return _data_metrics_of(result).kernel_span_stats()


def _metrics_of(result: RuntimeResult) -> MetricsObserver:
    obs = _TimingMetricsObserver()
    replay(result, obs)
    return obs


def _data_metrics_of(result: RuntimeResult) -> MetricsObserver:
    obs = MetricsObserver()
    replay(result, obs)
    return obs


def miss_summary(result: RuntimeResult) -> MissSummary:
    """Summarise deadline behaviour of a run."""
    return _metrics_of(result).miss_summary()


def response_times(result: RuntimeResult) -> Dict[str, Time]:
    """Worst-case observed response time per process."""
    return _metrics_of(result).response_times()


def processor_utilization(result: RuntimeResult) -> List[float]:
    """Busy fraction per processor over the simulated horizon."""
    return _metrics_of(result).processor_utilization()


def frame_makespans(result: RuntimeResult) -> List[Time]:
    """Per-frame completion time relative to the frame start."""
    return _metrics_of(result).frame_makespans()


def jobs_of_process(result: RuntimeResult, process: str) -> List[JobRecord]:
    """All records of one process, ordered by frame then invocation."""
    result._require_records()
    return sorted(
        (r for r in result.records if r.process == process),
        key=lambda r: (r.frame, r.k_frame),
    )
