#!/usr/bin/env python3
"""Resilient sweeps: error capture, fault injection and checkpoint resume.

A sweep cell that fails — a raising kernel, an infeasible schedule, a
crashed worker — no longer aborts the table.  The failure is captured as
a structured error row (`SweepResult.failed_rows`), every other cell
still runs, and with a checkpoint store attached the healthy rows are
persisted under each scenario's content hash, so re-running the same
matrix recomputes *only* the failed/missing cells.

This demo injects a deterministic fault with a ``FaultPlan`` (the same
machinery the test suite uses to pin the recovery paths), shows the
partial table, then resumes from the store.  ``MemorySweepStore`` keeps
the demo self-contained; ``SqliteSweepStore("sweep.db")`` is the durable
drop-in for real campaigns, and ``run_sweep(workers=N)`` applies the
same semantics with supervised worker processes (crash respawn,
per-group deadlines, bounded retry).

Run:  python examples/resilient_sweep.py
"""

from repro import FaultPlan, MemorySweepStore, ScenarioMatrix, run_sweep
from repro.apps import fig1_scenario

METRICS = ("executed_jobs", "missed_jobs", "makespan")


def main() -> None:
    # The paper's Fig. 1 example over processors x jitter: 4 cells, two
    # schedule-key groups.  Cell indices run row-major: cell 2 is
    # (processors=3, jitter_seed=0).
    matrix = ScenarioMatrix(
        fig1_scenario(n_frames=1),
        {"processors": [2, 3], "jitter_seed": [0, 1]},
    )

    # -- 1. a failing cell yields a partial table, not a traceback ---------
    store = MemorySweepStore()
    faults = FaultPlan(raise_at=(2,))  # deterministic stand-in for a bug
    partial = run_sweep(matrix, metrics=METRICS, store=store, faults=faults)
    print("-- sweep with an injected kernel fault at cell 2 --")
    print(partial.table())
    print(
        f"\ncaptured failures: {partial.stats.failed_cells} "
        f"(error rows carry type, message, stage and retry count)"
    )
    print(f"healthy rows checkpointed: {len(store)}")
    assert len(partial.rows) == 3 and len(partial.failed_rows) == 1

    # -- 2. resume: only the failed cell recomputes ------------------------
    resumed = run_sweep(matrix, metrics=METRICS, store=store)
    stats = resumed.stats
    print("\n-- same matrix, resumed against the checkpoint store --")
    print(resumed.table())
    print(
        f"\nstore hits {stats.store_hits}, misses {stats.store_misses}, "
        f"cells executed {stats.runs}"
    )
    assert stats.store_hits == 3 and stats.store_misses == 1
    assert stats.runs == 1 and stats.failed_cells == 0

    # -- 3. determinism makes checkpoints trustworthy ----------------------
    # A stored row *is* the row the simulator would produce: the resumed
    # table is bit-identical (exact Fractions included) to a fault-free
    # sweep computed from scratch.
    clean = run_sweep(matrix, metrics=METRICS)
    assert resumed.rows == clean.rows
    print("resumed rows are bit-identical to a fault-free sweep")


if __name__ == "__main__":
    main()
