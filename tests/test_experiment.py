"""Scenario/Experiment facade: equivalence with the loose pipeline functions,
scenario validation and JSON round-trips (ISSUE 4 acceptance criteria)."""

import json
from fractions import Fraction

import pytest

from repro import (
    Experiment,
    Scenario,
    check_determinism,
    derive_task_graph,
    find_feasible_schedule,
    run_static_order,
    run_zero_delay,
)
from repro.apps import (
    fft_scenario,
    fig1_scenario,
    fig1_stimulus,
    fig1_wcets,
    fms_scenario,
)
from repro.core import Stimulus
from repro.errors import ModelError, RuntimeModelError
from repro.experiment import (
    PipelineCache,
    available_workloads,
    register_workload,
    resolve_workload,
)
from repro.io import (
    FormatError,
    scenario_from_dict,
    scenario_to_dict,
    stimulus_from_dict,
    stimulus_to_dict,
)
from repro.runtime import MetricsObserver, OverheadModel, miss_summary


def graph_signature(graph):
    return (
        [(j.process, j.k, j.arrival, j.deadline, j.wcet, j.is_server)
         for j in graph.jobs],
        sorted(graph.edges()),
        graph.hyperperiod,
    )


# ---------------------------------------------------------------------------
# Scenario value semantics
# ---------------------------------------------------------------------------
class TestScenario:
    def test_normalisation_and_equality(self):
        a = Scenario(workload="fig1", wcet={"B": 2, "A": Fraction(1, 3)})
        b = Scenario(workload="fig1", wcet={"A": Fraction(1, 3), "B": 2})
        assert a == b
        assert a.wcet_spec() == {"A": Fraction(1, 3), "B": Fraction(2)}
        assert a.replace(n_frames=7) == b.replace(n_frames=7)
        assert a.replace(n_frames=7) != a

    def test_replace_is_idempotent_on_normalised_fields(self):
        s = fig1_scenario()
        assert s.replace(jitter_seed=3).replace(jitter_seed=3).wcet == s.wcet

    def test_scalar_wcet(self):
        s = Scenario(workload="fig1", wcet=25)
        assert s.wcet == Fraction(25)
        assert s.wcet_spec() == Fraction(25)

    def test_validation_errors(self):
        with pytest.raises(ModelError):
            Scenario(workload="fig1", wcet=25, processors=0)
        with pytest.raises(ModelError):
            Scenario(workload="fig1", wcet=25, n_frames=0)
        with pytest.raises(ModelError):
            Scenario(workload="fig1", wcet=25,
                     execution_time={"A": 1}, jitter_seed=0)
        with pytest.raises(ModelError):
            Scenario(workload="fig1", wcet=25, jitter_low=0.0)
        with pytest.raises(ModelError):
            Scenario(workload="fig1", wcet=25, overheads="nope")
        with pytest.raises(ModelError):
            Scenario(workload="fig1", wcet=25, stimulus=42)
        with pytest.raises(ModelError):
            Scenario(workload=42, wcet=25)
        with pytest.raises(ModelError):
            Scenario(workload="fig1", wcet=lambda job, k: 1)

    def test_stage_keys_split_compile_and_runtime_fields(self):
        base = fig1_scenario()
        runtime_variant = base.replace(
            jitter_seed=5, n_frames=1, overheads=OverheadModel.mppa_like()
        )
        assert runtime_variant.derivation_key() == base.derivation_key()
        assert runtime_variant.schedule_key() == base.schedule_key()
        assert base.replace(wcet=30).derivation_key() != base.derivation_key()
        assert base.replace(processors=3).schedule_key() != base.schedule_key()
        assert (base.replace(processors=3).derivation_key()
                == base.derivation_key())

    def test_workload_registry(self):
        assert {"fig1", "fft", "fms", "fms-40s"} <= set(available_workloads())
        assert resolve_workload("fig1")().name == "fig1-example"
        with pytest.raises(ModelError):
            resolve_workload("no-such-workload")

    def test_user_registration_does_not_hide_builtin_workloads(self):
        # In a fresh interpreter, a user registration made *before* any
        # built-in name is resolved must not suppress the lazy apps import
        # (regression: the load guard used to be a registry-emptiness
        # check, so the first registration marked the apps as loaded).
        import os
        import subprocess
        import sys

        code = (
            "from repro.experiment import ("
            "available_workloads, register_workload, resolve_workload)\n"
            "register_workload('custom', lambda: None)\n"
            "assert resolve_workload('fms') is not None\n"
            "names = available_workloads()\n"
            "assert 'custom' in names and 'fig1' in names, names\n"
        )
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + \
            env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env,
        )
        assert proc.returncode == 0, proc.stderr

    def test_failed_apps_import_is_reported_and_retried(self, monkeypatch):
        # Regression: the lazy apps loader used to set its done-flag
        # *before* importing, so a failed import poisoned every later
        # lookup with a bare "unknown workload" and was never retried.
        from repro.experiment import scenario as scenario_mod

        def boom():
            raise ImportError("apps are broken today")

        monkeypatch.setattr(scenario_mod, "_apps_loaded", False)
        monkeypatch.setattr(scenario_mod, "_import_apps", boom)
        with pytest.raises(ImportError, match="apps are broken today"):
            resolve_workload("fms")
        # The flag must not latch on failure: restoring the importer makes
        # the very next lookup succeed.
        assert scenario_mod._apps_loaded is False
        monkeypatch.undo()
        assert resolve_workload("fms") is not None

    def test_scenario_hashable_with_stimulus(self):
        a, b = fig1_scenario(n_frames=2), fig1_scenario(n_frames=2)
        assert hash(a) == hash(b)
        assert len({a, b}) == 1
        assert len({a, a.replace(jitter_seed=1)}) == 2

    def test_stimulus_equality(self):
        a = fig1_stimulus(2)
        b = fig1_stimulus(2)
        c = fig1_stimulus(3)
        assert a == b
        assert a != c
        assert a != "not a stimulus"


# ---------------------------------------------------------------------------
# facade vs loose functions (acceptance criterion)
# ---------------------------------------------------------------------------
class TestFacadeEquivalence:
    @pytest.mark.parametrize(
        "scenario_factory, frames",
        [(fig1_scenario, 2), (fft_scenario, 2), (fms_scenario, 1)],
        ids=["fig1", "fft", "fms"],
    )
    def test_facade_matches_loose_pipeline(self, scenario_factory, frames):
        scenario = scenario_factory(n_frames=frames)
        exp = Experiment(scenario)

        net = scenario.build_network()
        graph = derive_task_graph(net, scenario.wcet_spec())
        schedule = find_feasible_schedule(graph, scenario.processors)
        result = run_static_order(
            net,
            schedule,
            scenario.n_frames,
            scenario.stimulus,
            scenario.execution_model(),
            scenario.overheads,
        )

        assert graph_signature(exp.task_graph()) == graph_signature(graph)
        assert exp.schedule().processors == schedule.processors
        assert list(exp.schedule().entries) == list(schedule.entries)
        facade_result = exp.run()
        assert facade_result.records == result.records
        assert facade_result.observable() == result.observable()
        assert facade_result.overhead_intervals == result.overhead_intervals

    def test_loose_functions_still_importable_from_repro(self):
        import repro

        for name in (
            "derive_task_graph",
            "find_feasible_schedule",
            "run_static_order",
            "check_determinism",
            "run_zero_delay",
        ):
            assert callable(getattr(repro, name))
            assert name in repro.__all__

    def test_reference_matches_zero_delay(self):
        scenario = fig1_scenario(n_frames=2)
        exp = Experiment(scenario)
        horizon = exp.task_graph().hyperperiod * scenario.n_frames
        direct = run_zero_delay(
            scenario.build_network(), horizon, scenario.stimulus
        )
        assert exp.reference().observable() == direct.observable()

    def test_run_observable_matches_reference_without_deferred_arrivals(self):
        # With no sporadic arrivals near the horizon nothing is deferred by
        # the runtime's server windows, so the Prop. 2.1 observable of the
        # simulated run equals the zero-delay reference directly.
        scenario = fig1_scenario(
            n_frames=2, stimulus=fig1_stimulus(2, coef_arrivals=[])
        )
        exp = Experiment(scenario)
        assert exp.run().observable() == exp.reference().observable()

    def test_check_determinism_matches_loose_call(self):
        scenario = fig1_scenario(n_frames=2)
        exp = Experiment(scenario)
        args = dict(processor_counts=(2,), heuristics=("alap",),
                    jitter_seeds=(0,))
        facade = exp.check_determinism(**args)
        loose = check_determinism(
            scenario.build_network(), scenario.wcet_spec(),
            scenario.n_frames, scenario.stimulus, **args,
        )
        assert facade.deterministic and loose.deterministic
        assert [v.label for v in facade.variants] == \
            [v.label for v in loose.variants]


# ---------------------------------------------------------------------------
# facade caching / observers
# ---------------------------------------------------------------------------
class TestExperimentCaching:
    def test_stages_computed_once(self):
        exp = Experiment(fig1_scenario(n_frames=1))
        g1, g2 = exp.task_graph(), exp.task_graph()
        assert g1 is g2
        assert exp.schedule() is exp.schedule()
        assert exp.run() is exp.run()
        assert exp.cache.derivations_computed == 1
        assert exp.cache.schedules_computed == 1

    def test_shared_cache_across_experiments(self):
        cache = PipelineCache()
        a = Experiment(fig1_scenario(n_frames=1), cache=cache)
        b = Experiment(fig1_scenario(n_frames=2), cache=cache)
        assert a.task_graph() is b.task_graph()
        assert a.schedule() is b.schedule()
        assert cache.derivations_computed == 1
        assert cache.networks_built == 1

    def test_late_observers_replay_cached_run(self):
        exp = Experiment(fig1_scenario(n_frames=2))
        result = exp.run()
        m = MetricsObserver()
        assert exp.run(observers=[m]) is result
        assert m.miss_summary() == miss_summary(result)

    def test_late_observers_rerun_when_not_replayable(self):
        exp = Experiment(fig1_scenario(n_frames=1, collect_records=False))
        first = exp.run()
        m = MetricsObserver()
        second = exp.run(observers=[m])  # replay refused -> fresh run
        assert second is not first
        assert m.total_jobs == 10

    def test_late_data_consumers_rerun_on_trace_suppressed_results(self):
        # replay() silently drops data observers for collect_trace=False
        # results; the facade must detect that and re-execute instead of
        # handing the observer an event-less replay.
        exp = Experiment(fig1_scenario(n_frames=1, collect_trace=False))
        exp.run()
        spans = exp.metrics().kernel_span_stats()
        assert spans  # live events streamed from the fresh run
        # A purely timing-consuming observer still replays the cache.
        timing = MetricsObserver()
        assert exp.run(observers=[timing]) is exp._result
        assert timing.total_jobs == 10

    def test_metrics_accessor(self):
        exp = Experiment(fig1_scenario(n_frames=2))
        m = exp.metrics()
        assert m is exp.metrics()
        assert m.miss_summary() == miss_summary(exp.run())

    def test_run_force_reexecutes(self):
        exp = Experiment(fig1_scenario(n_frames=1))
        first = exp.run()
        second = exp.run(force=True)
        assert second is not first
        assert second.records == first.records

    def test_forced_rerun_invalidates_cached_metrics(self):
        # Regression: run(force=True) replaced the cached result but kept
        # serving a metrics observer fed by the discarded run.
        exp = Experiment(fig1_scenario(n_frames=1))
        stale = exp.metrics()
        fresh_result = exp.run(force=True)
        fresh = exp.metrics()
        assert fresh is not stale
        assert fresh.makespan == fresh_result.makespan()

    def test_replay_fallback_rerun_invalidates_cached_metrics(self):
        # The other path through _execute: a cached lean result cannot
        # feed a late observer, so run() re-executes — the metrics cache
        # must not keep pointing at the replaced run either.
        exp = Experiment(fig1_scenario(n_frames=1, collect_records=False))
        exp.run()
        stale = exp.metrics()
        m = MetricsObserver()
        exp.run(observers=[m])  # replay refused -> fresh execution
        assert exp.metrics() is not stale

    def test_report_renders(self):
        text = Experiment(fig1_scenario(n_frames=1)).report().render()
        assert "jobs / frame" in text
        assert "deadline misses" in text

    def test_experiment_requires_scenario(self):
        with pytest.raises(RuntimeModelError):
            Experiment("not a scenario")


# ---------------------------------------------------------------------------
# JSON round-trips (acceptance criterion: Fraction fields included)
# ---------------------------------------------------------------------------
class TestScenarioJson:
    def test_round_trip_with_fraction_fields(self):
        scenario = Scenario(
            workload="fig1",
            wcet={"InputA": Fraction(1, 3), "FilterA": 25},
            processors=2,
            n_frames=3,
            horizon=Fraction(400),
            heuristics=("alap", "arrival"),
            jitter_seed=7,
            jitter_low=0.25,
            overheads=OverheadModel.create(
                Fraction(41), Fraction(20), Fraction(1, 2)
            ),
            stimulus=Stimulus(
                input_samples={"InputChannel": [1.5, Fraction(2, 7), 3]},
                sporadic_arrivals={"CoefB": [Fraction(350), Fraction(2101, 2)]},
            ),
            records_only=True,
            collect_records=False,
            collect_trace=False,
            label="round-trip",
        )
        data = json.loads(json.dumps(scenario_to_dict(scenario)))
        assert scenario_from_dict(data) == scenario

    def test_round_trip_app_scenarios(self):
        for factory in (fig1_scenario, fms_scenario):
            scenario = factory(n_frames=2)
            data = json.loads(json.dumps(scenario_to_dict(scenario)))
            assert scenario_from_dict(data) == scenario

    def test_round_trip_complex_samples(self):
        # The FFT stimulus carries tuples of complex numbers.
        scenario = fft_scenario(n_frames=2)
        data = json.loads(json.dumps(scenario_to_dict(scenario)))
        restored = scenario_from_dict(data)
        assert restored == scenario
        assert restored.stimulus.input_samples == \
            scenario.stimulus.input_samples

    def test_execution_time_table_round_trip(self):
        scenario = Scenario(
            workload="fig1", wcet=25,
            execution_time={"InputA": Fraction(19, 2)},
        )
        data = json.loads(json.dumps(scenario_to_dict(scenario)))
        assert scenario_from_dict(data) == scenario

    def test_callable_workload_refused(self):
        with pytest.raises(FormatError):
            scenario_to_dict(Scenario(workload=lambda: None, wcet=25))

    def test_callable_wcet_refused(self):
        scenario = Scenario(
            workload="fig1", wcet={"InputA": lambda job, k: 1}
        )
        with pytest.raises(FormatError):
            scenario_to_dict(scenario)

    def test_bad_header_refused(self):
        with pytest.raises(FormatError):
            scenario_from_dict({"format": "fppn-taskgraph", "version": 1})

    def test_stimulus_round_trip_preserves_sample_keys(self):
        stim = Stimulus(
            input_samples={"in": {2: (1 + 2j, Fraction(1, 3)), 5: "x"}},
            sporadic_arrivals={},
        )
        restored = stimulus_from_dict(
            json.loads(json.dumps(stimulus_to_dict(stim)))
        )
        assert restored == stim
        assert restored.input_samples["in"][2] == (1 + 2j, Fraction(1, 3))

    def test_deserialised_scenario_runs(self):
        scenario = fig1_scenario(n_frames=1)
        restored = scenario_from_dict(
            json.loads(json.dumps(scenario_to_dict(scenario)))
        )
        # The restored scenario resolves its workload by name and runs the
        # full pipeline to the same observable (kernels come from the
        # registered factory, not the serialised form).
        assert Experiment(restored).run().observable() == \
            Experiment(scenario).run().observable()
