"""Differential tests for the data-phase fast path (the PR's contract).

The optimised ``MultiprocessorExecutor._data_phase`` — one rebound
``JobContext`` per process, batched per-(process, frame) dispatch, lazily
materialised trace, GC suspension — must be **bit-identical** to the naive
reference (one fresh ``JobContext`` per instance, fresh binding dicts,
eager action trace) on every covered workload:

* identical channel write logs (the Prop. 2.1 observable),
* identical external output sample sequences,
* identical action traces (every read/write/assign, in order),

asserted two ways: end to end against ``reference_run_static_order`` (the
seed's full Fraction-domain simulation), and in isolation by replaying the
fast path's own execution order through ``reference_data_phase``.
Workloads: Fig. 1, FFT, FMS (periodic + sporadic servers), jittered WCETs,
and a dedicated bursty sporadic-server network.
"""

from fractions import Fraction

import pytest

from repro.apps import (
    build_fft_network,
    build_fig1_network,
    build_fms_network,
    fft_stimulus,
    fft_wcets,
    fig1_stimulus,
    fig1_wcets,
    fms_stimulus,
    fms_wcets,
)
from repro.core import Network
from repro.core.channels import is_no_data
from repro.core.invocations import Stimulus
from repro.core.trace import LazyTrace, Trace
from repro.runtime import (
    OverheadModel,
    jittered_execution,
    run_static_order,
)
from repro.scheduling import list_schedule
from repro.taskgraph import derive_task_graph

from fraction_reference import (
    reference_data_phase,
    reference_jittered_execution,
    reference_run_static_order,
)


# ----------------------------------------------------------------------
# Workloads.
# ----------------------------------------------------------------------

def fig1():
    net = build_fig1_network()
    return net, derive_task_graph(net, fig1_wcets()), 2, fig1_stimulus(3)


def fft():
    net = build_fft_network()
    vecs = [[k, 1j * k, -k, 0.5 * k] for k in range(4)]
    return net, derive_task_graph(net, fft_wcets()), 2, fft_stimulus(vecs)


def fms():
    net = build_fms_network()
    g = derive_task_graph(net, fms_wcets())
    return net, g, 1, fms_stimulus(net, g.hyperperiod * 3)


def sporadic_burst():
    """A dedicated sporadic-server workload: burst-2 config + stateful user."""
    net = Network("sporadic-burst")

    def producer(ctx):
        ctx.write("data", ctx.k)

    def user(ctx):
        total = ctx.get("total", 0)
        v = ctx.read("data")
        if not is_no_data(v):
            total += v
        cfg = ctx.read("cfg")
        if not is_no_data(cfg):
            total += 1000 * cfg
        ctx.assign("total", total)
        ctx.write_output(total, "out")

    def config(ctx):
        cmd = ctx.read_input("cmd")
        if not is_no_data(cmd):
            ctx.write("cfg", cmd)

    net.add_periodic("Producer", period=100, kernel=producer)
    net.add_periodic("User", period=100, kernel=user)
    net.add_sporadic("Config", min_period=100, deadline=300, burst=2,
                     kernel=config)
    net.connect("Producer", "User", "data")
    net.connect("Config", "User", "cfg")
    net.add_priority_chain("Producer", "User")
    net.add_priority("User", "Config")
    net.add_external_input("Config", "cmd")
    net.add_external_output("User", "out")
    net.validate()
    graph = derive_task_graph(net, {"Producer": 10, "User": 20, "Config": 5})
    stim = Stimulus(
        input_samples={"cmd": {1: 7, 2: 9, 3: 4}},
        sporadic_arrivals={"Config": [0, 30, 130]},
    )
    return net, graph, 2, stim


APPS = {
    "fig1": fig1,
    "fft": fft,
    "fms": fms,
    "sporadic_burst": sporadic_burst,
}


def assert_same_observables(ours, ref):
    """Bit-identical channel logs, external outputs and action traces."""
    channel_logs, external_outputs, trace = ref
    assert ours.channel_logs == channel_logs
    assert ours.external_outputs == external_outputs
    assert list(ours.trace) == list(trace)
    assert ours.trace == trace  # LazyTrace == eager Trace cross-check


# ----------------------------------------------------------------------
# End to end: optimised run vs the seed's full Fraction simulation.
# ----------------------------------------------------------------------

@pytest.mark.parametrize("app", sorted(APPS))
def test_end_to_end_identical(app):
    net, graph, m, stim = APPS[app]()
    schedule = list_schedule(graph, m, "alap")
    ours = run_static_order(net, schedule, 3, stim)
    ref = reference_run_static_order(net, schedule, 3, stim)
    assert ours.records == ref.records
    assert ours.channel_logs == ref.channel_logs
    assert ours.external_outputs == ref.external_outputs
    assert list(ours.trace) == list(ref.trace)


@pytest.mark.parametrize("app", sorted(APPS))
def test_end_to_end_identical_jittered(app):
    net, graph, m, stim = APPS[app]()
    schedule = list_schedule(graph, m, "alap")
    ours = run_static_order(
        net, schedule, 2, stim, execution_time=jittered_execution(2015)
    )
    ref = reference_run_static_order(
        net, schedule, 2, stim,
        execution_time=reference_jittered_execution(2015),
    )
    assert ours.records == ref.records
    assert ours.channel_logs == ref.channel_logs
    assert ours.external_outputs == ref.external_outputs
    assert list(ours.trace) == list(ref.trace)


def test_end_to_end_identical_with_overheads():
    net, graph, m, stim = fig1()
    schedule = list_schedule(graph, m, "alap")
    ov = OverheadModel.create(first_frame_arrival=31, steady_frame_arrival=17,
                              per_job="1/4")
    ours = run_static_order(net, schedule, 3, stim, overheads=ov)
    ref = reference_run_static_order(net, schedule, 3, stim, overheads=ov)
    assert ours.records == ref.records
    assert ours.observable() == ref.observable()
    assert list(ours.trace) == list(ref.trace)


# ----------------------------------------------------------------------
# Isolated oracle: the fast path's own execution order replayed through
# the naive fresh-context data phase.
# ----------------------------------------------------------------------

def _execution_order(result):
    """``(process, global_k, release)`` tuples in data-phase order."""
    release_of = {
        (r.process, r.global_k): r.release
        for r in result.records
        if not r.is_false
    }
    return [
        (process, k, release_of[(process, k)])
        for process, k in result.trace.job_order()
    ]


@pytest.mark.parametrize("app", sorted(APPS))
def test_isolated_data_phase_identical(app):
    net, graph, m, stim = APPS[app]()
    schedule = list_schedule(graph, m, "alap")
    ours = run_static_order(net, schedule, 3, stim)
    ref = reference_data_phase(net, _execution_order(ours), stim)
    assert_same_observables(ours, ref)


def test_isolated_data_phase_identical_jittered():
    net, graph, m, stim = fms()
    schedule = list_schedule(graph, m, "alap")
    ours = run_static_order(
        net, schedule, 2, stim, execution_time=jittered_execution(7)
    )
    ref = reference_data_phase(net, _execution_order(ours), stim)
    assert_same_observables(ours, ref)


# ----------------------------------------------------------------------
# Trace suppression and the lazy trace.
# ----------------------------------------------------------------------

@pytest.mark.parametrize("app", ["fig1", "sporadic_burst"])
def test_collect_trace_false_preserves_observables(app):
    net, graph, m, stim = APPS[app]()
    schedule = list_schedule(graph, m, "alap")
    full = run_static_order(net, schedule, 3, stim)
    bare = run_static_order(net, schedule, 3, stim, collect_trace=False)
    assert bare.channel_logs == full.channel_logs
    assert bare.external_outputs == full.external_outputs
    assert bare.records == full.records
    assert len(bare.trace) == 0
    assert not bare.trace_collected
    assert full.trace_collected


def test_lazy_trace_materialises_identically():
    net, graph, m, stim = fig1()
    schedule = list_schedule(graph, m, "alap")
    result = run_static_order(net, schedule, 2, stim)
    assert isinstance(result.trace, LazyTrace)
    eager = Trace(list(result.trace))
    # Equality across the eager/lazy divide, both orientations.
    assert result.trace == eager
    assert eager == result.trace
    # Projections work identically.
    assert result.trace.channel_writes() == eager.channel_writes()
    assert result.trace.job_order() == eager.job_order()
    # Materialisation is cached, not rebuilt.
    assert result.trace.actions is result.trace.actions


def test_action_trace_guarded_accessor():
    net, graph, m, stim = fig1()
    schedule = list_schedule(graph, m, "alap")
    full = run_static_order(net, schedule, 2, stim)
    assert full.action_trace() is full.trace

    from repro.errors import RuntimeModelError

    bare = run_static_order(net, schedule, 2, stim, collect_trace=False)
    with pytest.raises(RuntimeModelError, match="collect_trace=False"):
        bare.action_trace()
    timing = run_static_order(net, schedule, 2, stim, records_only=True)
    with pytest.raises(RuntimeModelError, match="records_only=True"):
        timing.action_trace()


def test_fractional_period_data_phase():
    """Non-trivial tick scale: releases at 1/3, 1/2 stay exact Fractions."""
    net = Network("fractional")
    net.add_periodic("Fast", period="1/3", deadline="1/3",
                     kernel=lambda ctx: ctx.write("c", ctx.now))
    net.add_periodic("Slow", period="1/2", deadline="1/2",
                     kernel=lambda ctx: ctx.read("c"))
    net.connect("Fast", "Slow", "c")
    net.add_priority("Fast", "Slow")
    net.validate()
    graph = derive_task_graph(net, {"Fast": "1/30", "Slow": "1/20"})
    schedule = list_schedule(graph, 1, "alap")
    ours = run_static_order(net, schedule, 3)
    ref = reference_run_static_order(net, schedule, 3)
    assert ours.channel_logs == ref.channel_logs
    assert list(ours.trace) == list(ref.trace)
    # The written values are the invocation stamps: exact rationals.
    assert ours.channel_logs["c"][1] == Fraction(1, 3)
