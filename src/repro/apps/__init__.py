"""Application networks: the paper's case studies plus random workloads."""

from .example_fig1 import (
    FIG1_WCET_MS,
    build_fig1_network,
    fig1_stimulus,
    fig1_wcets,
)
from .fft import (
    DEFAULT_PERIOD_MS,
    FFT_POINTS,
    FFT_STAGES,
    build_fft_network,
    fft_stimulus,
    fft_wcets,
    reference_fft,
)
from .fms import (
    FMS_WCETS_MS,
    build_fms_network,
    fms_scheduling_priorities,
    fms_stimulus,
    fms_wcets,
)
from .workloads import random_network, random_wcets

__all__ = [
    "FIG1_WCET_MS",
    "build_fig1_network",
    "fig1_stimulus",
    "fig1_wcets",
    "DEFAULT_PERIOD_MS",
    "FFT_POINTS",
    "FFT_STAGES",
    "build_fft_network",
    "fft_stimulus",
    "fft_wcets",
    "reference_fft",
    "FMS_WCETS_MS",
    "build_fms_network",
    "fms_scheduling_priorities",
    "fms_stimulus",
    "fms_wcets",
    "random_network",
    "random_wcets",
]
