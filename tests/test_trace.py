"""Tests for trace data structures and projections."""

from fractions import Fraction

from repro.core.trace import (
    Assign,
    ChannelRead,
    ChannelWrite,
    ExternalRead,
    ExternalWrite,
    JobEnd,
    JobStart,
    Trace,
    Wait,
)


def sample_trace() -> Trace:
    t = Trace()
    t.append(Wait(Fraction(0)))
    t.append(JobStart("p", 1))
    t.append(ExternalRead("p", "I1", 1, 42))
    t.append(Assign("p", "x", 1764))
    t.append(ChannelWrite("p", "c1", 1764))
    t.append(JobEnd("p", 1))
    t.append(Wait(Fraction(100)))
    t.append(JobStart("q", 1))
    t.append(ChannelRead("q", "c1", 1764))
    t.append(ExternalWrite("q", "O1", 2, 1764))
    t.append(JobEnd("q", 1))
    return t


class TestContainer:
    def test_len_iter_getitem(self):
        t = sample_trace()
        assert len(t) == 11
        assert isinstance(t[0], Wait)
        assert sum(1 for _ in t) == 11

    def test_extend(self):
        t = Trace()
        t.extend([Wait(Fraction(0)), Wait(Fraction(1))])
        assert len(t) == 2


class TestProjections:
    def test_channel_writes(self):
        assert sample_trace().channel_writes() == [("c1", 1764)]

    def test_channel_writes_filtered(self):
        assert sample_trace().channel_writes("other") == []
        assert sample_trace().channel_writes("c1") == [("c1", 1764)]

    def test_external_writes(self):
        assert sample_trace().external_writes() == [("O1", 2, 1764)]

    def test_job_order(self):
        assert sample_trace().job_order() == [("p", 1), ("q", 1)]

    def test_waits(self):
        assert sample_trace().waits() == [0, 100]


class TestRendering:
    def test_action_strings_use_paper_notation(self):
        t = sample_trace()
        rendered = [str(a) for a in t]
        assert rendered[0] == "w(0)"
        assert rendered[2] == "p:42?[1]I1"          # x?[k]Ie
        assert rendered[3] == "p:x:=1764"           # assignment
        assert rendered[4] == "p:1764!c1"           # x!c
        assert "q:1764?c1" in rendered              # x?c
        assert "q:O1![2]1764" in rendered           # x![k]Oe

    def test_pretty_truncates(self):
        text = sample_trace().pretty(limit=3)
        assert "more actions" in text
        assert len(text.splitlines()) == 4

    def test_pretty_full(self):
        assert len(sample_trace().pretty().splitlines()) == 11

    def test_job_markers(self):
        assert str(JobStart("p", 3)) == "start p[3]"
        assert str(JobEnd("p", 3)) == "end p[3]"
