"""Tests for SP heuristics and the portfolio optimizer."""

from fractions import Fraction

import pytest

from repro.apps import build_fig1_network, build_fft_network, fft_wcets
from repro.errors import InfeasibleError, SchedulingError
from repro.scheduling import (
    DEFAULT_PORTFOLIO,
    available_heuristics,
    find_feasible_schedule,
    get_heuristic,
    list_schedule,
    minimum_processors,
    schedule_quality,
    try_portfolio,
)
from repro.scheduling.priorities import register_heuristic
from repro.taskgraph import derive_task_graph
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.jobs import Job


def J(name, k=1, a=0, d=1000, c=10):
    return Job(name, k, Fraction(a), Fraction(d), Fraction(c))


@pytest.fixture(scope="module")
def fig1_graph():
    return derive_task_graph(build_fig1_network(), 25)


class TestHeuristics:
    def test_registry_contains_defaults(self):
        names = available_heuristics()
        for expected in ("alap", "arrival", "blevel", "deadline"):
            assert expected in names

    def test_every_heuristic_returns_permutation(self, fig1_graph):
        n = len(fig1_graph)
        for name in available_heuristics():
            ranks = get_heuristic(name)(fig1_graph)
            assert sorted(ranks) == list(range(n)), name

    def test_unknown_heuristic(self):
        with pytest.raises(SchedulingError):
            get_heuristic("bogus")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(SchedulingError):
            register_heuristic("alap")(lambda g: [])

    def test_alap_ranks_by_alap_completion(self):
        g = TaskGraph([J("late", d=1000), J("urgent", d=30)], [], Fraction(1000))
        ranks = get_heuristic("alap")(g)
        assert ranks[1] < ranks[0]

    def test_blevel_prefers_long_path_head(self):
        # a heads a long chain; c is isolated.
        g = TaskGraph(
            [J("a", c=10), J("b", c=50), J("c", c=10)],
            [(0, 1)],
            Fraction(1000),
        )
        ranks = get_heuristic("blevel")(g)
        assert ranks[0] < ranks[2]

    def test_deadline_heuristic_uses_nominal_deadline(self):
        g = TaskGraph([J("a", d=500), J("b", d=100)], [], Fraction(1000))
        ranks = get_heuristic("deadline")(g)
        assert ranks[1] < ranks[0]

    def test_arrival_heuristic_fifo(self):
        g = TaskGraph([J("a", a=0), J("b", a=0, d=500)], [], Fraction(1000))
        ranks = get_heuristic("arrival")(g)
        assert ranks[1] < ranks[0]  # tie on arrival, b has earlier deadline


class TestPortfolio:
    def test_try_portfolio_reports_all(self, fig1_graph):
        attempts = try_portfolio(fig1_graph, 2)
        assert [a.heuristic for a in attempts] == list(DEFAULT_PORTFOLIO)
        assert any(a.feasible for a in attempts)

    def test_find_feasible_on_two(self, fig1_graph):
        s = find_feasible_schedule(fig1_graph, 2)
        assert s.is_feasible()

    def test_find_feasible_raises_on_one(self, fig1_graph):
        with pytest.raises(InfeasibleError) as exc:
            find_feasible_schedule(fig1_graph, 1)
        assert exc.value.diagnostics  # carries the best attempt's violations

    def test_minimum_processors_fig1(self, fig1_graph):
        m, s = minimum_processors(fig1_graph)
        assert m == 2
        assert s.is_feasible()

    def test_minimum_processors_starts_at_load_bound(self, fig1_graph):
        # the search must not even try M=1 (load bound is 2); equivalently
        # the result equals the bound here.
        m, _ = minimum_processors(fig1_graph, max_processors=4)
        assert m == 2

    def test_minimum_processors_exhaustion(self):
        # deadline too tight for any processor count
        g = TaskGraph(
            [J("a", c=40), J("b", c=40, d=50)],
            [(0, 1)],
            Fraction(1000),
        )
        with pytest.raises(InfeasibleError):
            minimum_processors(g, max_processors=8)

    def test_fft_single_processor_feasible_without_overhead(self):
        """Load 0.93 < 1: the pure task set fits one processor."""
        g = derive_task_graph(build_fft_network(), fft_wcets())
        m, _ = minimum_processors(g)
        assert m == 1


class TestQuality:
    def test_quality_feasible_case(self, fig1_graph):
        q = schedule_quality(fig1_graph, 2, "alap")
        assert q.feasible
        assert q.deadline_violations == 0
        assert q.total_lateness == 0
        assert q.makespan <= 200

    def test_quality_overload_case(self, fig1_graph):
        q = schedule_quality(fig1_graph, 1, "alap")
        assert not q.feasible
        assert q.deadline_violations > 0
        assert q.total_lateness > 0
