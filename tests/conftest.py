"""Shared fixtures: small canonical networks used across the test suite."""

from __future__ import annotations

import pytest

from repro.core import ChannelKind, Network, is_no_data


def _producer(ctx):
    ctx.write("c", ctx.k)


def _consumer(ctx):
    v = ctx.read("c")
    total = ctx.get("total", 0)
    if not is_no_data(v):
        total += v
    ctx.assign("total", total)
    ctx.write_output(total, "out")


@pytest.fixture
def pair_network() -> Network:
    """Minimal two-process FIFO pipeline (producer -> consumer), T=100."""
    net = Network("pair")
    net.add_periodic("producer", period=100, kernel=_producer)
    net.add_periodic("consumer", period=100, kernel=_consumer)
    net.connect("producer", "consumer", "c", kind=ChannelKind.FIFO)
    net.add_priority("producer", "consumer")
    net.add_external_output("consumer", "out")
    net.validate()
    return net


def _sensor(ctx):
    cfg = ctx.read("cfg")
    gain = 1 if is_no_data(cfg) else cfg
    ctx.write("data", gain * ctx.k)


def _sink(ctx):
    v = ctx.read("data")
    ctx.write_output(None if is_no_data(v) else v, "sink_out")


def _config(ctx):
    cmd = ctx.read_input("cmd")
    if not is_no_data(cmd):
        ctx.write("cfg", cmd)


@pytest.fixture
def sporadic_network() -> Network:
    """Periodic sensor (T=100) + sink (T=200) + sporadic config (2 per 300).

    The sporadic process's user is the sensor; the config has *higher*
    functional priority than its user (windows are right-closed ``(a, b]``).
    """
    net = Network("sporadic")
    net.add_periodic("sensor", period=100, kernel=_sensor)
    net.add_periodic("sink", period=200, kernel=_sink)
    net.add_sporadic("config", min_period=300, deadline=300, burst=2, kernel=_config)
    net.connect("sensor", "sink", "data", kind=ChannelKind.FIFO)
    net.connect("config", "sensor", "cfg", kind=ChannelKind.BLACKBOARD)
    net.add_priority("sensor", "sink")
    net.add_priority("config", "sensor")
    net.add_external_input("config", "cmd")
    net.add_external_output("sink", "sink_out")
    net.validate_taskgraph_subclass()
    return net


@pytest.fixture
def low_priority_sporadic_network() -> Network:
    """Same shape but the config is *below* its user (windows ``[a, b)``)."""
    net = Network("sporadic-low")
    net.add_periodic("sensor", period=100, kernel=_sensor)
    net.add_periodic("sink", period=200, kernel=_sink)
    net.add_sporadic("config", min_period=300, deadline=300, burst=2, kernel=_config)
    net.connect("sensor", "sink", "data", kind=ChannelKind.FIFO)
    net.connect("config", "sensor", "cfg", kind=ChannelKind.BLACKBOARD)
    net.add_priority("sensor", "sink")
    net.add_priority("sensor", "config")
    net.add_external_input("config", "cmd")
    net.add_external_output("sink", "sink_out")
    net.validate_taskgraph_subclass()
    return net
