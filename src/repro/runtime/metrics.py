"""Aggregate metrics over simulated runs: misses, responses, utilization.

These are the quantities Section V reports narratively ("no deadline misses
were observed", overhead per frame, load): each gets a first-class function
so the benchmark harness prints paper-style rows from one call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.timebase import Time
from .executor import JobRecord, RuntimeResult


@dataclass(frozen=True)
class MissSummary:
    """Deadline-miss statistics of one run."""

    total_jobs: int
    executed_jobs: int
    false_jobs: int
    missed_jobs: int
    worst_lateness: Time
    miss_ratio: float

    @property
    def any_missed(self) -> bool:
        return self.missed_jobs > 0


def miss_summary(result: RuntimeResult) -> MissSummary:
    """Summarise deadline behaviour of a run."""
    executed = result.executed()
    misses = [r for r in executed if r.missed]
    worst = Time(0)
    for r in misses:
        lateness = r.end - r.deadline
        if lateness > worst:
            worst = lateness
    return MissSummary(
        total_jobs=len(result.records),
        executed_jobs=len(executed),
        false_jobs=len(result.false_jobs()),
        missed_jobs=len(misses),
        worst_lateness=worst,
        miss_ratio=(len(misses) / len(executed)) if executed else 0.0,
    )


def response_times(result: RuntimeResult) -> Dict[str, Time]:
    """Worst-case observed response time per process."""
    out: Dict[str, Time] = {}
    for r in result.executed():
        current = out.get(r.process, Time(0))
        if r.response_time > current:
            out[r.process] = r.response_time
    return out


def processor_utilization(result: RuntimeResult) -> List[float]:
    """Busy fraction per processor over the simulated horizon."""
    horizon = result.hyperperiod * result.frames
    busy = [Time(0)] * result.processors
    for r in result.executed():
        busy[r.processor] += r.end - r.start
    return [float(b / horizon) for b in busy]


def frame_makespans(result: RuntimeResult) -> List[Time]:
    """Per-frame completion time relative to the frame start."""
    spans: List[Time] = [Time(0)] * result.frames
    for r in result.executed():
        base = result.hyperperiod * r.frame
        span = r.end - base
        if span > spans[r.frame]:
            spans[r.frame] = span
    return spans


def jobs_of_process(result: RuntimeResult, process: str) -> List[JobRecord]:
    """All records of one process, ordered by frame then invocation."""
    return sorted(
        (r for r in result.records if r.process == process),
        key=lambda r: (r.frame, r.k_frame),
    )
