"""Observer/sink protocol for the runtime executor.

The :class:`~repro.runtime.executor.MultiprocessorExecutor` separates the
paper's deterministic timing core from its growing set of output consumers:
the timing phase (pure integer-tick recurrence) *emits events* — run
milestones, frame-arrival overhead windows, one :class:`~repro.runtime.
executor.JobRecord` per resolved job instance — and observers passed to
``run(observers=...)`` consume them as they happen.  VCD export
(:mod:`repro.io.vcd`), Gantt rendering (:mod:`repro.runtime.gantt`),
metrics (:mod:`repro.runtime.metrics`) and determinism sweeps
(:mod:`repro.analysis.determinism`) are all such consumers; new backends
plug in by subclassing :class:`ExecutionObserver` without touching the
executor core.

Event order and domain:

* ``on_run_start`` once, then per live frame the frame's overhead window
  (if any) followed by that frame's records in timing-resolution order
  (schedule-topological within the frame), then ``on_run_end`` once.
  :func:`replay` re-emits a finished run in the same shape except that all
  overhead windows precede all records — observers must not rely on the
  interleaving, only on the per-stream order.
* **Data-phase events** follow all timing events: per executed job
  instance, in the deterministic ``(start, frame, <J index)`` execution
  order of the data phase, ``on_job_data_start`` then one
  ``on_channel_write`` per internal channel write the kernel makes (in
  write order) then ``on_job_data_end``.  False jobs and external output
  samples emit no data events.  :func:`replay` reconstructs the identical
  stream from the stored trace, so live and post-hoc consumers see the
  same sequence.
* Every time stamp an observer sees is an **exact rational**
  (:class:`fractions.Fraction`): events are emitted at the tick→Fraction
  conversion boundary of the executor, so observers never handle raw ticks
  and never see rounded values.  Kernel spans carry the instance's resolved
  ``[start, end)`` interval; channel writes carry the writing job's start
  instant (kernels execute atomically at their start, Section IV).

``run(records_only=True)`` skips the data phase (no ``JobContext``, no
kernel dispatch, empty channel observables, no data events) for
timing-only consumers.  ``run(collect_records=False)`` keeps
``result.records`` empty: observers still receive every ``on_record``
event, so streaming consumers (metrics over a very long run) aggregate
without the result accumulating per-instance data, and with no observers
attached records are never even built — the determinism matrix's
observable-only fast path.  ``run(collect_trace=False)`` suppresses the
:class:`~repro.core.trace.Trace` action log (``result.trace`` stays
empty); live data-phase events still fire, but such a result cannot
re-emit them through :func:`replay`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set, Tuple

from ..core.timebase import Time, ZERO
from ..core.trace import ChannelWrite, JobEnd, JobStart
from ..errors import RuntimeModelError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .executor import JobRecord, RuntimeResult
    from .metrics import KernelSpanStats, MissSummary

__all__ = [
    "ExecutionObserver",
    "MetricsObserver",
    "RecordsObserver",
    "RunMeta",
    "TraceObserver",
    "replay",
]


@dataclass(frozen=True)
class RunMeta:
    """Run-level milestone data, emitted once at ``on_run_start``."""

    network: str
    processors: int
    frames: int
    hyperperiod: Time


class ExecutionObserver:
    """Base observer: every hook is a no-op — override what you consume."""

    def on_run_start(self, meta: RunMeta) -> None:
        """The run's static shape, before any timing is resolved."""

    def on_overhead(self, frame: int, start: Time, end: Time) -> None:
        """A frame-arrival overhead window ``[start, end)`` (Section V-A)."""

    def on_record(self, record: "JobRecord") -> None:
        """One resolved job instance (including false server jobs)."""

    def on_job_data_start(
        self, process: str, k: int, frame: int, start: Time
    ) -> None:
        """Kernel span opens: job ``process[k]`` starts executing at *start*."""

    def on_job_data_end(
        self, process: str, k: int, frame: int, end: Time
    ) -> None:
        """Kernel span closes: job ``process[k]`` finished, end time *end*."""

    def on_channel_write(
        self, process: str, channel: str, value: Any, time: Time
    ) -> None:
        """Internal channel write ``x!c`` by the job executing at *time*."""

    def on_run_end(self, result: "RuntimeResult") -> None:
        """The assembled result, after timing (and data, unless skipped)."""


#: The inherited no-op data-phase hooks, used (like ``on_record`` in the
#: executor) to detect which observers actually consume data events — the
#: base-class no-ops must not force event construction on the fast path.
_DATA_HOOKS = (
    ("on_job_data_start", ExecutionObserver.on_job_data_start),
    ("on_job_data_end", ExecutionObserver.on_job_data_end),
    ("on_channel_write", ExecutionObserver.on_channel_write),
)


def _overrides(observer: ExecutionObserver, name: str, base) -> bool:
    """True when *observer* overrides hook *name* (subclass or instance attr)."""
    return getattr(getattr(observer, name), "__func__", None) is not base


def replay(result: "RuntimeResult", *observers: ExecutionObserver) -> None:
    """Re-emit a finished run's events through *observers*.

    Lets every event consumer work identically live (``run(observers=...)``)
    and post-hoc (on a stored :class:`RuntimeResult`).  Results produced
    with ``collect_records=False`` cannot be replayed — their empty record
    list would misreport every count as zero — so they are rejected here;
    attach the observers during the run instead.

    Data-phase events (``on_job_data_start/end``, ``on_channel_write``) are
    reconstructed from the stored :class:`~repro.core.trace.Trace` — its
    ``JobStart``/``ChannelWrite``/``JobEnd`` actions carry the exact live
    emission order — joined with the records for the span timestamps.  A
    ``records_only`` result replays no data events (the data phase never
    ran, so none were emitted live either).  A result whose trace was
    *suppressed* (``collect_trace=False``) also replays none — the
    timing-event stream (and every record-derived metric) stays fully
    usable, while data-derived aggregates refuse to report from the
    eventless replay (see
    :meth:`MetricsObserver.kernel_span_stats`); attach data consumers to
    ``run()`` to aggregate such runs live.
    """
    if not result.records_collected:
        raise RuntimeModelError(
            "cannot replay a result produced with collect_records=False — "
            "job records were not retained; attach observers to run() instead"
        )
    data_observers = [
        ob for ob in observers
        if any(_overrides(ob, name, base) for name, base in _DATA_HOOKS)
    ] if result.trace_collected else []
    meta = RunMeta(
        network=result.network_name,
        processors=result.processors,
        frames=result.frames,
        hyperperiod=result.hyperperiod,
    )
    for ob in observers:
        ob.on_run_start(meta)
    for frame, start, end in result.overhead_intervals:
        for ob in observers:
            ob.on_overhead(frame, start, end)
    for rec in result.records:
        for ob in observers:
            ob.on_record(rec)
    if data_observers and result.data_collected:
        record_of = {
            (r.process, r.global_k): r for r in result.records if not r.is_false
        }
        rec = None
        for act in result.trace:
            cls = act.__class__
            if cls is JobStart:
                rec = record_of[(act.process, act.k)]
                for ob in data_observers:
                    ob.on_job_data_start(act.process, act.k, rec.frame, rec.start)
            elif cls is ChannelWrite:
                for ob in data_observers:
                    ob.on_channel_write(act.process, act.channel, act.value, rec.start)
            elif cls is JobEnd:
                for ob in data_observers:
                    ob.on_job_data_end(act.process, act.k, rec.frame, rec.end)
    for ob in observers:
        ob.on_run_end(result)


class RecordsObserver(ExecutionObserver):
    """Accumulates the raw event streams (records, overheads, meta).

    The executor assembles its :class:`RuntimeResult` from exactly these
    streams; external users get the same accumulation for live runs.
    """

    def __init__(self) -> None:
        self.meta: Optional[RunMeta] = None
        self.records: List["JobRecord"] = []
        self.overhead_intervals: List[Tuple[int, Time, Time]] = []

    def on_run_start(self, meta: RunMeta) -> None:
        # Full reset so a reused observer holds exactly one run's streams.
        self.meta = meta
        self.records = []
        self.overhead_intervals = []

    def on_overhead(self, frame: int, start: Time, end: Time) -> None:
        self.overhead_intervals.append((frame, start, end))

    def on_record(self, record: "JobRecord") -> None:
        self.records.append(record)


class MetricsObserver(ExecutionObserver):
    """Streaming aggregation of the Section V metrics.

    Computes miss statistics, worst response times, per-processor busy time,
    makespan and per-frame makespans from the event stream alone — no stored
    record list — so long determinism/overload sweeps can aggregate without
    retaining per-instance data.

    Every aggregate costs exact-rational arithmetic *per record*, so the
    optional ones can be switched off at construction: scenario sweeps
    request only the metrics their table needs, and ``on_record`` fires
    hundreds of times per frame.  Disabled aggregates refuse to report
    (their accessors raise) instead of returning silent zeros.
    """

    def __init__(
        self,
        *,
        track_responses: bool = True,
        track_utilization: bool = True,
        track_frame_spans: bool = True,
    ) -> None:
        self._track_responses = track_responses
        self._track_utilization = track_utilization
        self._track_frame_spans = track_frame_spans
        self.meta: Optional[RunMeta] = None
        self.total_jobs = 0
        self.executed_jobs = 0
        self.false_jobs = 0
        self.missed_jobs = 0
        self.worst_lateness: Time = ZERO
        self.makespan: Time = ZERO
        self._busy: List[Time] = []
        self._frame_spans: List[Time] = []
        self._frame_bases: List[Time] = []
        self._responses: Dict[str, Time] = {}
        self._span_open: Dict[Tuple[str, int], Time] = {}
        self._span_count: Dict[str, int] = {}
        self._span_total: Dict[str, Time] = {}
        self._span_max: Dict[str, Time] = {}
        self._channel_writes: Dict[str, int] = {}
        self._data_events_unavailable = False

    def on_run_start(self, meta: RunMeta) -> None:
        # Full reset: one observer instance can be reused across runs
        # without mixing their statistics.
        self.meta = meta
        self.total_jobs = 0
        self.executed_jobs = 0
        self.false_jobs = 0
        self.missed_jobs = 0
        self.worst_lateness = ZERO
        self.makespan = ZERO
        self._busy = [ZERO] * meta.processors
        self._frame_spans = [ZERO] * meta.frames
        # Frame start instants, precomputed once: on_record fires per job
        # instance, and the ``hyperperiod * frame`` product is a Fraction
        # multiplication the hot path should not repeat 800 times a frame.
        self._frame_bases = (
            [meta.hyperperiod * f for f in range(meta.frames)]
            if self._track_frame_spans else []
        )
        self._responses = {}
        self._span_open = {}
        self._span_count = {}
        self._span_total = {}
        self._span_max = {}
        self._channel_writes = {}
        self._data_events_unavailable = False

    def on_record(self, record: "JobRecord") -> None:
        self.total_jobs += 1
        end = record.end
        # All records count toward the makespan (false jobs carry their
        # zero-length visibility instant), matching RuntimeResult.makespan().
        if end > self.makespan:
            self.makespan = end
        if record.is_false:
            self.false_jobs += 1
            return
        self.executed_jobs += 1
        if end > record.deadline:
            self.missed_jobs += 1
            lateness = end - record.deadline
            if lateness > self.worst_lateness:
                self.worst_lateness = lateness
        if self._track_utilization:
            self._busy[record.processor] += end - record.start
        if self._track_responses:
            response = end - record.release
            if response > self._responses.get(record.process, ZERO):
                self._responses[record.process] = response
        if self._track_frame_spans:
            frame = record.frame
            span = end - self._frame_bases[frame]
            if span > self._frame_spans[frame]:
                self._frame_spans[frame] = span

    # -- data-phase events ----------------------------------------------
    def on_job_data_start(
        self, process: str, k: int, frame: int, start: Time
    ) -> None:
        self._span_open[(process, k)] = start

    def on_job_data_end(self, process: str, k: int, frame: int, end: Time) -> None:
        start = self._span_open.pop((process, k))
        span = end - start
        self._span_count[process] = self._span_count.get(process, 0) + 1
        self._span_total[process] = self._span_total.get(process, ZERO) + span
        if span > self._span_max.get(process, ZERO):
            self._span_max[process] = span

    def on_channel_write(
        self, process: str, channel: str, value: Any, time: Time
    ) -> None:
        self._channel_writes[channel] = self._channel_writes.get(channel, 0) + 1

    def on_run_end(self, result: "RuntimeResult") -> None:
        # A replay of a trace-suppressed result emits no data events even
        # though the data phase ran; flag it so the data-derived accessors
        # refuse to misreport every span/write count as absent.  (A live
        # run with collect_trace=False still streams all data events, and
        # either way the flag is only raised when none arrived.)
        if (
            result.data_collected
            and not result.trace_collected
            and not self._span_count
            and not self._channel_writes
        ):
            self._data_events_unavailable = True

    # -- consumers ------------------------------------------------------
    def _require_run(self) -> None:
        if self.meta is None:
            raise RuntimeModelError(
                "metrics observer has not seen a run (no on_run_start event) "
                "— pass it to run(observers=[...]) or replay(result, ...)"
            )

    def miss_summary(self) -> "MissSummary":
        from .metrics import MissSummary

        self._require_run()
        return MissSummary(
            total_jobs=self.total_jobs,
            executed_jobs=self.executed_jobs,
            false_jobs=self.false_jobs,
            missed_jobs=self.missed_jobs,
            worst_lateness=self.worst_lateness,
            miss_ratio=(
                self.missed_jobs / self.executed_jobs if self.executed_jobs else 0.0
            ),
        )

    def _require_tracked(self, enabled: bool, what: str) -> None:
        if not enabled:
            raise RuntimeModelError(
                f"this MetricsObserver was constructed with {what}=False — "
                "the aggregate was not computed; construct the observer "
                "with it enabled"
            )

    def response_times(self) -> Dict[str, Time]:
        """Worst-case observed response time per process."""
        self._require_run()
        self._require_tracked(self._track_responses, "track_responses")
        return dict(self._responses)

    def processor_utilization(self) -> List[float]:
        """Busy fraction per processor over the simulated horizon."""
        return [float(u) for u in self.processor_utilization_exact()]

    def processor_utilization_exact(self) -> List[Time]:
        """Busy fraction per processor as exact rationals.

        Busy times and the horizon are both exact, so the fractions are
        too; the scenario sweeps report this form because their rows
        promise bit-identical, exactly-rational metrics across machines
        (:mod:`repro.experiment.sweep`).  :meth:`processor_utilization`
        is the float convenience view of the same values.
        """
        self._require_run()
        self._require_tracked(self._track_utilization, "track_utilization")
        horizon = self.meta.hyperperiod * self.meta.frames
        return [b / horizon for b in self._busy]

    def frame_makespans(self) -> List[Time]:
        """Per-frame completion time relative to the frame start."""
        self._require_run()
        self._require_tracked(self._track_frame_spans, "track_frame_spans")
        return list(self._frame_spans)

    def _require_data_events(self) -> None:
        if self._data_events_unavailable:
            raise RuntimeModelError(
                "this observer replayed a result produced with "
                "collect_trace=False — the data-phase events were not "
                "retained, so span/write aggregates would misreport as "
                "empty; attach the observer to run() instead"
            )

    def kernel_span_stats(self) -> Dict[str, "KernelSpanStats"]:
        """Per-process kernel-span statistics from the data-phase events.

        Empty when the run emitted no data events (``records_only=True``
        runs have no data phase).  Raises when this observer replayed a
        trace-suppressed result, whose data events cannot be reconstructed.
        """
        from .metrics import KernelSpanStats

        self._require_run()
        self._require_data_events()
        return {
            name: KernelSpanStats(
                jobs=count,
                total_busy=self._span_total[name],
                max_span=self._span_max[name],
                mean_span=self._span_total[name] / count,
            )
            for name, count in sorted(self._span_count.items())
        }

    def channel_write_counts(self) -> Dict[str, int]:
        """Number of internal channel writes observed, per channel."""
        self._require_run()
        self._require_data_events()
        return dict(self._channel_writes)


class TraceObserver(ExecutionObserver):
    """Waveform-shaped view of a run: busy intervals and pulse times.

    Collects, in exact rational time, per-processor and per-process busy
    intervals, deadline-miss pulse instants, runtime-overhead windows and —
    when the data phase runs — per-channel write pulse instants: everything
    a waveform backend (e.g. the VCD serialiser in :mod:`repro.io.vcd`)
    needs, without retaining ``JobRecord`` objects.
    """

    def __init__(self) -> None:
        self.meta: Optional[RunMeta] = None
        self.processes: Set[str] = set()
        self.processor_intervals: Dict[int, List[Tuple[Time, Time]]] = {}
        self.process_intervals: Dict[str, List[Tuple[Time, Time]]] = {}
        self.miss_times: List[Time] = []
        self.overheads: List[Tuple[Time, Time]] = []
        self.channel_write_times: Dict[str, List[Time]] = {}

    def on_run_start(self, meta: RunMeta) -> None:
        # Full reset so a reused observer holds exactly one run's waveform.
        self.meta = meta
        self.processes = set()
        self.processor_intervals = {}
        self.process_intervals = {}
        self.miss_times = []
        self.overheads = []
        self.channel_write_times = {}

    def on_overhead(self, frame: int, start: Time, end: Time) -> None:
        self.overheads.append((start, end))

    def on_record(self, record: "JobRecord") -> None:
        # False jobs still declare their process (a silent wire), exactly
        # like the record-list post-processing did.
        self.processes.add(record.process)
        if record.is_false or record.end == record.start:
            return
        span = (record.start, record.end)
        self.processor_intervals.setdefault(record.processor, []).append(span)
        self.process_intervals.setdefault(record.process, []).append(span)
        if record.end > record.deadline:
            self.miss_times.append(record.deadline)

    def on_channel_write(
        self, process: str, channel: str, value: Any, time: Time
    ) -> None:
        self.channel_write_times.setdefault(channel, []).append(time)
