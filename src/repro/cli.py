"""``python -m repro`` — run scenarios and sweeps from JSON configs.

The operational surface over the experiment layer, STOMP-style (the
related toolchain drives everything through one JSON-configurable entry
point).  Three subcommands:

``run <config.json>``
    Execute one scenario and print its metrics table as an
    ``fppn-sweep`` JSON document (a one-row sweep, so ``run`` output and
    ``sweep`` output diff uniformly).  ``--spans <path>`` additionally
    exports the run as an OTel-style span list
    (:class:`repro.runtime.telemetry.SpanObserver`).

``sweep <config.json>``
    Execute a scenario matrix and print the ``SweepResult`` JSON.
    ``--workers`` fans out across worker processes, ``--store`` attaches
    a durable SQLite checkpoint (resumable sweeps), ``--group-timeout``
    / ``--max-retries`` / ``--on-error`` map onto the fault-tolerance
    knobs of :func:`repro.experiment.run_sweep`, and ``--progress``
    renders live per-cell/per-group progress on stderr
    (:class:`repro.runtime.telemetry.ProgressObserver`).
    ``--server HOST:PORT`` routes the same config to a remote sweep
    server instead of executing locally — rows stream back over the
    wire bit-identically (pool sizing and the store then live
    server-side, so ``--workers``/``--store``/``--group-timeout`` are
    rejected).

``serve <config.json>``
    Start a sweep server (:class:`repro.service.SweepServer`): one
    shared warm pool plus an optional shared SQLite store, serving
    JSON-RPC sweep traffic until a client sends ``shutdown`` or
    Ctrl-C.  The config is an ``fppn-server`` document (all fields
    optional)::

        {
          "format": "fppn-server", "version": 1,
          "host": "127.0.0.1", "port": 7341,
          "workers": 2,
          "store": "sweeps.db",
          "group_timeout": null, "max_retries": 2,
          "max_cached_groups": 8, "max_cached_payloads": 64
        }

    ``--host``/``--port`` override the config; ``--ready-file PATH``
    writes ``host:port`` once the socket is bound (scripts and CI poll
    it instead of parsing stderr — essential with ``port: 0``).

``diff <a.json> <b.json>``
    Compare two result files (sweep tables or ``BENCH_*.json``
    snapshots) through :mod:`repro.analysis.compare` and exit nonzero
    past ``--tolerance`` — the CI perf-gate primitive.  Exit codes:
    0 within tolerance, 1 regression, 2 not comparable.

Config files are either a bare artifact — an ``fppn-scenario`` document
(``run``) or an ``fppn-matrix`` document (``sweep``) — or an
``fppn-config`` wrapper naming one of those plus run options::

    {
      "format": "fppn-config",
      "version": 1,
      "scenario": { ... fppn-scenario ... },   // or "matrix": {...}
      "metrics": ["executed_jobs", "makespan"],
      "faults": {"raise_at": [1]}              // optional, for drills
    }

Results go to stdout (or ``-o``); progress and diagnostics go to
stderr, so ``python -m repro run cfg.json | jq .`` just works.
Workloads must be registered names (the built-in apps register
``fig1`` / ``fft`` / ``fms`` / ``fms-40s`` on import) — scenarios
carrying bare code cannot come from JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Mapping, NoReturn, Optional, Sequence

from .errors import FPPNError

#: Ensures the built-in workload names resolve for scenarios loaded
#: from JSON before any run starts.
from . import apps as _apps  # noqa: F401

__all__ = ["main"]


def _fail(message: str) -> NoReturn:
    print(f"error: {message}", file=sys.stderr)
    raise SystemExit(2)


def _load_json(path: str) -> Any:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except OSError as exc:
        _fail(f"cannot read {path}: {exc}")
    except json.JSONDecodeError as exc:
        _fail(f"{path} is not valid JSON: {exc}")


def _parse_config(data: Any, path: str) -> Dict[str, Any]:
    """Normalise any accepted config shape to the fppn-config fields."""
    from .io.json_io import (
        FormatError,
        fault_plan_from_dict,
        matrix_from_dict,
        scenario_from_dict,
    )

    if not isinstance(data, Mapping):
        _fail(f"{path}: expected a JSON object, got {type(data).__name__}")
    fmt = data.get("format")
    try:
        if fmt == "fppn-scenario":
            return {"scenario": scenario_from_dict(data)}
        if fmt == "fppn-matrix":
            return {"matrix": matrix_from_dict(data)}
        if fmt == "fppn-config":
            out: Dict[str, Any] = {}
            if "scenario" in data:
                out["scenario"] = scenario_from_dict(data["scenario"])
            if "matrix" in data:
                out["matrix"] = matrix_from_dict(data["matrix"])
            if not out:
                _fail(f"{path}: fppn-config needs a 'scenario' or 'matrix'")
            if "metrics" in data:
                metrics = data["metrics"]
                if not isinstance(metrics, Sequence) or isinstance(
                    metrics, str
                ):
                    _fail(f"{path}: 'metrics' must be a list of names")
                out["metrics"] = tuple(metrics)
            if "faults" in data:
                out["faults"] = fault_plan_from_dict(data["faults"])
            return out
    except FormatError as exc:
        _fail(f"{path}: {exc}")
    except FPPNError as exc:
        _fail(f"{path}: {exc}")
    _fail(
        f"{path}: unrecognised config format {fmt!r} — expected "
        "fppn-config, fppn-scenario or fppn-matrix"
    )


def _emit(document: Mapping[str, Any], output: Optional[str]) -> None:
    text = json.dumps(document, indent=2, sort_keys=True) + "\n"
    if output is None or output == "-":
        sys.stdout.write(text)
    else:
        with open(output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {output}", file=sys.stderr)


def _progress_sinks(enabled: bool, total_cells: int, label: str):
    if not enabled:
        return None, None, None
    from .runtime.telemetry import ProgressObserver

    observer = ProgressObserver(total_cells=total_cells, label=label)
    return observer, observer.on_row, observer.on_event


def _cmd_run(args: argparse.Namespace) -> int:
    from .experiment import DEFAULT_METRICS, ScenarioMatrix, run_sweep
    from .io.json_io import save_json, spans_to_jsonable, sweep_result_to_dict

    config = _parse_config(_load_json(args.config), args.config)
    scenario = config.get("scenario")
    if scenario is None:
        _fail(
            f"{args.config}: 'run' needs a scenario config — use "
            "'sweep' for matrix configs"
        )
    metrics = config.get("metrics", DEFAULT_METRICS)
    matrix = ScenarioMatrix(scenario, {})

    span_observer = None
    observer_factory = None
    if args.spans is not None:
        from .runtime.telemetry import SpanObserver

        span_observer = SpanObserver()
        # One cell, one live run: the factory forces the serial path and
        # a live (non-store, non-lean-skipped) execution, which is what
        # span collection needs anyway.
        observer_factory = lambda cell: [span_observer]  # noqa: E731
    progress, on_row, on_progress = _progress_sinks(
        args.progress, len(matrix), "run"
    )

    try:
        result = run_sweep(
            matrix, metrics,
            observer_factory=observer_factory,
            on_error="raise",
            on_row=on_row, on_progress=on_progress,
        )
    except FPPNError as exc:
        _fail(str(exc))
    except Exception as exc:  # the scenario's own code may raise anything
        print(f"run failed: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    if progress is not None:
        progress.finish(result.stats)
    if span_observer is not None:
        save_json(spans_to_jsonable(span_observer.spans), args.spans)
        print(
            f"wrote {len(span_observer.spans)} span(s) to {args.spans}",
            file=sys.stderr,
        )
    _emit(sweep_result_to_dict(result), args.output)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .experiment import (
        DEFAULT_METRICS,
        ScenarioMatrix,
        SqliteSweepStore,
        run_sweep,
    )
    from .io.json_io import sweep_result_to_dict

    config = _parse_config(_load_json(args.config), args.config)
    matrix = config.get("matrix")
    if matrix is None:
        # A scenario-only config sweeps as a single-cell matrix, so one
        # config file can serve both subcommands.
        matrix = ScenarioMatrix(config["scenario"], {})
    metrics = config.get("metrics", DEFAULT_METRICS)
    progress, on_row, on_progress = _progress_sinks(
        args.progress, len(matrix), "sweep"
    )

    if args.server is not None:
        # Pool sizing and the checkpoint store are the server's to
        # configure; silently ignoring these flags would misreport what
        # actually ran.
        for name, given in (
            ("--workers", args.workers != 1),
            ("--store", args.store is not None),
            ("--group-timeout", args.group_timeout is not None),
        ):
            if given:
                _fail(
                    f"{name} is a server-side setting — configure it in "
                    "the fppn-server config, not together with --server"
                )
        return _sweep_remote(
            args, matrix, metrics, config, progress, on_row, on_progress
        )

    store = SqliteSweepStore(args.store) if args.store is not None else None
    try:
        result = run_sweep(
            matrix, metrics,
            workers=args.workers,
            store=store,
            faults=config.get("faults"),
            on_error=args.on_error,
            group_timeout=args.group_timeout,
            max_retries=args.max_retries,
            on_row=on_row, on_progress=on_progress,
        )
    except FPPNError as exc:
        _fail(str(exc))
    except Exception as exc:
        print(f"sweep failed: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    if progress is not None:
        progress.finish(result.stats)
    _emit(sweep_result_to_dict(result), args.output)
    return 0


def _sweep_remote(
    args: argparse.Namespace,
    matrix: Any,
    metrics: Any,
    config: Mapping[str, Any],
    progress: Any,
    on_row: Any,
    on_progress: Any,
) -> int:
    from .errors import SweepError
    from .io.json_io import sweep_result_to_dict
    from .service import ServiceClient

    try:
        with ServiceClient.from_address(args.server) as client:
            result = client.run_sweep(
                matrix, metrics,
                faults=config.get("faults"),
                on_error=args.on_error,
                on_row=on_row, on_progress=on_progress,
            )
    except SweepError as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 1
    except FPPNError as exc:
        _fail(str(exc))
    if progress is not None:
        progress.finish(result.stats)
    _emit(sweep_result_to_dict(result), args.output)
    return 0


def _parse_server_config(data: Any, path: str) -> Dict[str, Any]:
    if not isinstance(data, Mapping):
        _fail(f"{path}: expected a JSON object, got {type(data).__name__}")
    fmt = data.get("format")
    if fmt != "fppn-server":
        _fail(
            f"{path}: unrecognised config format {fmt!r} — 'serve' "
            "expects an fppn-server document"
        )
    known = {
        "format", "version", "host", "port", "workers", "store",
        "group_timeout", "max_retries", "max_cached_groups",
        "max_cached_payloads",
    }
    unknown = sorted(set(data) - known)
    if unknown:
        _fail(f"{path}: unknown fppn-server field(s): {', '.join(unknown)}")
    return dict(data)


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import SweepServer

    config = _parse_server_config(_load_json(args.config), args.config)
    host = args.host if args.host is not None else config.get(
        "host", "127.0.0.1"
    )
    port = args.port if args.port is not None else int(config.get("port", 0))

    try:
        server = SweepServer(
            host, port,
            workers=int(config.get("workers", 2)),
            store=config.get("store"),
            group_timeout=config.get("group_timeout"),
            max_retries=int(config.get("max_retries", 2)),
            max_cached_groups=int(config.get("max_cached_groups", 8)),
            max_cached_payloads=int(config.get("max_cached_payloads", 64)),
        )
        bound_host, bound_port = server.start()
    except FPPNError as exc:
        _fail(str(exc))
    print(f"serving sweeps on {bound_host}:{bound_port}", file=sys.stderr)
    if args.ready_file is not None:
        with open(args.ready_file, "w", encoding="utf-8") as fh:
            fh.write(f"{bound_host}:{bound_port}\n")
    try:
        server.wait()
    except KeyboardInterrupt:
        print("interrupted — shutting down", file=sys.stderr)
    finally:
        server.close()
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from .analysis.compare import compare_files

    comparison = compare_files(args.a, args.b, tolerance=args.tolerance)
    for warning in comparison.warnings:
        print(warning, file=sys.stderr)
    if comparison.refusal is not None:
        print(comparison.refusal, file=sys.stderr)
        return comparison.exit_code
    for line in comparison.lines:
        print(line)
    if comparison.regressions:
        print(
            f"\n{len(comparison.regressions)} regression(s) past "
            f"tolerance {args.tolerance:.0%}:",
            file=sys.stderr,
        )
        for line in comparison.regressions:
            print(f"  ! {line}", file=sys.stderr)
    return comparison.exit_code


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__.splitlines()[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="execute one scenario from a JSON config"
    )
    run.add_argument("config", help="fppn-scenario or fppn-config JSON file")
    run.add_argument(
        "-o", "--output", default=None,
        help="write the result JSON here instead of stdout",
    )
    run.add_argument(
        "--spans", default=None, metavar="PATH",
        help="also export the run as an OTel-style JSON span list",
    )
    run.add_argument(
        "--progress", action="store_true",
        help="render live progress on stderr",
    )
    run.set_defaults(func=_cmd_run)

    sweep = sub.add_parser(
        "sweep", help="execute a scenario matrix from a JSON config"
    )
    sweep.add_argument("config", help="fppn-matrix or fppn-config JSON file")
    sweep.add_argument(
        "-o", "--output", default=None,
        help="write the SweepResult JSON here instead of stdout",
    )
    sweep.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = serial in-process, the default)",
    )
    sweep.add_argument(
        "--store", default=None, metavar="PATH",
        help="SQLite checkpoint store — completed cells survive reruns",
    )
    sweep.add_argument(
        "--group-timeout", type=float, default=None, metavar="SECONDS",
        help="per-group deadline for the parallel supervisor",
    )
    sweep.add_argument(
        "--max-retries", type=int, default=2,
        help="group redispatches after worker crash/timeout (default 2)",
    )
    sweep.add_argument(
        "--on-error", choices=("capture", "raise"), default="capture",
        help="failing cells become error rows (capture, default) or "
             "abort the sweep (raise)",
    )
    sweep.add_argument(
        "--progress", action="store_true",
        help="render live per-cell/per-group progress on stderr",
    )
    sweep.add_argument(
        "--server", default=None, metavar="HOST:PORT",
        help="route the sweep to a remote sweep server instead of "
             "executing locally (pool/store flags then live server-side)",
    )
    sweep.set_defaults(func=_cmd_sweep)

    serve = sub.add_parser(
        "serve", help="serve sweep traffic over TCP from a shared warm pool"
    )
    serve.add_argument("config", help="fppn-server JSON config file")
    serve.add_argument(
        "--host", default=None,
        help="bind address (overrides the config; default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=None,
        help="bind port (overrides the config; 0 = ephemeral)",
    )
    serve.add_argument(
        "--ready-file", default=None, metavar="PATH",
        help="write HOST:PORT here once the socket is bound",
    )
    serve.set_defaults(func=_cmd_serve)

    diff = sub.add_parser(
        "diff", help="compare two result files (sweep tables or "
                     "BENCH_*.json snapshots)"
    )
    diff.add_argument("a", help="baseline result file")
    diff.add_argument("b", help="candidate result file")
    diff.add_argument(
        "--tolerance", type=float, default=0.0, metavar="FRACTION",
        help="relative drift allowed before exit 1 (default 0.0 — exact)",
    )
    diff.set_defaults(func=_cmd_diff)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
