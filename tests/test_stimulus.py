"""Tests for stimuli: sample normalisation, validation, random synthesis."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

import random as pyrandom

from repro.core import Stimulus
from repro.core.events import SporadicGenerator
from repro.core.invocations import random_sporadic_trace, random_stimulus
from repro.errors import EventError


class TestNormalisation:
    def test_sequence_becomes_one_based(self):
        s = Stimulus(input_samples={"i": ["a", "b"]})
        assert s.samples_for("i") == {1: "a", 2: "b"}

    def test_dict_kept(self):
        s = Stimulus(input_samples={"i": {3: "x"}})
        assert s.samples_for("i") == {3: "x"}

    def test_zero_index_rejected(self):
        with pytest.raises(EventError, match="1-based"):
            Stimulus(input_samples={"i": {0: "x"}})

    def test_arrivals_normalised_to_fractions(self):
        s = Stimulus(sporadic_arrivals={"p": [0.5]})
        assert s.arrivals_for("p") == [Fraction(1, 2)]

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            Stimulus(sporadic_arrivals={"p": [-1]})

    def test_missing_process_returns_empty(self):
        assert Stimulus().arrivals_for("ghost") == []


class TestValidation:
    def test_unknown_input_rejected(self, pair_network):
        with pytest.raises(EventError, match="unknown external input"):
            Stimulus(input_samples={"ghost": [1]}).validate(pair_network)

    def test_unknown_process_rejected(self, pair_network):
        with pytest.raises(EventError, match="unknown process"):
            Stimulus(sporadic_arrivals={"ghost": [1]}).validate(pair_network)

    def test_periodic_process_cannot_have_arrivals(self, pair_network):
        with pytest.raises(EventError, match="not sporadic"):
            Stimulus(sporadic_arrivals={"producer": [1]}).validate(pair_network)

    def test_sporadic_constraint_checked(self, sporadic_network):
        bad = Stimulus(sporadic_arrivals={"config": [0, 1, 2]})  # 3 in 300
        with pytest.raises(EventError, match="sporadic constraint"):
            bad.validate(sporadic_network)

    def test_valid_stimulus_passes(self, sporadic_network):
        Stimulus(
            input_samples={"cmd": [1]},
            sporadic_arrivals={"config": [10, 20]},
        ).validate(sporadic_network)


class TestTruncated:
    def test_arrivals_cut(self):
        s = Stimulus(sporadic_arrivals={"p": [10, 20, 30]})
        assert s.truncated(20).arrivals_for("p") == [10]

    def test_samples_untouched(self):
        s = Stimulus(input_samples={"i": ["a", "b", "c"]})
        assert s.truncated(0).samples_for("i") == {1: "a", 2: "b", 3: "c"}

    def test_original_unmodified(self):
        s = Stimulus(sporadic_arrivals={"p": [10, 20]})
        s.truncated(15)
        assert s.arrivals_for("p") == [10, 20]


class TestRandomTraces:
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=4),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_generated_traces_always_valid(self, seed, burst, intensity):
        gen = SporadicGenerator(250, 500, burst=burst)
        rng = pyrandom.Random(seed)
        trace = random_sporadic_trace(gen, 3000, rng, intensity)
        # validate_trace re-raises on violation; reaching here means valid.
        assert all(0 <= t < 3000 for t in trace)

    def test_reproducible_given_same_rng_state(self):
        gen = SporadicGenerator(100, 200, burst=2)
        t1 = random_sporadic_trace(gen, 1000, pyrandom.Random(5))
        t2 = random_sporadic_trace(gen, 1000, pyrandom.Random(5))
        assert t1 == t2

    def test_zero_intensity_empty(self):
        gen = SporadicGenerator(100, 200)
        assert random_sporadic_trace(gen, 1000, pyrandom.Random(0), 0.0) == []

    def test_intensity_validated(self):
        gen = SporadicGenerator(100, 200)
        with pytest.raises(ValueError):
            random_sporadic_trace(gen, 1000, pyrandom.Random(0), 1.5)


class TestRandomStimulus:
    def test_covers_all_sporadics_and_inputs(self, sporadic_network):
        stim = random_stimulus(sporadic_network, 1000, seed=1)
        stim.validate(sporadic_network)
        assert "config" in stim.sporadic_arrivals
        assert "cmd" in stim.input_samples

    def test_reproducible(self, sporadic_network):
        a = random_stimulus(sporadic_network, 1000, seed=3)
        b = random_stimulus(sporadic_network, 1000, seed=3)
        assert a.sporadic_arrivals == b.sporadic_arrivals
        assert a.input_samples == b.input_samples

    def test_seed_changes_output(self, sporadic_network):
        a = random_stimulus(sporadic_network, 1000, seed=3)
        b = random_stimulus(sporadic_network, 1000, seed=4)
        assert (
            a.sporadic_arrivals != b.sporadic_arrivals
            or a.input_samples != b.input_samples
        )

    def test_custom_sample_value(self, sporadic_network):
        stim = random_stimulus(
            sporadic_network, 1000, seed=0,
            sample_value=lambda ch, k, rng: f"{ch}:{k}",
        )
        samples = stim.samples_for("cmd")
        assert all(v == f"cmd:{k}" for k, v in samples.items())
