"""JSON-dict interchange for task graphs, schedules and network topologies.

The authors' toolchain [10] passes artifacts between a compiler, a
scheduler and a runtime as files; this module provides the equivalent
interchange layer so the compile-time flow can be split across tools or
stored next to experiment results:

* task graphs and static schedules round-trip **losslessly** (rational
  times are serialised as ``"num/den"`` strings);
* networks are serialised **structurally** (processes, generators,
  channels, priorities, external channels).  Behaviours are code, so
  deserialisation takes a *kernel registry* mapping process names to
  kernels — unknown names get no-op kernels, which is sufficient for every
  scheduling-side use;
* **scenarios** (:class:`repro.experiment.Scenario`) round-trip losslessly
  when their workload is a registered name: stimuli are serialised
  structurally with a small tagged value encoding (rationals, complex
  numbers, tuples) so even the FFT workload's complex sample vectors
  survive the trip;
* **sweep results** (:class:`repro.experiment.SweepResult`) serialise
  their axes, rows and stage-reuse statistics, so sweep tables can be
  diffed across commits and machines.
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any, Callable, Dict, List, Mapping, Optional

from ..core.channels import ChannelKind
from ..core.invocations import Stimulus
from ..core.network import Network
from ..core.platform import Platform, ProcessorClass
from ..core.process import JobContext
from ..core.timebase import Time, as_time
from ..errors import FPPNError
from ..runtime.overheads import OverheadModel
from ..taskgraph.graph import TaskGraph
from ..taskgraph.jobs import Job
from ..scheduling.schedule import ScheduledJob, StaticSchedule
from ..experiment.faults import FaultPlan
from ..experiment.scenario import Scenario
from ..experiment.sweep import (
    ScenarioMatrix,
    SweepCellError,
    SweepResult,
    SweepRow,
    SweepStats,
)

FORMAT_VERSION = 1


class FormatError(FPPNError):
    """A serialized artifact is malformed or has an unsupported version."""


def _time_out(t: Optional[Time]) -> Optional[str]:
    if t is None:
        return None
    return f"{t.numerator}/{t.denominator}"


def _time_in(value: Any, what: str) -> Time:
    try:
        return as_time(value)
    except (TypeError, ValueError) as exc:
        raise FormatError(f"bad time value for {what}: {value!r}") from exc


# ---------------------------------------------------------------------------
# platforms
# ---------------------------------------------------------------------------
def platform_to_jsonable(platform: Platform) -> List[List[Any]]:
    """Ordered ``[name, speed, count]`` rows (lossless, rational speeds)."""
    return [
        [cls.name, _time_out(cls.speed), count]
        for cls, count in platform.entries
    ]


def platform_from_jsonable(data: Any, what: str = "platform") -> Platform:
    """Inverse of :func:`platform_to_jsonable`."""
    if not isinstance(data, list) or not data:
        raise FormatError(f"bad {what}: expected a non-empty list of rows")
    entries = []
    for row in data:
        if not isinstance(row, (list, tuple)) or len(row) != 3:
            raise FormatError(f"bad {what} row {row!r}")
        name, speed, count = row
        entries.append(
            (
                ProcessorClass(name, _time_in(speed, f"{what} speed")),
                int(count),
            )
        )
    return Platform(tuple(entries))


def _default_platform(platform: Platform, processors: int) -> bool:
    """True for the implicit homogeneous platform ``processors`` implies.

    Such platforms are *omitted* from encodings: pre-platform documents
    decode unchanged and re-encode byte-identically.
    """
    return platform == Platform.homogeneous(processors)


# ---------------------------------------------------------------------------
# task graphs
# ---------------------------------------------------------------------------
def task_graph_to_dict(graph: TaskGraph) -> Dict[str, Any]:
    """Lossless dict form of a task graph.

    Per-class WCET tables (``wcet_by_class``) are emitted only on jobs
    that carry one, so homogeneous graphs keep their exact pre-platform
    byte layout.
    """
    return {
        "format": "fppn-taskgraph",
        "version": FORMAT_VERSION,
        "hyperperiod": _time_out(graph.hyperperiod),
        "jobs": [
            {
                "process": j.process,
                "k": j.k,
                "arrival": _time_out(j.arrival),
                "deadline": _time_out(j.deadline),
                "wcet": _time_out(j.wcet),
                "is_server": j.is_server,
                "subset_index": j.subset_index,
                "slot": j.slot,
                **(
                    {
                        "wcet_by_class": [
                            [name, _time_out(v)] for name, v in j.wcet_by_class
                        ]
                    }
                    if j.wcet_by_class is not None
                    else {}
                ),
            }
            for j in graph.jobs
        ],
        "edges": [list(e) for e in graph.edges()],
    }


def task_graph_from_dict(data: Mapping[str, Any]) -> TaskGraph:
    """Inverse of :func:`task_graph_to_dict`."""
    _check_header(data, "fppn-taskgraph")
    jobs = []
    for i, row in enumerate(data.get("jobs", [])):
        table = row.get("wcet_by_class")
        try:
            jobs.append(
                Job(
                    process=row["process"],
                    k=int(row["k"]),
                    arrival=_time_in(row["arrival"], f"job {i} arrival"),
                    deadline=_time_in(row["deadline"], f"job {i} deadline"),
                    wcet=_time_in(row["wcet"], f"job {i} wcet"),
                    is_server=bool(row.get("is_server", False)),
                    subset_index=row.get("subset_index"),
                    slot=row.get("slot"),
                    wcet_by_class=(
                        None if table is None else tuple(
                            (name, _time_in(v, f"job {i} wcet of {name!r}"))
                            for name, v in table
                        )
                    ),
                )
            )
        except KeyError as exc:
            raise FormatError(f"job {i} missing field {exc}") from exc
    hyper = data.get("hyperperiod")
    edges = [tuple(e) for e in data.get("edges", [])]
    return TaskGraph(
        jobs, edges,
        None if hyper is None else _time_in(hyper, "hyperperiod"),
    )


# ---------------------------------------------------------------------------
# schedules
# ---------------------------------------------------------------------------
def schedule_to_dict(schedule: StaticSchedule) -> Dict[str, Any]:
    """Lossless dict form of a static schedule (references jobs by name).

    The platform is emitted only when it is *not* the implicit homogeneous
    one the processor count already describes — classic schedules keep
    their exact pre-platform byte layout.
    """
    return {
        "format": "fppn-schedule",
        "version": FORMAT_VERSION,
        "processors": schedule.processors,
        **(
            {"platform": platform_to_jsonable(schedule.platform)}
            if not _default_platform(schedule.platform, schedule.processors)
            else {}
        ),
        "graph": task_graph_to_dict(schedule.graph),
        "entries": [
            {
                "job": schedule.graph.jobs[e.job_index].name,
                "processor": e.processor,
                "start": _time_out(e.start),
            }
            for e in schedule.entries
        ],
    }


def schedule_from_dict(data: Mapping[str, Any]) -> StaticSchedule:
    """Inverse of :func:`schedule_to_dict`."""
    _check_header(data, "fppn-schedule")
    graph = task_graph_from_dict(data["graph"])
    entries = []
    for row in data.get("entries", []):
        entries.append(
            ScheduledJob(
                graph.index_of(row["job"]),
                int(row["processor"]),
                _time_in(row["start"], f"start of {row['job']}"),
            )
        )
    platform = data.get("platform")
    target = (
        int(data["processors"]) if platform is None
        else platform_from_jsonable(platform, "schedule platform")
    )
    return StaticSchedule(graph, target, entries)


# ---------------------------------------------------------------------------
# networks (structural)
# ---------------------------------------------------------------------------
def network_to_dict(network: Network) -> Dict[str, Any]:
    """Structural dict form of a network (behaviours are not serialised)."""
    processes = []
    for name, proc in network.processes.items():
        gen = proc.generator
        processes.append(
            {
                "name": name,
                "sporadic": proc.is_sporadic,
                "period": _time_out(gen.period),
                "deadline": _time_out(gen.deadline),
                "burst": gen.burst,
                "offset": _time_out(getattr(gen, "offset", Fraction(0)))
                if not proc.is_sporadic else None,
            }
        )
    return {
        "format": "fppn-network",
        "version": FORMAT_VERSION,
        "name": network.name,
        "processes": processes,
        "channels": [
            {
                "name": c.name,
                "kind": c.kind.value,
                "writer": c.writer,
                "reader": c.reader,
            }
            for c in network.channels.values()
        ],
        "priorities": sorted(list(p) for p in network.priorities),
        "external_inputs": [
            {"name": n, "owner": s.owner} for n, s in network.external_inputs.items()
        ],
        "external_outputs": [
            {"name": n, "owner": s.owner} for n, s in network.external_outputs.items()
        ],
    }


KernelRegistry = Mapping[str, Callable[[JobContext], None]]


def network_from_dict(
    data: Mapping[str, Any],
    kernels: Optional[KernelRegistry] = None,
) -> Network:
    """Rebuild a network from its structural dict.

    *kernels* maps process names to kernel callables; processes without an
    entry get a no-op kernel (adequate for derivation/scheduling, which
    never execute behaviours).
    """
    _check_header(data, "fppn-network")
    kernels = kernels or {}
    net = Network(data.get("name", "network"))
    for row in data.get("processes", []):
        name = row["name"]
        kernel = kernels.get(name)
        if row.get("sporadic"):
            net.add_sporadic(
                name,
                min_period=_time_in(row["period"], f"{name} period"),
                deadline=_time_in(row["deadline"], f"{name} deadline"),
                burst=int(row.get("burst", 1)),
                kernel=kernel,
            )
        else:
            net.add_periodic(
                name,
                period=_time_in(row["period"], f"{name} period"),
                deadline=_time_in(row["deadline"], f"{name} deadline"),
                burst=int(row.get("burst", 1)),
                offset=_time_in(row.get("offset") or 0, f"{name} offset"),
                kernel=kernel,
            )
    for row in data.get("channels", []):
        net.connect(
            row["writer"], row["reader"], row["name"],
            kind=ChannelKind(row["kind"]),
        )
    for hi, lo in data.get("priorities", []):
        net.add_priority(hi, lo)
    for row in data.get("external_inputs", []):
        net.add_external_input(row["owner"], row["name"])
    for row in data.get("external_outputs", []):
        net.add_external_output(row["owner"], row["name"])
    return net


# ---------------------------------------------------------------------------
# tagged values (stimulus samples, sweep cells): JSON-representable forms of
# the Python values experiments actually carry — rationals, complex numbers,
# tuples.  Scalars pass through; anything else is rejected loudly instead of
# being silently stringified.
# ---------------------------------------------------------------------------
def value_to_jsonable(value: Any) -> Any:
    """Encode a Python value into the tagged JSON form (inverse below)."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, Fraction):  # includes Time
        return {"$frac": f"{value.numerator}/{value.denominator}"}
    if isinstance(value, float):
        return value
    if isinstance(value, complex):
        return {"$complex": [value.real, value.imag]}
    if isinstance(value, tuple):
        return {"$tuple": [value_to_jsonable(v) for v in value]}
    if isinstance(value, list):
        return [value_to_jsonable(v) for v in value]
    if isinstance(value, Platform):
        return {"$platform": platform_to_jsonable(value)}
    if isinstance(value, OverheadModel):
        return {
            "$overheads": [
                _time_out(value.first_frame_arrival),
                _time_out(value.steady_frame_arrival),
                _time_out(value.per_job),
            ]
        }
    if isinstance(value, Mapping):
        return {
            "$map": [
                [value_to_jsonable(k), value_to_jsonable(v)]
                for k, v in value.items()
            ]
        }
    raise FormatError(
        f"value {value!r} of type {type(value).__name__} is not "
        "JSON-serialisable — supported: scalars, Fraction, complex, "
        "tuple/list, mappings, Platform, OverheadModel"
    )


def value_from_jsonable(data: Any) -> Any:
    """Inverse of :func:`value_to_jsonable`."""
    if isinstance(data, list):
        return [value_from_jsonable(v) for v in data]
    if isinstance(data, dict):
        if len(data) == 1:
            (tag, payload), = data.items()
            if tag == "$frac":
                return _time_in(payload, "tagged rational")
            if tag == "$complex":
                return complex(payload[0], payload[1])
            if tag == "$tuple":
                return tuple(value_from_jsonable(v) for v in payload)
            if tag == "$platform":
                return platform_from_jsonable(payload, "tagged platform")
            if tag == "$overheads":
                return OverheadModel(
                    _time_in(payload[0], "overheads.first_frame_arrival"),
                    _time_in(payload[1], "overheads.steady_frame_arrival"),
                    _time_in(payload[2], "overheads.per_job"),
                )
            if tag == "$map":
                return {
                    value_from_jsonable(k): value_from_jsonable(v)
                    for k, v in payload
                }
        raise FormatError(f"unrecognised tagged value {data!r}")
    return data


# ---------------------------------------------------------------------------
# stimuli (structural: sample maps + sporadic arrival traces)
# ---------------------------------------------------------------------------
def stimulus_to_dict(stimulus: Stimulus) -> Dict[str, Any]:
    """Lossless dict form of a stimulus (tagged values, rational times)."""
    return {
        "input_samples": {
            name: value_to_jsonable(samples)
            for name, samples in sorted(stimulus.input_samples.items())
        },
        "sporadic_arrivals": {
            name: [_time_out(t) for t in times]
            for name, times in sorted(stimulus.sporadic_arrivals.items())
        },
    }


def stimulus_from_dict(data: Mapping[str, Any]) -> Stimulus:
    """Inverse of :func:`stimulus_to_dict`."""
    return Stimulus(
        input_samples={
            name: value_from_jsonable(samples)
            for name, samples in data.get("input_samples", {}).items()
        },
        sporadic_arrivals={
            name: [_time_in(t, f"arrival of {name!r}") for t in times]
            for name, times in data.get("sporadic_arrivals", {}).items()
        },
    )


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------
def scenario_to_dict(scenario: Scenario) -> Dict[str, Any]:
    """Lossless dict form of a scenario.

    Requires a *registered* workload name (bare factory callables are
    code, not data) and a callable-free WCET map.
    """
    if not isinstance(scenario.workload, str):
        raise FormatError(
            "only scenarios with a registered workload name serialise — "
            "register the factory with repro.experiment.register_workload"
        )
    wcet = scenario.wcet
    if isinstance(wcet, tuple):
        for name, value in wcet:
            if callable(value):
                raise FormatError(
                    f"wcet of {name!r} is a callable — per-job WCET models "
                    "do not serialise"
                )
        # Per-class tables encode as [name, time] rows; scalars keep the
        # plain "num/den" form so pre-platform documents stay byte-stable.
        wcet_out: Any = {
            name: (
                [[n, _time_out(v)] for n, v in value]
                if isinstance(value, tuple) else _time_out(value)
            )
            for name, value in wcet
        }
    else:
        wcet_out = _time_out(wcet)
    return {
        "format": "fppn-scenario",
        "version": FORMAT_VERSION,
        "workload": scenario.workload,
        "wcet": wcet_out,
        "processors": scenario.processors,
        "n_frames": scenario.n_frames,
        "horizon": _time_out(scenario.horizon),
        "heuristics": (
            None if scenario.heuristics is None else list(scenario.heuristics)
        ),
        "execution_time": (
            None if scenario.execution_time is None
            else {name: _time_out(v) for name, v in scenario.execution_time}
        ),
        "jitter_seed": scenario.jitter_seed,
        "jitter_low": scenario.jitter_low,
        "overheads": value_to_jsonable(scenario.overheads),
        "stimulus": (
            None if scenario.stimulus is None
            else stimulus_to_dict(scenario.stimulus)
        ),
        "records_only": scenario.records_only,
        "collect_records": scenario.collect_records,
        "collect_trace": scenario.collect_trace,
        "label": scenario.label,
        # Omitted when unset: pre-platform scenario documents (and their
        # content hashes) stay byte-identical.
        **(
            {"platform": platform_to_jsonable(scenario.platform)}
            if scenario.platform is not None
            else {}
        ),
    }


def scenario_from_dict(data: Mapping[str, Any]) -> Scenario:
    """Inverse of :func:`scenario_to_dict`."""
    _check_header(data, "fppn-scenario")
    wcet = data["wcet"]
    if isinstance(wcet, Mapping):
        wcet = {
            name: (
                tuple(
                    (n, _time_in(t, f"wcet of {name!r} on {n!r}"))
                    for n, t in v
                )
                if isinstance(v, list)
                else _time_in(v, f"wcet of {name!r}")
            )
            for name, v in wcet.items()
        }
    else:
        wcet = _time_in(wcet, "wcet")
    execution_time = data.get("execution_time")
    if execution_time is not None:
        execution_time = {
            name: _time_in(v, f"execution time of {name!r}")
            for name, v in execution_time.items()
        }
    horizon = data.get("horizon")
    stimulus = data.get("stimulus")
    heuristics = data.get("heuristics")
    platform = data.get("platform")
    return Scenario(
        workload=data["workload"],
        wcet=wcet,
        processors=int(data["processors"]),
        n_frames=int(data["n_frames"]),
        horizon=None if horizon is None else _time_in(horizon, "horizon"),
        heuristics=None if heuristics is None else tuple(heuristics),
        execution_time=execution_time,
        jitter_seed=data.get("jitter_seed"),
        jitter_low=float(data.get("jitter_low", 0.5)),
        overheads=value_from_jsonable(data["overheads"]),
        stimulus=None if stimulus is None else stimulus_from_dict(stimulus),
        records_only=bool(data.get("records_only", False)),
        collect_records=bool(data.get("collect_records", True)),
        collect_trace=bool(data.get("collect_trace", True)),
        label=data.get("label"),
        platform=(
            None if platform is None
            else platform_from_jsonable(platform, "scenario platform")
        ),
    )


# ---------------------------------------------------------------------------
# scenario matrices
# ---------------------------------------------------------------------------
def matrix_to_dict(matrix: "ScenarioMatrix") -> Dict[str, Any]:
    """Lossless dict form of a scenario matrix (base scenario + axes).

    Axis values use the tagged value encoding, so rational WCET axes,
    overhead-model axes and stimulus-free scalar axes all survive; the
    base scenario obeys :func:`scenario_to_dict`'s registered-workload
    rule.  This is the ``sweep`` config the CLI consumes.
    """
    return {
        "format": "fppn-matrix",
        "version": FORMAT_VERSION,
        "base": scenario_to_dict(matrix.base),
        "axes": {
            name: [value_to_jsonable(v) for v in values]
            for name, values in matrix.axes.items()
        },
    }


def matrix_from_dict(data: Mapping[str, Any]) -> "ScenarioMatrix":
    """Inverse of :func:`matrix_to_dict`."""
    _check_header(data, "fppn-matrix")
    return ScenarioMatrix(
        scenario_from_dict(data["base"]),
        {
            name: [value_from_jsonable(v) for v in values]
            for name, values in data.get("axes", {}).items()
        },
    )


# ---------------------------------------------------------------------------
# fault plans
# ---------------------------------------------------------------------------
def fault_plan_to_dict(plan: "FaultPlan") -> Dict[str, Any]:
    """Dict form of a fault plan (normalised index tuples, as lists)."""
    return {
        "raise_at": list(plan.raise_at),
        "kill_at": [list(item) for item in plan.kill_at],
        "delay_at": [list(item) for item in plan.delay_at],
        "interrupt_at": list(plan.interrupt_at),
    }


def fault_plan_from_dict(data: Mapping[str, Any]) -> "FaultPlan":
    """Inverse of :func:`fault_plan_to_dict` (missing fields stay empty)."""
    return FaultPlan(
        raise_at=tuple(data.get("raise_at", ())),
        kill_at=tuple(tuple(item) for item in data.get("kill_at", ())),
        delay_at=tuple(tuple(item) for item in data.get("delay_at", ())),
        interrupt_at=tuple(data.get("interrupt_at", ())),
    )


# ---------------------------------------------------------------------------
# telemetry spans
# ---------------------------------------------------------------------------
def spans_to_jsonable(spans: Any) -> Dict[str, Any]:
    """OTel-style JSON document for a span list.

    Spans are duck-typed (``name`` / ``span_id`` / ``parent_id`` /
    ``kind`` / ``start`` / ``end`` / ``attributes`` attributes —
    :class:`repro.runtime.telemetry.Span` is the producer) so this
    module does not import the telemetry layer.  Timestamps and
    attribute values use the tagged value encoding: span intervals stay
    exact rationals, the library's invariant for every time stamp.
    """
    return {
        "format": "fppn-spans",
        "version": FORMAT_VERSION,
        "spans": [
            {
                "name": span.name,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "kind": span.kind,
                "start": value_to_jsonable(span.start),
                "end": (
                    None if span.end is None else value_to_jsonable(span.end)
                ),
                "attributes": {
                    name: value_to_jsonable(v)
                    for name, v in span.attributes.items()
                },
            }
            for span in spans
        ],
    }


# ---------------------------------------------------------------------------
# sweep results
# ---------------------------------------------------------------------------
def sweep_result_to_dict(result: SweepResult) -> Dict[str, Any]:
    """Dict form of a sweep table (axes, rows, stage-reuse stats).

    Cell axis values and metric values use the tagged value encoding, so
    rational metrics (makespans, latenesses) survive losslessly.  Retained
    :class:`RuntimeResult` objects (``keep_results=True`` sweeps) are not
    serialised — rows carry data, not simulations.
    """
    return {
        "format": "fppn-sweep",
        "version": FORMAT_VERSION,
        "axes": {
            name: [value_to_jsonable(v) for v in values]
            for name, values in result.axes.items()
        },
        "metrics": list(result.metrics),
        "rows": [
            {
                "cell": {
                    name: value_to_jsonable(v) for name, v in row.cell.items()
                },
                "metrics": {
                    name: value_to_jsonable(v)
                    for name, v in row.metrics.items()
                },
            }
            for row in result.rows
        ],
        # Failure capture travels with the table: failed rows have no
        # metrics, their error record instead.  Omitted entirely when the
        # sweep was clean, so clean payloads are byte-stable across
        # library versions.
        **(
            {
                "failed_rows": [
                    {
                        "cell": {
                            name: value_to_jsonable(v)
                            for name, v in row.cell.items()
                        },
                        "error": {
                            "type": row.error.error_type,
                            "message": row.error.message,
                            "stage": row.error.stage,
                            "retries": row.error.retries,
                        },
                    }
                    for row in result.failed_rows
                ]
            }
            if result.failed_rows
            else {}
        ),
        "stats": {
            "cells": result.stats.cells,
            "runs": result.stats.runs,
            "networks_built": result.stats.networks_built,
            "derivations_computed": result.stats.derivations_computed,
            "schedules_computed": result.stats.schedules_computed,
            "workers": result.stats.workers,
            "parallel_fallback": result.stats.parallel_fallback,
            "failed_cells": result.stats.failed_cells,
            "retries": result.stats.retries,
            "store_hits": result.stats.store_hits,
            "store_misses": result.stats.store_misses,
            "interrupted": result.stats.interrupted,
            "pool_reused": result.stats.pool_reused,
            "warm_group_hits": result.stats.warm_group_hits,
            "payload_cache_hits": result.stats.payload_cache_hits,
        },
    }


def sweep_result_from_dict(data: Mapping[str, Any]) -> SweepResult:
    """Inverse of :func:`sweep_result_to_dict`.

    Payloads written before the fault-tolerance fields existed decode
    with the neutral defaults (no failed rows, zero failure/store
    counters, not interrupted).
    """
    _check_header(data, "fppn-sweep")
    stats_in = data.get("stats", {})
    return SweepResult(
        axes={
            name: tuple(value_from_jsonable(v) for v in values)
            for name, values in data.get("axes", {}).items()
        },
        metrics=tuple(data.get("metrics", [])),
        rows=[
            SweepRow(
                cell={
                    name: value_from_jsonable(v)
                    for name, v in row.get("cell", {}).items()
                },
                metrics={
                    name: value_from_jsonable(v)
                    for name, v in row.get("metrics", {}).items()
                },
            )
            for row in data.get("rows", [])
        ],
        stats=SweepStats(
            cells=int(stats_in.get("cells", 0)),
            runs=int(stats_in.get("runs", 0)),
            networks_built=int(stats_in.get("networks_built", 0)),
            derivations_computed=int(stats_in.get("derivations_computed", 0)),
            schedules_computed=int(stats_in.get("schedules_computed", 0)),
            workers=int(stats_in.get("workers", 1)),
            parallel_fallback=stats_in.get("parallel_fallback"),
            failed_cells=int(stats_in.get("failed_cells", 0)),
            retries=int(stats_in.get("retries", 0)),
            store_hits=int(stats_in.get("store_hits", 0)),
            store_misses=int(stats_in.get("store_misses", 0)),
            interrupted=bool(stats_in.get("interrupted", False)),
            pool_reused=bool(stats_in.get("pool_reused", False)),
            warm_group_hits=int(stats_in.get("warm_group_hits", 0)),
            payload_cache_hits=int(stats_in.get("payload_cache_hits", 0)),
        ),
        failed_rows=[
            SweepRow(
                cell={
                    name: value_from_jsonable(v)
                    for name, v in row.get("cell", {}).items()
                },
                metrics={},
                error=SweepCellError(
                    error_type=row["error"]["type"],
                    message=row["error"]["message"],
                    stage=row["error"].get("stage", "run"),
                    retries=int(row["error"].get("retries", 0)),
                ),
            )
            for row in data.get("failed_rows", [])
        ],
    )


# ---------------------------------------------------------------------------
# service wire payloads
# ---------------------------------------------------------------------------
def pool_event_to_dict(event: Any) -> Dict[str, Any]:
    """Dict form of a :class:`repro.experiment.PoolEvent` milestone.

    Duck-typed on the producer side (``kind`` / ``gid`` / ``cells`` /
    ``groups`` / ``detail``) so this module stays import-light; the
    fields are plain ints and strings, no tagged values needed.
    """
    return {
        "kind": event.kind,
        "gid": event.gid,
        "cells": event.cells,
        "groups": event.groups,
        "detail": event.detail,
    }


def pool_event_from_dict(data: Mapping[str, Any]) -> Any:
    """Inverse of :func:`pool_event_to_dict`."""
    from ..experiment.pool import PoolEvent

    kind = data.get("kind")
    if not isinstance(kind, str) or not kind:
        raise FormatError(f"pool event needs a 'kind' string, got {kind!r}")
    gid = data.get("gid")
    if gid is not None and not isinstance(gid, int):
        raise FormatError(f"pool event 'gid' must be an int or null: {gid!r}")
    return PoolEvent(
        kind=kind,
        gid=gid,
        cells=int(data.get("cells", 0)),
        groups=int(data.get("groups", 0)),
        detail=str(data.get("detail", "")),
    )


def ticket_status_to_dict(status: Any) -> Dict[str, Any]:
    """Dict form of a service ticket status snapshot.

    Duck-typed (``ticket`` / ``client`` / ``state`` / ``cells`` /
    ``rows_streamed`` / ``done`` — produced by
    :class:`repro.service.TicketStatus`) so the io layer does not
    import the service layer it serves.
    """
    return {
        "ticket": status.ticket,
        "client": status.client,
        "state": status.state,
        "cells": status.cells,
        "rows_streamed": status.rows_streamed,
        "done": status.done,
    }


def ticket_status_from_dict(data: Mapping[str, Any]) -> Any:
    """Inverse of :func:`ticket_status_to_dict`."""
    from ..service.orchestrator import TICKET_STATES, TicketStatus

    ticket = data.get("ticket")
    if not isinstance(ticket, int):
        raise FormatError(f"ticket status needs an int 'ticket': {ticket!r}")
    state = data.get("state")
    if state not in TICKET_STATES:
        raise FormatError(f"unrecognised ticket state {state!r}")
    client = data.get("client")
    if client is not None and not isinstance(client, str):
        raise FormatError(f"'client' must be a string or null: {client!r}")
    return TicketStatus(
        ticket=ticket,
        client=client,
        state=state,
        cells=int(data.get("cells", 0)),
        rows_streamed=int(data.get("rows_streamed", 0)),
        done=bool(data.get("done", False)),
    )


# ---------------------------------------------------------------------------
# file helpers
# ---------------------------------------------------------------------------
def save_json(data: Mapping[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_json(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _check_header(data: Mapping[str, Any], expected: str) -> None:
    fmt = data.get("format")
    if fmt != expected:
        raise FormatError(f"expected format {expected!r}, got {fmt!r}")
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise FormatError(
            f"unsupported {expected} version {version!r} "
            f"(this library reads version {FORMAT_VERSION})"
        )
