"""Scenario: a frozen, serialisable description of one experiment run.

The paper's pipeline — FPPN → task-graph derivation → list scheduling →
online static-order execution → determinism check — takes half a dozen
inputs (network, WCETs, processor count, execution-time model, overheads,
stimulus, frame count, executor flags) that every app, test and benchmark
used to thread by hand.  A :class:`Scenario` captures all of them in one
immutable value object:

* **comparable** — scenarios are plain frozen dataclasses, so sweep cells
  and regression fixtures can be compared with ``==``;
* **serialisable** — :func:`repro.io.json_io.scenario_to_dict` round-trips
  every field (rational times as ``"num/den"`` strings) for scenarios whose
  workload is a *registered name* rather than a bare callable;
* **stage-keyed** — :meth:`Scenario.derivation_key` and
  :meth:`Scenario.schedule_key` identify which pipeline stages two
  scenarios share, which is what lets the sweep runner
  (:mod:`repro.experiment.sweep`) derive and schedule once per distinct
  ``(workload, wcet, horizon[, processors, heuristics])`` combination and
  reuse the artifacts across every runtime-only variation (jitter seeds,
  overheads, frame counts, stimuli).

Workloads are named through a registry: the application modules in
:mod:`repro.apps` register ``"fig1"``, ``"fft"``, ``"fms"`` and
``"fms-40s"`` at import, and :func:`resolve_workload` imports them lazily
on first use, so deserialised scenarios find their factories without the
experiment layer depending on the apps layer.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Dict, Mapping, Optional, Tuple, Union

from ..core.invocations import Stimulus
from ..core.network import Network
from ..core.platform import PlatformLike, as_platform
from ..core.timebase import Time, TimeLike, as_positive_time, as_time
from ..errors import ModelError
from ..runtime.executor import ExecutionTimeSpec, jittered_execution
from ..runtime.overheads import OverheadModel
from ..taskgraph.jobs import normalize_wcet_table

__all__ = [
    "Scenario",
    "available_workloads",
    "register_workload",
    "resolve_workload",
]

WorkloadSpec = Union[str, Callable[[], Network]]

# ---------------------------------------------------------------------------
# workload registry
# ---------------------------------------------------------------------------
_WORKLOADS: Dict[str, Callable[[], Network]] = {}
_apps_loaded = False


def register_workload(name: str, factory: Callable[[], Network]) -> None:
    """Register a named network factory for use in scenarios.

    Registered names are what makes a scenario JSON-serialisable; the
    factory must be a zero-argument callable returning a validated
    :class:`~repro.core.network.Network`.  Re-registering a name replaces
    the previous factory (apps re-imported under test runners do this).
    """
    if not isinstance(name, str) or not name:
        raise ModelError("workload name must be a non-empty string")
    if not callable(factory):
        raise ModelError(f"workload factory for {name!r} must be callable")
    _WORKLOADS[name] = factory


def available_workloads() -> Tuple[str, ...]:
    """Sorted names of all registered workloads (apps are loaded first)."""
    _ensure_apps_loaded()
    return tuple(sorted(_WORKLOADS))


def _import_apps() -> None:
    from .. import apps  # noqa: F401  (import for registration side effect)


def _ensure_apps_loaded() -> None:
    # The paper's case studies register themselves at import.  Importing
    # them lazily (and only when a *name* needs resolving) keeps the
    # experiment layer free of an apps dependency while letting
    # deserialised scenarios find "fig1"/"fft"/"fms" without ceremony.
    # A dedicated flag, not a registry-emptiness check: user registrations
    # made before the first lookup must not suppress the built-in names.
    # The flag is set only *after* the import succeeds: a failed apps
    # import must surface its real cause (and be retried on the next
    # lookup), not leave every later name resolving to "unknown workload".
    global _apps_loaded
    if not _apps_loaded:
        _import_apps()
        _apps_loaded = True


def resolve_workload(spec: WorkloadSpec) -> Callable[[], Network]:
    """The network factory behind *spec* (a registered name or a callable)."""
    if callable(spec):
        return spec
    _ensure_apps_loaded()
    factory = _WORKLOADS.get(spec)
    if factory is None:
        raise ModelError(
            f"unknown workload {spec!r} — registered: "
            f"{', '.join(sorted(_WORKLOADS)) or '(none)'}; use "
            "register_workload() or pass a network factory callable"
        )
    return factory


# ---------------------------------------------------------------------------
# normalisation helpers
# ---------------------------------------------------------------------------
def _is_normalized_pairs(value: Any) -> bool:
    """True for the canonical tuple-of-(name, value)-pairs form.

    Normalisers must be idempotent: :meth:`Scenario.replace` (and
    ``dataclasses.replace`` generally) re-runs ``__post_init__`` on
    already-normalised field values.
    """
    return isinstance(value, tuple) and all(
        isinstance(item, tuple) and len(item) == 2 and isinstance(item[0], str)
        for item in value
    )


def _normalize_wcet_value(name: str, value: Any) -> Any:
    """One wcet-map entry: callable, per-class table, or Time scalar."""
    if callable(value):
        return value
    if isinstance(value, Mapping) or _is_normalized_pairs(value):
        return normalize_wcet_table(value, f"WCET of {name!r}")
    return as_time(value)


def _normalize_wcet(wcet: Any) -> Any:
    """Canonical immutable form: Time scalar, or sorted (name, value) pairs."""
    if _is_normalized_pairs(wcet):
        return wcet
    if isinstance(wcet, Mapping):
        return tuple(
            sorted(
                (name, _normalize_wcet_value(name, value))
                for name, value in wcet.items()
            )
        )
    if callable(wcet):
        raise ModelError(
            "a bare callable is not a valid wcet — use a mapping "
            "{process: callable} for per-job WCET models"
        )
    return as_time(wcet)


def _normalize_table(
    table: Optional[Mapping[str, TimeLike]], what: str
) -> Optional[Tuple[Tuple[str, Time], ...]]:
    if table is None or _is_normalized_pairs(table):
        return table
    if not isinstance(table, Mapping):
        raise ModelError(f"{what} must be a mapping of process name -> time")
    return tuple(sorted((name, as_time(v)) for name, v in table.items()))


@lru_cache(maxsize=64)
def _jitter_model(seed: int, low: float):
    """One shared jitter sampler per ``(seed, low_fraction)``.

    :func:`~repro.runtime.executor.jittered_execution` samples depend only
    on ``(seed, process, k, frame)`` and are memoised inside the sampler,
    so sharing one sampler across runs is semantically invisible — and it
    lets sweep cells that vary overheads/frames under the *same* seed hit
    the per-instance memo instead of re-hashing every sample key.
    """
    return jittered_execution(seed, low)


# ---------------------------------------------------------------------------
# the scenario itself
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """Frozen description of one full pipeline run.

    Parameters
    ----------
    workload:
        A registered workload name (serialisable — see
        :func:`register_workload`) or a zero-argument network factory.
    wcet:
        Uniform WCET, or mapping ``process -> time | (process, k) -> time``
        (exactly what :func:`~repro.taskgraph.derivation.derive_task_graph`
        accepts).  Normalised to an immutable canonical form.
    processors:
        Processor count handed to the list scheduler.  Derived from
        *platform* when one is given (the two always agree).
    platform:
        Optional heterogeneous :class:`~repro.core.platform.Platform`
        (or anything :func:`~repro.core.platform.as_platform` accepts).
        When set, scheduling and execution resolve per-class WCETs on it
        and *processors* is forced to its total core count.  ``None``
        (the default) keeps the classic homogeneous path.
    n_frames:
        Number of hyperperiod frames the runtime simulates.
    horizon:
        Optional explicit frame length for derivation (defaults to the
        hyperperiod).
    heuristics:
        SP-heuristic portfolio for
        :func:`~repro.scheduling.optimizer.find_feasible_schedule`;
        ``None`` selects the default portfolio.
    execution_time:
        Optional per-process actual-execution-time table (exact rationals).
        Mutually exclusive with *jitter_seed*.
    jitter_seed / jitter_low:
        When *jitter_seed* is set, execution times are drawn from
        :func:`~repro.runtime.executor.jittered_execution` in
        ``[jitter_low * C, C]``.
    overheads:
        The Section V-A frame-arrival/per-job overhead model.
    stimulus:
        External inputs (samples + sporadic arrivals); ``None`` means no
        external data — sporadic processes never fire.
    records_only / collect_records / collect_trace:
        The executor's fast-mode flags, stored so a scenario pins its
        observation level as part of the experiment description.
    label:
        Free-form tag carried through results and sweep tables.
    """

    workload: WorkloadSpec
    wcet: Any
    processors: int = 1
    n_frames: int = 1
    horizon: Optional[TimeLike] = None
    heuristics: Optional[Tuple[str, ...]] = None
    execution_time: Optional[Mapping[str, TimeLike]] = None
    jitter_seed: Optional[int] = None
    jitter_low: float = 0.5
    overheads: OverheadModel = field(default_factory=OverheadModel.none)
    stimulus: Optional[Stimulus] = None
    records_only: bool = False
    collect_records: bool = True
    collect_trace: bool = True
    label: Optional[str] = None
    platform: Optional[PlatformLike] = None

    def __post_init__(self) -> None:
        if not (callable(self.workload) or isinstance(self.workload, str)):
            raise ModelError(
                "workload must be a registered name or a network factory"
            )
        set_ = object.__setattr__  # frozen: normalise through the back door
        if self.platform is not None:
            try:
                set_(self, "platform", as_platform(self.platform))
            except (TypeError, ValueError) as exc:
                raise ModelError(str(exc)) from None
            # processors is a derived view of the platform: keep the two
            # in lock-step so every consumer of the count stays correct.
            set_(self, "processors", self.platform.processors)
        if self.processors < 1:
            raise ModelError("processors must be >= 1")
        if self.n_frames < 1:
            raise ModelError("n_frames must be >= 1")
        if self.execution_time is not None and self.jitter_seed is not None:
            raise ModelError(
                "execution_time and jitter_seed are mutually exclusive — "
                "a scenario has exactly one execution-time model"
            )
        if not 0 < self.jitter_low <= 1:
            raise ModelError("jitter_low must be in (0, 1]")
        if not isinstance(self.overheads, OverheadModel):
            raise ModelError("overheads must be an OverheadModel")
        if self.stimulus is not None and not isinstance(self.stimulus, Stimulus):
            raise ModelError("stimulus must be a Stimulus (or None)")
        set_(self, "wcet", _normalize_wcet(self.wcet))
        set_(self, "execution_time",
             _normalize_table(self.execution_time, "execution_time"))
        if self.heuristics is not None:
            set_(self, "heuristics", tuple(self.heuristics))
        if self.horizon is not None:
            set_(self, "horizon", as_positive_time(self.horizon, "horizon"))
        set_(self, "jitter_low", float(self.jitter_low))

    def __hash__(self) -> int:
        # The dataclass-generated hash would include the stimulus, which is
        # structurally compared but unhashable (mutable sample maps).  Hash
        # every other field: scenarios equal under __eq__ hash equal, and
        # stimulus-only collisions are resolved by the equality check.
        return hash((
            self.workload, self.wcet, self.processors, self.n_frames,
            self.horizon, self.heuristics, self.execution_time,
            self.jitter_seed, self.jitter_low, self.overheads,
            self.records_only, self.collect_records, self.collect_trace,
            self.label, self.platform,
        ))

    # -- derived views --------------------------------------------------
    def replace(self, **changes: Any) -> "Scenario":
        """A copy with *changes* applied (axis substitution in sweeps)."""
        return dataclasses.replace(self, **changes)

    def build_network(self) -> Network:
        """Construct a fresh network from the workload factory."""
        return resolve_workload(self.workload)()

    def wcet_spec(self) -> Any:
        """The wcet in the shape ``derive_task_graph`` accepts."""
        if isinstance(self.wcet, tuple):
            return dict(self.wcet)
        return self.wcet

    def execution_model(self) -> ExecutionTimeSpec:
        """The executor's ``execution_time`` argument for this scenario."""
        if self.jitter_seed is not None:
            return _jitter_model(self.jitter_seed, self.jitter_low)
        if self.execution_time is not None:
            return dict(self.execution_time)
        return None

    def dispatch_blocker(self) -> Optional[str]:
        """Why this scenario cannot be shipped to a worker process.

        The multiprocess sweep backend (:mod:`repro.experiment.parallel`)
        sends scenarios across the process boundary through the JSON wire
        format (:func:`repro.io.json_io.scenario_to_dict`), which carries
        data, not code.  Returns a human-readable reason when this
        scenario embeds code a child process could not reconstruct, or
        ``None`` when it is dispatchable.  This is the cheap pre-check the
        dispatcher runs per cell; the JSON encoder remains the authority
        and still refuses loudly if a new code-bearing field slips by.
        """
        if not isinstance(self.workload, str):
            return (
                "workload is a bare factory callable — only the built-in "
                "app workloads resolve by name in a worker process"
            )
        # A worker re-imports repro from scratch, so the only names it can
        # resolve are the ones the apps package registers at import.  A
        # name registered (or overridden) only in this process would make
        # the worker fail — or worse, silently build a different network.
        _ensure_apps_loaded()
        from ..apps import BUILTIN_WORKLOADS

        if self.workload not in _WORKLOADS:
            # Unknown everywhere: stay serial so the standard
            # unknown-workload error surfaces in-process, not from a pool.
            return f"workload {self.workload!r} is not registered"
        if _WORKLOADS[self.workload] is not BUILTIN_WORKLOADS.get(
            self.workload
        ):
            return (
                f"workload {self.workload!r} is registered only in this "
                "process — spawned workers re-import repro and resolve "
                "only the built-in app workloads"
            )
        if isinstance(self.wcet, tuple) and any(
            callable(value) for _, value in self.wcet
        ):
            return "wcet contains per-job callables, which do not serialise"
        return None

    # -- stage keys -----------------------------------------------------
    def workload_key(self) -> Any:
        """Hashable identity of the workload (name, or callable identity)."""
        return self.workload

    def derivation_key(self) -> Tuple[Any, ...]:
        """Scenarios with equal keys share one task-graph derivation."""
        return (self.workload_key(), self.wcet, self.horizon)

    def schedule_key(self) -> Tuple[Any, ...]:
        """Scenarios with equal keys share one static schedule.

        The platform joins the key only when set, so classic scenarios
        keep their exact pre-platform keys (stored artifacts stay valid)
        while cells of a platform axis schedule once per platform but
        share one derivation (WCET tables are class-*name* keyed).
        """
        key = self.derivation_key() + (
            self.processors,
            self.heuristics,
        )
        if self.platform is not None:
            key += (self.platform,)
        return key

    def scheduling_target(self) -> PlatformLike:
        """What the list scheduler should schedule onto."""
        return self.platform if self.platform is not None else self.processors

    def describe(self) -> str:
        """One-line human-readable summary (sweep tables, reports)."""
        workload = (
            self.workload if isinstance(self.workload, str)
            else getattr(self.workload, "__name__", "<factory>")
        )
        bits = [
            f"workload={workload}",
            (
                f"platform={self.platform.describe()}"
                if self.platform is not None and not self.platform.is_unit
                else f"M={self.processors}"
            ),
            f"frames={self.n_frames}",
        ]
        if self.jitter_seed is not None:
            bits.append(f"jitter#{self.jitter_seed}")
        if not self.overheads.is_zero:
            bits.append("overheads")
        if self.label:
            bits.append(self.label)
        return " ".join(bits)
