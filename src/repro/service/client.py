"""Blocking client for the sweep service.

A thin socket front whose ``run_sweep`` mirrors the in-process
:func:`~repro.experiment.run_sweep` signature — same matrix, metrics,
``on_row`` / ``on_progress`` callbacks, fault plans and error policy —
so routing a sweep to a remote pool is a one-line change.  Rows decode
through the tagged codecs back into exact :class:`Fraction` values: a
served table is bit-identical to a local one.

The client is deliberately synchronous (one socket, one in-flight
request plus its notification stream): the CLI and tests drive it
directly, and concurrency comes from opening more clients — the server
multiplexes them onto the shared pool with per-client fairness.
"""

from __future__ import annotations

import socket
from typing import Any, Callable, Dict, Mapping, Optional, Sequence

from ..errors import ProtocolError, ServiceError, SweepError
from ..experiment.faults import FaultPlan
from ..experiment.sweep import (
    DEFAULT_METRICS,
    ScenarioMatrix,
    SweepResult,
    SweepRow,
)
from ..io.json_io import (
    fault_plan_to_dict,
    matrix_to_dict,
    pool_event_from_dict,
    sweep_result_from_dict,
    ticket_status_from_dict,
)
from . import protocol

__all__ = ["ServiceClient"]


class ServiceClient:
    """One TCP connection to a :class:`~repro.service.SweepServer`.

    ``client`` is this connection's fair-scheduling tag (defaults to a
    socket-unique name): submissions sharing a tag are FIFO among
    themselves, distinct tags round-robin on the server's pool.  The
    client is a context manager; the connection closes on exit and the
    server then cancels any tickets still pending from it.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        client: Optional[str] = None,
        timeout: Optional[float] = 300.0,
    ) -> None:
        try:
            self._sock = socket.create_connection((host, port), timeout)
        except OSError as exc:
            raise ServiceError(
                f"cannot connect to sweep server at {host}:{port}: {exc}"
            ) from exc
        self._file = self._sock.makefile("rb")
        self._next_id = 1
        self._closed = False
        self.client = (
            client if client is not None
            else f"client-{self._sock.getsockname()[1]}"
        )

    @classmethod
    def from_address(cls, address: str, **kwargs: Any) -> "ServiceClient":
        """Connect to a ``HOST:PORT`` string (the CLI's ``--server``)."""
        host, sep, port_text = address.rpartition(":")
        if not sep or not host:
            raise ServiceError(
                f"server address must be HOST:PORT, got {address!r}"
            )
        try:
            port = int(port_text)
        except ValueError:
            raise ServiceError(
                f"bad port in server address {address!r}"
            ) from None
        return cls(host, port, **kwargs)

    # -- the convenience entry point ------------------------------------
    def run_sweep(
        self,
        matrix: ScenarioMatrix,
        metrics: Sequence[str] = DEFAULT_METRICS,
        *,
        faults: Optional[FaultPlan] = None,
        on_error: str = "capture",
        on_row: Optional[Callable[[SweepRow], None]] = None,
        on_progress: Optional[Callable[[Any], None]] = None,
    ) -> SweepResult:
        """Submit, stream and decode one sweep — the remote ``run_sweep``.

        Blocks until the server finishes the matrix; rows and pool
        milestones invoke the callbacks live as notification lines
        arrive.  ``on_error="raise"`` failures surface as
        :class:`~repro.errors.SweepError`, exactly like in-process.
        """
        submitted = self.submit(
            matrix, metrics, faults=faults, on_error=on_error
        )
        return self.stream(
            submitted["ticket"], on_row=on_row, on_progress=on_progress
        )

    # -- protocol methods ------------------------------------------------
    def ping(self) -> bool:
        return bool(self._call("ping", {}).get("pong"))

    def submit(
        self,
        matrix: ScenarioMatrix,
        metrics: Sequence[str] = DEFAULT_METRICS,
        *,
        faults: Optional[FaultPlan] = None,
        on_error: str = "capture",
    ) -> Dict[str, Any]:
        """Enqueue a matrix; returns ``{"ticket": id, "status": ...}``."""
        params: Dict[str, Any] = {
            "matrix": matrix_to_dict(matrix),
            "metrics": list(metrics),
            "on_error": on_error,
            "client": self.client,
        }
        if faults is not None:
            params["faults"] = fault_plan_to_dict(faults)
        return self._call("submit", params)

    def status(self, ticket: int) -> Any:
        """The ticket's :class:`~repro.service.TicketStatus` snapshot."""
        return ticket_status_from_dict(self._call("status", {
            "ticket": ticket,
        }))

    def stream(
        self,
        ticket: int,
        *,
        on_row: Optional[Callable[[SweepRow], None]] = None,
        on_progress: Optional[Callable[[Any], None]] = None,
    ) -> SweepResult:
        """Consume a ticket's stream to completion; the final table."""
        document = self._call(
            "stream", {"ticket": ticket},
            on_row=on_row, on_progress=on_progress,
        )
        return sweep_result_from_dict(document)

    def cancel(self, ticket: int) -> bool:
        """Withdraw the ticket's pending groups; True if any were."""
        return bool(self._call("cancel", {"ticket": ticket})["cancelled"])

    def shutdown(self) -> None:
        """Ask the server to stop (it finishes after responding)."""
        self._call("shutdown", {})

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- wire plumbing ---------------------------------------------------
    def _call(
        self,
        method: str,
        params: Mapping[str, Any],
        *,
        on_row: Optional[Callable[[SweepRow], None]] = None,
        on_progress: Optional[Callable[[Any], None]] = None,
    ) -> Any:
        """Send one request; pump lines until its response arrives.

        Notification lines interleaved before the response are
        dispatched to the callbacks (rows are data — their decode
        errors propagate; progress is telemetry — sink errors are
        swallowed like the in-process pool does).
        """
        if self._closed:
            raise ServiceError("client is closed")
        rid = self._next_id
        self._next_id += 1
        try:
            self._sock.sendall(
                protocol.encode(protocol.request(method, dict(params), rid))
            )
        except OSError as exc:
            raise ServiceError(f"send failed: {exc}") from exc
        while True:
            try:
                line = self._file.readline(protocol.MAX_LINE_BYTES + 1)
            except OSError as exc:
                raise ServiceError(f"receive failed: {exc}") from exc
            if not line:
                raise ServiceError(
                    "server closed the connection mid-request"
                )
            if len(line) > protocol.MAX_LINE_BYTES:
                raise ProtocolError("oversized wire line from server")
            message = protocol.decode_line(line)
            if "method" in message and "id" not in message:
                self._dispatch_notification(message, on_row, on_progress)
                continue
            if message.get("id") != rid:
                raise ProtocolError(
                    f"out-of-order response id {message.get('id')!r} "
                    f"(expected {rid})"
                )
            if "error" in message:
                raise self._error_from(message["error"])
            return message.get("result")

    def _dispatch_notification(
        self,
        message: Mapping[str, Any],
        on_row: Optional[Callable[[SweepRow], None]],
        on_progress: Optional[Callable[[Any], None]],
    ) -> None:
        method = message.get("method")
        params = message.get("params")
        if not isinstance(params, Mapping):
            raise ProtocolError(f"notification {method!r} without params")
        if method == "sweep.row":
            if on_row is not None:
                on_row(protocol.sweep_row_from_wire(params.get("row", {})))
        elif method == "sweep.event":
            if on_progress is not None:
                try:
                    on_progress(
                        pool_event_from_dict(params.get("event", {}))
                    )
                except Exception:
                    pass
        # Unknown notifications are skipped: the protocol may grow
        # telemetry kinds without breaking older clients.

    @staticmethod
    def _error_from(error: Mapping[str, Any]) -> Exception:
        code = error.get("code")
        message = str(error.get("message", "unknown server error"))
        if code == protocol.SWEEP_FAILED:
            return SweepError(message)
        return ServiceError(f"server error {code}: {message}")
