"""The examples are part of the public contract: they must run clean."""

import json
import pathlib
import subprocess
import sys
import time

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))
ALL_CONFIGS = sorted(EXAMPLES_DIR.glob("*.json"))
# Server configs boot a long-running process; they get their own smoke
# test below instead of the run/sweep round-trip.
CLI_CONFIGS = [
    p for p in ALL_CONFIGS
    if json.loads(p.read_text()).get("format") != "fppn-server"
]
SERVER_CONFIGS = [p for p in ALL_CONFIGS if p not in CLI_CONFIGS]


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout  # every example narrates what it does


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "fft_streaming.py", "fms_avionics.py",
            "deterministic_replay.py", "resilient_sweep.py",
            "sweep_service.py", "hetero_sweep.py"} <= names
    assert {p.name for p in CLI_CONFIGS} >= {
        "fig1_run.json", "fig1_sweep.json"
    }
    assert {p.name for p in SERVER_CONFIGS} >= {"sweep_server.json"}


@pytest.mark.parametrize("config", SERVER_CONFIGS, ids=lambda p: p.name)
def test_server_demo_config_boots(config, tmp_path):
    # The shipped server config must actually bring a server up; we wait
    # for the ready file, then take it down cleanly.
    ready = tmp_path / "addr"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(config),
         "--ready-file", str(ready)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        deadline = 60.0
        while deadline > 0 and not ready.exists():
            if proc.poll() is not None:
                pytest.fail(proc.communicate()[1][-2000:])
            deadline -= 0.1
            time.sleep(0.1)
        host, _, port = ready.read_text().strip().rpartition(":")
        from repro.service import ServiceClient
        with ServiceClient(host, int(port)) as client:
            assert client.ping()
            client.shutdown()
        proc.wait(timeout=30)
        assert proc.returncode == 0
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=10)


@pytest.mark.parametrize("config", CLI_CONFIGS, ids=lambda p: p.name)
def test_cli_demo_configs_run(config):
    # Every shipped config must execute through the CLI; matrix configs
    # go through `sweep`, scenario configs through `run`.
    command = (
        "sweep" if "matrix" in json.loads(config.read_text()) else "run"
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro", command, str(config), "--progress"],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    document = json.loads(proc.stdout)
    assert document["format"] == "fppn-sweep"
    assert document["rows"]
    assert "done:" in proc.stderr
