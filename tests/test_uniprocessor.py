"""Tests for the uniprocessor fixed-priority baseline."""

from fractions import Fraction

import pytest

from repro.core import ChannelKind, Network, Stimulus, run_zero_delay
from repro.errors import RuntimeModelError, SchedulingError
from repro.scheduling import UniprocessorFixedPriority, rate_monotonic_priorities


def nop(ctx):
    return None


class TestRateMonotonic:
    def test_shorter_period_higher_priority(self, pair_network):
        net = Network("rm")
        net.add_periodic("slow", period=200, kernel=nop)
        net.add_periodic("fast", period=50, kernel=nop)
        prios = rate_monotonic_priorities(net)
        assert prios["fast"] < prios["slow"]

    def test_tie_broken_by_name(self):
        net = Network("rm")
        net.add_periodic("b", period=100, kernel=nop)
        net.add_periodic("a", period=100, kernel=nop)
        prios = rate_monotonic_priorities(net)
        assert prios["a"] < prios["b"]

    def test_missing_priority_rejected(self, pair_network):
        with pytest.raises(SchedulingError, match="missing scheduling priority"):
            UniprocessorFixedPriority(pair_network, {"producer": 0})


class TestFunctionalRun:
    def test_equivalent_to_zero_delay_when_priorities_match_fp(self, pair_network):
        up = UniprocessorFixedPriority(pair_network, {"producer": 0, "consumer": 1})
        ref = run_zero_delay(pair_network, 500)
        assert up.functional_run(500).observable() == ref.observable()

    def test_priority_inversion_changes_data(self, pair_network):
        """With the consumer ABOVE the producer the FIFO is read before it is
        written each period — a different (but well-defined) behaviour."""
        inverted = UniprocessorFixedPriority(
            pair_network, {"producer": 1, "consumer": 0}
        )
        ref = run_zero_delay(pair_network, 300)
        assert inverted.functional_run(300).observable() != ref.observable()

    def test_sporadic_releases_from_stimulus(self, sporadic_network):
        up = UniprocessorFixedPriority(
            sporadic_network, sporadic_network.priority_rank()
        )
        stim = Stimulus(
            input_samples={"cmd": [9]},
            sporadic_arrivals={"config": [150]},
        )
        ref = run_zero_delay(sporadic_network, 400, stim)
        assert up.functional_run(400, stim).observable() == ref.observable()

    def test_release_sequence_sorted(self, sporadic_network):
        up = UniprocessorFixedPriority(
            sporadic_network, sporadic_network.priority_rank()
        )
        rel = up.release_sequence(400, Stimulus(sporadic_arrivals={"config": [30]}))
        times = [t for t, *_ in rel]
        assert times == sorted(times)


class TestPreemptiveSimulation:
    def _two_task_net(self):
        net = Network("two")
        net.add_periodic("hi", period=50, deadline=50, kernel=nop)
        net.add_periodic("lo", period=100, deadline=100, kernel=nop)
        return net

    def test_textbook_response_times(self):
        """hi: C=20 T=50; lo: C=40 T=100 under RM: lo starts at 20, is
        preempted by hi's second job at 50, and finishes at 80."""
        net = self._two_task_net()
        up = UniprocessorFixedPriority(net)
        done = up.simulate_preemptive(200, {"hi": 20, "lo": 40})
        lo1 = next(j for j in done if j.process == "lo" and j.k == 1)
        assert lo1.start == 20
        assert lo1.finish == 80
        assert lo1.preemptions == 1
        assert not lo1.missed

    def test_completion_exactly_at_release_not_preempted(self):
        """A job finishing exactly when a higher-priority job releases is
        not preempted (C_lo=30: lo runs 20..50, hi2 releases at 50)."""
        net = self._two_task_net()
        up = UniprocessorFixedPriority(net)
        done = up.simulate_preemptive(200, {"hi": 20, "lo": 30})
        lo1 = next(j for j in done if j.process == "lo" and j.k == 1)
        assert lo1.finish == 50
        assert lo1.preemptions == 0

    def test_high_priority_never_preempted(self):
        net = self._two_task_net()
        up = UniprocessorFixedPriority(net)
        done = up.simulate_preemptive(200, {"hi": 20, "lo": 30})
        assert all(j.preemptions == 0 for j in done if j.process == "hi")

    def test_overload_detected(self):
        net = self._two_task_net()
        up = UniprocessorFixedPriority(net)
        misses = up.deadline_misses(400, {"hi": 30, "lo": 50})
        assert misses  # utilization 30/50 + 50/100 = 1.1 > 1

    def test_no_misses_at_low_utilization(self):
        net = self._two_task_net()
        up = UniprocessorFixedPriority(net)
        assert up.deadline_misses(400, {"hi": 10, "lo": 20}) == []

    def test_missing_execution_time(self):
        net = self._two_task_net()
        up = UniprocessorFixedPriority(net)
        with pytest.raises(RuntimeModelError):
            up.simulate_preemptive(100, {"hi": 10})

    def test_response_time_accounting(self):
        net = self._two_task_net()
        up = UniprocessorFixedPriority(net)
        done = up.simulate_preemptive(100, {"hi": 20, "lo": 30})
        hi1 = next(j for j in done if j.process == "hi" and j.k == 1)
        assert hi1.response_time == 20
        assert hi1.release == 0 and hi1.deadline == 50

    def test_idle_gaps_skipped(self):
        net = Network("idle")
        net.add_periodic("p", period=100, kernel=nop)
        up = UniprocessorFixedPriority(net)
        done = up.simulate_preemptive(250, {"p": 10})
        assert [j.start for j in done] == [0, 100, 200]
