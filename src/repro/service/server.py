"""The sweep server: asyncio TCP front speaking the JSON-RPC protocol.

One :class:`SweepServer` owns one :class:`SweepOrchestrator` (hence one
shared pool and store) and serves any number of TCP connections.  The
asyncio loop runs on a background thread, so the server embeds in
synchronous programs (the CLI, tests) without ceding the main thread:
``start()`` returns once the socket is bound, ``wait()`` blocks until a
``shutdown`` request or :meth:`close`.

Per connection, the read loop handles cheap requests inline and runs
each ``stream`` as its own task — a ``cancel`` or ``status`` arriving
mid-stream is served immediately.  Writes are serialised by a lock so
notification and response lines never interleave.  When a client
disconnects, every ticket it submitted is cancelled: pending groups are
withdrawn, dispatched groups finish on the pool and land in the shared
store for the next client — a vanished client never wedges the pool.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Dict, Optional, Set, Tuple

from ..errors import FPPNError, ProtocolError, ServiceError, SweepError
from ..io.json_io import (
    FormatError,
    fault_plan_from_dict,
    matrix_from_dict,
    pool_event_to_dict,
    sweep_result_to_dict,
    ticket_status_to_dict,
)
from . import protocol
from .orchestrator import SweepOrchestrator

__all__ = ["SweepServer"]


class SweepServer:
    """Serve an orchestrator over TCP; lifecycle wraps a thread + loop.

    Parameters mirror :class:`SweepOrchestrator` (an existing
    ``orchestrator`` is served as-is and not closed on shutdown;
    otherwise one is created from ``workers`` / ``store`` /
    ``pool_options`` and owned).  ``port=0`` binds an ephemeral port —
    read the real one from :attr:`address` after :meth:`start`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        orchestrator: Optional[SweepOrchestrator] = None,
        workers: int = 2,
        store: Any = None,
        **pool_options: Any,
    ) -> None:
        self._host = host
        self._port = port
        self._owns_orchestrator = orchestrator is None
        self._orchestrator = (
            SweepOrchestrator(workers=workers, store=store, **pool_options)
            if orchestrator is None else orchestrator
        )
        self.address: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._closed = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> Tuple[str, int]:
        """Bind and serve on a background thread; returns (host, port)."""
        if self._thread is not None:
            raise ServiceError("server already started")
        self._thread = threading.Thread(
            target=self._run, name="sweep-server", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise ServiceError(
                f"server failed to start: {self._startup_error}"
            ) from self._startup_error
        assert self.address is not None
        return self.address

    def wait(self) -> None:
        """Block until the server stops (shutdown request or close)."""
        if self._thread is not None:
            self._thread.join()

    def close(self) -> None:
        """Stop serving and (if owned) close the orchestrator. Idempotent."""
        if self._closed:
            return
        self._closed = True
        loop, shutdown = self._loop, self._shutdown
        if loop is not None and shutdown is not None:
            try:
                loop.call_soon_threadsafe(shutdown.set)
            except RuntimeError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=60.0)
        if self._owns_orchestrator:
            self._orchestrator.close_sync()

    def __enter__(self) -> "SweepServer":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:
            if not self._started.is_set():
                self._startup_error = exc
                self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        self._conn_writers: Set[asyncio.StreamWriter] = set()
        self._conn_tasks: Set[asyncio.Task] = set()
        try:
            server = await asyncio.start_server(
                self._serve_connection, self._host, self._port,
                limit=protocol.MAX_LINE_BYTES,
            )
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            return
        sockname = server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        self._started.set()
        async with server:
            await self._shutdown.wait()
            # Drain connections gracefully instead of letting the loop
            # teardown hard-cancel their handlers mid-await: closing
            # each transport EOFs its read loop, the handlers run their
            # cleanup (cancel owned tickets) and exit on their own.
            for writer in list(self._conn_writers):
                writer.close()
            pending = [t for t in self._conn_tasks if not t.done()]
            if pending:
                await asyncio.wait(pending, timeout=10.0)

    # -- per-connection -------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        owned_tickets: Set[int] = set()
        stream_tasks: Set[asyncio.Task] = set()
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        self._conn_writers.add(writer)

        async def send(message: Dict[str, Any]) -> None:
            async with write_lock:
                writer.write(protocol.encode(message))
                await writer.drain()

        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError, ValueError,
                    ConnectionError,
                ):
                    break
                if not line:
                    break
                if line.strip() == b"":
                    continue
                try:
                    message = protocol.decode_line(line)
                    method, params, rid = protocol.check_request(message)
                except ProtocolError as exc:
                    code = (
                        protocol.PARSE_ERROR
                        if "unparseable" in str(exc)
                        else protocol.INVALID_REQUEST
                    )
                    await send(protocol.error_response(
                        None, code, str(exc)
                    ))
                    continue
                if method == "stream":
                    task = asyncio.ensure_future(
                        self._handle_stream(send, params, rid)
                    )
                    stream_tasks.add(task)
                    task.add_done_callback(stream_tasks.discard)
                    continue
                stop = await self._handle_request(
                    send, method, params, rid, owned_tickets
                )
                if stop:
                    break
        except ConnectionError:
            pass
        finally:
            for task in list(stream_tasks):
                task.cancel()
            if stream_tasks:
                await asyncio.gather(*stream_tasks, return_exceptions=True)
            # A vanished client must not pin pool work: withdraw its
            # pending groups (dispatched ones finish and feed the store).
            for ticket in owned_tickets:
                try:
                    await self._orchestrator.cancel(ticket)
                except (ServiceError, FPPNError):
                    pass
            self._conn_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(
        self,
        send: Any,
        method: str,
        params: Dict[str, Any],
        rid: Any,
        owned_tickets: Set[int],
    ) -> bool:
        """Serve one non-stream request; True when the server must stop."""
        try:
            if method == "ping":
                await send(protocol.response(rid, {"pong": True}))
            elif method == "submit":
                ticket = await self._handle_submit(params)
                owned_tickets.add(ticket)
                await send(protocol.response(rid, {
                    "ticket": ticket,
                    "status": ticket_status_to_dict(
                        self._orchestrator.status(ticket)
                    ),
                }))
            elif method == "status":
                status = self._orchestrator.status(
                    self._ticket_param(params)
                )
                await send(protocol.response(
                    rid, ticket_status_to_dict(status)
                ))
            elif method == "cancel":
                ticket = self._ticket_param(params)
                cancelled = await self._orchestrator.cancel(ticket)
                await send(protocol.response(rid, {
                    "cancelled": cancelled,
                    "status": ticket_status_to_dict(
                        self._orchestrator.status(ticket)
                    ),
                }))
            elif method == "shutdown":
                await send(protocol.response(rid, {"ok": True}))
                assert self._shutdown is not None
                self._shutdown.set()
                return True
            else:
                await send(protocol.error_response(
                    rid, protocol.METHOD_NOT_FOUND,
                    f"unknown method {method!r}",
                ))
        except (ProtocolError, FormatError) as exc:
            await send(protocol.error_response(
                rid, protocol.INVALID_PARAMS, str(exc)
            ))
        except FPPNError as exc:
            await send(protocol.error_response(
                rid, protocol.INTERNAL_ERROR,
                f"{type(exc).__name__}: {exc}",
            ))
        return False

    async def _handle_submit(self, params: Dict[str, Any]) -> int:
        matrix_doc = params.get("matrix")
        if not isinstance(matrix_doc, dict):
            raise ProtocolError("submit needs a 'matrix' document")
        matrix = matrix_from_dict(matrix_doc)
        metrics = params.get("metrics")
        if metrics is not None and (
            not isinstance(metrics, list)
            or not all(isinstance(m, str) for m in metrics)
        ):
            raise ProtocolError("'metrics' must be a list of names")
        faults_doc = params.get("faults")
        faults = (
            fault_plan_from_dict(faults_doc)
            if faults_doc is not None else None
        )
        on_error = params.get("on_error", "capture")
        if on_error not in ("capture", "raise"):
            raise ProtocolError(
                f"on_error must be 'capture' or 'raise', got {on_error!r}"
            )
        client = params.get("client")
        if client is not None and not isinstance(client, str):
            raise ProtocolError("'client' must be a string when present")
        kwargs: Dict[str, Any] = {
            "client": client, "faults": faults, "on_error": on_error,
        }
        if metrics is not None:
            kwargs["metrics"] = tuple(metrics)
        return await self._orchestrator.submit(matrix, **kwargs)

    async def _handle_stream(
        self, send: Any, params: Dict[str, Any], rid: Any
    ) -> None:
        try:
            ticket = self._ticket_param(params)
        except ProtocolError as exc:
            await send(protocol.error_response(
                rid, protocol.INVALID_PARAMS, str(exc)
            ))
            return
        try:
            async for kind, payload in self._orchestrator.stream(ticket):
                if kind == "row":
                    await send(protocol.notification("sweep.row", {
                        "ticket": ticket,
                        "row": protocol.sweep_row_to_wire(payload),
                    }))
                elif kind == "event":
                    await send(protocol.notification("sweep.event", {
                        "ticket": ticket,
                        "event": pool_event_to_dict(payload),
                    }))
                elif kind == "done":
                    await send(protocol.response(
                        rid, sweep_result_to_dict(payload)
                    ))
        except SweepError as exc:
            await send(protocol.error_response(
                rid, protocol.SWEEP_FAILED, str(exc)
            ))
        except ServiceError as exc:
            await send(protocol.error_response(
                rid, protocol.INVALID_PARAMS, str(exc)
            ))
        except FPPNError as exc:
            await send(protocol.error_response(
                rid, protocol.INTERNAL_ERROR,
                f"{type(exc).__name__}: {exc}",
            ))

    @staticmethod
    def _ticket_param(params: Dict[str, Any]) -> int:
        ticket = params.get("ticket")
        if not isinstance(ticket, int):
            raise ProtocolError("'ticket' must be an integer")
        return ticket
