"""The executor's observer protocol: live events, replay, fast modes.

Covers the PR's acceptance criteria for the runtime layer:

* observers receive the same streams live and via :func:`replay`;
* VCD, Gantt and metrics consumers produce identical output through events;
* ``records_only=True`` reproduces identical ``JobRecord`` timing on the
  FMS and FFT applications while skipping the data phase;
* ``collect_records=False`` reproduces identical observables with an empty
  record list (the determinism-sweep fast path).
"""

import pytest

from repro.apps import (
    build_fft_network,
    build_fig1_network,
    build_fms_network,
    fft_stimulus,
    fft_wcets,
    fig1_stimulus,
    fig1_wcets,
    fms_stimulus,
    fms_wcets,
)
from repro.core.timebase import Time
from repro.errors import RuntimeModelError
from repro.io import trace_to_vcd, runtime_result_to_vcd
from repro.runtime import (
    ExecutionObserver,
    GanttObserver,
    MetricsObserver,
    OverheadModel,
    RecordsObserver,
    TraceObserver,
    frame_makespans,
    gantt_from_observer,
    jittered_execution,
    miss_summary,
    processor_utilization,
    replay,
    response_times,
    run_static_order,
    runtime_gantt,
)
from repro.runtime.executor import JobRecord
from repro.scheduling import list_schedule
from repro.taskgraph import derive_task_graph


def fig1_run(observers=(), overheads=None, **kwargs):
    net = build_fig1_network()
    graph = derive_task_graph(net, fig1_wcets())
    schedule = list_schedule(graph, 2, "alap")
    return run_static_order(
        net, schedule, 3, fig1_stimulus(3),
        overheads=overheads, observers=observers, **kwargs,
    )


class TestEventStreams:
    def test_records_observer_matches_result(self):
        obs = RecordsObserver()
        result = fig1_run([obs], overheads=OverheadModel.create(
            first_frame_arrival=41, steady_frame_arrival=20))
        assert obs.records == result.records
        assert obs.overhead_intervals == result.overhead_intervals
        assert obs.meta is not None
        assert obs.meta.network == result.network_name
        assert obs.meta.processors == result.processors
        assert obs.meta.frames == result.frames
        assert obs.meta.hyperperiod == result.hyperperiod

    def test_replay_equals_live(self):
        live = RecordsObserver()
        result = fig1_run([live])
        replayed = RecordsObserver()
        replay(result, replayed)
        assert replayed.records == live.records
        assert replayed.overhead_intervals == live.overhead_intervals
        assert replayed.meta == live.meta

    def test_run_end_receives_result(self):
        seen = []

        class EndObserver(ExecutionObserver):
            def on_run_end(self, result):
                seen.append(result)

        result = fig1_run([EndObserver()])
        assert seen == [result]

    def test_event_order_is_frame_coherent(self):
        events = []

        class OrderObserver(ExecutionObserver):
            def on_overhead(self, frame, start, end):
                events.append(("ov", frame))

            def on_record(self, record):
                events.append(("rec", record.frame))

        fig1_run([OrderObserver()], overheads=OverheadModel.create(
            first_frame_arrival=10, steady_frame_arrival=10))
        # Live emission: each frame's overhead precedes its records.
        frames = [f for _kind, f in events]
        assert frames == sorted(frames)
        for frame in set(frames):
            of_frame = [kind for kind, f in events if f == frame]
            assert of_frame[0] == "ov"


class TestMetricsObserver:
    def test_matches_metrics_functions(self):
        obs = MetricsObserver()
        result = fig1_run([obs], execution_time=jittered_execution(3))
        assert obs.miss_summary() == miss_summary(result)
        assert obs.response_times() == response_times(result)
        assert obs.processor_utilization() == processor_utilization(result)
        assert obs.frame_makespans() == frame_makespans(result)
        assert obs.makespan == result.makespan()

    def test_counts(self):
        obs = MetricsObserver()
        result = fig1_run([obs])
        assert obs.total_jobs == len(result.records)
        assert obs.executed_jobs == len(result.executed())
        assert obs.false_jobs == len(result.false_jobs())

    def test_exact_utilization_underlies_the_float_view(self):
        from fractions import Fraction

        obs = MetricsObserver()
        fig1_run([obs])
        exact = obs.processor_utilization_exact()
        assert exact and all(isinstance(u, Fraction) for u in exact)
        assert obs.processor_utilization() == [float(u) for u in exact]
        # Busy time over the horizon, reconstructible from the records.
        assert all(0 <= u <= 1 for u in exact)
        untracked = MetricsObserver(track_utilization=False)
        fig1_run([untracked])
        with pytest.raises(RuntimeModelError):
            untracked.processor_utilization_exact()

    def test_disabled_aggregates_refuse_instead_of_reporting_zeros(self):
        # Streaming sweeps switch off the per-record aggregates their
        # table does not request; the accessors must then raise rather
        # than misreport empty data.
        obs = MetricsObserver(
            track_responses=False,
            track_utilization=False,
            track_frame_spans=False,
        )
        result = fig1_run([obs])
        assert obs.miss_summary() == miss_summary(result)  # always tracked
        assert obs.makespan == result.makespan()
        for accessor in (
            obs.response_times,
            obs.processor_utilization,
            obs.frame_makespans,
        ):
            with pytest.raises(RuntimeModelError):
                accessor()


class TestTraceAndGantt:
    def test_vcd_from_live_observer_equals_result_vcd(self):
        obs = TraceObserver()
        result = fig1_run([obs], overheads=OverheadModel.mppa_like())
        assert trace_to_vcd(obs) == runtime_result_to_vcd(result)

    def test_gantt_from_live_observer_equals_result_gantt(self):
        obs = GanttObserver()
        result = fig1_run([obs], overheads=OverheadModel.mppa_like())
        assert gantt_from_observer(obs) == runtime_gantt(result)
        assert runtime_gantt(obs) == runtime_gantt(result)

    def test_unused_observer_rejected(self):
        from repro.errors import RuntimeModelError

        with pytest.raises(Exception):
            trace_to_vcd(TraceObserver())
        with pytest.raises(ValueError):
            gantt_from_observer(GanttObserver())
        fresh = MetricsObserver()
        for query in (fresh.miss_summary, fresh.response_times,
                      fresh.processor_utilization, fresh.frame_makespans):
            with pytest.raises(RuntimeModelError):
                query()


def _records_only_case(app):
    if app == "fms":
        net = build_fms_network()
        graph = derive_task_graph(net, fms_wcets())
        schedule = list_schedule(graph, 1, "alap")
        stim = fms_stimulus(net, graph.hyperperiod * 3)
    else:
        net = build_fft_network()
        graph = derive_task_graph(net, fft_wcets())
        schedule = list_schedule(graph, 2, "alap")
        stim = fft_stimulus([[k, k + 1j, -k, 0.5 * k] for k in range(3)])
    return net, schedule, stim


class TestFastModes:
    @pytest.mark.parametrize("app", ["fms", "fft"])
    def test_records_only_identical_timing(self, app):
        """Acceptance: records-only mode reproduces identical JobRecord
        timing on FMS/FFT while skipping kernels and channel states."""
        net, schedule, stim = _records_only_case(app)
        full = run_static_order(net, schedule, 3, stim)
        timing = run_static_order(net, schedule, 3, stim, records_only=True)
        assert timing.records == full.records
        assert timing.overhead_intervals == full.overhead_intervals
        # the data phase really was skipped
        assert timing.channel_logs == {}
        assert timing.external_outputs == {}
        assert list(timing.trace) == []
        assert full.channel_logs  # sanity: the full run did produce data

    @pytest.mark.parametrize("app", ["fms", "fft"])
    def test_records_only_identical_under_jitter(self, app):
        net, schedule, stim = _records_only_case(app)
        full = run_static_order(
            net, schedule, 2, stim, execution_time=jittered_execution(11))
        timing = run_static_order(
            net, schedule, 2, stim, execution_time=jittered_execution(11),
            records_only=True)
        assert timing.records == full.records

    def test_collect_records_false_identical_observables(self):
        net, schedule, stim = _records_only_case("fms")
        full = run_static_order(net, schedule, 3, stim)
        lean = run_static_order(net, schedule, 3, stim, collect_records=False)
        assert lean.records == []
        assert lean.observable() == full.observable()
        assert list(lean.trace) == list(full.trace)

    def test_observers_fire_in_records_only_mode(self):
        obs = MetricsObserver()
        net, schedule, stim = _records_only_case("fft")
        full = run_static_order(net, schedule, 3, stim)
        run_static_order(net, schedule, 3, stim, records_only=True,
                         observers=[obs])
        assert obs.miss_summary() == miss_summary(full)

    def test_records_only_results_refuse_observable(self):
        """A records_only result has no data phase — comparing its (empty)
        observable would mask real divergences."""
        from repro.errors import RuntimeModelError

        net, schedule, stim = _records_only_case("fft")
        timing = run_static_order(net, schedule, 2, stim, records_only=True)
        with pytest.raises(RuntimeModelError):
            timing.observable()

    def test_non_record_observer_keeps_fast_path(self):
        """An observer that never overrides on_record must not force record
        construction when collect_records=False.

        The timing loop builds records inline through ``object.__new__``
        (aliased as ``executor._obj_new``), so the spy wraps that alias:
        any ``JobRecord`` allocation at all would be caught.
        """
        import repro.runtime.executor as executor_module

        overheads_seen = []

        class ProgressObserver(ExecutionObserver):
            def on_overhead(self, frame, start, end):
                overheads_seen.append(frame)

        allocated = []
        real_new = executor_module._obj_new

        def spy(cls):
            if cls is JobRecord:
                allocated.append(cls)
            return real_new(cls)

        net, schedule, stim = _records_only_case("fft")
        try:
            executor_module._obj_new = spy
            run_static_order(
                net, schedule, 2, stim,
                observers=[ProgressObserver()], collect_records=False,
                overheads=OverheadModel.create(
                    first_frame_arrival=5, steady_frame_arrival=5),
            )
        finally:
            executor_module._obj_new = real_new
        assert allocated == []      # no record was ever built
        assert overheads_seen       # but the observer still got its events

        # Positive control: the same spy does observe allocations when
        # records are collected, so the empty list above is meaningful.
        try:
            executor_module._obj_new = spy
            result = run_static_order(net, schedule, 2, stim)
        finally:
            executor_module._obj_new = real_new
        assert len(allocated) == len(result.records) > 0

    def test_uncollected_results_refuse_record_queries(self):
        """A collect_records=False result must not silently report zeros."""
        from repro.errors import RuntimeModelError

        net, schedule, stim = _records_only_case("fft")
        lean = run_static_order(net, schedule, 2, stim, collect_records=False)
        for query in (lean.misses, lean.executed, lean.false_jobs,
                      lean.makespan):
            with pytest.raises(RuntimeModelError):
                query()
        with pytest.raises(RuntimeModelError):
            miss_summary(lean)
        with pytest.raises(RuntimeModelError):
            replay(lean, MetricsObserver())
        from repro.runtime import jobs_of_process
        with pytest.raises(RuntimeModelError):
            jobs_of_process(lean, "FFT")

    def test_streaming_observers_without_record_retention(self):
        """collect_records=False still feeds observers every record —
        streaming aggregation with an empty result.records."""
        obs = MetricsObserver()
        net, schedule, stim = _records_only_case("fft")
        full = run_static_order(net, schedule, 3, stim)
        lean = run_static_order(net, schedule, 3, stim,
                                collect_records=False, observers=[obs])
        assert lean.records == []
        assert obs.miss_summary() == miss_summary(full)
        assert lean.observable() == full.observable()


class TestObserverReuse:
    def test_run_start_resets_state(self):
        """One observer instance reused across runs holds only the last
        run's streams — no cross-run mixing."""
        records_obs = RecordsObserver()
        metrics_obs = MetricsObserver()
        trace_obs = TraceObserver()
        gantt_obs = GanttObserver()
        observers = [records_obs, metrics_obs, trace_obs, gantt_obs]
        ov = OverheadModel.create(first_frame_arrival=10, steady_frame_arrival=5)
        fig1_run(observers, overheads=ov)
        result = fig1_run(observers, overheads=ov)

        assert records_obs.records == result.records
        assert records_obs.overhead_intervals == result.overhead_intervals
        assert metrics_obs.miss_summary() == miss_summary(result)
        assert metrics_obs.total_jobs == len(result.records)
        assert trace_to_vcd(trace_obs) == runtime_result_to_vcd(result)
        assert gantt_from_observer(gantt_obs) == runtime_gantt(result)


class TestJobRecordConstructor:
    def test_from_fields_equals_public_constructor(self):
        kw = dict(
            process="p", frame=1, k_frame=2, global_k=12, processor=0,
            release=Time(5), start=Time(6), end=Time(7), deadline=Time(9),
            is_false=False, is_server=True,
        )
        assert JobRecord._from_fields(**kw) == JobRecord(**kw)

    def test_field_guard_is_in_sync(self):
        from dataclasses import fields
        from repro.runtime.executor import _JOB_RECORD_FIELDS

        assert tuple(f.name for f in fields(JobRecord)) == _JOB_RECORD_FIELDS

    def test_hot_loop_records_carry_exact_field_set(self):
        """The timing loop builds records through an inline ``__dict__``
        literal; if ``JobRecord`` gains a field, the import-time guard only
        covers ``_from_fields`` — this pins the inline literal too, by
        checking a record built by a real run attribute for attribute."""
        from dataclasses import fields

        net, schedule, stim = _records_only_case("fft")
        result = run_static_order(net, schedule, 1, stim)
        expected = tuple(f.name for f in fields(JobRecord))
        for rec in result.records[:3]:
            assert tuple(vars(rec)) == expected
            rebuilt = JobRecord(**vars(rec))
            assert rebuilt == rec
