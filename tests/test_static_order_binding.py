"""Tests for the arrival binding of the static-order policy (Section IV).

These pin down the subtlest part of the paper: which server-job slot handles
a real sporadic arrival, including arrivals exactly on window boundaries.
"""

from fractions import Fraction

import pytest

from repro.core import Stimulus
from repro.errors import RuntimeModelError
from repro.runtime.static_order import ArrivalBinding, FramePlan, served_horizon
from repro.scheduling import list_schedule
from repro.taskgraph import derive_task_graph


def binding(net, arrivals, n_frames=3, cmds=(1, 2, 3, 4, 5, 6)):
    stim = Stimulus(
        input_samples={"cmd": list(cmds)},
        sporadic_arrivals={"config": arrivals},
    )
    g = derive_task_graph(net, {"sensor": 10, "sink": 10, "config": 10})
    return ArrivalBinding(net, g.hyperperiod, n_frames, stim), g


class TestBindingHighPriority:
    """config -> sensor (p -> u): windows are right-closed (a, b]."""

    def test_mid_window_arrival(self, sporadic_network):
        b, g = binding(sporadic_network, [50])
        # H = 200; server period = T_u(sensor) = 100; arrival 50 in (0, 100]
        # -> frame 0, subset 2 (b=100).
        found = b.lookup("config", 0, 2, 1)
        assert found is not None and found.time == 50

    def test_boundary_arrival_included_right(self, sporadic_network):
        # arrival exactly at b=100 belongs to the window ending at 100.
        b, g = binding(sporadic_network, [100])
        found = b.lookup("config", 0, 2, 1)
        assert found is not None and found.time == 100

    def test_arrival_at_zero(self, sporadic_network):
        # (a,b] with b=0: arrival at exactly 0 is served by subset 1 frame 0.
        b, g = binding(sporadic_network, [0])
        found = b.lookup("config", 0, 1, 1)
        assert found is not None

    def test_frame_boundary_arrival(self, sporadic_network):
        # arrival exactly at 200 (= H) -> window ending 200 -> frame 1 subset 1.
        b, g = binding(sporadic_network, [200])
        assert b.lookup("config", 1, 1, 1) is not None
        assert b.lookup("config", 0, 1, 1) is None

    def test_two_arrivals_same_window_get_slots_in_order(self, sporadic_network):
        # 110 and 130 share window (100, 200] whose subset arrives at b=200,
        # i.e. frame 1 subset 1.
        b, g = binding(sporadic_network, [110, 130])
        s1 = b.lookup("config", 1, 1, 1)
        s2 = b.lookup("config", 1, 1, 2)
        assert s1.time == 110 and s2.time == 130
        assert s1.global_k == 1 and s2.global_k == 2

    def test_unused_slots_are_false(self, sporadic_network):
        b, g = binding(sporadic_network, [50])
        assert b.lookup("config", 0, 2, 2) is None
        assert b.lookup("config", 0, 1, 1) is None

    def test_global_k_counts_across_frames(self, sporadic_network):
        b, g = binding(sporadic_network, [50, 350, 390])
        # 350 and 390 both fall in (300, 400] -> frame 2, subset 1 (b=400).
        assert b.lookup("config", 0, 2, 1).global_k == 1
        assert b.lookup("config", 2, 1, 1).global_k == 2
        assert b.lookup("config", 2, 1, 2).global_k == 3


class TestBindingLowPriority:
    """sensor -> config (u -> p): windows are left-closed [a, b)."""

    def test_boundary_arrival_deferred(self, low_priority_sporadic_network):
        # arrival exactly at 100 belongs to [100, 200) -> subset 3 (b=200).
        b, g = binding(low_priority_sporadic_network, [100])
        assert b.lookup("config", 0, 2, 1) is None
        found = b.lookup("config", 1, 1, 1)
        # b=200 -> frame 1 subset 1
        assert found is not None and found.time == 100

    def test_arrival_at_zero_deferred_to_subset2(self, low_priority_sporadic_network):
        b, g = binding(low_priority_sporadic_network, [0])
        assert b.lookup("config", 0, 1, 1) is None
        assert b.lookup("config", 0, 2, 1) is not None

    def test_mid_window_same_as_high_priority(self, low_priority_sporadic_network):
        b, g = binding(low_priority_sporadic_network, [50])
        assert b.lookup("config", 0, 2, 1).time == 50


class TestDropsAndErrors:
    def test_arrival_beyond_frames_dropped(self, sporadic_network):
        b, g = binding(sporadic_network, [550], n_frames=3)
        # H=200, served horizon ends at window b <= 600; arrival 550 is in
        # (500, 600] -> frame 2 subset 6? server period 100, subsets 1..2 per
        # frame... b=600 -> frame 3 >= n_frames -> dropped.
        dropped = b.dropped()
        assert len(dropped) == 1 and dropped[0].time == 550

    def test_served_listing(self, sporadic_network):
        b, g = binding(sporadic_network, [50, 350])
        assert [x.time for x in b.served()] == [50, 350]

    def test_needs_positive_frames(self, sporadic_network):
        with pytest.raises(RuntimeModelError):
            binding(sporadic_network, [], n_frames=0)


class TestServedHorizon:
    def test_with_sporadics(self, sporadic_network):
        g = derive_task_graph(
            sporadic_network, {"sensor": 10, "sink": 10, "config": 10}
        )
        # H = 200, server period = 100 -> 3 frames serve up to 500.
        assert served_horizon(sporadic_network, g.hyperperiod, 3) == 500

    def test_without_sporadics(self, pair_network):
        assert served_horizon(pair_network, Fraction(100), 3) == 300


class TestFramePlan:
    def test_orders_follow_schedule(self, sporadic_network):
        g = derive_task_graph(
            sporadic_network, {"sensor": 10, "sink": 10, "config": 10}
        )
        s = list_schedule(g, 2)
        plan = FramePlan.from_schedule(s)
        assert plan.processors == 2
        flat = [p.job_index for row in plan.orders for p in row]
        assert sorted(flat) == list(range(len(g)))

    def test_per_process_count(self, sporadic_network):
        g = derive_task_graph(
            sporadic_network, {"sensor": 10, "sink": 10, "config": 10}
        )
        plan = FramePlan.from_schedule(list_schedule(g, 1))
        counts = plan.per_process_count()
        assert counts == {"sensor": 2, "sink": 1, "config": 4}
