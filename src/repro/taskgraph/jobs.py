"""Jobs: the nodes of a task graph (Definition 3.1).

A job is the 5-tuple ``Ji = (pi, ki, Ai, Di, Ci)``:

* ``pi`` — owning process,
* ``ki`` — invocation count (1-based),
* ``Ai ∈ Q≥0`` — arrival time,
* ``Di ∈ Q+`` — required (absolute deadline) time,
* ``Ci ∈ Q+`` — worst-case execution time.

Jobs derived from sporadic processes are *server jobs* (Section III-A /
Fig. 2); they carry their subset bookkeeping (which user period they serve
and their position ``t`` within the subset) so the online policy can map
run-time sporadic arrivals onto them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

from ..core.platform import ProcessorClass
from ..core.timebase import Time, as_positive_time, time_str
from ..core.trusted import check_trusted_constructor

#: Canonical per-class WCET table: name-sorted ``(class name, Ci)`` pairs.
WcetTable = Tuple[Tuple[str, Time], ...]


@dataclass(frozen=True)
class Job:
    """One node of a task graph.

    Attributes
    ----------
    process:
        Name of the owning process ``pi`` (for server jobs: the *sporadic*
        process's name — the server process ``p'`` is imaginary and exists
        only to define arrivals).
    k:
        Invocation count ``ki`` (1-based, counted per process over the frame).
    arrival:
        ``Ai`` — arrival relative to the frame start.
    deadline:
        ``Di`` — absolute required time relative to the frame start
        (already truncated to the hyperperiod by the derivation).
    wcet:
        ``Ci``.
    is_server:
        True when the job is a periodic-server stand-in for a sporadic job.
    subset_index:
        For server jobs: 1-based index ``n`` of the server subset (the user
        period this subset serves); ``None`` for ordinary jobs.
    slot:
        For server jobs: 1-based position ``t`` within the subset — the job
        represents the ``t``-th real sporadic invocation of its window.
    wcet_by_class:
        Optional per-processor-class WCET table as name-sorted
        ``(class name, Ci)`` pairs.  When present, ``wcet`` is the
        conservative worst case over the classes (the scalar every
        platform-blind computation keeps using) and
        :meth:`wcet_on` resolves the class-specific value; when absent
        the job is class-agnostic and classes scale ``wcet`` by their
        speed.
    """

    process: str
    k: int
    arrival: Time
    deadline: Time
    wcet: Time
    is_server: bool = False
    subset_index: Optional[int] = None
    slot: Optional[int] = None
    wcet_by_class: Optional[WcetTable] = None

    def __post_init__(self) -> None:
        if self.wcet_by_class is not None:
            object.__setattr__(
                self, "wcet_by_class",
                normalize_wcet_table(self.wcet_by_class, self.name),
            )
        if self.k < 1:
            raise ValueError("job invocation count k is 1-based")
        if self.arrival < 0:
            raise ValueError(f"job {self.name}: arrival must be non-negative")
        if self.wcet <= 0:
            raise ValueError(f"job {self.name}: WCET must be positive")
        if self.deadline <= self.arrival:
            raise ValueError(
                f"job {self.name}: deadline {self.deadline} must exceed "
                f"arrival {self.arrival}"
            )
        if self.is_server and (self.subset_index is None or self.slot is None):
            raise ValueError(f"server job {self.name} needs subset_index and slot")

    @classmethod
    def _of(
        cls,
        process: str,
        k: int,
        arrival: Time,
        deadline: Time,
        wcet: Time,
        is_server: bool = False,
        subset_index: Optional[int] = None,
        slot: Optional[int] = None,
        wcet_by_class: Optional[WcetTable] = None,
    ) -> "Job":
        """Trusted constructor for the derivation hot path.

        Skips the frozen-dataclass ``__setattr__`` guards and the
        ``__post_init__`` validation: the tick-domain derivation has already
        established ``k >= 1``, ``0 <= arrival < deadline`` and ``wcet > 0``
        on integers before converting back to rationals.  The explicit field
        list is cross-checked against the dataclass at import time (below),
        so adding a field to ``Job`` fails loudly here instead of silently
        building incomplete jobs.
        """
        job = object.__new__(cls)
        job.__dict__.update({
            "process": process,
            "k": k,
            "arrival": arrival,
            "deadline": deadline,
            "wcet": wcet,
            "is_server": is_server,
            "subset_index": subset_index,
            "slot": slot,
            "wcet_by_class": wcet_by_class,
        })
        return job

    @property
    def name(self) -> str:
        """Paper notation ``p[k]``."""
        return f"{self.process}[{self.k}]"

    def wcet_on(self, cls: ProcessorClass) -> Time:
        """The job's WCET when placed on processor class *cls*.

        An explicit table entry is authoritative; otherwise the scalar
        ``wcet`` scales by the class speed (exact rational division).
        A speed-1 class returns ``wcet`` itself — same object, so the
        degenerate platform stays bit-identical to the homogeneous path.
        """
        if self.wcet_by_class is not None:
            for name, value in self.wcet_by_class:
                if name == cls.name:
                    return value
            raise KeyError(
                f"job {self.name} has no WCET for processor class "
                f"{cls.name!r} (table covers "
                f"{[n for n, _ in self.wcet_by_class]})"
            )
        if cls.speed == 1:
            return self.wcet
        return self.wcet / cls.speed

    @property
    def laxity(self) -> Time:
        """Slack ``Di - Ai - Ci`` of the job in isolation."""
        return self.deadline - self.arrival - self.wcet

    def describe(self) -> str:
        """Fig. 3 node label: ``p[k] (Ai, Di, Ci)``."""
        return (
            f"{self.name} ({time_str(self.arrival)},"
            f"{time_str(self.deadline)},{time_str(self.wcet)})"
        )

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.describe()


def normalize_wcet_table(
    table: "Mapping[str, Time] | WcetTable", what: str
) -> WcetTable:
    """Canonicalise a per-class WCET table to name-sorted positive pairs."""
    pairs = (
        tuple(sorted(table.items()))
        if isinstance(table, Mapping)
        else tuple(tuple(p) for p in table)
    )
    out = []
    seen = set()
    for pair in pairs:
        if len(pair) != 2 or not isinstance(pair[0], str) or not pair[0]:
            raise ValueError(
                f"{what}: WCET table entries are (class name, Ci) pairs, "
                f"got {pair!r}"
            )
        name, value = pair
        if name in seen:
            raise ValueError(f"{what}: duplicate WCET table class {name!r}")
        seen.add(name)
        out.append((name, as_positive_time(value, f"{what} WCET on {name!r}")))
    if not out:
        raise ValueError(f"{what}: WCET table must not be empty")
    return tuple(sorted(out))


_JOB_FIELDS = (
    "process", "k", "arrival", "deadline", "wcet",
    "is_server", "subset_index", "slot", "wcet_by_class",
)
check_trusted_constructor(
    Job, _JOB_FIELDS, Job._of,
    dict(process="p", k=1, arrival=Time(0), deadline=Time(1), wcet=Time(1)),
)
