"""E10 — tick-domain derivation at 40 s hyperperiods (Fig. 1 + FMS).

The Section V-B pain point from the derivation side: building the task
graph of a long-hyperperiod instance.  PR 1 moved scheduling/simulation to
the integer tick domain; this experiment measures the derivation pipeline
(invocation simulation, job construction, edge generation, transitive
reduction) after its own tick-domain port:

* the Fig. 1 network derived over a 40 s horizon (200 frames of its 200 ms
  hyperperiod — 2 000 jobs);
* the 40 s-hyperperiod FMS variant (2 798 jobs), the graph the paper found
  too expensive to generate code for.

Structural assertions pin the derived graphs (job counts, reduction
invariant, per-frame shape) so the speed path cannot drift semantically;
bit-exactness against the Fraction reference is enforced separately by
``tests/test_tick_equivalence.py``.
"""

import pytest

from repro.analysis import ExperimentReport
from repro.apps import build_fig1_network, build_fms_network, fig1_wcets, fms_wcets
from repro.taskgraph import derive_task_graph

FIG1_40S_HORIZON = 40_000  # ms: 200 frames of the 200 ms hyperperiod


@pytest.mark.experiment("E10")
def test_fig1_40s_derivation(benchmark):
    net = build_fig1_network()
    wcets = fig1_wcets()

    graph = benchmark(derive_task_graph, net, wcets, FIG1_40S_HORIZON)

    report = ExperimentReport(
        "E10 tick-domain derivation (Fig. 1 @ 40 s)", "Section III-A / V-B"
    )
    report.add("horizon (ms)", 40_000, int(graph.hyperperiod))
    report.add("jobs", 10 * 200, len(graph))
    report.add("reduced", True, graph.is_transitively_reduced())
    report.show()

    assert len(graph) == 2000
    assert int(graph.hyperperiod) == FIG1_40S_HORIZON
    assert graph.is_transitively_reduced()
    # Same per-frame shape as the Fig. 3 graph, repeated 200x.
    assert len(graph.jobs_of("CoefB")) == 2 * 200
    assert len(graph.jobs_of("FilterA")) == 2 * 200


@pytest.mark.experiment("E10")
def test_fms_40s_derivation(benchmark):
    net = build_fms_network(reduced_hyperperiod=False)
    wcets = fms_wcets()

    graph = benchmark(derive_task_graph, net, wcets)

    report = ExperimentReport(
        "E10 tick-domain derivation (FMS @ 40 s)", "Section V-B"
    )
    report.add("hyperperiod (ms)", 40_000, int(graph.hyperperiod))
    report.add("jobs", "a few thousands", len(graph))
    report.add("edges", "-", graph.edge_count)
    report.add("reduced", True, graph.is_transitively_reduced())
    report.show()

    assert len(graph) == 2798
    assert int(graph.hyperperiod) == 40_000
    assert graph.is_transitively_reduced()
