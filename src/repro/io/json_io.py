"""JSON-dict interchange for task graphs, schedules and network topologies.

The authors' toolchain [10] passes artifacts between a compiler, a
scheduler and a runtime as files; this module provides the equivalent
interchange layer so the compile-time flow can be split across tools or
stored next to experiment results:

* task graphs and static schedules round-trip **losslessly** (rational
  times are serialised as ``"num/den"`` strings);
* networks are serialised **structurally** (processes, generators,
  channels, priorities, external channels).  Behaviours are code, so
  deserialisation takes a *kernel registry* mapping process names to
  kernels — unknown names get no-op kernels, which is sufficient for every
  scheduling-side use.
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any, Callable, Dict, List, Mapping, Optional

from ..core.channels import ChannelKind
from ..core.network import Network
from ..core.process import JobContext
from ..core.timebase import Time, as_time
from ..errors import FPPNError
from ..taskgraph.graph import TaskGraph
from ..taskgraph.jobs import Job
from ..scheduling.schedule import ScheduledJob, StaticSchedule

FORMAT_VERSION = 1


class FormatError(FPPNError):
    """A serialized artifact is malformed or has an unsupported version."""


def _time_out(t: Optional[Time]) -> Optional[str]:
    if t is None:
        return None
    return f"{t.numerator}/{t.denominator}"


def _time_in(value: Any, what: str) -> Time:
    try:
        return as_time(value)
    except (TypeError, ValueError) as exc:
        raise FormatError(f"bad time value for {what}: {value!r}") from exc


# ---------------------------------------------------------------------------
# task graphs
# ---------------------------------------------------------------------------
def task_graph_to_dict(graph: TaskGraph) -> Dict[str, Any]:
    """Lossless dict form of a task graph."""
    return {
        "format": "fppn-taskgraph",
        "version": FORMAT_VERSION,
        "hyperperiod": _time_out(graph.hyperperiod),
        "jobs": [
            {
                "process": j.process,
                "k": j.k,
                "arrival": _time_out(j.arrival),
                "deadline": _time_out(j.deadline),
                "wcet": _time_out(j.wcet),
                "is_server": j.is_server,
                "subset_index": j.subset_index,
                "slot": j.slot,
            }
            for j in graph.jobs
        ],
        "edges": [list(e) for e in graph.edges()],
    }


def task_graph_from_dict(data: Mapping[str, Any]) -> TaskGraph:
    """Inverse of :func:`task_graph_to_dict`."""
    _check_header(data, "fppn-taskgraph")
    jobs = []
    for i, row in enumerate(data.get("jobs", [])):
        try:
            jobs.append(
                Job(
                    process=row["process"],
                    k=int(row["k"]),
                    arrival=_time_in(row["arrival"], f"job {i} arrival"),
                    deadline=_time_in(row["deadline"], f"job {i} deadline"),
                    wcet=_time_in(row["wcet"], f"job {i} wcet"),
                    is_server=bool(row.get("is_server", False)),
                    subset_index=row.get("subset_index"),
                    slot=row.get("slot"),
                )
            )
        except KeyError as exc:
            raise FormatError(f"job {i} missing field {exc}") from exc
    hyper = data.get("hyperperiod")
    edges = [tuple(e) for e in data.get("edges", [])]
    return TaskGraph(
        jobs, edges,
        None if hyper is None else _time_in(hyper, "hyperperiod"),
    )


# ---------------------------------------------------------------------------
# schedules
# ---------------------------------------------------------------------------
def schedule_to_dict(schedule: StaticSchedule) -> Dict[str, Any]:
    """Lossless dict form of a static schedule (references jobs by name)."""
    return {
        "format": "fppn-schedule",
        "version": FORMAT_VERSION,
        "processors": schedule.processors,
        "graph": task_graph_to_dict(schedule.graph),
        "entries": [
            {
                "job": schedule.graph.jobs[e.job_index].name,
                "processor": e.processor,
                "start": _time_out(e.start),
            }
            for e in schedule.entries
        ],
    }


def schedule_from_dict(data: Mapping[str, Any]) -> StaticSchedule:
    """Inverse of :func:`schedule_to_dict`."""
    _check_header(data, "fppn-schedule")
    graph = task_graph_from_dict(data["graph"])
    entries = []
    for row in data.get("entries", []):
        entries.append(
            ScheduledJob(
                graph.index_of(row["job"]),
                int(row["processor"]),
                _time_in(row["start"], f"start of {row['job']}"),
            )
        )
    return StaticSchedule(graph, int(data["processors"]), entries)


# ---------------------------------------------------------------------------
# networks (structural)
# ---------------------------------------------------------------------------
def network_to_dict(network: Network) -> Dict[str, Any]:
    """Structural dict form of a network (behaviours are not serialised)."""
    processes = []
    for name, proc in network.processes.items():
        gen = proc.generator
        processes.append(
            {
                "name": name,
                "sporadic": proc.is_sporadic,
                "period": _time_out(gen.period),
                "deadline": _time_out(gen.deadline),
                "burst": gen.burst,
                "offset": _time_out(getattr(gen, "offset", Fraction(0)))
                if not proc.is_sporadic else None,
            }
        )
    return {
        "format": "fppn-network",
        "version": FORMAT_VERSION,
        "name": network.name,
        "processes": processes,
        "channels": [
            {
                "name": c.name,
                "kind": c.kind.value,
                "writer": c.writer,
                "reader": c.reader,
            }
            for c in network.channels.values()
        ],
        "priorities": sorted(list(p) for p in network.priorities),
        "external_inputs": [
            {"name": n, "owner": s.owner} for n, s in network.external_inputs.items()
        ],
        "external_outputs": [
            {"name": n, "owner": s.owner} for n, s in network.external_outputs.items()
        ],
    }


KernelRegistry = Mapping[str, Callable[[JobContext], None]]


def network_from_dict(
    data: Mapping[str, Any],
    kernels: Optional[KernelRegistry] = None,
) -> Network:
    """Rebuild a network from its structural dict.

    *kernels* maps process names to kernel callables; processes without an
    entry get a no-op kernel (adequate for derivation/scheduling, which
    never execute behaviours).
    """
    _check_header(data, "fppn-network")
    kernels = kernels or {}
    net = Network(data.get("name", "network"))
    for row in data.get("processes", []):
        name = row["name"]
        kernel = kernels.get(name)
        if row.get("sporadic"):
            net.add_sporadic(
                name,
                min_period=_time_in(row["period"], f"{name} period"),
                deadline=_time_in(row["deadline"], f"{name} deadline"),
                burst=int(row.get("burst", 1)),
                kernel=kernel,
            )
        else:
            net.add_periodic(
                name,
                period=_time_in(row["period"], f"{name} period"),
                deadline=_time_in(row["deadline"], f"{name} deadline"),
                burst=int(row.get("burst", 1)),
                offset=_time_in(row.get("offset") or 0, f"{name} offset"),
                kernel=kernel,
            )
    for row in data.get("channels", []):
        net.connect(
            row["writer"], row["reader"], row["name"],
            kind=ChannelKind(row["kind"]),
        )
    for hi, lo in data.get("priorities", []):
        net.add_priority(hi, lo)
    for row in data.get("external_inputs", []):
        net.add_external_input(row["owner"], row["name"])
    for row in data.get("external_outputs", []):
        net.add_external_output(row["owner"], row["name"])
    return net


# ---------------------------------------------------------------------------
# file helpers
# ---------------------------------------------------------------------------
def save_json(data: Mapping[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_json(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _check_header(data: Mapping[str, Any], expected: str) -> None:
    fmt = data.get("format")
    if fmt != expected:
        raise FormatError(f"expected format {expected!r}, got {fmt!r}")
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise FormatError(
            f"unsupported {expected} version {version!r} "
            f"(this library reads version {FORMAT_VERSION})"
        )
