"""Tests for the stochastic schedule-priority search."""

from fractions import Fraction

import pytest

from repro.apps import build_fig1_network, random_network, random_wcets
from repro.errors import InfeasibleError
from repro.scheduling import (
    find_feasible_schedule_with_search,
    list_schedule,
    search_priorities,
)
from repro.taskgraph import derive_task_graph
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.jobs import Job


def J(name, k=1, a=0, d=1000, c=10):
    return Job(name, k, Fraction(a), Fraction(d), Fraction(c))


def tight_instance():
    """An instance where plain heuristics can fail: two processors, six
    jobs with interlocking deadlines that require a non-obvious order."""
    jobs = [
        J("a", d=30, c=10),
        J("b", d=30, c=10),
        J("c", d=30, c=10),
        J("d", d=60, c=30),
        J("e", d=45, c=15),
        J("f", d=60, c=15),
    ]
    return TaskGraph(jobs, [], Fraction(60))


class TestSearch:
    def test_feasible_on_easy_instance(self):
        g = derive_task_graph(build_fig1_network(), 25)
        result = search_priorities(g, 2, seed=1)
        assert result.feasible
        assert result.schedule.is_feasible()

    def test_objective_is_zero_when_feasible(self):
        g = derive_task_graph(build_fig1_network(), 25)
        result = search_priorities(g, 2, seed=1)
        assert result.objective[0] == 0

    def test_reports_iterations_and_restarts(self):
        g = derive_task_graph(build_fig1_network(), 25)
        result = search_priorities(g, 2, seed=1)
        assert result.restarts >= 1
        assert result.iterations >= 0

    def test_deterministic_given_seed(self):
        g = tight_instance()
        a = search_priorities(g, 2, seed=7)
        b = search_priorities(g, 2, seed=7)
        assert a.ranks == b.ranks
        assert a.objective == b.objective

    def test_infeasible_instance_reports_best_effort(self):
        # One processor, two 10-cost jobs due at 10: impossible.
        g = TaskGraph([J("a", d=10, c=10), J("b", d=10, c=10)], [], Fraction(10))
        result = search_priorities(g, 1, seed=0, max_iterations=50)
        assert not result.feasible
        assert result.objective[0] >= 1

    def test_search_improves_on_bad_seed_heuristic(self):
        """Seeding only from 'arrival' (which fails here) the swap search
        must still find the feasible order."""
        g = tight_instance()
        bad = list_schedule(g, 2, "arrival")
        # sanity: the pool contains at least one failing heuristic order
        result = search_priorities(
            g, 2, seed=3, restarts=1, seeds_from=["arrival"],
            max_iterations=1500,
        )
        assert result.feasible or bad.is_feasible()

    def test_wrapper_returns_schedule(self):
        g = derive_task_graph(build_fig1_network(), 25)
        s = find_feasible_schedule_with_search(g, 2, seed=2)
        assert s.is_feasible()

    def test_wrapper_raises_on_hopeless_instance(self):
        g = TaskGraph([J("a", d=10, c=10), J("b", d=10, c=10)], [], Fraction(10))
        with pytest.raises(InfeasibleError, match="search exhausted"):
            find_feasible_schedule_with_search(g, 1, max_iterations=40)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs_at_load_bound(self, seed):
        from repro.taskgraph import task_graph_load

        net = random_network(seed=seed, n_periodic=4, n_sporadic=1)
        wcets = random_wcets(net, seed=seed, utilization_target=0.6)
        g = derive_task_graph(net, wcets)
        m = task_graph_load(g).min_processors
        result = search_priorities(g, m, seed=seed, max_iterations=600)
        # search never does worse than the best heuristic alone
        from repro.scheduling import schedule_quality, available_heuristics

        best_heuristic = min(
            (schedule_quality(g, m, h).deadline_violations
             for h in available_heuristics()),
        )
        assert result.objective[0] <= best_heuristic
