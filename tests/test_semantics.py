"""Unit tests for the zero-delay semantics (Section II-B)."""

from fractions import Fraction

import pytest

from repro.core import (
    ChannelKind,
    Network,
    Stimulus,
    ZeroDelayExecutor,
    is_no_data,
    run_zero_delay,
)
from repro.core.trace import JobStart, Wait
from repro.errors import SemanticsError


def record_kernel(log, name):
    def kernel(ctx):
        log.append((name, ctx.k, ctx.now))

    return kernel


class TestInvocationSequence:
    def test_periodic_grouping(self, pair_network):
        ex = ZeroDelayExecutor(pair_network)
        seq = ex.invocation_sequence(250)
        assert [t for t, _ in seq] == [0, 100, 200]
        assert all(len(group) == 2 for _, group in seq)

    def test_sporadic_from_stimulus(self, sporadic_network):
        ex = ZeroDelayExecutor(sporadic_network)
        stim = Stimulus(sporadic_arrivals={"config": [50, 250]})
        seq = ex.invocation_sequence(300, stim)
        times = [t for t, _ in seq]
        assert Fraction(50) in times and Fraction(250) in times

    def test_sporadic_beyond_horizon_ignored(self, sporadic_network):
        ex = ZeroDelayExecutor(sporadic_network)
        stim = Stimulus(sporadic_arrivals={"config": [50, 999]})
        seq = ex.invocation_sequence(300, stim)
        all_invs = [i for _, group in seq for i in group]
        assert sum(1 for i in all_invs if i.process == "config") == 1

    def test_invalid_stimulus_rejected(self, pair_network):
        from repro.errors import EventError

        ex = ZeroDelayExecutor(pair_network)
        with pytest.raises(EventError, match="not sporadic"):
            ex.invocation_sequence(100, Stimulus(sporadic_arrivals={"producer": [0]}))


class TestTraceShape:
    def test_trace_is_waits_and_job_runs(self, pair_network):
        result = run_zero_delay(pair_network, 200)
        waits = result.trace.waits()
        assert waits == [0, 100]

    def test_job_order_respects_fp(self):
        log = []
        net = Network("fp")
        net.add_periodic("low", period=10, kernel=record_kernel(log, "low"))
        net.add_periodic("high", period=10, kernel=record_kernel(log, "high"))
        net.connect("high", "low", "c")
        net.add_priority("high", "low")
        net.validate()
        run_zero_delay(net, 30)
        names = [n for n, _, _ in log]
        assert names == ["high", "low"] * 3

    def test_unrelated_ties_broken_by_name(self):
        log = []
        net = Network("tie")
        net.add_periodic("zeta", period=10, kernel=record_kernel(log, "zeta"))
        net.add_periodic("alpha", period=10, kernel=record_kernel(log, "alpha"))
        net.validate()
        run_zero_delay(net, 10)
        assert [n for n, _, _ in log] == ["alpha", "zeta"]

    def test_burst_jobs_in_index_order(self):
        log = []
        net = Network("burst")
        net.add_periodic("b", period=10, burst=3, kernel=record_kernel(log, "b"))
        net.validate()
        run_zero_delay(net, 10)
        assert [k for _, k, _ in log] == [1, 2, 3]

    def test_job_start_end_markers(self, pair_network):
        result = run_zero_delay(pair_network, 100)
        starts = [a for a in result.trace if isinstance(a, JobStart)]
        assert [(s.process, s.k) for s in starts] == [("producer", 1), ("consumer", 1)]


class TestDataFlow:
    def test_fifo_pipeline(self, pair_network):
        result = run_zero_delay(pair_network, 300)
        assert result.channel_logs["c"] == [1, 2, 3]
        assert result.output_values("out") == [1, 3, 6]

    def test_blackboard_last_value_wins(self):
        net = Network("bb")
        net.add_periodic("w", period=10, burst=2, kernel=lambda ctx: ctx.write("b", ctx.k))
        net.add_periodic(
            "r", period=10,
            kernel=lambda ctx: ctx.write_output(ctx.read("b"), "o"),
        )
        net.connect("w", "r", "b", kind=ChannelKind.BLACKBOARD)
        net.add_priority("w", "r")
        net.add_external_output("r", "o")
        net.validate()
        result = run_zero_delay(net, 20)
        # reader sees the last value of each burst: 2 then 4
        assert result.output_values("o") == [2, 4]

    def test_multirate_reader_sees_no_data(self):
        seen = []
        net = Network("mr")
        net.add_periodic("slow", period=200, kernel=lambda ctx: ctx.write("c", ctx.k))
        net.add_periodic(
            "fast", period=100,
            kernel=lambda ctx: seen.append(is_no_data(ctx.read("c"))),
        )
        net.connect("slow", "fast", "c")
        net.add_priority("slow", "fast")
        net.validate()
        run_zero_delay(net, 400)
        # fast runs at 0,100,200,300; slow writes at 0,200
        assert seen == [False, True, False, True]

    def test_external_input_sample_indexing(self):
        got = []
        net = Network("ext")
        net.add_periodic("p", period=10, kernel=lambda ctx: got.append(ctx.read_input("i")))
        net.add_external_input("p", "i")
        net.validate()
        run_zero_delay(net, 30, Stimulus(input_samples={"i": ["a", "b"]}))
        assert got[:2] == ["a", "b"]
        assert is_no_data(got[2])  # job 3 has no sample

    def test_missing_sample_is_no_data(self):
        got = []
        net = Network("ext2")
        net.add_periodic("p", period=10, kernel=lambda ctx: got.append(ctx.read_input("i")))
        net.add_external_input("p", "i")
        net.validate()
        run_zero_delay(net, 30, Stimulus(input_samples={"i": ["only-one"]}))
        assert got[0] == "only-one"
        assert is_no_data(got[1]) and is_no_data(got[2])

    def test_feedback_loop_uses_previous_cycle_value(self):
        net = Network("fb")

        def fwd(ctx):
            g = ctx.read("gain")
            ctx.write("x", (1 if is_no_data(g) else g) * 10)

        def bwd(ctx):
            v = ctx.read("x")
            if not is_no_data(v):
                ctx.write("gain", v + 1)

        net.add_periodic("f", period=10, kernel=fwd)
        net.add_periodic("b", period=10, kernel=bwd)
        net.connect("f", "b", "x")
        net.connect("b", "f", "gain", kind=ChannelKind.BLACKBOARD)
        net.add_priority("f", "b")
        net.validate()
        result = run_zero_delay(net, 30)
        # cycle 1: gain absent -> x=10, gain:=11; cycle 2: x=110, gain:=111...
        assert result.channel_logs["x"] == [10, 110, 1110]


class TestResults:
    def test_job_count(self, pair_network):
        assert run_zero_delay(pair_network, 500).job_count == 10

    def test_observable_structure(self, pair_network):
        obs = run_zero_delay(pair_network, 100).observable()
        assert set(obs) == {"channels", "outputs"}
        assert obs["channels"]["c"] == [1]
        assert obs["outputs"]["out"] == [(1, 1)]

    def test_repeat_runs_identical(self, sporadic_network):
        stim = Stimulus(
            input_samples={"cmd": [2, 3]},
            sporadic_arrivals={"config": [40, 350]},
        )
        a = run_zero_delay(sporadic_network, 600, stim)
        b = run_zero_delay(sporadic_network, 600, stim)
        assert a.observable() == b.observable()

    def test_kernel_exception_wrapped_with_job_identity(self):
        def boom(ctx):
            raise ValueError("bug")

        net = Network("boom")
        net.add_periodic("p", period=10, kernel=boom)
        net.validate()
        with pytest.raises(SemanticsError, match=r"p\[1\] at t=0"):
            run_zero_delay(net, 10)

    def test_sporadic_same_time_as_user_ordered_by_fp(self, sporadic_network):
        # config -> sensor: at equal times, config runs first.
        stim = Stimulus(
            input_samples={"cmd": [5]},
            sporadic_arrivals={"config": [100]},
        )
        result = run_zero_delay(sporadic_network, 200, stim)
        # sensor job at t=100 must already see gain 5 -> writes 5 * k(=2) = 10
        assert result.channel_logs["data"] == [1, 10]
