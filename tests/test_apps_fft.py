"""Tests for the FFT streaming application (Section V-A, Fig. 5)."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import (
    build_fft_network,
    fft_stimulus,
    fft_wcets,
    reference_fft,
)
from repro.core import run_zero_delay
from repro.taskgraph import derive_task_graph, task_graph_load


@pytest.fixture(scope="module")
def net():
    return build_fft_network()


class TestStructure:
    def test_fourteen_processes(self, net):
        """generator + 3x4 grid + consumer = 14 (the paper's 14 jobs/frame)."""
        assert len(net.processes) == 14

    def test_uniform_period_and_deadline(self, net):
        for p in net.processes.values():
            assert p.period == 200 and p.deadline == 200

    def test_channel_count_matches_process_network(self, net):
        # 4 (gen->stage0) + 8 + 8 (butterfly fan) + 4 (stage2->consumer)
        assert len(net.channels) == 24

    def test_priorities_follow_dataflow(self, net):
        for c in net.channels.values():
            assert net.higher_priority(c.writer, c.reader)

    def test_task_graph_maps_one_to_one(self, net):
        """'the task graph maps one-to-one to the process-network graph'."""
        g = derive_task_graph(net, fft_wcets())
        assert len(g) == len(net.processes)
        graph_edges = {
            (g.jobs[i].process, g.jobs[j].process) for i, j in g.edges()
        }
        channel_edges = {c.endpoints for c in net.channels.values()}
        assert graph_edges == channel_edges


class TestNumerics:
    def test_known_vector(self, net):
        vec = [1 + 0j, 2 + 0j, 3 + 0j, 4 + 0j]
        result = run_zero_delay(net, 200, fft_stimulus([vec]))
        out = np.array(result.output_values("fft_out")[0])
        assert np.allclose(out, np.fft.fft(np.array(vec)))

    def test_impulse(self, net):
        result = run_zero_delay(net, 200, fft_stimulus([[1, 0, 0, 0]]))
        out = np.array(result.output_values("fft_out")[0])
        assert np.allclose(out, np.ones(4))

    def test_dc(self, net):
        result = run_zero_delay(net, 200, fft_stimulus([[1, 1, 1, 1]]))
        out = np.array(result.output_values("fft_out")[0])
        assert np.allclose(out, [4, 0, 0, 0])

    def test_stream_of_vectors(self, net):
        rng = np.random.RandomState(7)
        vecs = [list(rng.randn(4) + 1j * rng.randn(4)) for _ in range(6)]
        result = run_zero_delay(net, 1200, fft_stimulus(vecs))
        outs = result.output_values("fft_out")
        assert len(outs) == 6
        for out, vec in zip(outs, vecs):
            assert np.allclose(np.array(out), np.fft.fft(np.array(vec)))

    def test_reference_dft_agrees_with_numpy(self):
        vec = [1 + 2j, -1j, 0.5, 3]
        assert np.allclose(np.array(reference_fft(vec)), np.fft.fft(np.array(vec)))

    @given(st.lists(
        st.complex_numbers(max_magnitude=1e3, allow_nan=False, allow_infinity=False),
        min_size=4, max_size=4,
    ))
    @settings(max_examples=25, deadline=None)
    def test_network_equals_direct_dft(self, vec):
        network = build_fft_network()
        result = run_zero_delay(network, 200, fft_stimulus([vec]))
        out = np.array(result.output_values("fft_out")[0])
        assert np.allclose(out, np.array(reference_fft(vec)), atol=1e-6)

    def test_wrong_vector_size_rejected(self):
        with pytest.raises(ValueError):
            fft_stimulus([[1, 2, 3]])


class TestTiming:
    def test_paper_load(self, net):
        g = derive_task_graph(net, fft_wcets())
        assert task_graph_load(g).load == Fraction(93, 100)

    def test_wcet_scale(self):
        w1 = fft_wcets(1)
        w4 = fft_wcets(4)
        assert w4["generator"] == 4 * w1["generator"]
        assert w4["FFT2_1_2"] == 4 * w1["FFT2_1_2"]

    def test_scaled_network_load_drops_with_overhead(self):
        """E7 shape: coarser granularity shrinks relative overhead."""
        from repro.runtime import OverheadModel

        loads = []
        for scale in (1, 2, 4):
            network = build_fft_network(period=200 * scale)
            g = derive_task_graph(network, fft_wcets(scale))
            g_ov = OverheadModel.mppa_like().as_overhead_job(g, overhead=41)
            loads.append(task_graph_load(g_ov).load)
        assert loads[0] > loads[1] > loads[2]
        assert loads[0] > 1 > loads[2]
