"""Processes and the job-execution context.

Definition 2.2 associates each process with a deterministic automaton
``(lp0, Lp, Xp, Xp0, Ip, Op, Ap, Tp)``.  A *job execution run* is a non-empty
sequence of automaton steps returning to the initial location — informally,
one call of a software subroutine.

This module provides:

* :class:`JobContext` — the capability object handed to a running job.  All
  externally visible effects of a job (channel reads/writes, external sample
  accesses, traced assignments) go through it, which is what lets the library
  record exact execution traces and enforce endpoint discipline (a process
  may only read its input channels and write its output channels).
* :class:`Behavior` — strategy interface: how a process executes one job.
* :class:`KernelBehavior` — wraps a plain Python callable ``kernel(ctx)``;
  the ergonomic API used by the example applications.  Formally this is the
  one-location automaton whose single transition's action is the kernel.
* :class:`Process` — name + event generator + behavior + declared channel
  endpoints.

The full multi-location automaton implementation of Definition 2.2 lives in
:mod:`repro.core.automaton` and plugs in through the same
:class:`Behavior` interface.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional

from ..errors import ChannelError, SemanticsError
from .channels import (
    ChannelState,
    ExternalOutputState,
    NO_DATA,
)
from .events import EventGenerator
from .timebase import Time
from .trace import (
    Assign,
    ChannelRead,
    ChannelWrite,
    ExternalRead,
    ExternalWrite,
    LazyTrace,
    Trace,
)
from .trusted import check_trusted_constructor, check_trusted_rebind

# Hot-path aliases: every traced channel/variable action allocates one frozen
# dataclass, and the per-field ``object.__setattr__`` calls of the generated
# ``__init__`` dominate that allocation.  The context methods below build the
# actions by installing a complete ``__dict__`` in one step instead; the
# field lists are cross-checked at import time (bottom of this module).
_obj_new = object.__new__
_obj_setattr = object.__setattr__


class JobContext:
    """Execution context of one job run of one process.

    Parameters
    ----------
    process:
        Name of the running process.
    k:
        1-based invocation count; external samples accessed by this job use
        index ``[k]`` (Section II-A).
    now:
        Invocation time stamp of the job (the τ of its event).
    variables:
        The process's persistent variable store ``Xp`` (state survives across
        job runs — e.g. filter state).
    inputs / outputs:
        Channel states this process may read / write (internal channels).
    external_inputs:
        Mapping from external input channel name to the full sample mapping
        ``{k: value}`` supplied by the stimulus.
    external_outputs:
        Mapping from external output channel name to its runtime log.
    trace:
        Optional global trace to record actions into.
    """

    def __init__(
        self,
        process: str,
        k: int,
        now: Time,
        variables: Dict[str, Any],
        inputs: Mapping[str, ChannelState],
        outputs: Mapping[str, ChannelState],
        external_inputs: Mapping[str, Mapping[int, Any]],
        external_outputs: Mapping[str, ExternalOutputState],
        trace: Optional[Trace] = None,
    ) -> None:
        self.process = process
        self.k = k
        self.now = now
        self.vars = variables
        self._inputs = inputs
        self._outputs = outputs
        self._external_inputs = external_inputs
        self._external_outputs = external_outputs
        self._trace = trace
        # Bind the action sink once.  A LazyTrace takes compact tuples
        # (the simulator hot path — no Action allocation per read/write); a
        # plain Trace gets eagerly-built actions through its underlying
        # list append (one call frame less per action); other Trace
        # subclasses keep their overridden ``append``.
        self._compact_append = None
        if trace is None:
            self._trace_append = None
        elif trace.__class__ is LazyTrace:
            self._trace_append = None
            self._compact_append = trace.raw.append
        elif trace.__class__ is Trace:
            self._trace_append = trace.actions.append
        else:
            self._trace_append = trace.append
        #: Optional data-phase hook ``hook(channel, value)`` invoked on every
        #: internal channel write.  Installed by the runtime executor when an
        #: observer consumes ``on_channel_write`` events; ``None`` (the
        #: default) costs one identity check per write.
        self._on_write: Optional[Callable[[str, Any], None]] = None

    def _rebind(self, k: int, now: Time) -> "JobContext":
        """Trusted hot-loop rebinding: reuse this context for the next job.

        Only ``k`` and ``now`` vary between job instances of the same
        process within one run — the variable store, channel states,
        external sample maps and trace binding are run-constant per process.
        The invariant is enforced at import time by
        :func:`repro.core.trusted.check_trusted_rebind` (bottom of this
        module): adding a per-instance ``__init__`` parameter without
        updating this method fails the import loudly.
        """
        self.k = k
        self.now = now
        return self

    # -- internal channels ------------------------------------------------
    def read(self, channel: str) -> Any:
        """Read from an input channel (``x?c``).

        Returns :data:`repro.core.channels.NO_DATA` when no data is
        available (empty FIFO / unwritten blackboard) — reads never block.
        """
        state = self._inputs.get(channel)
        if state is None:
            raise ChannelError(
                f"process {self.process!r} has no input channel {channel!r}"
            )
        value = state.read()
        ca = self._compact_append
        if ca is not None:
            ca(("R", self.process, channel, value))
        else:
            ta = self._trace_append
            if ta is not None:
                act = _obj_new(ChannelRead)
                _obj_setattr(act, "__dict__", {
                    "process": self.process, "channel": channel, "value": value,
                })
                ta(act)
        return value

    def peek(self, channel: str) -> Any:
        """Non-destructive read of an input channel (not traced)."""
        state = self._inputs.get(channel)
        if state is None:
            raise ChannelError(
                f"process {self.process!r} has no input channel {channel!r}"
            )
        return state.peek()

    def write(self, channel: str, value: Any) -> None:
        """Write to an output channel (``x!c``)."""
        state = self._outputs.get(channel)
        if state is None:
            raise ChannelError(
                f"process {self.process!r} has no output channel {channel!r}"
            )
        state.write(value)
        ca = self._compact_append
        if ca is not None:
            ca(("W", self.process, channel, value))
        else:
            ta = self._trace_append
            if ta is not None:
                act = _obj_new(ChannelWrite)
                _obj_setattr(act, "__dict__", {
                    "process": self.process, "channel": channel, "value": value,
                })
                ta(act)
        if self._on_write is not None:
            self._on_write(channel, value)

    # -- external channels --------------------------------------------------
    def read_input(self, channel: Optional[str] = None) -> Any:
        """Read sample ``[k]`` from an external input (``x?[k]Ie``).

        With a single external input the channel name may be omitted.
        Returns :data:`NO_DATA` if the stimulus supplied no sample ``[k]``.
        """
        name = self._resolve_single(channel, self._external_inputs, "external input")
        samples = self._external_inputs[name]
        value = samples.get(self.k, NO_DATA)
        ca = self._compact_append
        if ca is not None:
            ca(("r", self.process, name, self.k, value))
        else:
            ta = self._trace_append
            if ta is not None:
                act = _obj_new(ExternalRead)
                _obj_setattr(act, "__dict__", {
                    "process": self.process, "channel": name,
                    "sample_index": self.k, "value": value,
                })
                ta(act)
        return value

    def write_output(self, value: Any, channel: Optional[str] = None) -> None:
        """Write sample ``[k]`` to an external output (``x![k]Oe``)."""
        name = self._resolve_single(channel, self._external_outputs, "external output")
        self._external_outputs[name].write(self.k, value)
        ca = self._compact_append
        if ca is not None:
            ca(("w", self.process, name, self.k, value))
        else:
            ta = self._trace_append
            if ta is not None:
                act = _obj_new(ExternalWrite)
                _obj_setattr(act, "__dict__", {
                    "process": self.process, "channel": name,
                    "sample_index": self.k, "value": value,
                })
                ta(act)

    def _resolve_single(
        self, channel: Optional[str], mapping: Mapping[str, Any], what: str
    ) -> str:
        if channel is not None:
            if channel not in mapping:
                raise ChannelError(
                    f"process {self.process!r} has no {what} {channel!r}"
                )
            return channel
        if len(mapping) != 1:
            raise ChannelError(
                f"process {self.process!r} has {len(mapping)} {what}s; "
                "specify the channel name explicitly"
            )
        return next(iter(mapping))

    # -- variables -----------------------------------------------------------
    def assign(self, variable: str, value: Any) -> None:
        """Traced variable assignment (``x := value``)."""
        self.vars[variable] = value
        ca = self._compact_append
        if ca is not None:
            ca(("A", self.process, variable, value))
        else:
            ta = self._trace_append
            if ta is not None:
                act = _obj_new(Assign)
                _obj_setattr(act, "__dict__", {
                    "process": self.process, "variable": variable, "value": value,
                })
                ta(act)

    def get(self, variable: str, default: Any = None) -> Any:
        """Read a process variable (untraced, like any expression evaluation)."""
        return self.vars.get(variable, default)


# Import-time guards for the hot paths above.  The ``__dict__`` literals in
# the context methods must track the action dataclasses field for field, and
# ``_rebind`` must keep reproducing fresh construction — both fail loudly
# here (at import, where a failure is cheap to diagnose) if they drift.
def _dict_built_action(cls):
    def make(**kwargs):
        act = _obj_new(cls)
        _obj_setattr(act, "__dict__", kwargs)
        return act
    make.__name__ = f"_dict_built_{cls.__name__}"
    return make


for _cls, _fields, _sample in (
    (ChannelRead, ("process", "channel", "value"),
     dict(process="p", channel="c", value=1)),
    (ChannelWrite, ("process", "channel", "value"),
     dict(process="p", channel="c", value=1)),
    (ExternalRead, ("process", "channel", "sample_index", "value"),
     dict(process="p", channel="c", sample_index=1, value=1)),
    (ExternalWrite, ("process", "channel", "sample_index", "value"),
     dict(process="p", channel="c", sample_index=1, value=1)),
    (Assign, ("process", "variable", "value"),
     dict(process="p", variable="x", value=1)),
):
    check_trusted_constructor(_cls, _fields, _dict_built_action(_cls), _sample)

check_trusted_rebind(
    JobContext,
    ("process", "k", "now", "variables", "inputs", "outputs",
     "external_inputs", "external_outputs", "trace"),
    dict(process="p", k=1, now=Time(0), variables={}, inputs={}, outputs={},
         external_inputs={}, external_outputs={}, trace=None),
    dict(k=2, now=Time(1)),
    JobContext._rebind,
)


class Behavior:
    """Strategy interface: execute one job run of a process."""

    def initial_variables(self) -> Dict[str, Any]:
        """Fresh copy of the initial variable valuation ``Xp0``."""
        return {}

    def run_job(self, ctx: JobContext) -> None:
        raise NotImplementedError

    def declared_reads(self) -> Optional[List[str]]:
        """Channel names this behavior reads, if statically known (else None)."""
        return None

    def declared_writes(self) -> Optional[List[str]]:
        return None


class KernelBehavior(Behavior):
    """A job run defined by a plain Python callable ``kernel(ctx)``.

    This is the one-transition automaton: initial location, one self-loop
    whose action is the kernel body.  The kernel must be deterministic —
    its outputs may depend only on ``ctx`` (channel data, sample index,
    invocation time, process variables).
    """

    def __init__(
        self,
        kernel: Callable[[JobContext], None],
        initial: Optional[Dict[str, Any]] = None,
    ) -> None:
        if not callable(kernel):
            raise TypeError("kernel must be callable")
        self._kernel = kernel
        self._initial = dict(initial or {})

    def initial_variables(self) -> Dict[str, Any]:
        return dict(self._initial)

    def run_job(self, ctx: JobContext) -> None:
        self._kernel(ctx)


class Process:
    """A named FPPN process: event generator + behavior + endpoints.

    The channel endpoints (``inputs``/``outputs`` — internal channel names,
    ``external_inputs``/``external_outputs`` — external channel names) are
    filled in by the network builder when channels are connected; the
    constructor only takes what is intrinsic to the process.
    """

    def __init__(
        self,
        name: str,
        generator: EventGenerator,
        behavior: Behavior,
    ) -> None:
        if not name:
            raise SemanticsError("process name must be non-empty")
        self.name = name
        self.generator = generator
        self.behavior = behavior
        # Filled by Network wiring:
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self.external_inputs: List[str] = []
        self.external_outputs: List[str] = []

    # -- generator attribute shortcuts (paper notation Tp, mp, dp) ---------
    @property
    def period(self) -> Time:
        """``Tp`` — the generator period."""
        return self.generator.period

    @property
    def deadline(self) -> Time:
        """``dp`` — the relative deadline."""
        return self.generator.deadline

    @property
    def burst(self) -> int:
        """``mp`` — the burst size."""
        return self.generator.burst

    @property
    def is_sporadic(self) -> bool:
        return self.generator.is_sporadic

    def fresh_variables(self) -> Dict[str, Any]:
        return self.behavior.initial_variables()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Process({self.name!r}, {self.generator.describe()})"
