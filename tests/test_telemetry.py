"""Telemetry sinks (ISSUE 8): SpanObserver span trees, live vs replay
identity, ProgressObserver rendering, and the tagged span JSON export."""

import io
import json

import pytest

from repro import Experiment, ScenarioMatrix, run_sweep
from repro.apps import fig1_scenario
from repro.experiment.sweep import SweepCellError, SweepRow, SweepStats
from repro.io.json_io import spans_to_jsonable
from repro.runtime import ProgressObserver, Span, SpanObserver, replay


def scenario(**overrides):
    return fig1_scenario(n_frames=2, **overrides)


# ---------------------------------------------------------------------------
# SpanObserver
# ---------------------------------------------------------------------------
class TestSpanObserver:
    def test_span_tree_run_frames_kernels(self):
        observer = SpanObserver()
        result = Experiment(scenario()).run(observers=[observer])
        spans = observer.spans
        run_span = spans[0]
        frame_spans = [s for s in spans if s.kind == "frame"]
        kernel_spans = [s for s in spans if s.kind == "kernel"]

        assert run_span.kind == "run"
        assert run_span.span_id == 1 and run_span.parent_id is None
        assert run_span.name == "run:fig1-example"
        assert run_span.start == 0
        assert run_span.end == result.makespan()
        assert run_span.attributes["processors"] == 2
        assert run_span.attributes["frames"] == 2

        # One frame span per executed frame, parented to the run,
        # placed between the run span and the kernels, each covering
        # its frame's record envelope exactly.
        assert spans[1:1 + len(frame_spans)] == frame_spans
        assert [s.attributes["frame"] for s in frame_spans] == [0, 1]
        executed = [r for r in result.records if not r.is_false]
        for frame_span in frame_spans:
            records = [
                r for r in result.records
                if r.frame == frame_span.attributes["frame"]
            ]
            assert frame_span.parent_id == 1
            assert frame_span.name == f"frame[{frame_span.attributes['frame']}]"
            assert frame_span.start == min(r.start for r in records)
            assert frame_span.end == max(r.end for r in records)

        # One kernel span per executed (non-false) job, all closed, all
        # parented to their frame's span, ids sequential in open order.
        frame_id = {s.attributes["frame"]: s.span_id for s in frame_spans}
        assert len(kernel_spans) == len(executed)
        assert [s.span_id for s in kernel_spans] == list(
            range(2, 2 + len(kernel_spans))
        )
        for span in kernel_spans:
            assert span.kind == "kernel"
            assert span.parent_id == frame_id[span.attributes["frame"]]
            assert span.end is not None and span.end >= span.start
        # Span intervals match the job records exactly.
        by_key = {(r.process, r.global_k): r for r in executed}
        for span in kernel_spans:
            record = by_key[
                (span.attributes["process"], span.attributes["k"])
            ]
            assert span.start == record.start
            assert span.end == record.end

    def test_live_and_replay_spans_identical(self):
        live = SpanObserver()
        result = Experiment(scenario()).run(observers=[live])
        replayed = SpanObserver()
        replay(result, replayed)
        assert replayed.spans == live.spans

    def test_records_only_run_yields_no_kernel_spans(self):
        observer = SpanObserver()
        exp = Experiment(scenario(records_only=True))
        result = exp.run(observers=[observer])
        # Timing records still flow, so the frame envelopes survive;
        # only the kernel level (data phase never ran) is absent.
        assert [s.kind for s in observer.spans] == ["run", "frame", "frame"]
        assert observer.spans[0].end == result.makespan()

    def test_observer_resets_between_runs(self):
        observer = SpanObserver()
        Experiment(scenario()).run(observers=[observer])
        first = list(observer.spans)
        replay(Experiment(scenario()).run(), observer)
        assert observer.spans == first  # not doubled, same run re-seen

    def test_spans_to_jsonable_round_trip_shape(self):
        observer = SpanObserver()
        Experiment(scenario()).run(observers=[observer])
        doc = spans_to_jsonable(observer.spans)
        assert doc["format"] == "fppn-spans" and doc["version"] == 1
        assert len(doc["spans"]) == len(observer.spans)
        run_span = doc["spans"][0]
        assert run_span["parent_id"] is None
        assert run_span["start"] == {"$frac": "0/1"}
        assert run_span["attributes"]["network"] == "fig1-example"
        # The document is pure JSON (no stray Python objects).
        json.dumps(doc)

    def test_sweep_observer_factory_collects_spans_per_cell(self):
        collected = []

        def factory(cell):
            observer = SpanObserver()
            collected.append((cell.coords, observer))
            return [observer]

        matrix = ScenarioMatrix(scenario(), {"jitter_seed": [0, 1]})
        run_sweep(
            matrix, ("executed_jobs", "makespan"), observer_factory=factory
        )
        assert len(collected) == 2
        for _, observer in collected:
            assert observer.spans and observer.spans[0].kind == "run"
            assert all(s.end is not None for s in observer.spans)


# ---------------------------------------------------------------------------
# ProgressObserver
# ---------------------------------------------------------------------------
def _row(cell, error=None):
    return SweepRow(cell=cell, metrics={}, error=error)


class TestProgressObserver:
    def test_row_rendering_with_totals(self):
        stream = io.StringIO()
        progress = ProgressObserver(total_cells=2, stream=stream)
        progress.on_row(_row({"jitter_seed": 0}))
        progress.on_row(_row({"jitter_seed": 1}))
        lines = stream.getvalue().splitlines()
        assert lines == [
            "[sweep] cell 1/2 (jitter_seed=0) done",
            "[sweep] cell 2/2 (jitter_seed=1) done",
        ]

    def test_error_rows_render_the_failure(self):
        stream = io.StringIO()
        progress = ProgressObserver(label="drill", stream=stream)
        error = SweepCellError(error_type="ValueError", message="boom")
        progress.on_row(_row({"jitter_seed": 2}, error=error))
        out = stream.getvalue()
        assert out.startswith("[drill] cell 1 (jitter_seed=2) FAILED:")
        assert "ValueError: boom" in out

    def test_finish_summarises_stats(self):
        stream = io.StringIO()
        progress = ProgressObserver(stream=stream)
        progress.finish(SweepStats(
            cells=4, runs=3, workers=2, failed_cells=1, store_hits=1,
            interrupted=True,
        ))
        out = stream.getvalue()
        assert "3 run(s)" in out and "2 worker(s)" in out
        assert "1 failed" in out and "1 store hit(s)" in out
        assert "interrupted" in out

    def test_pool_events_render_per_kind(self):
        from repro.experiment import PoolEvent

        stream = io.StringIO()
        progress = ProgressObserver(stream=stream)
        progress.on_event(PoolEvent(kind="store-hits", cells=3))
        progress.on_event(PoolEvent(kind="enqueued", cells=4, groups=2))
        progress.on_event(
            PoolEvent(kind="dispatch", gid=0, cells=2, detail="slot 1")
        )
        progress.on_event(PoolEvent(kind="group-done", gid=0, cells=2))
        progress.on_event(
            PoolEvent(kind="retry", gid=1, cells=2, detail="crash (attempt 1)")
        )
        progress.on_event(
            PoolEvent(kind="group-failed", gid=1, cells=2, detail="boom")
        )
        progress.on_event(PoolEvent(kind="finished"))
        progress.on_event(PoolEvent(kind="someday-new", detail="???"))
        lines = stream.getvalue().splitlines()
        assert lines == [
            "[sweep] 3 cell(s) restored from checkpoint store",
            "[sweep] enqueued 4 cell(s) in 2 group(s)",
            "[sweep] group 0 (2 cell(s)) -> slot 1",
            "[sweep] group 0 done (2 cell(s))",
            "[sweep] group 1 retrying: crash (attempt 1)",
            "[sweep] group 1 FAILED: boom",
            "[sweep] all groups finished",
            "[sweep] someday-new ???",
        ]

    def test_serial_sweep_streams_rows_through_on_row(self):
        stream = io.StringIO()
        matrix = ScenarioMatrix(scenario(), {"jitter_seed": [0, 1, 2]})
        progress = ProgressObserver(total_cells=len(matrix), stream=stream)
        result = run_sweep(
            matrix, ("executed_jobs",),
            on_row=progress.on_row, on_progress=progress.on_event,
        )
        lines = stream.getvalue().splitlines()
        assert len(lines) == len(result.rows) == 3
        assert lines[0].startswith("[sweep] cell 1/3 (jitter_seed=0)")

    def test_serial_on_row_raising_surfaces_to_caller(self):
        matrix = ScenarioMatrix(scenario(), {"jitter_seed": [0, 1]})

        def exploding(row):
            raise RuntimeError("sink exploded")

        with pytest.raises(RuntimeError, match="sink exploded"):
            run_sweep(matrix, ("executed_jobs",), on_row=exploding)


# ---------------------------------------------------------------------------
# Span dataclass basics
# ---------------------------------------------------------------------------
def test_span_defaults():
    span = Span(name="x", span_id=3, parent_id=1, kind="kernel", start=0)
    assert span.end is None
    assert span.attributes == {}


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
