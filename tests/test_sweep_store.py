"""Content-addressed checkpoint store (ISSUE 6): scenario hashing, exact
row round-trips through both backends, and store-backed sweep resume that
recomputes only the missing/failed cells."""

import json
from fractions import Fraction

import pytest

from repro import (
    FaultPlan,
    MemorySweepStore,
    ScenarioMatrix,
    SqliteSweepStore,
    run_sweep,
)
from repro.apps import fig1_scenario
from repro.errors import CheckpointError
from repro.experiment import scenario_hash
from repro.experiment.store import metrics_key, store_key
from repro.io import sweep_result_from_dict, sweep_result_to_dict

METRICS = ("executed_jobs", "makespan")


def fig1_matrix():
    return ScenarioMatrix(
        fig1_scenario(n_frames=1),
        {"processors": [2, 3], "jitter_seed": [0, 1]},
    )


@pytest.fixture(scope="module")
def clean():
    return run_sweep(fig1_matrix(), metrics=METRICS)


# ---------------------------------------------------------------------------
# content keys
# ---------------------------------------------------------------------------
class TestContentKeys:
    def test_hash_is_deterministic_and_content_addressed(self):
        a = fig1_scenario(n_frames=1)
        b = fig1_scenario(n_frames=1)
        assert scenario_hash(a) == scenario_hash(b)
        assert len(scenario_hash(a)) == 64  # sha256 hex
        # Any field change changes the key.
        assert scenario_hash(a) != scenario_hash(a.replace(processors=3))
        assert scenario_hash(a) != scenario_hash(a.replace(jitter_seed=1))

    def test_code_bearing_scenario_has_no_key(self):
        base = fig1_scenario(n_frames=1)
        bare = base.replace(workload=base.build_network)
        assert store_key(bare) is None
        assert store_key(base) == scenario_hash(base)

    def test_metrics_key_is_order_insensitive(self):
        assert metrics_key(("b", "a")) == metrics_key(("a", "b")) == "a,b"
        assert metrics_key(("a",)) != metrics_key(("a", "b"))


# ---------------------------------------------------------------------------
# backends
# ---------------------------------------------------------------------------
class TestBackends:
    @pytest.fixture(params=["memory", "sqlite"])
    def store(self, request, tmp_path):
        if request.param == "memory":
            return MemorySweepStore()
        return SqliteSweepStore(str(tmp_path / "sweep.db"))

    def test_round_trip_is_exact(self, store):
        row = {
            "makespan": Fraction(24967, 200),
            "executed_jobs": 8,
            "label": "x",
        }
        store.put("k" * 64, "a,b", row)
        restored = store.get("k" * 64, "a,b")
        assert restored == row
        assert isinstance(restored["makespan"], Fraction)
        assert ("k" * 64, "a,b") in store
        assert store.get("k" * 64, "other") is None
        assert len(store) == 1
        store.put("k" * 64, "a,b", {"executed_jobs": 9})  # last write wins
        assert store.get("k" * 64, "a,b") == {"executed_jobs": 9}
        assert len(store) == 1

    def test_context_manager_closes(self, store):
        with store as s:
            s.put("a", "m", {"v": 1})
        if isinstance(store, SqliteSweepStore):
            with pytest.raises(Exception):
                store._load("a", "m")

    def test_corrupt_payload_raises_checkpoint_error(self):
        store = MemorySweepStore()
        store._save("a", "m", "{not json")
        with pytest.raises(CheckpointError):
            store.get("a", "m")

    def test_sqlite_survives_reopen(self, tmp_path):
        path = str(tmp_path / "sweep.db")
        with SqliteSweepStore(path) as store:
            run_sweep(fig1_matrix(), metrics=METRICS, store=store)
            assert len(store) == 4
        with SqliteSweepStore(path) as store:
            resumed = run_sweep(fig1_matrix(), metrics=METRICS, store=store)
        assert resumed.stats.store_hits == 4
        assert resumed.stats.runs == 0

    def test_sqlite_bad_path_raises(self):
        with pytest.raises(CheckpointError):
            SqliteSweepStore("/no-such-directory/sweep.db")

    def test_sqlite_uses_wal_with_busy_timeout(self, tmp_path):
        with SqliteSweepStore(str(tmp_path / "sweep.db")) as store:
            assert store._conn.execute(
                "PRAGMA journal_mode"
            ).fetchone()[0] == "wal"
            assert store._conn.execute(
                "PRAGMA busy_timeout"
            ).fetchone()[0] == int(SqliteSweepStore.BUSY_TIMEOUT * 1000)
        # :memory: still works — no WAL (single-connection), no error.
        with SqliteSweepStore(":memory:") as store:
            store.put("a", "m", {"v": 1})
            assert store.get("a", "m") == {"v": 1}

    def test_sqlite_two_connections_read_write_concurrently(self, tmp_path):
        # A resident sweep service and an interactive session sharing one
        # checkpoint DB: interleaved reads and writes on two connections
        # must never raise 'database is locked' (WAL + busy_timeout).
        path = str(tmp_path / "sweep.db")
        with SqliteSweepStore(path) as writer, SqliteSweepStore(path) as reader:
            for i in range(50):
                writer.put(f"k{i}", "m", {"v": i})
                # The second connection reads rows the first just wrote,
                # while also writing its own interleaved rows.
                assert reader.get(f"k{i}", "m") == {"v": i}
                reader.put(f"r{i}", "m", {"v": -i})
                assert writer.get(f"r{i}", "m") == {"v": -i}
            assert len(writer) == len(reader) == 100


# ---------------------------------------------------------------------------
# store-backed sweeps: populate, hit, resume
# ---------------------------------------------------------------------------
class TestStoreBackedSweeps:
    def test_populate_then_full_hit(self, clean):
        store = MemorySweepStore()
        first = run_sweep(fig1_matrix(), metrics=METRICS, store=store)
        assert first.rows == clean.rows
        assert first.stats.store_hits == 0
        assert first.stats.store_misses == 4
        assert first.stats.runs == 4
        assert len(store) == 4
        second = run_sweep(fig1_matrix(), metrics=METRICS, store=store)
        # Bit-identical rows straight from the store: zero executions.
        assert second.rows == clean.rows
        assert second.stats.store_hits == 4
        assert second.stats.store_misses == 0
        assert second.stats.runs == 0
        assert second.stats.schedules_computed == 0

    def test_resume_recomputes_only_failed_cell(self, clean):
        store = MemorySweepStore()
        faulted = run_sweep(
            fig1_matrix(), metrics=METRICS, store=store,
            faults=FaultPlan(raise_at=(2,)),
        )
        assert faulted.stats.failed_cells == 1
        assert len(store) == 3  # failed cells are never persisted
        resumed = run_sweep(fig1_matrix(), metrics=METRICS, store=store)
        assert resumed.rows == clean.rows
        assert resumed.stats.store_hits == 3
        assert resumed.stats.store_misses == 1
        assert resumed.stats.runs == 1
        assert resumed.stats.failed_cells == 0
        assert len(store) == 4

    def test_resume_after_interrupt(self, clean):
        store = MemorySweepStore()
        partial = run_sweep(
            fig1_matrix(), metrics=METRICS, store=store,
            faults=FaultPlan(interrupt_at=(2,)),
        )
        assert partial.stats.interrupted
        assert len(store) == 2
        resumed = run_sweep(fig1_matrix(), metrics=METRICS, store=store)
        assert resumed.rows == clean.rows
        assert resumed.stats.store_hits == 2
        assert resumed.stats.store_misses == 2
        assert resumed.stats.runs == 2

    def test_metric_sets_are_isolated(self):
        store = MemorySweepStore()
        run_sweep(fig1_matrix(), metrics=METRICS, store=store)
        other = run_sweep(
            fig1_matrix(), metrics=("executed_jobs",), store=store
        )
        # Same scenarios, different metric set: all misses, new entries.
        assert other.stats.store_hits == 0
        assert other.stats.store_misses == 4
        assert len(store) == 8

    def test_unhashable_cells_bypass_the_store(self):
        base = fig1_scenario(n_frames=1)
        matrix = ScenarioMatrix(
            base.replace(workload=base.build_network),
            {"processors": [2, 3]},
        )
        store = MemorySweepStore()
        result = run_sweep(matrix, metrics=METRICS, store=store)
        assert len(result.rows) == 2
        assert result.stats.store_hits == 0
        assert result.stats.store_misses == 0
        assert len(store) == 0

    def test_keep_results_bypasses_reads_not_writes(self, clean):
        store = MemorySweepStore()
        run_sweep(fig1_matrix(), metrics=METRICS, store=store)
        kept = run_sweep(
            fig1_matrix(), metrics=METRICS, store=store, keep_results=True
        )
        # Retained sweeps need live runs: no hits, but rows match and the
        # fresh rows were (re)persisted.
        assert kept.stats.store_hits == 0
        assert kept.stats.runs == 4
        assert all(row.result is not None for row in kept.rows)
        assert [r.metrics for r in kept.rows] == [r.metrics for r in clean.rows]
        assert len(store) == 4

    def test_store_stats_round_trip(self):
        store = MemorySweepStore()
        run_sweep(fig1_matrix(), metrics=METRICS, store=store)
        result = run_sweep(fig1_matrix(), metrics=METRICS, store=store)
        restored = sweep_result_from_dict(
            json.loads(json.dumps(sweep_result_to_dict(result)))
        )
        assert restored.stats == result.stats
        assert restored.stats.store_hits == 4


# ---------------------------------------------------------------------------
# parallel sweeps use the store from the parent
# ---------------------------------------------------------------------------
class TestParallelStore:
    def test_parallel_populate_and_full_hit(self, clean):
        store = MemorySweepStore()
        first = run_sweep(
            fig1_matrix(), metrics=METRICS, store=store, workers=2
        )
        assert first.rows == clean.rows
        assert first.stats.store_misses == 4
        assert len(store) == 4
        # All hits: nothing to dispatch, no pool is spawned.
        second = run_sweep(
            fig1_matrix(), metrics=METRICS, store=store, workers=2
        )
        assert second.rows == clean.rows
        assert second.stats.store_hits == 4
        assert second.stats.runs == 0
        assert second.stats.workers == 1

    def test_parallel_resume_recomputes_only_missing(self, clean):
        store = MemorySweepStore()
        faulted = run_sweep(
            fig1_matrix(), metrics=METRICS, store=store, workers=2,
            faults=FaultPlan(raise_at=(2,)),
        )
        assert faulted.stats.failed_cells == 1
        assert len(store) == 3
        resumed = run_sweep(
            fig1_matrix(), metrics=METRICS, store=store, workers=2
        )
        assert resumed.rows == clean.rows
        assert resumed.stats.store_hits == 3
        assert resumed.stats.store_misses == 1
        assert resumed.stats.runs == 1
        assert len(store) == 4
