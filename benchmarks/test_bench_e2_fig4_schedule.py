"""E2 — Fig. 4: static schedule of the running example on two processors.

The paper shows a feasible 2-processor frame for the Fig. 3 task graph
(Ci = 25 ms, H = 200 ms).  We regenerate it with the list scheduler and
print the Gantt chart; a single processor must be infeasible (load 1.5).
"""

import pytest

from repro.analysis import ExperimentReport
from repro.apps import build_fig1_network
from repro.errors import InfeasibleError
from repro.runtime import schedule_gantt
from repro.scheduling import find_feasible_schedule, list_schedule, minimum_processors
from repro.taskgraph import derive_task_graph


@pytest.mark.experiment("E2")
def test_fig4_static_schedule(benchmark):
    graph = derive_task_graph(build_fig1_network(), 25)

    schedule = benchmark(find_feasible_schedule, graph, 2)

    one_proc = list_schedule(graph, 1, "alap")
    report = ExperimentReport("E2 static schedule", "Fig. 4")
    report.add("feasible on M=2", "yes", "yes" if schedule.is_feasible() else "NO")
    report.add("frame fits 200 ms", "yes",
               "yes" if schedule.makespan() <= 200 else "NO",
               f"makespan {schedule.makespan()} ms")
    report.add("feasible on M=1", "no (load 1.5)",
               "no" if not one_proc.is_feasible() else "YES")
    report.add_text(schedule_gantt(schedule))
    report.show()

    assert schedule.is_feasible()
    assert schedule.makespan() <= 200
    assert not one_proc.is_feasible()


@pytest.mark.experiment("E2")
def test_fig4_minimum_processors(benchmark):
    graph = derive_task_graph(build_fig1_network(), 25)
    m, schedule = benchmark(minimum_processors, graph)
    assert m == 2 and schedule.is_feasible()
