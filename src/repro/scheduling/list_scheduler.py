"""Compile-time list scheduling (Section III-B).

Non-preemptive scheduling of a task graph on ``M`` identical processors.
Given a schedule priority ``SP``, list scheduling *"consists of a simple
simulation of the fixed-priority policy using the updated definition of
ready jobs"*: a job is ready at time ``t`` iff

* it has arrived (``Ai <= t``),
* it has not completed, and
* all its predecessors have completed (``∀j ∈ Pred(i): ej <= t``).

At every decision instant the scheduler dispatches the highest-SP ready job
onto a free processor; when nothing can be dispatched, time advances to the
next arrival or completion.  The construction never inserts idle time except
when forced — the classic work-conserving list schedule.

The produced :class:`~repro.scheduling.schedule.StaticSchedule` may violate
deadlines; callers check :meth:`is_feasible` (a miss means the SP heuristic
was suboptimal — try another one via the portfolio optimizer).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence

from ..errors import SchedulingError
from ..core.timebase import Time
from ..taskgraph.graph import TaskGraph
from .priorities import get_heuristic
from .schedule import ScheduledJob, StaticSchedule


def list_schedule(
    graph: TaskGraph,
    processors: int,
    priority: "str | Sequence[int]" = "alap",
) -> StaticSchedule:
    """Construct a static schedule by priority-driven list scheduling.

    Parameters
    ----------
    graph:
        The task graph (jobs in ``<J`` topological order).
    processors:
        Number ``M`` of identical processors.
    priority:
        Either the name of a registered SP heuristic or an explicit rank
        list (``rank[i]`` = position of job *i*, 0 = highest priority).

    Returns
    -------
    StaticSchedule
        A complete schedule respecting arrivals, precedences and mutual
        exclusion by construction.  Deadlines are *not* enforced during
        construction (check feasibility afterwards).
    """
    if processors < 1:
        raise SchedulingError("list_schedule needs at least one processor")
    n = len(graph)
    ranks = _resolve_priority(graph, priority)

    remaining_preds = [len(graph.predecessors(i)) for i in range(n)]
    completed = [False] * n
    end_time: List[Optional[Time]] = [None] * n
    entries: List[ScheduledJob] = []

    # Jobs not yet arrived, as a heap keyed by arrival.
    arrivals = [(graph.jobs[i].arrival, ranks[i], i) for i in range(n)]
    heapq.heapify(arrivals)
    # Ready set: arrived and precedence-free, keyed by SP rank.
    ready: List = []
    # Running jobs: (end, processor, job)
    running: List = []
    # Free processors (min-heap of ids for deterministic assignment).
    free = list(range(processors))
    heapq.heapify(free)
    # Arrived but blocked on predecessors.
    blocked: List[int] = []

    now = Time(0)
    scheduled = 0
    while scheduled < n:
        # Admit arrivals at 'now'.
        while arrivals and arrivals[0][0] <= now:
            _, rank, i = heapq.heappop(arrivals)
            if remaining_preds[i] == 0:
                heapq.heappush(ready, (rank, i))
            else:
                blocked.append(i)
        # Dispatch while possible.
        while ready and free:
            rank, i = heapq.heappop(ready)
            proc = heapq.heappop(free)
            entries.append(ScheduledJob(i, proc, now))
            finish = now + graph.jobs[i].wcet
            heapq.heappush(running, (finish, proc, i))
            scheduled += 1
        if scheduled >= n:
            break
        # Advance time to the next event: completion or arrival.
        candidates: List[Time] = []
        if running:
            candidates.append(running[0][0])
        if arrivals:
            candidates.append(arrivals[0][0])
        if not candidates:
            stuck = [graph.jobs[i].name for i in blocked][:5]
            raise SchedulingError(
                f"list scheduler deadlocked with blocked jobs {stuck!r} "
                "(task graph has an unsatisfiable precedence structure)"
            )
        now = max(now, min(candidates))
        # Retire completions at 'now' and unblock successors.
        while running and running[0][0] <= now:
            finish, proc, i = heapq.heappop(running)
            completed[i] = True
            end_time[i] = finish
            heapq.heappush(free, proc)
            for s in graph.successors(i):
                remaining_preds[s] -= 1
                if remaining_preds[s] == 0 and s in blocked:
                    blocked.remove(s)
                    if graph.jobs[s].arrival <= now:
                        heapq.heappush(ready, (ranks[s], s))
                    else:
                        heapq.heappush(arrivals, (graph.jobs[s].arrival, ranks[s], s))

    return StaticSchedule(graph, processors, entries)


def _resolve_priority(
    graph: TaskGraph, priority: "str | Sequence[int]"
) -> List[int]:
    if isinstance(priority, str):
        return get_heuristic(priority)(graph)
    ranks = list(priority)
    if len(ranks) != len(graph):
        raise SchedulingError(
            f"priority rank list has {len(ranks)} entries for "
            f"{len(graph)} jobs"
        )
    if sorted(ranks) != list(range(len(graph))):
        raise SchedulingError("priority ranks must be a permutation of 0..n-1")
    return ranks
