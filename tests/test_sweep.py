"""ScenarioMatrix / run_sweep: stage-aware reuse counting, sweep determinism,
lean execution modes and sweep-result JSON round-trips."""

import json
from fractions import Fraction

import pytest

from repro import ScenarioMatrix, run_sweep
from repro.apps import fig1_scenario, fms_scenario
from repro.errors import ModelError, RuntimeModelError
from repro.experiment import (
    DATA_METRICS,
    DEFAULT_METRICS,
    Experiment,
    PipelineCache,
    TIMING_METRICS,
)
from repro.io import sweep_result_from_dict, sweep_result_to_dict
from repro.runtime import ExecutionObserver, MetricsObserver, OverheadModel


def fig1_matrix(axes, **kwargs):
    return ScenarioMatrix(fig1_scenario(n_frames=2, **kwargs), axes)


# ---------------------------------------------------------------------------
# matrix mechanics
# ---------------------------------------------------------------------------
class TestScenarioMatrix:
    def test_cells_enumerate_cartesian_product_in_order(self):
        matrix = fig1_matrix({"jitter_seed": [0, 1], "n_frames": [1, 2]})
        assert len(matrix) == 4
        cells = list(matrix.cells())
        assert [c.index for c in cells] == [0, 1, 2, 3]
        assert [dict(c.coords) for c in cells] == [
            {"jitter_seed": 0, "n_frames": 1},
            {"jitter_seed": 0, "n_frames": 2},
            {"jitter_seed": 1, "n_frames": 1},
            {"jitter_seed": 1, "n_frames": 2},
        ]
        assert cells[2].scenario.jitter_seed == 1
        assert cells[2].scenario.n_frames == 1

    def test_empty_axes_yield_the_base_scenario(self):
        matrix = fig1_matrix({})
        assert len(matrix) == 1
        (cell,) = matrix.cells()
        assert cell.scenario == matrix.base

    def test_scenarios_listing(self):
        matrix = fig1_matrix({"processors": [2, 3]})
        assert [s.processors for s in matrix.scenarios()] == [2, 3]

    def test_validation(self):
        with pytest.raises(ModelError):
            ScenarioMatrix("base", {})
        with pytest.raises(ModelError):
            fig1_matrix({"not_a_field": [1]})
        with pytest.raises(ModelError):
            fig1_matrix({"jitter_seed": []})


# ---------------------------------------------------------------------------
# stage-aware reuse (acceptance criterion: the counting test)
# ---------------------------------------------------------------------------
class TestStageReuse:
    def test_runtime_only_axes_share_one_derivation_and_schedule(self):
        matrix = fig1_matrix({
            "jitter_seed": [0, 1, 2],
            "overheads": [OverheadModel.none(), OverheadModel.mppa_like()],
            "n_frames": [1, 2],
        })
        result = run_sweep(matrix)
        assert result.stats.cells == 12
        assert result.stats.runs == 12
        assert result.stats.networks_built == 1
        assert result.stats.derivations_computed == 1
        assert result.stats.schedules_computed == 1

    def test_one_schedule_per_processor_count(self):
        result = run_sweep(
            fig1_matrix({"processors": [2, 3], "jitter_seed": [0, 1]})
        )
        assert result.stats.derivations_computed == 1
        assert result.stats.schedules_computed == 2

    def test_one_derivation_per_workload_and_wcet(self):
        matrix = fig1_matrix({
            "wcet": [25, Fraction(15)],
            "jitter_seed": [0, 1],
        })
        result = run_sweep(matrix)
        assert result.stats.derivations_computed == 2
        assert result.stats.schedules_computed == 2
        assert result.stats.networks_built == 1

    def test_shared_cache_chains_sweeps(self):
        cache = PipelineCache()
        matrix = fig1_matrix({"jitter_seed": [0, 1]})
        first = run_sweep(matrix, cache=cache)
        second = run_sweep(matrix, cache=cache)
        # Stats are per-sweep deltas: the first sweep paid the stages, the
        # second found everything already cached; the cache keeps totals.
        assert first.stats.derivations_computed == 1
        assert second.stats.derivations_computed == 0
        assert second.stats.schedules_computed == 0
        assert second.stats.runs == 2
        assert cache.derivations_computed == 1
        assert cache.schedules_computed == 1


# ---------------------------------------------------------------------------
# determinism (acceptance criterion)
# ---------------------------------------------------------------------------
class TestSweepDeterminism:
    def test_same_matrix_and_seeds_give_identical_rows(self):
        axes = {
            "jitter_seed": [0, 7],
            "overheads": [OverheadModel.none(), OverheadModel.mppa_like()],
        }
        first = run_sweep(fig1_matrix(axes))
        second = run_sweep(fig1_matrix(axes))
        assert first.rows == second.rows
        assert first.axes == second.axes
        assert first.stats == second.stats

    def test_rows_match_direct_execution(self):
        matrix = fig1_matrix({"jitter_seed": [0, 7]})
        result = run_sweep(matrix)
        for cell, row in zip(matrix.cells(), result.rows):
            m = MetricsObserver()
            Experiment(cell.scenario).run(observers=[m])
            assert row.metrics["missed_jobs"] == m.missed_jobs
            assert row.metrics["makespan"] == m.makespan
            assert row.metrics["executed_jobs"] == m.executed_jobs


# ---------------------------------------------------------------------------
# lean execution
# ---------------------------------------------------------------------------
class _ResultGrabber(ExecutionObserver):
    def __init__(self, sink):
        self.sink = sink

    def on_run_end(self, result):
        self.sink.append(result)


class TestLeanExecution:
    def test_lean_runs_retain_nothing(self):
        results = []
        run_sweep(
            fig1_matrix({"jitter_seed": [0]}),
            observer_factory=lambda cell: [_ResultGrabber(results)],
        )
        (result,) = results
        assert not result.records_collected
        assert not result.trace_collected
        assert result.data_collected  # data metrics were requested

    def test_timing_only_metrics_skip_the_data_phase(self):
        results = []
        sweep = run_sweep(
            fig1_matrix({"jitter_seed": [0]}),
            metrics=("executed_jobs", "missed_jobs", "makespan"),
            observer_factory=lambda cell: [_ResultGrabber(results)],
        )
        (result,) = results
        assert not result.data_collected  # records_only: no kernels ran
        full = run_sweep(
            fig1_matrix({"jitter_seed": [0]}),
            metrics=("executed_jobs", "missed_jobs", "makespan"),
            lean=False,
        )
        assert sweep.rows == full.rows  # identical timing either way

    def test_data_consuming_extra_observers_keep_the_data_phase(self):
        # Timing-only metrics alone would allow records_only, but an
        # observer_factory observer that consumes data events must still
        # see them — the runner probes the extra observers per cell.
        class WriteCounter(ExecutionObserver):
            writes = 0

            def on_channel_write(self, process, channel, value, time):
                WriteCounter.writes += 1

        run_sweep(
            fig1_matrix({"jitter_seed": [0]}),
            metrics=("executed_jobs", "makespan"),
            observer_factory=lambda cell: [WriteCounter()],
        )
        assert WriteCounter.writes > 0

    def test_timing_and_data_metric_sets_are_disjoint_and_complete(self):
        assert set(TIMING_METRICS).isdisjoint(DATA_METRICS)
        assert set(DEFAULT_METRICS) == set(TIMING_METRICS) | set(DATA_METRICS)

    def test_records_only_scenario_with_data_metrics_refused(self):
        matrix = fig1_matrix({"jitter_seed": [0]}, records_only=True)
        with pytest.raises(RuntimeModelError):
            run_sweep(matrix, metrics=("executed_jobs", "channel_writes"))
        # Timing-only metrics remain fine for records_only scenarios.
        result = run_sweep(matrix, metrics=("executed_jobs",))
        assert result.rows[0].metrics["executed_jobs"] == 16

    def test_keep_results_retains_full_runs(self):
        result = run_sweep(
            fig1_matrix({"jitter_seed": [0]}), keep_results=True
        )
        (row,) = result.rows
        assert row.result is not None
        assert row.result.records_collected
        assert row.result.observable()["outputs"]

    def test_keep_results_forces_records_on_lean_base_scenarios(self):
        # Regression: a base scenario that itself runs lean
        # (collect_records=False) used to be retained verbatim, handing
        # back rows whose result had no records and could not be
        # replayed or post-processed.
        result = run_sweep(
            fig1_matrix({"jitter_seed": [0]}, collect_records=False),
            keep_results=True,
        )
        (row,) = result.rows
        assert row.result.records_collected
        assert row.result.records
        assert row.result.makespan() == row.metrics["makespan"]

    def test_peak_utilization_is_an_exact_rational(self):
        # The module docstring promises bit-identical rows with exact
        # rational metrics; peak_utilization is computed as a Fraction
        # (busy time / horizon, both exact), not a float.
        result = run_sweep(
            fig1_matrix({"jitter_seed": [0]}),
            metrics=("peak_utilization",),
        )
        (row,) = result.rows
        value = row.metrics["peak_utilization"]
        assert isinstance(value, Fraction)
        m = MetricsObserver()
        Experiment(fig1_matrix({"jitter_seed": [0]}).base.replace(
            jitter_seed=0
        )).run(observers=[m])
        assert value == max(m.processor_utilization_exact())
        assert float(value) == max(m.processor_utilization())

    def test_metric_validation(self):
        matrix = fig1_matrix({"jitter_seed": [0]})
        with pytest.raises(ModelError):
            run_sweep(matrix, metrics=())
        with pytest.raises(ModelError):
            run_sweep(matrix, metrics=("no_such_metric",))


# ---------------------------------------------------------------------------
# result table + JSON round-trip
# ---------------------------------------------------------------------------
class TestSweepResult:
    def test_table_and_columns(self):
        result = run_sweep(fig1_matrix({"jitter_seed": [0, 7]}))
        text = result.table()
        assert "jitter_seed" in text.splitlines()[0]
        assert "makespan" in text.splitlines()[0]
        assert len(text.splitlines()) == 2 + len(result.rows)
        assert result.column("jitter_seed") == [0, 7]
        assert result.column("makespan") == \
            [row.metrics["makespan"] for row in result.rows]
        with pytest.raises(ModelError):
            result.column("nope")

    def test_json_round_trip(self):
        result = run_sweep(fig1_matrix({
            "jitter_seed": [0, 7],
            "overheads": [OverheadModel.none(), OverheadModel.mppa_like()],
        }))
        data = json.loads(json.dumps(sweep_result_to_dict(result)))
        restored = sweep_result_from_dict(data)
        assert restored.rows == result.rows
        assert restored.axes == result.axes
        assert restored.metrics == result.metrics
        assert restored.stats == result.stats

    def test_fms_smoke_sweep(self):
        # The FMS case study through the sweep path: runtime-only axes over
        # the 812-job graph — one derivation, one schedule, exact metrics.
        matrix = ScenarioMatrix(
            fms_scenario(n_frames=1),
            {"jitter_seed": [0, 7]},
        )
        result = run_sweep(matrix, metrics=("executed_jobs", "missed_jobs"))
        assert result.stats.derivations_computed == 1
        assert result.stats.schedules_computed == 1
        # Cross-check one cell against a direct facade run.
        m = MetricsObserver()
        Experiment(matrix.base.replace(jitter_seed=0)).run(observers=[m])
        assert [row.metrics["executed_jobs"] for row in result.rows] == \
            [m.executed_jobs, m.executed_jobs]
        assert result.rows[0].metrics["missed_jobs"] == m.missed_jobs
