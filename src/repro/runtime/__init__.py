"""Online static-order policy and multiprocessor runtime simulation."""

from .executor import (
    JobRecord,
    MultiprocessorExecutor,
    RuntimeResult,
    jittered_execution,
    run_static_order,
    wcet_execution,
)
from .gantt import runtime_gantt, schedule_gantt
from .metrics import (
    MissSummary,
    frame_makespans,
    jobs_of_process,
    miss_summary,
    processor_utilization,
    response_times,
)
from .overheads import OverheadModel
from .static_order import (
    ArrivalBinding,
    BoundArrival,
    FramePlan,
    PlannedJob,
    served_horizon,
)

__all__ = [
    "JobRecord",
    "MultiprocessorExecutor",
    "RuntimeResult",
    "jittered_execution",
    "run_static_order",
    "wcet_execution",
    "runtime_gantt",
    "schedule_gantt",
    "MissSummary",
    "frame_makespans",
    "jobs_of_process",
    "miss_summary",
    "processor_utilization",
    "response_times",
    "OverheadModel",
    "ArrivalBinding",
    "BoundArrival",
    "FramePlan",
    "PlannedJob",
    "served_horizon",
]
