"""Processes and the job-execution context.

Definition 2.2 associates each process with a deterministic automaton
``(lp0, Lp, Xp, Xp0, Ip, Op, Ap, Tp)``.  A *job execution run* is a non-empty
sequence of automaton steps returning to the initial location — informally,
one call of a software subroutine.

This module provides:

* :class:`JobContext` — the capability object handed to a running job.  All
  externally visible effects of a job (channel reads/writes, external sample
  accesses, traced assignments) go through it, which is what lets the library
  record exact execution traces and enforce endpoint discipline (a process
  may only read its input channels and write its output channels).
* :class:`Behavior` — strategy interface: how a process executes one job.
* :class:`KernelBehavior` — wraps a plain Python callable ``kernel(ctx)``;
  the ergonomic API used by the example applications.  Formally this is the
  one-location automaton whose single transition's action is the kernel.
* :class:`Process` — name + event generator + behavior + declared channel
  endpoints.

The full multi-location automaton implementation of Definition 2.2 lives in
:mod:`repro.core.automaton` and plugs in through the same
:class:`Behavior` interface.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional

from ..errors import ChannelError, SemanticsError
from .channels import (
    ChannelState,
    ExternalOutputState,
    NO_DATA,
)
from .events import EventGenerator
from .timebase import Time
from .trace import (
    Assign,
    ChannelRead,
    ChannelWrite,
    ExternalRead,
    ExternalWrite,
    Trace,
)


class JobContext:
    """Execution context of one job run of one process.

    Parameters
    ----------
    process:
        Name of the running process.
    k:
        1-based invocation count; external samples accessed by this job use
        index ``[k]`` (Section II-A).
    now:
        Invocation time stamp of the job (the τ of its event).
    variables:
        The process's persistent variable store ``Xp`` (state survives across
        job runs — e.g. filter state).
    inputs / outputs:
        Channel states this process may read / write (internal channels).
    external_inputs:
        Mapping from external input channel name to the full sample mapping
        ``{k: value}`` supplied by the stimulus.
    external_outputs:
        Mapping from external output channel name to its runtime log.
    trace:
        Optional global trace to record actions into.
    """

    def __init__(
        self,
        process: str,
        k: int,
        now: Time,
        variables: Dict[str, Any],
        inputs: Mapping[str, ChannelState],
        outputs: Mapping[str, ChannelState],
        external_inputs: Mapping[str, Mapping[int, Any]],
        external_outputs: Mapping[str, ExternalOutputState],
        trace: Optional[Trace] = None,
    ) -> None:
        self.process = process
        self.k = k
        self.now = now
        self.vars = variables
        self._inputs = inputs
        self._outputs = outputs
        self._external_inputs = external_inputs
        self._external_outputs = external_outputs
        self._trace = trace

    # -- internal channels ------------------------------------------------
    def read(self, channel: str) -> Any:
        """Read from an input channel (``x?c``).

        Returns :data:`repro.core.channels.NO_DATA` when no data is
        available (empty FIFO / unwritten blackboard) — reads never block.
        """
        state = self._inputs.get(channel)
        if state is None:
            raise ChannelError(
                f"process {self.process!r} has no input channel {channel!r}"
            )
        value = state.read()
        if self._trace is not None:
            self._trace.append(ChannelRead(self.process, channel, value))
        return value

    def peek(self, channel: str) -> Any:
        """Non-destructive read of an input channel (not traced)."""
        state = self._inputs.get(channel)
        if state is None:
            raise ChannelError(
                f"process {self.process!r} has no input channel {channel!r}"
            )
        return state.peek()

    def write(self, channel: str, value: Any) -> None:
        """Write to an output channel (``x!c``)."""
        state = self._outputs.get(channel)
        if state is None:
            raise ChannelError(
                f"process {self.process!r} has no output channel {channel!r}"
            )
        state.write(value)
        if self._trace is not None:
            self._trace.append(ChannelWrite(self.process, channel, value))

    # -- external channels --------------------------------------------------
    def read_input(self, channel: Optional[str] = None) -> Any:
        """Read sample ``[k]`` from an external input (``x?[k]Ie``).

        With a single external input the channel name may be omitted.
        Returns :data:`NO_DATA` if the stimulus supplied no sample ``[k]``.
        """
        name = self._resolve_single(channel, self._external_inputs, "external input")
        samples = self._external_inputs[name]
        value = samples.get(self.k, NO_DATA)
        if self._trace is not None:
            self._trace.append(ExternalRead(self.process, name, self.k, value))
        return value

    def write_output(self, value: Any, channel: Optional[str] = None) -> None:
        """Write sample ``[k]`` to an external output (``x![k]Oe``)."""
        name = self._resolve_single(channel, self._external_outputs, "external output")
        self._external_outputs[name].write(self.k, value)
        if self._trace is not None:
            self._trace.append(ExternalWrite(self.process, name, self.k, value))

    def _resolve_single(
        self, channel: Optional[str], mapping: Mapping[str, Any], what: str
    ) -> str:
        if channel is not None:
            if channel not in mapping:
                raise ChannelError(
                    f"process {self.process!r} has no {what} {channel!r}"
                )
            return channel
        if len(mapping) != 1:
            raise ChannelError(
                f"process {self.process!r} has {len(mapping)} {what}s; "
                "specify the channel name explicitly"
            )
        return next(iter(mapping))

    # -- variables -----------------------------------------------------------
    def assign(self, variable: str, value: Any) -> None:
        """Traced variable assignment (``x := value``)."""
        self.vars[variable] = value
        if self._trace is not None:
            self._trace.append(Assign(self.process, variable, value))

    def get(self, variable: str, default: Any = None) -> Any:
        """Read a process variable (untraced, like any expression evaluation)."""
        return self.vars.get(variable, default)


class Behavior:
    """Strategy interface: execute one job run of a process."""

    def initial_variables(self) -> Dict[str, Any]:
        """Fresh copy of the initial variable valuation ``Xp0``."""
        return {}

    def run_job(self, ctx: JobContext) -> None:
        raise NotImplementedError

    def declared_reads(self) -> Optional[List[str]]:
        """Channel names this behavior reads, if statically known (else None)."""
        return None

    def declared_writes(self) -> Optional[List[str]]:
        return None


class KernelBehavior(Behavior):
    """A job run defined by a plain Python callable ``kernel(ctx)``.

    This is the one-transition automaton: initial location, one self-loop
    whose action is the kernel body.  The kernel must be deterministic —
    its outputs may depend only on ``ctx`` (channel data, sample index,
    invocation time, process variables).
    """

    def __init__(
        self,
        kernel: Callable[[JobContext], None],
        initial: Optional[Dict[str, Any]] = None,
    ) -> None:
        if not callable(kernel):
            raise TypeError("kernel must be callable")
        self._kernel = kernel
        self._initial = dict(initial or {})

    def initial_variables(self) -> Dict[str, Any]:
        return dict(self._initial)

    def run_job(self, ctx: JobContext) -> None:
        self._kernel(ctx)


class Process:
    """A named FPPN process: event generator + behavior + endpoints.

    The channel endpoints (``inputs``/``outputs`` — internal channel names,
    ``external_inputs``/``external_outputs`` — external channel names) are
    filled in by the network builder when channels are connected; the
    constructor only takes what is intrinsic to the process.
    """

    def __init__(
        self,
        name: str,
        generator: EventGenerator,
        behavior: Behavior,
    ) -> None:
        if not name:
            raise SemanticsError("process name must be non-empty")
        self.name = name
        self.generator = generator
        self.behavior = behavior
        # Filled by Network wiring:
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self.external_inputs: List[str] = []
        self.external_outputs: List[str] = []

    # -- generator attribute shortcuts (paper notation Tp, mp, dp) ---------
    @property
    def period(self) -> Time:
        """``Tp`` — the generator period."""
        return self.generator.period

    @property
    def deadline(self) -> Time:
        """``dp`` — the relative deadline."""
        return self.generator.deadline

    @property
    def burst(self) -> int:
        """``mp`` — the burst size."""
        return self.generator.burst

    @property
    def is_sporadic(self) -> bool:
        return self.generator.is_sporadic

    def fresh_variables(self) -> Dict[str, Any]:
        return self.behavior.initial_variables()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Process({self.name!r}, {self.generator.describe()})"
