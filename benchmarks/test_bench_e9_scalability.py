"""E9 — Section V-B scalability note: hyperperiod drives derivation cost.

"For this process network we encountered a too high code generation overhead
due to a long hyperperiod (40 s) (an online policy subroutine handling a few
thousands jobs explicitly).  Therefore, we reduced it to 10 s..."

We measure exactly that: the 40 s FMS variant vs the reduced 10 s variant
(job counts and derivation time), plus a horizon sweep on the reduced
network showing the expected linear growth of job count with the frame
length.
"""

import time

import pytest

from repro.analysis import ExperimentReport
from repro.apps import build_fms_network, fms_wcets
from repro.scheduling import find_feasible_schedule
from repro.taskgraph import derive_task_graph


@pytest.mark.experiment("E9")
def test_fms_40s_vs_10s(benchmark):
    net10 = build_fms_network(reduced_hyperperiod=True)
    net40 = build_fms_network(reduced_hyperperiod=False)
    wcets = fms_wcets()

    graph40 = benchmark(derive_task_graph, net40, wcets)

    t0 = time.perf_counter()
    graph10 = derive_task_graph(net10, wcets)
    t10 = time.perf_counter() - t0
    t0 = time.perf_counter()
    derive_task_graph(net40, wcets)
    t40 = time.perf_counter() - t0

    report = ExperimentReport("E9 hyperperiod scalability", "Section V-B")
    report.add("H = 10 s jobs", 812, len(graph10), f"derivation {t10*1000:.1f} ms")
    report.add("H = 40 s jobs", "a few thousands", len(graph40),
               f"derivation {t40*1000:.1f} ms")
    report.add("job growth 40s/10s", "~4x (paper reduced to avoid it)",
               f"{len(graph40) / len(graph10):.2f}x")
    report.show()

    assert len(graph10) == 812
    assert 3.0 <= len(graph40) / len(graph10) <= 4.5


@pytest.mark.experiment("E9")
def test_horizon_sweep(benchmark):
    """Job count and scheduling cost grow linearly with the frame length."""
    net = build_fms_network()
    wcets = fms_wcets()

    def derive_multi(frames):
        return derive_task_graph(net, wcets, horizon=10000 * frames)

    graph2 = benchmark(derive_multi, 2)

    report = ExperimentReport("E9 horizon sweep (reduced FMS)", "Section V-B")
    sizes = {}
    for frames in (1, 2, 3):
        g = derive_multi(frames)
        sizes[frames] = len(g)
        report.add(f"horizon {frames}x10 s", f"{812 * frames} (linear)", len(g))
    report.show()

    assert sizes[2] == 2 * sizes[1]
    assert sizes[3] == 3 * sizes[1]
    assert len(graph2) == sizes[2]


@pytest.mark.experiment("E9")
def test_scheduling_scales_to_40s_graph(benchmark):
    """The compile-time algorithm must remain 'scalable' (Section III-B):
    list-schedule the ~3.2k-job 40 s graph."""
    graph = derive_task_graph(build_fms_network(reduced_hyperperiod=False), fms_wcets())
    schedule = benchmark(find_feasible_schedule, graph, 1)
    assert schedule.is_feasible()
