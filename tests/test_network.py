"""Unit tests for FPPN network definition and validation (Definition 2.1)."""

import pytest

from repro.core import ChannelKind, Network, PeriodicGenerator, Process, KernelBehavior
from repro.errors import ChannelError, ModelError


def nop(ctx):
    return None


def make_pair() -> Network:
    net = Network("t")
    net.add_periodic("a", period=100, kernel=nop)
    net.add_periodic("b", period=100, kernel=nop)
    return net


class TestConstruction:
    def test_duplicate_process_rejected(self):
        net = make_pair()
        with pytest.raises(ModelError, match="duplicate process"):
            net.add_periodic("a", period=50, kernel=nop)

    def test_connect_unknown_process(self):
        net = make_pair()
        with pytest.raises(ModelError, match="unknown process"):
            net.connect("a", "zzz")

    def test_default_channel_name(self):
        net = make_pair()
        spec = net.connect("a", "b")
        assert spec.name == "a->b"

    def test_duplicate_channel_name_rejected(self):
        net = make_pair()
        net.connect("a", "b", "c1")
        with pytest.raises(ChannelError, match="duplicate channel"):
            net.connect("a", "b", "c1")

    def test_two_channels_between_same_pair(self):
        net = make_pair()
        net.connect("a", "b", "c1")
        net.connect("a", "b", "c2", kind=ChannelKind.BLACKBOARD)
        assert len(net.channels_between("a", "b")) == 2

    def test_endpoints_recorded_on_processes(self):
        net = make_pair()
        net.connect("a", "b", "c")
        assert net.processes["a"].outputs == ["c"]
        assert net.processes["b"].inputs == ["c"]

    def test_self_priority_rejected(self):
        net = make_pair()
        with pytest.raises(ModelError):
            net.add_priority("a", "a")

    def test_priority_chain(self):
        net = make_pair()
        net.add_periodic("c", period=100, kernel=nop)
        net.add_priority_chain("a", "b", "c")
        assert net.higher_priority("a", "b")
        assert net.higher_priority("b", "c")
        assert not net.higher_priority("a", "c")

    def test_external_channel_name_collision(self):
        net = make_pair()
        net.add_external_input("a", "x")
        with pytest.raises(ChannelError, match="duplicate external"):
            net.add_external_output("b", "x")

    def test_kernel_and_behavior_mutually_exclusive(self):
        net = Network("t")
        with pytest.raises(ModelError):
            net.add_periodic("p", period=1, kernel=nop, behavior=KernelBehavior(nop))

    def test_add_prebuilt_process(self):
        net = Network("t")
        p = Process("x", PeriodicGenerator(10), KernelBehavior(nop))
        net.add_process(p)
        assert net.processes["x"] is p


class TestValidation:
    def test_empty_network_invalid(self):
        with pytest.raises(ModelError, match="no processes"):
            Network("e").validate()

    def test_channel_pair_requires_priority(self):
        net = make_pair()
        net.connect("a", "b")
        with pytest.raises(ModelError, match="functional priority"):
            net.validate()

    def test_either_direction_satisfies_rule(self):
        net = make_pair()
        net.connect("a", "b")
        net.add_priority("b", "a")  # reader above writer is fine
        net.validate()

    def test_priority_cycle_rejected(self):
        net = make_pair()
        net.add_priority("a", "b")
        net.add_priority("b", "a")
        with pytest.raises(ModelError, match="cycle"):
            net.validate()

    def test_cyclic_process_graph_with_acyclic_fp_ok(self):
        net = make_pair()
        net.connect("a", "b", "fwd")
        net.connect("b", "a", "fb", kind=ChannelKind.BLACKBOARD)
        net.add_priority("a", "b")
        net.validate()  # process graph cyclic, FP acyclic: legal

    def test_longer_priority_cycle(self):
        net = make_pair()
        net.add_periodic("c", period=100, kernel=nop)
        net.add_priority_chain("a", "b", "c")
        net.add_priority("c", "a")
        with pytest.raises(ModelError, match="cycle"):
            net.validate()


class TestPriorityOrder:
    def test_respects_edges(self):
        net = make_pair()
        net.add_periodic("c", period=100, kernel=nop)
        net.add_priority("c", "a")
        order = net.priority_order()
        assert order.index("c") < order.index("a")

    def test_deterministic_tiebreak_by_name(self):
        net = Network("t")
        for name in ("z", "m", "a"):
            net.add_periodic(name, period=10, kernel=nop)
        assert net.priority_order() == ["a", "m", "z"]

    def test_rank_is_positional(self):
        net = make_pair()
        net.add_priority("b", "a")
        rank = net.priority_rank()
        assert rank["b"] < rank["a"]

    def test_fp_related(self):
        net = make_pair()
        net.add_priority("a", "b")
        assert net.fp_related("a", "b")
        assert net.fp_related("b", "a")
        net.add_periodic("c", period=100, kernel=nop)
        assert not net.fp_related("a", "c")


class TestSporadicSubclass:
    def _base(self) -> Network:
        net = Network("s")
        net.add_periodic("user", period=100, kernel=nop)
        net.add_sporadic("sp", min_period=200, deadline=300, kernel=nop)
        return net

    def test_user_of_ok(self):
        net = self._base()
        net.connect("sp", "user", "cfg", kind=ChannelKind.BLACKBOARD)
        net.add_priority("user", "sp")
        assert net.user_of("sp").name == "user"

    def test_user_of_requires_sporadic(self):
        net = self._base()
        with pytest.raises(ModelError, match="not sporadic"):
            net.user_of("user")

    def test_unconnected_sporadic_rejected(self):
        net = self._base()
        net.add_priority("user", "sp")
        with pytest.raises(ModelError, match="exactly one user"):
            net.user_of("sp")

    def test_two_users_rejected(self):
        net = self._base()
        net.add_periodic("user2", period=100, kernel=nop)
        net.connect("sp", "user", "c1", kind=ChannelKind.BLACKBOARD)
        net.connect("sp", "user2", "c2", kind=ChannelKind.BLACKBOARD)
        net.add_priority("user", "sp")
        net.add_priority("user2", "sp")
        with pytest.raises(ModelError, match="exactly one user"):
            net.user_of("sp")

    def test_sporadic_user_must_be_periodic(self):
        net = self._base()
        net.add_sporadic("sp2", min_period=100, deadline=200, kernel=nop)
        net.connect("sp", "sp2", "c", kind=ChannelKind.BLACKBOARD)
        net.add_priority("sp2", "sp")
        with pytest.raises(ModelError, match="must be periodic"):
            net.user_of("sp")

    def test_user_period_bound(self):
        net = Network("s")
        net.add_periodic("user", period=500, kernel=nop)  # T_u > T_p
        net.add_sporadic("sp", min_period=200, deadline=300, kernel=nop)
        net.connect("sp", "user", "c", kind=ChannelKind.BLACKBOARD)
        net.add_priority("user", "sp")
        with pytest.raises(ModelError, match="T_u <= T_p"):
            net.user_of("sp")

    def test_validate_taskgraph_subclass(self, sporadic_network):
        sporadic_network.validate_taskgraph_subclass()

    def test_channel_direction_irrelevant_for_user(self):
        # The user relation is about *connection*, not direction: a sporadic
        # reader still has its writer as user.
        net = Network("s")
        net.add_periodic("user", period=100, kernel=nop)
        net.add_sporadic("sp", min_period=200, deadline=300, kernel=nop)
        net.connect("user", "sp", "c", kind=ChannelKind.BLACKBOARD)
        net.add_priority("user", "sp")
        assert net.user_of("sp").name == "user"
