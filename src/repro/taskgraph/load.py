"""The precedence-aware load metric and Proposition 3.1.

Section III-B defines the task-graph load as::

    Load(TG) = max_{0 <= t1 < t2}  ( sum_{Ji : t1 <= A'_i  and  D'_i <= t2} C_i ) / (t2 - t1)

where ``A'_i``/``D'_i`` are the ASAP start / ALAP completion times.  It
generalises the classical *load* of [Liu 2000] (defined over arrival/deadline
windows with no precedences) by shrinking each job's window to what the
precedence constraints actually allow.

**Proposition 3.1 (necessary condition):** ``TG`` is schedulable on ``M``
processors only if every job satisfies ``A'_i + C_i <= D'_i`` and
``ceil(Load(TG)) <= M``.

The maximum is attained with ``t1`` at some ASAP value and ``t2`` at some
ALAP value (shrinking an interval to the tightest jobs inside it never
decreases the ratio), so the search space is the ``O(n^2)`` candidate grid;
with per-``t1`` sorting and prefix sums the evaluation is
``O(U_A * n)`` after an ``O(n log n)`` sort.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.timebase import Time
from .asap_alap import TimingBounds, compute_bounds, precedence_feasible
from .graph import TaskGraph


@dataclass(frozen=True)
class LoadResult:
    """The load value together with the witness window attaining it."""

    load: Time
    window: Tuple[Time, Time]

    @property
    def min_processors(self) -> int:
        """``ceil(Load)`` — the Proposition 3.1 processor lower bound."""
        return max(1, math.ceil(self.load))

    def __float__(self) -> float:  # pragma: no cover - trivial
        return float(self.load)


def task_graph_load(
    graph: TaskGraph, bounds: Optional[TimingBounds] = None
) -> LoadResult:
    """Compute ``Load(TG)`` exactly (rational arithmetic, witness window)."""
    if len(graph) == 0:
        return LoadResult(Time(0), (Time(0), Time(0)))
    if bounds is None:
        bounds = compute_bounds(graph)

    jobs = [
        (bounds.asap[i], bounds.alap[i], graph.jobs[i].wcet)
        for i in range(len(graph))
    ]
    t1_candidates = sorted({a for a, _, _ in jobs})
    best = Time(0)
    best_window = (Time(0), jobs[0][1])

    for t1 in t1_candidates:
        eligible = sorted(
            ((d, c) for a, d, c in jobs if a >= t1), key=lambda item: item[0]
        )
        acc = Time(0)
        for d, c in eligible:
            acc += c
            if d <= t1:
                # Degenerate window (job with A' >= t1 but D' <= t1) can only
                # happen when the graph is precedence-infeasible; skip here —
                # Proposition 3.1's first clause reports it.
                continue
            ratio = acc / (d - t1)
            if ratio > best:
                best = ratio
                best_window = (t1, d)
    return LoadResult(best, best_window)


def necessary_condition(
    graph: TaskGraph, processors: int, bounds: Optional[TimingBounds] = None
) -> bool:
    """Proposition 3.1: both clauses of the necessary schedulability test."""
    if processors < 1:
        raise ValueError("processor count must be positive")
    if bounds is None:
        bounds = compute_bounds(graph)
    if not precedence_feasible(graph, bounds):
        return False
    return task_graph_load(graph, bounds).min_processors <= processors


def utilization(graph: TaskGraph) -> Time:
    """Classical frame utilization ``sum C_i / H`` (reported next to load)."""
    if graph.hyperperiod is None:
        raise ValueError("task graph has no hyperperiod")
    return graph.total_wcet() / graph.hyperperiod
