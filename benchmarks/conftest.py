"""Shared benchmark configuration.

Each benchmark module regenerates one experiment of the paper (see
DESIGN.md's experiment index) and prints a paper-vs-measured report next to
the pytest-benchmark timing table.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "experiment(id): marks a benchmark as regenerating a paper artifact"
    )
