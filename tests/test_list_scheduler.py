"""Tests for the compile-time list scheduler (Section III-B)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import build_fig1_network, random_network, random_wcets
from repro.errors import SchedulingError
from repro.scheduling import list_schedule
from repro.taskgraph import derive_task_graph
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.jobs import Job


def J(name, k=1, a=0, d=1000, c=10):
    return Job(name, k, Fraction(a), Fraction(d), Fraction(c))


class TestBasics:
    def test_single_job(self):
        g = TaskGraph([J("a")], [], Fraction(1000))
        s = list_schedule(g, 1)
        assert s.start(0) == 0
        assert s.is_feasible()

    def test_chain_serialized(self):
        g = TaskGraph([J("a"), J("b")], [(0, 1)], Fraction(1000))
        s = list_schedule(g, 2)
        assert s.start(1) >= s.end(0)

    def test_parallel_jobs_spread_over_processors(self):
        g = TaskGraph([J("a"), J("b")], [], Fraction(1000))
        s = list_schedule(g, 2)
        assert {s.mapping(0), s.mapping(1)} == {0, 1}
        assert s.makespan() == 10

    def test_single_processor_serializes(self):
        g = TaskGraph([J("a"), J("b")], [], Fraction(1000))
        s = list_schedule(g, 1)
        assert s.makespan() == 20

    def test_arrival_respected(self):
        g = TaskGraph([J("a", a=50)], [], Fraction(1000))
        s = list_schedule(g, 1)
        assert s.start(0) == 50

    def test_work_conserving(self):
        # Two independent jobs, one arrives later: processor not left idle.
        g = TaskGraph([J("a", c=30), J("b", a=5, c=10)], [], Fraction(1000))
        s = list_schedule(g, 1)
        assert s.start(0) == 0
        assert s.start(1) == 30  # starts at first completion, no extra idle

    def test_invalid_processor_count(self):
        g = TaskGraph([J("a")], [], Fraction(1000))
        with pytest.raises(SchedulingError):
            list_schedule(g, 0)


class TestPriorityHandling:
    def test_explicit_rank_list(self):
        g = TaskGraph([J("a"), J("b")], [], Fraction(1000))
        s = list_schedule(g, 1, priority=[1, 0])  # b first
        assert s.start(1) == 0 and s.start(0) == 10

    def test_rank_list_length_checked(self):
        g = TaskGraph([J("a")], [], Fraction(1000))
        with pytest.raises(SchedulingError, match="entries"):
            list_schedule(g, 1, priority=[0, 1])

    def test_rank_list_must_be_permutation(self):
        g = TaskGraph([J("a"), J("b")], [], Fraction(1000))
        with pytest.raises(SchedulingError, match="permutation"):
            list_schedule(g, 1, priority=[0, 0])

    def test_unknown_heuristic(self):
        g = TaskGraph([J("a")], [], Fraction(1000))
        with pytest.raises(SchedulingError, match="unknown heuristic"):
            list_schedule(g, 1, priority="nope")

    def test_alap_prefers_urgent_job(self):
        # b has the tighter deadline; ALAP ranks it first.
        g = TaskGraph([J("a", d=1000), J("b", d=20)], [], Fraction(1000))
        s = list_schedule(g, 1, "alap")
        assert s.start(1) == 0
        assert s.is_feasible()

    def test_alap_succeeds_where_nominal_deadline_fails(self):
        """The paper's point: EDF for task graphs must use ALAP completion
        times, not nominal deadlines.  Job b nominally has a lax deadline
        (1000) but heads the chain to the urgent job c, so its ALAP is 85;
        the nominal-deadline heuristic runs a first and c misses."""
        g = TaskGraph(
            [J("a", d=120, c=80), J("b", d=1000, c=10), J("c", d=95, c=10)],
            [(1, 2)],
            Fraction(1000),
        )
        s_deadline = list_schedule(g, 1, "deadline")
        s_alap = list_schedule(g, 1, "alap")
        assert not s_deadline.is_feasible()
        assert s_alap.is_feasible()


class TestStructuralInvariants:
    @pytest.mark.parametrize("m", [1, 2, 3])
    def test_fig1_schedules_respect_structure(self, m):
        g = derive_task_graph(build_fig1_network(), 25)
        s = list_schedule(g, m)
        # By construction: arrivals, precedence, mutual exclusion hold.
        kinds = {v.kind for v in s.violations()}
        assert kinds <= {"deadline"}

    def test_fig1_feasible_on_two_processors(self):
        """Fig. 4: the frame fits on two processors within 200 ms."""
        g = derive_task_graph(build_fig1_network(), 25)
        s = list_schedule(g, 2, "alap")
        assert s.is_feasible()
        assert s.makespan() <= 200

    def test_fig1_infeasible_on_one_processor(self):
        # load = 1.5 > 1: no single-processor schedule can exist.
        g = derive_task_graph(build_fig1_network(), 25)
        s = list_schedule(g, 1, "alap")
        assert not s.is_feasible()

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_random_graphs_structurally_valid(self, seed):
        net = random_network(seed=seed, n_periodic=4, n_sporadic=1)
        wcets = random_wcets(net, seed=seed, utilization_target=0.5)
        g = derive_task_graph(net, wcets)
        for m in (1, 2):
            s = list_schedule(g, m, "alap")
            kinds = {v.kind for v in s.violations()}
            assert kinds <= {"deadline"}, kinds

    def test_all_jobs_scheduled(self):
        g = derive_task_graph(build_fig1_network(), 25)
        s = list_schedule(g, 2)
        assert len(s.entries) == len(g)
