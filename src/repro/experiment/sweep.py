"""STOMP-style scenario sweeps: cartesian matrices of experiment runs.

A :class:`ScenarioMatrix` is a base :class:`~repro.experiment.scenario.
Scenario` plus named *axes* — scenario fields paired with the values to
sweep (``processors`` × ``jitter_seed`` × ``overheads`` × ``n_frames`` ×
``workload`` × ...).  :func:`run_sweep` executes every cell of the
cartesian product and returns a :class:`SweepResult` table of streaming
:class:`~repro.runtime.observers.MetricsObserver` aggregates.

Two properties make sweeps cheap at scenario scale:

* **Stage-aware reuse** — all cells share one
  :class:`~repro.experiment.experiment.PipelineCache`, so scenarios that
  differ only in *runtime* axes (jitter seeds, overheads, frame counts,
  stimuli, executor flags) share a single task-graph derivation and a
  single scheduling pass per distinct
  ``(workload, wcet, horizon, processors, heuristics)`` key.  The
  :class:`SweepStats` counters surface exactly how many stage computations
  the sweep paid.
* **Lean execution** — each cell runs with ``collect_records=False`` and
  ``collect_trace=False`` (metrics stream out of observer events, nothing
  is retained per instance), and when the requested metrics are timing
  derived only, the data phase is skipped entirely
  (``records_only=True`` — no kernels, no channel states).

Rows are deterministic: the same matrix produces bit-identical rows on
every run (exact rational metrics; jitter models are seed-keyed), which is
what makes sweep tables comparable across machines and commits.  The
``workers`` parameter fans the cells out across worker processes — one
worker task per distinct :meth:`~repro.experiment.scenario.Scenario.
schedule_key` group, each with its own cache, scenarios and rows crossing
the process boundary through the exact JSON wire format — and the rows
stay bit-identical to a serial run of the same matrix
(:mod:`repro.experiment.parallel`).

Sweeps are **fault-tolerant**: a failing cell does not abort the table.
By default (``on_error="capture"``) the exception becomes a structured
:class:`SweepCellError` on a *failed row* (``SweepResult.failed_rows``,
counted in ``SweepStats.failed_cells``) and every other cell still runs —
serial and parallel sweeps share these semantics through the same capture
helper.  ``KeyboardInterrupt`` returns the partial table computed so far
(``stats.interrupted``).  A checkpoint store
(:mod:`repro.experiment.store`, ``run_sweep(store=...)``) persists each
healthy row under the scenario's content hash, so resuming an interrupted
or partially-failed sweep recomputes only the missing/failed cells
(``stats.store_hits`` / ``store_misses``).  The recovery paths are
deterministically testable via :class:`~repro.experiment.faults.FaultPlan`
(``run_sweep(faults=...)``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from itertools import product
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.platform import Platform
from ..core.timebase import ZERO
from ..errors import ModelError, RuntimeModelError
from ..runtime.executor import RuntimeResult
from ..runtime.overheads import OverheadModel
from ..runtime.observers import (
    _DATA_HOOKS,
    _overrides,
    ExecutionObserver,
    MetricsObserver,
)
from .experiment import Experiment, PipelineCache
from .faults import FaultPlan, apply_cell_faults
from .scenario import Scenario
from .store import SweepStore, metrics_key, store_key

__all__ = [
    "DATA_METRICS",
    "DEFAULT_METRICS",
    "ScenarioMatrix",
    "SweepCell",
    "SweepCellError",
    "SweepResult",
    "SweepRow",
    "SweepStats",
    "TIMING_METRICS",
    "run_sweep",
]

#: Metrics computable from timing events alone (``on_record`` stream) —
#: a sweep requesting only these skips the data phase entirely.
TIMING_METRICS: Tuple[str, ...] = (
    "total_jobs",
    "executed_jobs",
    "false_jobs",
    "missed_jobs",
    "worst_lateness",
    "makespan",
    "frame_makespan_max",
    "peak_utilization",
)

#: Metrics that need the data phase's kernel-span / channel-write events.
DATA_METRICS: Tuple[str, ...] = ("kernel_busy", "channel_writes")

DEFAULT_METRICS: Tuple[str, ...] = TIMING_METRICS + DATA_METRICS

_SCENARIO_FIELDS = frozenset(f.name for f in dataclasses.fields(Scenario))


def _extract_metric(m: MetricsObserver, name: str) -> Any:
    if name == "total_jobs":
        return m.total_jobs
    if name == "executed_jobs":
        return m.executed_jobs
    if name == "false_jobs":
        return m.false_jobs
    if name == "missed_jobs":
        return m.missed_jobs
    if name == "worst_lateness":
        return m.worst_lateness
    if name == "makespan":
        return m.makespan
    if name == "frame_makespan_max":
        return max(m.frame_makespans(), default=ZERO)
    if name == "peak_utilization":
        # Exact rational, not float: sweep rows promise bit-identical,
        # JSON-round-trippable metrics (the "$frac" tagged encoding), and
        # busy/horizon are both exact.
        return max(m.processor_utilization_exact(), default=ZERO)
    if name == "kernel_busy":
        return sum(
            (s.total_busy for s in m.kernel_span_stats().values()), ZERO
        )
    if name == "channel_writes":
        return sum(m.channel_write_counts().values())
    raise ModelError(
        f"unknown sweep metric {name!r} — known: "
        f"{', '.join(DEFAULT_METRICS)}"
    )


@dataclass(frozen=True)
class SweepCell:
    """One point of the matrix: its index, axis coordinates and scenario."""

    index: int
    coords: Tuple[Tuple[str, Any], ...]
    scenario: Scenario


class ScenarioMatrix:
    """Cartesian product of axis substitutions over a base scenario.

    *axes* maps scenario field names to non-empty value sequences; cells
    enumerate the product in row-major order (last axis varies fastest),
    with axis order as given.

    Axis values substitute field values **verbatim** — in particular, the
    base scenario's stimulus is *not* resized when ``n_frames`` is an
    axis.  Build the base with a stimulus covering the largest frame
    count swept (the app ``scenario()`` factories take ``n_frames``);
    cells simulating beyond the stimulus horizon see no external data in
    the uncovered frames, which is well-defined FPPN behaviour but rarely
    what a frames-scaling sweep means to measure.  For per-cell stimuli,
    put the stimuli themselves on an axis (``"stimulus": [...]``).
    """

    def __init__(
        self, base: Scenario, axes: Mapping[str, Sequence[Any]]
    ) -> None:
        if not isinstance(base, Scenario):
            raise ModelError("ScenarioMatrix takes a base Scenario")
        self.base = base
        self.axes: Dict[str, Tuple[Any, ...]] = {}
        for name, values in axes.items():
            if name not in _SCENARIO_FIELDS:
                raise ModelError(
                    f"unknown scenario field {name!r} — axes must name "
                    "Scenario fields"
                )
            values = tuple(values)
            if not values:
                raise ModelError(f"axis {name!r} has no values")
            self.axes[name] = values

    def __len__(self) -> int:
        n = 1
        for values in self.axes.values():
            n *= len(values)
        return n

    def cells(self) -> Iterator[SweepCell]:
        """Every cell of the product, as (index, coords, scenario)."""
        names = list(self.axes)
        if not names:
            yield SweepCell(0, (), self.base)
            return
        for index, combo in enumerate(product(*self.axes.values())):
            coords = tuple(zip(names, combo))
            yield SweepCell(index, coords, self.base.replace(**dict(coords)))

    def scenarios(self) -> List[Scenario]:
        """All cell scenarios, in cell order."""
        return [cell.scenario for cell in self.cells()]


@dataclass
class SweepCellError:
    """Structured record of one failed sweep cell.

    ``error_type`` / ``message`` mirror the captured exception; ``stage``
    names the pipeline stage that raised (``network`` / ``derivation`` /
    ``scheduling`` / ``run`` — attributed by :class:`PipelineCache`);
    ``retries`` counts the group redispatches that preceded the failure
    (always 0 on the serial path, which has no supervisor).
    """

    error_type: str
    message: str
    stage: str = "run"
    retries: int = 0

    def describe(self) -> str:
        return (
            f"{self.error_type}: {self.message} "
            f"(stage={self.stage}, retries={self.retries})"
        )


def _cell_error(exc: BaseException, retries: int = 0) -> SweepCellError:
    """The structured row form of a captured per-cell exception."""
    return SweepCellError(
        error_type=type(exc).__name__,
        message=str(exc),
        stage=getattr(exc, "_pipeline_stage", "run"),
        retries=retries,
    )


@dataclass
class SweepRow:
    """One sweep-table row: the cell's axis values plus its metrics."""

    cell: Dict[str, Any]
    metrics: Dict[str, Any]
    #: Retained only with ``run_sweep(..., keep_results=True)``; excluded
    #: from equality so lean and retaining sweeps compare by content.
    result: Optional[RuntimeResult] = field(default=None, compare=False)
    #: Set only on failed rows (``SweepResult.failed_rows``); healthy rows
    #: carry ``None``, so equality against pre-fault-capture rows holds.
    error: Optional[SweepCellError] = None


@dataclass
class SweepStats:
    """What the sweep actually computed (the stage-reuse contract).

    ``workers`` is the number of processes that executed cells (1 for the
    serial path).  When ``run_sweep(workers=N)`` had to fall back to the
    serial path, ``parallel_fallback`` documents why.  Parallel sweeps
    merge the per-worker cache counters by summation, so the contract
    becomes *per worker group*: every schedule-key group pays exactly one
    derivation and one scheduling pass (worker caches cannot share
    derivations across processes the way the serial path shares them
    across schedule keys).
    """

    cells: int = 0
    runs: int = 0
    networks_built: int = 0
    derivations_computed: int = 0
    schedules_computed: int = 0
    workers: int = 1
    parallel_fallback: Optional[str] = None
    #: Cells whose failure was captured as an error row (``failed_rows``).
    failed_cells: int = 0
    #: Group redispatches the parallel supervisor performed (crash/timeout
    #: recovery); retried groups re-pay their stage computations, so the
    #: cache counters above count *work done*, not distinct artifacts.
    retries: int = 0
    #: Checkpoint-store traffic (``run_sweep(store=...)``): cells served
    #: from the store vs. cells that had to execute.  Both stay 0 when no
    #: store is passed or the store is read-bypassed (``keep_results`` /
    #: ``observer_factory`` sweeps need live runs).
    store_hits: int = 0
    store_misses: int = 0
    #: True when a ``KeyboardInterrupt`` cut the sweep short — the result
    #: holds every row completed (and drained) before the interrupt.
    interrupted: bool = False
    #: True when the sweep ran on an already-warm resident
    #: :class:`~repro.experiment.pool.SweepPool` (at least one live worker
    #: at submit time — no spawn cost was paid).  Always False on the
    #: serial path and on the transient pool ``run_sweep(workers=N)``
    #: opens.
    pool_reused: bool = False
    #: Schedule-key groups served by a worker's warm ``PipelineCache``
    #: (resident pool only): each such group paid **zero** new
    #: derivations/scheduling passes this sweep.
    warm_group_hits: int = 0
    #: Scenario/stimulus payloads a worker decoded from its content-hash
    #: cache instead of re-parsing JSON (resident pool only).
    payload_cache_hits: int = 0


@dataclass
class SweepResult:
    """The sweep's table: axes, requested metrics, rows and stage stats.

    ``rows`` holds only *healthy* rows (still in cell order), so they stay
    bit-identical to a fault-free run's rows; cells whose execution failed
    land in ``failed_rows`` with a :class:`SweepCellError` attached, and
    cells never reached (interrupted sweeps) appear in neither.
    """

    axes: Dict[str, Tuple[Any, ...]]
    metrics: Tuple[str, ...]
    rows: List[SweepRow]
    stats: SweepStats
    failed_rows: List[SweepRow] = field(default_factory=list)

    def column(self, name: str) -> List[Any]:
        """All values of one metric (or axis) column, in cell order.

        Failed cells are not part of any column — columns align with
        ``rows``, the healthy table.
        """
        if name in self.metrics:
            return [row.metrics[name] for row in self.rows]
        if name in self.axes:
            return [row.cell[name] for row in self.rows]
        raise ModelError(f"unknown sweep column {name!r}")

    def table(self) -> str:
        """Aligned text rendering of the sweep table (plus any failures)."""
        headers = list(self.axes) + list(self.metrics)
        grid = [headers]
        for row in self.rows:
            grid.append(
                [_cell_str(row.cell[a]) for a in self.axes]
                + [_cell_str(row.metrics[m]) for m in self.metrics]
            )
        widths = [max(len(r[i]) for r in grid) for i in range(len(headers))]
        lines = [
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
            for row in grid
        ]
        lines.insert(1, "  ".join("-" * w for w in widths).rstrip())
        if self.failed_rows:
            lines.append("")
            lines.append(f"failed cells ({len(self.failed_rows)}):")
            for row in self.failed_rows:
                coords = ", ".join(
                    f"{name}={_cell_str(v)}" for name, v in row.cell.items()
                )
                lines.append(f"  ! {coords}: {row.error.describe()}")
        if self.stats.interrupted:
            lines.append("")
            lines.append(
                f"interrupted: {len(self.rows)}/{self.stats.cells} cells "
                "completed before KeyboardInterrupt"
            )
        return "\n".join(lines)


def _cell_str(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, Platform):
        return value.describe()
    if isinstance(value, OverheadModel):
        return (
            f"ov({value.first_frame_arrival}/"
            f"{value.steady_frame_arrival}/{value.per_job})"
        )
    return str(value)


def _check_metrics(metrics: Sequence[str]) -> Tuple[Tuple[str, ...], bool]:
    """Validated metric tuple plus whether any metric needs the data phase."""
    metrics = tuple(metrics)
    if not metrics:
        raise ModelError("run_sweep needs at least one metric")
    for name in metrics:
        if name not in DEFAULT_METRICS:
            raise ModelError(
                f"unknown sweep metric {name!r} — known: "
                f"{', '.join(DEFAULT_METRICS)}"
            )
    return metrics, any(name in DATA_METRICS for name in metrics)


def _check_cell_modes(cell: SweepCell, metrics: Tuple[str, ...],
                      want_data: bool) -> None:
    if cell.scenario.records_only and want_data:
        raise RuntimeModelError(
            f"cell {dict(cell.coords)!r} is records_only but the sweep "
            f"requests data metrics "
            f"({', '.join(n for n in metrics if n in DATA_METRICS)}) — "
            "drop them or clear records_only"
        )


def _run_cell(
    cell: SweepCell,
    metrics: Tuple[str, ...],
    want_data: bool,
    *,
    lean: bool,
    keep_results: bool,
    cache: PipelineCache,
    extra_observers: Sequence[ExecutionObserver] = (),
) -> Tuple[Dict[str, Any], Optional[RuntimeResult]]:
    """Execute one cell; the single code path serial and parallel share.

    Returns the row's metric values plus the retained result (``None``
    unless *keep_results*).  Keeping this the only place a cell is
    configured and executed is what makes parallel rows bit-identical to
    serial rows by construction.
    """
    scenario = cell.scenario
    _check_cell_modes(cell, metrics, want_data)
    # Per-record aggregates the table does not ask for are switched
    # off: on_record fires per job instance, and each aggregate is
    # exact-rational arithmetic.  (Responses are not a sweep metric.)
    observer = MetricsObserver(
        track_responses=False,
        track_utilization="peak_utilization" in metrics,
        track_frame_spans="frame_makespan_max" in metrics,
    )
    observers: List[ExecutionObserver] = [observer, *extra_observers]
    # Extra observers that consume data-phase events keep the data
    # phase alive even when the table's metrics alone would allow
    # records_only — they attach live and must see their events.
    cell_wants_data = want_data or any(
        _overrides(ob, name, base)
        for ob in observers[1:]
        for name, base in _DATA_HOOKS
    )
    if keep_results:
        # Retained rows must be usable post-hoc (replay, observables,
        # record-derived metrics), so record collection is forced on even
        # when the base scenario itself runs lean — retaining a
        # record-suppressed result would hand back rows whose result
        # cannot report anything.
        run_scenario = (
            scenario if scenario.collect_records
            else scenario.replace(collect_records=True)
        )
    elif lean:
        run_scenario = scenario.replace(
            records_only=scenario.records_only or not cell_wants_data,
            collect_records=False,
            collect_trace=False,
        )
    else:
        run_scenario = scenario
    experiment = Experiment(run_scenario, cache=cache)
    result = experiment.run(observers=observers)
    return (
        {n: _extract_metric(observer, n) for n in metrics},
        result if keep_results else None,
    )


def run_sweep(
    matrix: ScenarioMatrix,
    metrics: Sequence[str] = DEFAULT_METRICS,
    *,
    lean: bool = True,
    keep_results: bool = False,
    observer_factory: Optional[
        Callable[[SweepCell], Sequence[ExecutionObserver]]
    ] = None,
    cache: Optional[PipelineCache] = None,
    workers: int = 1,
    store: Optional[SweepStore] = None,
    faults: Optional[FaultPlan] = None,
    on_error: str = "capture",
    group_timeout: Optional[float] = None,
    max_retries: int = 2,
    retry_backoff: float = 0.25,
    on_row: Optional[Callable[[SweepRow], None]] = None,
    on_progress: Optional[Callable[[Any], None]] = None,
) -> SweepResult:
    """Execute every cell of *matrix* and tabulate the requested *metrics*.

    Parameters
    ----------
    metrics:
        Row columns, drawn from :data:`TIMING_METRICS` and
        :data:`DATA_METRICS`.  When no data metric is requested the cells
        run ``records_only`` (the data phase — kernels, channel states —
        is skipped entirely).
    lean:
        Run cells with ``collect_records=False`` / ``collect_trace=False``
        (observer-streaming only; nothing retained per instance).  Set
        ``False`` to honour each scenario's own executor flags.
    keep_results:
        Retain every cell's full :class:`RuntimeResult` on its row.
        Record collection is forced on for the retained runs (a lean base
        scenario would otherwise retain record-suppressed, unusable
        results); the other executor flags stay as the scenario says.
    observer_factory:
        Optional per-cell extra observers, attached live to that cell's
        run (e.g. exporters or dashboards fed by the same event streams).
    cache:
        Stage cache to (re)use; by default every sweep gets a fresh one.
        Pass a shared cache to chain sweeps over the same workloads.
    workers:
        Maximum number of worker processes; the default 1 runs serially
        in-process.  ``workers > 1`` partitions the cells into
        schedule-key groups and dispatches them to spawned workers
        (:mod:`repro.experiment.parallel`), falling back to the serial
        path — with the reason recorded in
        :attr:`SweepStats.parallel_fallback` — when the sweep cannot be
        dispatched (an ``observer_factory`` or ``keep_results`` sweep,
        non-serialisable scenarios, a shared ``cache``, or a single
        schedule-key group).
    store:
        Optional checkpoint store (:mod:`repro.experiment.store`).  Cells
        whose ``(scenario_hash, metrics)`` key the store already holds are
        served from it (``stats.store_hits``) instead of executing; every
        freshly-computed healthy row is persisted.  Store *reads* are
        bypassed for ``keep_results`` / ``observer_factory`` sweeps, which
        need live runs (writes still happen), and for scenarios without a
        content key (code-bearing workloads/WCETs).
    faults:
        Optional deterministic :class:`~repro.experiment.faults.FaultPlan`
        for testing the recovery paths; fires only for cells that actually
        execute (store hits never fault).
    on_error:
        ``"capture"`` (default) turns a failing cell into an error row on
        :attr:`SweepResult.failed_rows` and keeps sweeping; ``"raise"``
        restores abort-on-first-failure (the serial path re-raises the
        cell's exception, the parallel path raises
        :class:`~repro.errors.SweepError` naming the first failed cell).
    group_timeout:
        Per-group deadline in seconds for the parallel supervisor: a
        dispatched group that does not reply in time is terminated and
        retried (workers are pre-booted when deadlines are active, so the
        deadline measures group runtime, not process spawn).  ``None``
        (default) disables deadlines.  Serial sweeps ignore it (nothing
        to terminate in-process).
    max_retries:
        How many times the parallel supervisor redispatches a group after
        a worker crash or timeout before degrading it to error rows.
    retry_backoff:
        Base seconds of the exponential backoff between a group's
        redispatches (``retry_backoff * 2**retries_so_far``).
    on_row:
        Optional per-cell row stream: called with each *healthy*
        :class:`SweepRow` as it completes (store hits included), before
        the assembled result returns — the same contract as
        :meth:`SweepPool.submit`'s ``on_row``, so live sinks
        (:class:`~repro.runtime.telemetry.ProgressObserver`) work on
        both paths.  The callback is user code and *is* part of the
        sweep: an exception it raises surfaces to the caller (after
        the parallel backend's bookkeeping completes).
    on_progress:
        Optional milestone stream for the parallel backend
        (:class:`~repro.experiment.pool.PoolEvent` values: enqueue,
        dispatch, group completion, retries).  Delivery is best-effort
        — exceptions are swallowed — and the serial path emits nothing
        (there are no groups or dispatches to report).
    """
    metrics, want_data = _check_metrics(metrics)
    if workers < 1:
        raise ModelError("workers must be >= 1")
    if on_error not in ("capture", "raise"):
        raise ModelError(
            f"on_error must be 'capture' or 'raise', got {on_error!r}"
        )
    if max_retries < 0:
        raise ModelError("max_retries must be >= 0")
    if retry_backoff < 0:
        raise ModelError("retry_backoff must be >= 0")

    fallback: Optional[str] = None
    cells: Optional[List[SweepCell]] = None
    if workers > 1:
        from .parallel import _serial_fallback_reason, run_sweep_parallel

        cells = list(matrix.cells())
        fallback = _serial_fallback_reason(
            cells,
            keep_results=keep_results,
            observer_factory=observer_factory,
            cache=cache,
        )
        if fallback is None:
            return run_sweep_parallel(
                matrix, metrics, want_data,
                lean=lean, workers=workers, cells=cells,
                store=store, faults=faults, on_error=on_error,
                group_timeout=group_timeout, max_retries=max_retries,
                retry_backoff=retry_backoff,
                on_row=on_row, on_progress=on_progress,
            )

    if cells is None:
        cells = list(matrix.cells())
    # Misconfiguration (records_only base vs data metrics) raises up
    # front, before any cell runs — it is not a per-cell failure to
    # capture, and the parallel path checks identically before dispatch.
    for cell in cells:
        _check_cell_modes(cell, metrics, want_data)

    cache = cache if cache is not None else PipelineCache()
    rows: List[SweepRow] = []
    failed_rows: List[SweepRow] = []
    stats = SweepStats(cells=len(matrix), parallel_fallback=fallback)
    # Store reads are bypassed when the caller needs live runs (retained
    # results, live observers); freshly-computed rows are still persisted.
    store_read = (
        store is not None and not keep_results and observer_factory is None
    )
    mkey = metrics_key(metrics) if store is not None else ""
    # Stats report what *this* sweep paid: with a shared (pre-warmed)
    # cache the counters are cumulative, so snapshot them and store deltas.
    nets0 = cache.networks_built
    derivs0 = cache.derivations_computed
    scheds0 = cache.schedules_computed
    for cell in cells:
        skey = store_key(cell.scenario) if store is not None else None
        if store_read and skey is not None:
            stored = store.get(skey, mkey)
            if stored is not None:
                stats.store_hits += 1
                row = SweepRow(cell=dict(cell.coords), metrics=stored)
                rows.append(row)
                if on_row is not None:
                    on_row(row)
                continue
            stats.store_misses += 1
        try:
            apply_cell_faults(faults, cell.index, in_worker=False)
            extra = (
                observer_factory(cell) if observer_factory is not None else ()
            )
            cell_metrics, result = _run_cell(
                cell, metrics, want_data,
                lean=lean, keep_results=keep_results, cache=cache,
                extra_observers=extra,
            )
        except KeyboardInterrupt:
            stats.interrupted = True
            break
        except Exception as exc:
            if on_error == "raise":
                raise
            stats.failed_cells += 1
            failed_rows.append(
                SweepRow(
                    cell=dict(cell.coords), metrics={},
                    error=_cell_error(exc),
                )
            )
            continue
        stats.runs += 1
        row = SweepRow(
            cell=dict(cell.coords), metrics=cell_metrics, result=result
        )
        rows.append(row)
        if store is not None and skey is not None:
            store.put(skey, mkey, cell_metrics)
        # Streamed *after* the row is booked (and persisted): a raising
        # sink surfaces to the caller but never loses the row — the
        # serial mirror of the pool's deferred-callback-error contract.
        if on_row is not None:
            on_row(row)
    stats.networks_built = cache.networks_built - nets0
    stats.derivations_computed = cache.derivations_computed - derivs0
    stats.schedules_computed = cache.schedules_computed - scheds0
    return SweepResult(
        axes=dict(matrix.axes), metrics=metrics, rows=rows, stats=stats,
        failed_rows=failed_rows,
    )
