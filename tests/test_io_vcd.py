"""Tests for the VCD waveform exporter."""

import pytest

from repro.apps import build_fig1_network, fig1_stimulus, fig1_wcets
from repro.io import VcdError, runtime_result_to_vcd, write_vcd
from repro.io.vcd import _ident, _merge_intervals
from repro.runtime import OverheadModel, run_static_order
from repro.scheduling import find_feasible_schedule, list_schedule
from repro.taskgraph import derive_task_graph


@pytest.fixture(scope="module")
def result():
    net = build_fig1_network()
    g = derive_task_graph(net, fig1_wcets())
    s = find_feasible_schedule(g, 2)
    return run_static_order(net, s, 2, fig1_stimulus(2))


class TestHelpers:
    def test_ident_unique_and_printable(self):
        ids = [_ident(i) for i in range(500)]
        assert len(set(ids)) == 500
        assert all(all(33 <= ord(c) <= 126 for c in i) for i in ids)

    def test_merge_intervals(self):
        assert _merge_intervals([(0, 5), (5, 10), (20, 30), (25, 27)]) == [
            (0, 10), (20, 30)
        ]

    def test_merge_drops_empty(self):
        assert _merge_intervals([(5, 5), (7, 6)]) == []


class TestVcdStructure:
    def test_header(self, result):
        text = runtime_result_to_vcd(result)
        assert "$timescale 1 us $end" in text
        assert "$enddefinitions $end" in text
        assert "$dumpvars" in text

    def test_declares_processor_and_process_wires(self, result):
        text = runtime_result_to_vcd(result)
        assert " M0 $end" in text and " M1 $end" in text
        assert " p_InputA $end" in text
        assert " deadline_miss $end" in text

    def test_has_value_changes(self, result):
        text = runtime_result_to_vcd(result)
        ticks = [l for l in text.splitlines() if l.startswith("#")]
        assert len(ticks) > 5
        # ticks strictly increasing
        values = [int(t[1:]) for t in ticks]
        assert values == sorted(values)

    def test_millisecond_grid_exact(self, result):
        # timestamps are integer ms; with 1 us ticks everything lands exactly
        text = runtime_result_to_vcd(result)
        assert "#25000" in text  # 25 ms -> 25000 us

    def test_coarse_timescale_rejected_for_fractional_times(self):
        net = build_fig1_network()
        g = derive_task_graph(net, fig1_wcets())
        s = find_feasible_schedule(g, 2)
        res = run_static_order(
            net, s, 1, fig1_stimulus(1),
            execution_time=lambda job, frame: job.wcet / 3,
        )
        with pytest.raises(VcdError, match="timescale"):
            runtime_result_to_vcd(res, timescale_ms=1)

    def test_finer_timescale_accepts_fractional_times(self):
        net = build_fig1_network()
        g = derive_task_graph(net, fig1_wcets())
        s = find_feasible_schedule(g, 2)
        res = run_static_order(
            net, s, 1, fig1_stimulus(1),
            execution_time=lambda job, frame: job.wcet / 2,
        )
        text = runtime_result_to_vcd(res, timescale_ms="1/2")
        assert text.startswith("$date")


class TestSemantics:
    def test_miss_pulses_present_iff_misses(self):
        net = build_fig1_network()
        g = derive_task_graph(net, fig1_wcets())
        s2 = find_feasible_schedule(g, 2)
        clean = run_static_order(net, s2, 2, fig1_stimulus(2))
        clean_text = runtime_result_to_vcd(clean)
        miss_ident = _find_ident(clean_text, "deadline_miss")
        assert f"1{miss_ident}" not in clean_text

        s1 = list_schedule(g, 1, "alap")
        dirty = run_static_order(
            net, s1, 2, fig1_stimulus(2, coef_arrivals=[150]),
        )
        dirty_text = runtime_result_to_vcd(dirty)
        miss_ident = _find_ident(dirty_text, "deadline_miss")
        assert f"1{miss_ident}" in dirty_text

    def test_overhead_signal(self):
        net = build_fig1_network()
        g = derive_task_graph(net, fig1_wcets())
        s = find_feasible_schedule(g, 2)
        res = run_static_order(
            net, s, 2, fig1_stimulus(2), overheads=OverheadModel.mppa_like()
        )
        text = runtime_result_to_vcd(res)
        ov_ident = _find_ident(text, "runtime_overhead")
        assert f"1{ov_ident}" in text

    def test_write_vcd(self, tmp_path, result):
        path = tmp_path / "trace.vcd"
        write_vcd(result, str(path))
        assert path.read_text().startswith("$date")


def _find_ident(text: str, name: str) -> str:
    for line in text.splitlines():
        if line.startswith("$var") and line.split()[4] == name:
            return line.split()[3]
    raise AssertionError(f"signal {name} not declared")
