"""Integer-tick timing domain for hot loops.

The library's *two-domain* timing design:

* **API domain — exact rationals.**  Every public type (``Job``,
  ``ScheduledJob``, ``JobRecord``, reports, …) carries time as
  :class:`fractions.Fraction` (see :mod:`repro.core.timebase`), because the
  paper defines periods and deadlines over ``Q+`` and the hyperperiod as a
  rational LCM.

* **Hot-loop domain — integer ticks.**  Rational arithmetic normalises
  through a GCD on every addition and cross-multiplies on every comparison,
  which dominates the cost of list scheduling, priority search and runtime
  simulation on long-hyperperiod instances (the paper's own Section V-B
  scalability pain point).  A :class:`TickDomain` therefore computes — once
  per task graph or simulation run — the LCM ``L`` of all time denominators
  involved and maps every rational ``p/q`` to the plain integer
  ``p * (L / q)``.  All scheduling/simulation recurrences (max, add,
  compare) then run on machine integers.

**Invariant: conversions are exact, never rounded.**  By construction ``L``
is a common multiple of every denominator in the domain, so ``to_ticks`` is
a bijection between the represented rationals and a subset of the integers,
and ``from_ticks(to_ticks(t)) == t`` holds *exactly*.  Converting a value
whose denominator does not divide ``L`` raises instead of rounding.  Because
the tick map is a strictly monotone linear map, every comparison, min/max,
sum and difference computed in ticks agrees with the Fraction computation —
which is why the tick-ported algorithms are bit-identical observables-wise
to a pure-Fraction reference (see ``tests/test_tick_equivalence.py``).
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Iterable, List, Sequence

from .timebase import Time, TimeLike, as_time

__all__ = ["TickDomain", "JobTicks", "fraction_from_ratio"]


# CPython's Fraction stores its (normalised) state in two slots; building
# them directly skips the type-dispatching constructor in the hot
# ticks->Fraction conversion.  Feature-probed so exotic interpreters fall
# back to the public constructor.
try:
    _probe = object.__new__(Fraction)
    _probe._numerator = 1
    _probe._denominator = 2
    _FAST_FRACTION = _probe == Fraction(1, 2)
except (AttributeError, TypeError):  # pragma: no cover - non-CPython
    _FAST_FRACTION = False
_new_fraction = object.__new__


def _lcm_of_denominators(values: Iterable[TimeLike], start: int = 1) -> int:
    scale = start
    for v in values:
        d = v.denominator if isinstance(v, Fraction) else as_time(v).denominator
        if scale % d:
            scale = scale // gcd(scale, d) * d
    return scale


def fraction_from_ratio(num: int, den: int) -> Fraction:
    """Exact ``Fraction(num, den)`` through the fast normalising path.

    For hot code that already holds an integer ratio and wants to skip the
    type dispatch of the public constructor (e.g. the jittered execution
    sampler scaling a WCET).
    """
    if not _FAST_FRACTION:  # pragma: no cover - non-CPython
        return Fraction(num, den)
    if den < 0:
        num, den = -num, -den
    g = gcd(num, den)
    if g != 1:
        num //= g
        den //= g
    f = _new_fraction(Fraction)
    f._numerator = num
    f._denominator = den
    return f


class TickDomain:
    """An exact linear map between rational times and integer ticks.

    ``scale`` is the number of ticks per time unit: a rational time ``t``
    maps to the integer ``t * scale``, which is exact for every value whose
    denominator divides ``scale``.
    """

    __slots__ = ("scale",)

    def __init__(self, scale: int = 1) -> None:
        if scale < 1:
            raise ValueError(f"tick scale must be a positive integer, got {scale}")
        self.scale = scale

    # ------------------------------------------------------------------
    @classmethod
    def for_values(cls, values: Iterable[TimeLike]) -> "TickDomain":
        """Smallest domain containing every value (LCM of denominators)."""
        return cls(_lcm_of_denominators(values))

    def extended(self, values: Iterable[TimeLike]) -> "TickDomain":
        """This domain enlarged to also contain *values*.

        Returns ``self`` unchanged (same object) when no enlargement is
        needed, so callers can cheaply detect that precomputed tick arrays
        remain valid.
        """
        scale = _lcm_of_denominators(values, self.scale)
        return self if scale == self.scale else TickDomain(scale)

    # ------------------------------------------------------------------
    def contains(self, value: TimeLike) -> bool:
        """True when *value* converts exactly in this domain."""
        return self.scale % as_time(value).denominator == 0

    def to_ticks(self, value: TimeLike) -> int:
        """Exact integer tick count of *value*; raises if not representable."""
        f = value if isinstance(value, Fraction) else as_time(value)
        q, r = divmod(f.numerator * self.scale, f.denominator)
        if r:
            raise ValueError(
                f"{f} is not representable in a tick domain of scale "
                f"{self.scale} (denominator {f.denominator} does not divide it)"
            )
        return q

    def ticks(self, values: Iterable[TimeLike]) -> List[int]:
        """Vectorised :meth:`to_ticks`."""
        return [self.to_ticks(v) for v in values]

    def from_ticks(self, ticks: int) -> Time:
        """The exact rational time of an integer tick count.

        This is the hot conversion when schedules and job records are
        materialised, so it builds the (already normalised) Fraction
        directly instead of going through the type-dispatching
        ``Fraction.__new__``.
        """
        scale = self.scale
        if not _FAST_FRACTION:  # pragma: no cover - non-CPython
            return Fraction(ticks, scale)
        if scale == 1:
            num, den = ticks, 1
        else:
            g = gcd(ticks, scale)
            num, den = ticks // g, scale // g
        f = _new_fraction(Fraction)
        f._numerator = num
        f._denominator = den
        return f

    def rescale_factor(self, finer: "TickDomain") -> int:
        """Integer factor converting this domain's ticks to *finer*'s ticks.

        ``finer`` must be an extension of this domain (its scale a multiple
        of ours); tick arrays migrate with a single multiplication.
        """
        q, r = divmod(finer.scale, self.scale)
        if r:
            raise ValueError(
                f"domain of scale {finer.scale} does not refine scale {self.scale}"
            )
        return q

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TickDomain) and other.scale == self.scale

    def __hash__(self) -> int:
        return hash((TickDomain, self.scale))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"TickDomain(scale={self.scale})"


class JobTicks:
    """Integer-tick view of a job list (arrivals, deadlines, WCETs).

    Built once per task graph (see :meth:`repro.taskgraph.graph.TaskGraph.
    tick_times`) and shared by every scheduling pass over it.  The job list
    is frozen at graph construction (the graph's name index relies on that
    too), so the view never needs invalidation.
    """

    __slots__ = ("domain", "arrival", "wcet", "deadline")

    def __init__(self, jobs: Sequence, hyperperiod: TimeLike = None) -> None:
        values: List[Fraction] = []
        for j in jobs:
            values.append(j.arrival)
            values.append(j.deadline)
            values.append(j.wcet)
            # Per-class WCET tables (heterogeneous platforms) enter the
            # domain too, so class-resolved durations convert exactly.
            table = getattr(j, "wcet_by_class", None)
            if table is not None:
                values.extend(v for _, v in table)
        if hyperperiod is not None:
            values.append(as_time(hyperperiod))
        self.domain = TickDomain.for_values(values)
        to_ticks = self.domain.to_ticks
        self.arrival: List[int] = [to_ticks(j.arrival) for j in jobs]
        self.wcet: List[int] = [to_ticks(j.wcet) for j in jobs]
        self.deadline: List[int] = [to_ticks(j.deadline) for j in jobs]

    @classmethod
    def _from_arrays(
        cls,
        domain: TickDomain,
        arrival: List[int],
        wcet: List[int],
        deadline: List[int],
    ) -> "JobTicks":
        view = cls.__new__(cls)
        view.domain = domain
        view.arrival = arrival
        view.wcet = wcet
        view.deadline = deadline
        return view

    def rescaled_to(self, values: Iterable[TimeLike]) -> "JobTicks":
        """This view in a domain extended to also contain *values*.

        Returns ``self`` unchanged when the current domain already covers
        them; otherwise a copy whose domain and tick arrays are migrated by
        the exact integer rescale factor.  This is the one place the
        extend-then-rescale invariant lives — callers that need extra
        run-specific inputs (schedule start times, overheads, sampled
        durations, bound arrival times) go through here.
        """
        dom = self.domain.extended(values)
        if dom is self.domain:
            return self
        factor = self.domain.rescale_factor(dom)
        return JobTicks._from_arrays(
            dom,
            [t * factor for t in self.arrival],
            [t * factor for t in self.wcet],
            [t * factor for t in self.deadline],
        )
