"""Compile-time scheduling: list scheduler, SP heuristics, baselines."""

from .list_scheduler import (
    hetero_tick_tables,
    list_schedule,
    platform_is_heterogeneous,
)
from .optimizer import (
    Attempt,
    DEFAULT_PORTFOLIO,
    QualityReport,
    all_heuristic_names,
    find_feasible_schedule,
    minimum_processors,
    schedule_quality,
    try_portfolio,
)
from .priorities import (
    WCET_AGGREGATES,
    aggregate_wcets,
    alap_priority,
    arrival_priority,
    available_heuristics,
    blevel_priority,
    deadline_priority,
    get_heuristic,
    register_heuristic,
)
from .schedule import ScheduledJob, StaticSchedule, Violation
from .search import (
    SearchResult,
    find_feasible_schedule_with_search,
    search_priorities,
)
from .uniprocessor import (
    CompletedJob,
    UniprocessorFixedPriority,
    rate_monotonic_priorities,
)

__all__ = [
    "hetero_tick_tables",
    "list_schedule",
    "platform_is_heterogeneous",
    "WCET_AGGREGATES",
    "aggregate_wcets",
    "Attempt",
    "DEFAULT_PORTFOLIO",
    "QualityReport",
    "all_heuristic_names",
    "find_feasible_schedule",
    "minimum_processors",
    "schedule_quality",
    "try_portfolio",
    "alap_priority",
    "arrival_priority",
    "available_heuristics",
    "blevel_priority",
    "deadline_priority",
    "get_heuristic",
    "register_heuristic",
    "SearchResult",
    "find_feasible_schedule_with_search",
    "search_priorities",
    "ScheduledJob",
    "StaticSchedule",
    "Violation",
    "CompletedJob",
    "UniprocessorFixedPriority",
    "rate_monotonic_priorities",
]
