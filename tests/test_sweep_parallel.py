"""Multiprocess sweep backend (ISSUE 5): bit-identical parallel rows,
per-group stage-reuse stats, wire-format round-trips and the documented
serial fallbacks."""

import json
from fractions import Fraction

import pytest

from repro import ScenarioMatrix, run_sweep
from repro.apps import fft_scenario, fig1_scenario, fms_scenario
from repro.errors import ModelError, RuntimeModelError
from repro.experiment import (
    PipelineCache,
    SweepStats,
    schedule_key_groups,
    serial_fallback_reason,
)
from repro.experiment.parallel import run_sweep_parallel
from repro.io import sweep_result_from_dict, sweep_result_to_dict
from repro.runtime import ExecutionObserver, OverheadModel

#: The headline acceptance matrix: jitter x overheads x processors over the
#: FMS case study.  Two processor counts -> two schedule-key groups, so a
#: workers=2 sweep genuinely fans out, while jitter/overhead cells within a
#: group exercise the per-worker stage reuse.
FMS_METRICS = (
    "executed_jobs",
    "missed_jobs",
    "worst_lateness",
    "makespan",
    "peak_utilization",
    "channel_writes",
)


def fms_matrix():
    return ScenarioMatrix(
        fms_scenario(n_frames=1),
        {
            "jitter_seed": [0, 7],
            "overheads": [OverheadModel.none(), OverheadModel.mppa_like()],
            "processors": [1, 2],
        },
    )


@pytest.fixture(scope="module")
def fms_serial_and_parallel():
    matrix = fms_matrix()
    serial = run_sweep(matrix, metrics=FMS_METRICS)
    parallel = run_sweep(fms_matrix(), metrics=FMS_METRICS, workers=2)
    return serial, parallel


# ---------------------------------------------------------------------------
# the headline invariant: parallel == serial, bit for bit
# ---------------------------------------------------------------------------
class TestParallelEquivalence:
    def test_rows_bit_identical_to_serial(self, fms_serial_and_parallel):
        serial, parallel = fms_serial_and_parallel
        assert parallel.rows == serial.rows
        assert parallel.axes == serial.axes
        assert parallel.metrics == serial.metrics
        # Exactness over the wire: rational metrics come back as the very
        # same Fractions, not floats that survived a decimal detour.
        for row_s, row_p in zip(serial.rows, parallel.rows):
            for name in ("worst_lateness", "makespan", "peak_utilization"):
                assert isinstance(row_p.metrics[name], Fraction)
                assert row_p.metrics[name] == row_s.metrics[name]

    def test_stats_one_derivation_and_schedule_per_group(
        self, fms_serial_and_parallel
    ):
        serial, parallel = fms_serial_and_parallel
        matrix = fms_matrix()
        n_groups = len(schedule_key_groups(matrix))
        assert n_groups == 2  # one per processor count
        assert parallel.stats.cells == len(matrix)
        assert parallel.stats.runs == len(matrix)
        assert parallel.stats.workers == 2
        assert parallel.stats.parallel_fallback is None
        # Per-worker caches: each group pays exactly one derivation and
        # one scheduling pass, merged by summation.
        assert parallel.stats.derivations_computed == n_groups
        assert parallel.stats.schedules_computed == n_groups
        assert parallel.stats.networks_built == n_groups
        # The serial twin shares the derivation across both groups.
        assert serial.stats.derivations_computed == 1
        assert serial.stats.schedules_computed == n_groups
        assert serial.stats.workers == 1

    def test_parallel_result_json_round_trip(self, fms_serial_and_parallel):
        _, parallel = fms_serial_and_parallel
        data = json.loads(json.dumps(sweep_result_to_dict(parallel)))
        restored = sweep_result_from_dict(data)
        assert restored.rows == parallel.rows
        assert restored.axes == parallel.axes
        assert restored.metrics == parallel.metrics
        assert restored.stats == parallel.stats
        assert restored.stats.workers == 2

    def test_complex_stimulus_crosses_the_wire(self):
        # The FFT workload's stimulus carries tuples of complex samples;
        # dispatching it proves the tagged encoding end-to-end (scenario
        # out, rows back) on data the JSON baseline would mangle.
        matrix = ScenarioMatrix(
            fft_scenario(n_frames=2), {"processors": [1, 2]}
        )
        metrics = ("executed_jobs", "makespan", "channel_writes")
        serial = run_sweep(matrix, metrics=metrics)
        parallel = run_sweep(matrix, metrics=metrics, workers=2)
        assert parallel.rows == serial.rows
        assert parallel.stats.workers == 2


# ---------------------------------------------------------------------------
# partitioning
# ---------------------------------------------------------------------------
class TestGrouping:
    def test_groups_partition_cells_by_schedule_key(self):
        matrix = fms_matrix()
        groups = schedule_key_groups(matrix)
        assert sorted(c.index for g in groups for c in g) == \
            list(range(len(matrix)))
        for group in groups:
            keys = {c.scenario.schedule_key() for c in group}
            assert len(keys) == 1
        # First-seen order: processors is the fastest-varying axis, so the
        # first two cells already hit both groups.
        assert [g[0].index for g in groups] == [0, 1]

    def test_runtime_only_matrix_is_one_group(self):
        matrix = ScenarioMatrix(
            fig1_scenario(n_frames=1),
            {"jitter_seed": [0, 1], "n_frames": [1, 2]},
        )
        assert len(schedule_key_groups(matrix)) == 1


# ---------------------------------------------------------------------------
# fallback rules (all decided without spawning anything)
# ---------------------------------------------------------------------------
class TestSerialFallback:
    def multi_group_matrix(self, **kwargs):
        return ScenarioMatrix(
            fig1_scenario(n_frames=1, **kwargs),
            {"processors": [2, 3], "jitter_seed": [0, 1]},
        )

    def test_observer_factory_falls_back(self):
        seen = []
        result = run_sweep(
            self.multi_group_matrix(),
            metrics=("executed_jobs",),
            observer_factory=lambda cell: [ExecutionObserver()] + seen,
            workers=2,
        )
        assert result.stats.workers == 1
        assert "observer_factory" in result.stats.parallel_fallback

    def test_keep_results_falls_back(self):
        result = run_sweep(
            self.multi_group_matrix(),
            metrics=("executed_jobs",),
            keep_results=True,
            workers=2,
        )
        assert result.stats.workers == 1
        assert "keep_results" in result.stats.parallel_fallback
        assert all(row.result is not None for row in result.rows)

    def test_shared_cache_falls_back(self):
        result = run_sweep(
            self.multi_group_matrix(),
            metrics=("executed_jobs",),
            cache=PipelineCache(),
            workers=2,
        )
        assert result.stats.workers == 1
        assert "PipelineCache" in result.stats.parallel_fallback

    def test_callable_workload_falls_back(self):
        base = fig1_scenario(n_frames=1)
        factory = base.build_network
        matrix = ScenarioMatrix(
            base.replace(workload=lambda: factory()),
            {"processors": [2, 3]},
        )
        result = run_sweep(matrix, metrics=("executed_jobs",), workers=2)
        assert result.stats.workers == 1
        assert "not dispatchable" in result.stats.parallel_fallback

    def test_parent_only_workload_registration_falls_back(self):
        # A spawned worker re-imports repro from scratch: names registered
        # only in this process would crash (or silently diverge) there, so
        # they must demote the sweep instead of dispatching.
        from repro.experiment import register_workload
        from repro.experiment.scenario import _WORKLOADS

        base = fig1_scenario(n_frames=1)
        register_workload("parent-only-fig1", base.build_network)
        try:
            matrix = ScenarioMatrix(
                base.replace(workload="parent-only-fig1"),
                {"processors": [2, 3]},
            )
            result = run_sweep(matrix, metrics=("executed_jobs",), workers=2)
            assert result.stats.workers == 1
            assert "registered only in this process" in \
                result.stats.parallel_fallback
            # The serial fallback still executes the cells correctly.
            assert all(
                row.metrics["executed_jobs"] > 0 for row in result.rows
            )
        finally:
            _WORKLOADS.pop("parent-only-fig1", None)

    def test_overridden_builtin_workload_falls_back(self):
        # Re-registering a built-in name swaps its factory in this process
        # only; a worker would resolve the *built-in* network instead.
        from repro.apps import BUILTIN_WORKLOADS
        from repro.experiment import register_workload

        try:
            register_workload("fig1", fig1_scenario(n_frames=1).build_network)
            reason = serial_fallback_reason(
                ScenarioMatrix(
                    fig1_scenario(n_frames=1), {"processors": [2, 3]}
                )
            )
            assert reason is not None
            assert "registered only in this process" in reason
        finally:
            register_workload("fig1", BUILTIN_WORKLOADS["fig1"])
        assert serial_fallback_reason(
            ScenarioMatrix(fig1_scenario(n_frames=1), {"processors": [2, 3]})
        ) is None

    def test_workload_axis_over_builtin_names_is_dispatchable(self):
        # The cells are the dispatch authority: a code-bearing base whose
        # workload is substituted away by an axis must not block the fan
        # out (and the per-cell scan, not the base, decides).
        base = fig1_scenario(n_frames=1)
        matrix = ScenarioMatrix(
            base.replace(workload=base.build_network),
            {"workload": ["fig1"], "processors": [2, 3]},
        )
        assert serial_fallback_reason(matrix) is None

    def test_callable_wcet_axis_falls_back(self):
        base = fig1_scenario(n_frames=1)
        wcet_model = {"InputA": lambda job, k: Fraction(1)}
        reason = serial_fallback_reason(
            ScenarioMatrix(base, {"wcet": [base.wcet, wcet_model]})
        )
        assert reason is not None and "wcet" in reason

    def test_single_group_falls_back(self):
        matrix = ScenarioMatrix(
            fig1_scenario(n_frames=1), {"jitter_seed": [0, 1]}
        )
        result = run_sweep(matrix, metrics=("executed_jobs",), workers=2)
        assert result.stats.workers == 1
        assert "single schedule-key group" in result.stats.parallel_fallback

    def test_dispatchable_sweep_has_no_reason(self):
        assert serial_fallback_reason(self.multi_group_matrix()) is None

    def test_serial_sweep_records_no_fallback(self):
        result = run_sweep(
            ScenarioMatrix(fig1_scenario(n_frames=1), {"jitter_seed": [0]}),
            metrics=("executed_jobs",),
        )
        assert result.stats.workers == 1
        assert result.stats.parallel_fallback is None

    def test_workers_validation(self):
        matrix = self.multi_group_matrix()
        with pytest.raises(ModelError):
            run_sweep(matrix, metrics=("executed_jobs",), workers=0)
        with pytest.raises(ModelError):
            run_sweep_parallel(
                matrix, ("executed_jobs",), False, lean=True, workers=1
            )

    def test_records_only_conflict_raises_before_dispatch(self):
        matrix = ScenarioMatrix(
            fig1_scenario(n_frames=1, records_only=True),
            {"processors": [2, 3]},
        )
        with pytest.raises(RuntimeModelError):
            run_sweep(
                matrix, metrics=("executed_jobs", "channel_writes"), workers=2
            )


# ---------------------------------------------------------------------------
# every documented fallback reason, pinned verbatim
# ---------------------------------------------------------------------------
class TestFallbackReasonStrings:
    """``SweepStats.parallel_fallback`` is user-facing diagnostics: the
    exact strings are part of the contract, pinned per documented rule."""

    CASES = [
        (
            "observer_factory",
            "observer_factory attaches live in-process observers, which "
            "cannot be shipped to worker processes",
        ),
        (
            "keep_results",
            "keep_results retains full RuntimeResult objects, which are "
            "not serialised across the process boundary",
        ),
        (
            "shared_cache",
            "a caller-shared PipelineCache cannot be shared with worker "
            "processes — drop it to fan out",
        ),
        (
            "dispatch_blocker",
            "scenario is not dispatchable: workload is a bare factory "
            "callable — only the built-in app workloads resolve by name in "
            "a worker process",
        ),
        (
            "single_group",
            "matrix has a single schedule-key group — nothing to fan out "
            "(parallelism is per distinct schedule key)",
        ),
    ]

    @pytest.mark.parametrize("rule,expected", CASES, ids=[c[0] for c in CASES])
    def test_reason_string_is_exact(self, rule, expected):
        base = fig1_scenario(n_frames=1)
        multi = ScenarioMatrix(base, {"processors": [2, 3]})
        kwargs = {}
        matrix = multi
        if rule == "observer_factory":
            kwargs["observer_factory"] = lambda cell: []
        elif rule == "keep_results":
            kwargs["keep_results"] = True
        elif rule == "shared_cache":
            kwargs["cache"] = PipelineCache()
        elif rule == "dispatch_blocker":
            matrix = ScenarioMatrix(
                base.replace(workload=base.build_network),
                {"processors": [2, 3]},
            )
        elif rule == "single_group":
            matrix = ScenarioMatrix(base, {"jitter_seed": [0, 1]})
        assert serial_fallback_reason(matrix, **kwargs) == expected

    def test_dispatchable_matrix_has_no_reason(self):
        assert serial_fallback_reason(
            ScenarioMatrix(fig1_scenario(n_frames=1), {"processors": [2, 3]})
        ) is None


# ---------------------------------------------------------------------------
# stats wire format
# ---------------------------------------------------------------------------
class TestStatsFormat:
    def test_pre_parallel_payloads_default_new_fields(self):
        # Sweep JSON written before the parallel backend carries no
        # workers/parallel_fallback keys; reading it must not change.
        result = run_sweep(
            ScenarioMatrix(fig1_scenario(n_frames=1), {"jitter_seed": [0]}),
            metrics=("executed_jobs",),
        )
        data = sweep_result_to_dict(result)
        del data["stats"]["workers"]
        del data["stats"]["parallel_fallback"]
        restored = sweep_result_from_dict(json.loads(json.dumps(data)))
        assert restored.stats.workers == 1
        assert restored.stats.parallel_fallback is None
        assert restored.stats == result.stats

    def test_fallback_reason_survives_round_trip(self):
        result = run_sweep(
            ScenarioMatrix(fig1_scenario(n_frames=1), {"jitter_seed": [0]}),
            metrics=("executed_jobs",),
            keep_results=True,
            workers=2,
        )
        restored = sweep_result_from_dict(
            json.loads(json.dumps(sweep_result_to_dict(result)))
        )
        assert restored.stats.parallel_fallback == \
            result.stats.parallel_fallback
        assert isinstance(restored.stats, SweepStats)
