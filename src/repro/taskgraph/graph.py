"""The task graph ``TG(J, E)``: a DAG of jobs with precedence edges.

Jobs are stored in the total order ``<J`` produced by the derivation's
hyperperiod simulation, so the node list itself is a topological order —
every edge ``(i, j)`` satisfies ``i < j``.  The class enforces this, which
makes downstream algorithms (ASAP/ALAP, list scheduling, transitive
reduction) single forward/backward passes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import ModelError
from ..core.timebase import Time
from .jobs import Job

Edge = Tuple[int, int]


class TaskGraph:
    """A directed acyclic graph of jobs with index-based edges.

    Parameters
    ----------
    jobs:
        Jobs in ``<J`` order (arrival-time–major total order from the
        derivation).
    edges:
        Iterable of ``(i, j)`` index pairs, each with ``i < j``.
    hyperperiod:
        The frame length ``H`` the graph was derived for (kept for the
        online policy and feasibility checks); optional for hand-built
        graphs in tests.
    """

    def __init__(
        self,
        jobs: Sequence[Job],
        edges: Iterable[Edge] = (),
        hyperperiod: Optional[Time] = None,
    ) -> None:
        self.jobs: List[Job] = list(jobs)
        self.hyperperiod = hyperperiod
        names = [j.name for j in self.jobs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ModelError(f"duplicate job names in task graph: {dupes!r}")
        self._index: Dict[str, int] = {name: i for i, name in enumerate(names)}
        self._succs: List[Set[int]] = [set() for _ in self.jobs]
        self._preds: List[Set[int]] = [set() for _ in self.jobs]
        for i, j in edges:
            self.add_edge(i, j)

    # ------------------------------------------------------------------
    def add_edge(self, i: int, j: int) -> None:
        """Add precedence edge ``jobs[i] -> jobs[j]`` (requires ``i < j``)."""
        n = len(self.jobs)
        if not (0 <= i < n and 0 <= j < n):
            raise ModelError(f"edge ({i}, {j}) out of range for {n} jobs")
        if i == j:
            raise ModelError(f"self-loop on job {self.jobs[i].name}")
        if i > j:
            raise ModelError(
                f"edge ({i}, {j}) violates the <J total order "
                f"({self.jobs[i].name} comes after {self.jobs[j].name})"
            )
        self._succs[i].add(j)
        self._preds[j].add(i)

    def remove_edge(self, i: int, j: int) -> None:
        self._succs[i].discard(j)
        self._preds[j].discard(i)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs)

    def index_of(self, name: str) -> int:
        """Index of the job named ``p[k]``."""
        try:
            return self._index[name]
        except KeyError:
            raise ModelError(f"no job named {name!r} in task graph") from None

    def job(self, name: str) -> Job:
        return self.jobs[self.index_of(name)]

    def has_edge(self, i: int, j: int) -> bool:
        return j in self._succs[i]

    def has_edge_named(self, a: str, b: str) -> bool:
        return self.has_edge(self.index_of(a), self.index_of(b))

    def successors(self, i: int) -> List[int]:
        return sorted(self._succs[i])

    def predecessors(self, i: int) -> List[int]:
        return sorted(self._preds[i])

    def edges(self) -> List[Edge]:
        """All edges as sorted ``(i, j)`` pairs."""
        return sorted((i, j) for i, succs in enumerate(self._succs) for j in succs)

    @property
    def edge_count(self) -> int:
        return sum(len(s) for s in self._succs)

    def sources(self) -> List[int]:
        """Jobs with no predecessors."""
        return [i for i in range(len(self.jobs)) if not self._preds[i]]

    def sinks(self) -> List[int]:
        """Jobs with no successors."""
        return [i for i in range(len(self.jobs)) if not self._succs[i]]

    # ------------------------------------------------------------------
    def jobs_of(self, process: str) -> List[int]:
        """Indices of all jobs of *process*, in k order."""
        out = [i for i, j in enumerate(self.jobs) if j.process == process]
        out.sort(key=lambda i: self.jobs[i].k)
        return out

    def total_wcet(self) -> Time:
        """Sum of all job WCETs (the numerator of utilization over a frame)."""
        total = Time(0)
        for j in self.jobs:
            total += j.wcet
        return total

    def reachable_from(self, i: int) -> Set[int]:
        """All jobs reachable from *i* by a non-empty path."""
        seen: Set[int] = set()
        stack = list(self._succs[i])
        while stack:
            v = stack.pop()
            if v in seen:
                continue
            seen.add(v)
            stack.extend(self._succs[v] - seen)
        return seen

    def is_transitively_reduced(self) -> bool:
        """True when no edge is implied by a longer path."""
        for i in range(len(self.jobs)):
            for mid in self._succs[i]:
                implied = self.reachable_from(mid)
                if implied & self._succs[i]:
                    return False
        return True

    def copy(self) -> "TaskGraph":
        return TaskGraph(self.jobs, self.edges(), self.hyperperiod)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"TaskGraph(jobs={len(self.jobs)}, edges={self.edge_count}, "
            f"H={self.hyperperiod})"
        )
