"""E4 + E5 — Section V-B: the FMS avionics case study.

Reproduced numbers:

* reduced hyperperiod 10 s (MagnDeclin 1600 -> 400 ms, body once per 4);
* task graph with exactly **812 jobs** (paper: 812) and ~2k edge
  constraints (paper: 1977; we report both the generating-set and the
  fully-reduced counts — see EXPERIMENTS.md);
* load ~0.23 (paper: ~0.23) => single-processor mapping feasible;
* zero deadline misses on one processor (paper: same);
* E5: functional equivalence with the uniprocessor fixed-priority
  prototype, verified by output comparison.
"""

import pytest

from repro.analysis import ExperimentReport, approx, first_divergence
from repro.apps import (
    build_fms_network,
    fms_scheduling_priorities,
    fms_stimulus,
    fms_wcets,
)
from repro.core import run_zero_delay
from repro.runtime import miss_summary, run_static_order, served_horizon
from repro.scheduling import UniprocessorFixedPriority, find_feasible_schedule
from repro.taskgraph import derive_task_graph, task_graph_load

FRAMES = 2


@pytest.mark.experiment("E4")
def test_fms_taskgraph_and_load(benchmark):
    net = build_fms_network()
    wcets = fms_wcets()

    graph = benchmark(derive_task_graph, net, wcets)

    unreduced = derive_task_graph(net, wcets, reduce_edges=False)
    load = task_graph_load(graph)

    report = ExperimentReport("E4 FMS task graph", "Section V-B narrative")
    report.add("hyperperiod (reduced)", "10 s", f"{int(graph.hyperperiod) // 1000} s")
    report.add("jobs", 812, len(graph))
    report.add("edges", 1977, graph.edge_count,
               f"fully reduced; generating set {unreduced.edge_count}")
    report.add("load", "~0.23", approx(float(load.load)))
    report.add("ceil(load) processors", 1, load.min_processors)
    report.show()

    assert len(graph) == 812
    assert load.min_processors == 1
    assert abs(float(load.load) - 0.23) < 0.02


@pytest.mark.experiment("E4")
def test_fms_single_processor_run(benchmark):
    net = build_fms_network()
    graph = derive_task_graph(net, fms_wcets())
    schedule = find_feasible_schedule(graph, 1)
    horizon = graph.hyperperiod * FRAMES
    stim = fms_stimulus(net, horizon).truncated(
        served_horizon(net, graph.hyperperiod, FRAMES)
    )

    result = benchmark(run_static_order, net, schedule, FRAMES, stim)

    ms = miss_summary(result)
    report = ExperimentReport("E4 FMS single-processor execution", "Section V-B")
    report.add("deadline misses (M=1)", 0, ms.missed_jobs,
               f"{ms.executed_jobs} executed, {ms.false_jobs} false jobs")
    report.add("frames simulated", "-", FRAMES)
    report.show()
    assert ms.missed_jobs == 0


@pytest.mark.experiment("E5")
def test_fms_uniprocessor_equivalence(benchmark):
    """'...making the two implementations functionally equivalent, which we
    verified by testing.'"""
    net = build_fms_network()
    graph = derive_task_graph(net, fms_wcets())
    horizon = graph.hyperperiod * FRAMES
    stim = fms_stimulus(net, horizon).truncated(
        served_horizon(net, graph.hyperperiod, FRAMES)
    )
    prototype = UniprocessorFixedPriority(net, fms_scheduling_priorities(net))

    proto_result = benchmark(prototype.functional_run, horizon, stim)

    ref = run_zero_delay(net, horizon, stim)
    schedule = find_feasible_schedule(graph, 2)
    fppn_result = run_static_order(net, schedule, FRAMES, stim)

    div_proto = first_divergence(ref.observable(), proto_result.observable())
    div_fppn = first_divergence(ref.observable(), fppn_result.observable())

    report = ExperimentReport("E5 functional equivalence", "Section V-B")
    report.add("uniproc prototype == FPPN semantics", "equivalent",
               "equivalent" if div_proto is None else f"DIVERGES: {div_proto}")
    report.add("2-proc FPPN runtime == FPPN semantics", "equivalent",
               "equivalent" if div_fppn is None else f"DIVERGES: {div_fppn}")
    report.show()
    assert div_proto is None and div_fppn is None
