"""Import-time guard for ``__dict__``-based trusted constructors.

The derivation and simulation hot loops build their frozen dataclasses
(:class:`~repro.taskgraph.jobs.Job`, :class:`~repro.runtime.executor.
JobRecord`) through explicit trusted constructors that bypass the frozen
``__setattr__`` guards and any ``__post_init__`` validation.  Each such
constructor registers itself here at module import: the check fails the
import **loudly** — never falls back to a slow path silently — if the
dataclass's fields drift from the constructor's explicit field list, or if
the ``__dict__`` construction path itself stops reproducing the public
constructor (e.g. a future ``slots=True``).
"""

from __future__ import annotations

from dataclasses import fields
from typing import Any, Callable, Dict, Tuple


def check_trusted_constructor(
    cls: type,
    expected_fields: Tuple[str, ...],
    make: Callable[..., Any],
    sample_kwargs: Dict[str, Any],
) -> None:
    """Fail the import if *make* cannot stand in for ``cls(**kwargs)``.

    Two checks: the dataclass field names must equal *expected_fields*
    (so adding a field without updating the trusted constructor is caught
    immediately), and building *sample_kwargs* through *make* must equal
    the public constructor's result (so the ``__dict__`` fast path itself
    is exercised once, at import, where a failure is cheap to diagnose).
    """
    actual = tuple(f.name for f in fields(cls))
    if actual != expected_fields:
        raise AssertionError(
            f"{cls.__name__}'s dataclass fields changed ({actual} != "
            f"{expected_fields}) — update its trusted constructor "
            f"{make.__name__} and the expected field tuple to match, or the "
            "hot loops would build incomplete instances"
        )
    try:
        ok = make(**sample_kwargs) == cls(**sample_kwargs)
    except Exception:  # pragma: no cover - e.g. slots=True breaking __dict__
        ok = False
    if not ok:  # pragma: no cover - guard for future dataclass changes
        raise AssertionError(
            f"{cls.__name__}.{make.__name__} no longer reproduces the public "
            f"constructor — did {cls.__name__} gain slots=True or "
            "field-altering logic? Update the trusted constructor before "
            "shipping"
        )
