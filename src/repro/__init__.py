"""repro — Fixed Priority Process Networks (FPPN).

A complete, executable reproduction of

    P. Poplavko, D. Socci, P. Bourgos, S. Bensalem, M. Bozga,
    "Models for Deterministic Execution of Real-Time Multiprocessor
    Applications", DATE 2015.

The library covers the full pipeline of the paper:

* **model** — FPPN networks: processes (automata or kernels), FIFO /
  blackboard channels, periodic and sporadic event generators, functional
  priorities (:mod:`repro.core`);
* **reference semantics** — zero-delay execution traces
  (:func:`repro.core.run_zero_delay`);
* **task graphs** — sporadic→server transformation, hyperperiod derivation,
  ASAP/ALAP, the precedence-aware load metric (:mod:`repro.taskgraph`);
* **scheduling** — non-preemptive multiprocessor list scheduling with SP
  heuristics, plus the uniprocessor fixed-priority baseline
  (:mod:`repro.scheduling`);
* **runtime** — the online static-order policy simulated on ``M``
  processors with overhead and jitter models (:mod:`repro.runtime`);
* **applications** — the paper's Fig. 1 example, the FFT streaming use
  case and the FMS avionics case study (:mod:`repro.apps`);
* **analysis** — mechanical determinism checking and paper-style reports
  (:mod:`repro.analysis`).

Quickstart::

    from repro import (
        Network, ChannelKind, derive_task_graph, find_feasible_schedule,
        run_static_order, run_zero_delay,
    )

    net = Network("demo")
    net.add_periodic("producer", period=100, kernel=lambda ctx: ctx.write("c", ctx.k))
    net.add_periodic("consumer", period=100, kernel=lambda ctx: ctx.read("c"))
    net.connect("producer", "consumer", "c", kind=ChannelKind.FIFO)
    net.add_priority("producer", "consumer")
    net.validate()

    graph = derive_task_graph(net, wcet={"producer": 10, "consumer": 10})
    schedule = find_feasible_schedule(graph, processors=1)
    result = run_static_order(net, schedule, n_frames=5)
    assert not result.misses()
"""

from .errors import (
    ChannelError,
    EventError,
    FPPNError,
    InfeasibleError,
    ModelError,
    RuntimeModelError,
    SchedulingError,
    SemanticsError,
)
from .core import (
    Automaton,
    Behavior,
    ChannelKind,
    JobContext,
    KernelBehavior,
    NO_DATA,
    Network,
    PeriodicGenerator,
    Process,
    SporadicGenerator,
    Stimulus,
    TickDomain,
    Time,
    ZeroDelayExecutor,
    as_time,
    hyperperiod,
    is_no_data,
    run_zero_delay,
)
from .taskgraph import (
    Job,
    TaskGraph,
    compute_bounds,
    derive_task_graph,
    necessary_condition,
    task_graph_load,
    transitive_reduction,
)
from .scheduling import (
    StaticSchedule,
    UniprocessorFixedPriority,
    find_feasible_schedule,
    list_schedule,
    minimum_processors,
    rate_monotonic_priorities,
)
from .runtime import (
    MultiprocessorExecutor,
    OverheadModel,
    RuntimeResult,
    jittered_execution,
    miss_summary,
    run_static_order,
    runtime_gantt,
    schedule_gantt,
)
from .analysis import DeterminismReport, check_determinism

__version__ = "1.0.0"

__all__ = [
    "ChannelError",
    "EventError",
    "FPPNError",
    "InfeasibleError",
    "ModelError",
    "RuntimeModelError",
    "SchedulingError",
    "SemanticsError",
    "Automaton",
    "Behavior",
    "ChannelKind",
    "JobContext",
    "KernelBehavior",
    "NO_DATA",
    "Network",
    "PeriodicGenerator",
    "Process",
    "SporadicGenerator",
    "Stimulus",
    "TickDomain",
    "Time",
    "ZeroDelayExecutor",
    "as_time",
    "hyperperiod",
    "is_no_data",
    "run_zero_delay",
    "Job",
    "TaskGraph",
    "compute_bounds",
    "derive_task_graph",
    "necessary_condition",
    "task_graph_load",
    "transitive_reduction",
    "StaticSchedule",
    "UniprocessorFixedPriority",
    "find_feasible_schedule",
    "list_schedule",
    "minimum_processors",
    "rate_monotonic_priorities",
    "MultiprocessorExecutor",
    "OverheadModel",
    "RuntimeResult",
    "jittered_execution",
    "miss_summary",
    "run_static_order",
    "runtime_gantt",
    "schedule_gantt",
    "DeterminismReport",
    "check_determinism",
    "__version__",
]
