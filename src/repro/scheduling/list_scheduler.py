"""Compile-time list scheduling (Section III-B).

Non-preemptive scheduling of a task graph on ``M`` identical processors.
Given a schedule priority ``SP``, list scheduling *"consists of a simple
simulation of the fixed-priority policy using the updated definition of
ready jobs"*: a job is ready at time ``t`` iff

* it has arrived (``Ai <= t``),
* it has not completed, and
* all its predecessors have completed (``∀j ∈ Pred(i): ej <= t``).

At every decision instant the scheduler dispatches the highest-SP ready job
onto a free processor; when nothing can be dispatched, time advances to the
next arrival or completion.  The construction never inserts idle time except
when forced — the classic work-conserving list schedule.

The simulation itself runs in the **integer tick domain** (see
:mod:`repro.core.ticks`): arrivals and WCETs are mapped once per graph to
exact integer tick counts, so the event loop's heap operations compare and
add machine integers instead of normalising rationals.  Start times are
converted back to exact :class:`~fractions.Fraction` values only when the
:class:`~repro.scheduling.schedule.StaticSchedule` is materialised — the
result is bit-identical to a pure-Fraction implementation.

The produced :class:`~repro.scheduling.schedule.StaticSchedule` may violate
deadlines; callers check :meth:`is_feasible` (a miss means the SP heuristic
was suboptimal — try another one via the portfolio optimizer).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Set, Tuple

from ..errors import SchedulingError
from ..core.platform import Platform, PlatformLike, as_platform
from ..core.ticks import JobTicks
from ..taskgraph.graph import TaskGraph
from .priorities import get_heuristic
from .schedule import ScheduledJob, StaticSchedule


def platform_is_heterogeneous(graph: TaskGraph, platform: Platform) -> bool:
    """True when scheduling *graph* on *platform* needs class awareness.

    False for the degenerate single-class speed-1 platform with
    table-free jobs — the gate every layer uses to take the exact
    pre-platform code path (the bit-identical invariant).
    """
    return (not platform.is_unit) or any(
        j.wcet_by_class is not None for j in graph.jobs
    )


def hetero_tick_tables(
    graph: TaskGraph, platform: Platform
) -> Tuple[JobTicks, List[List[int]]]:
    """Class-resolved duration tables for the tick-domain event loop.

    Returns the graph's tick view rescaled so every ``(job, class)``
    duration converts exactly, plus one integer duration array per *flat
    processor id* (rows of the same class share one list).  The LCM
    extension keeps everything exact — ``to_ticks`` raises rather than
    rounds, preserving the library-wide invariant.
    """
    classes = platform.classes
    durations = [
        [job.wcet_on(cls) for job in graph.jobs] for cls in classes
    ]
    tt = graph.tick_times().rescaled_to(
        v for row in durations for v in row
    )
    dur_t = [tt.domain.ticks(row) for row in durations]
    by_class = {cls.name: row for cls, row in zip(classes, dur_t)}
    per_proc = [
        by_class[cls.name] for cls in platform.class_per_processor()
    ]
    return tt, per_proc


def list_schedule(
    graph: TaskGraph,
    processors: PlatformLike,
    priority: "str | Sequence[int]" = "alap",
    wcet_aggregate: str = "mean",
) -> StaticSchedule:
    """Construct a static schedule by priority-driven list scheduling.

    Parameters
    ----------
    graph:
        The task graph (jobs in ``<J`` topological order).
    processors:
        Number ``M`` of identical processors, or a
        :class:`~repro.core.platform.Platform` for heterogeneous
        scheduling — a job's duration is then its class-resolved WCET on
        the processor it is dispatched to.
    priority:
        Either the name of a registered SP heuristic or an explicit rank
        list (``rank[i]`` = position of job *i*, 0 = highest priority).
    wcet_aggregate:
        How platform-aware heuristics collapse per-class WCETs into one
        ranking value (``min`` / ``max`` / ``mean``); ignored on
        degenerate platforms and by explicit rank lists.

    Returns
    -------
    StaticSchedule
        A complete schedule respecting arrivals, precedences and mutual
        exclusion by construction.  Deadlines are *not* enforced during
        construction (check feasibility afterwards).
    """
    try:
        platform = as_platform(processors)
    except (TypeError, ValueError) as exc:
        raise SchedulingError(str(exc)) from None
    if not platform_is_heterogeneous(graph, platform):
        ranks = _resolve_priority(graph, priority)
        tt = graph.tick_times()
        start_t, proc_of = _schedule_ticks(
            graph, tt, platform.processors, ranks
        )
    else:
        ranks = _resolve_priority(
            graph, priority, platform=platform,
            wcet_aggregate=wcet_aggregate,
        )
        tt, dur_of_proc = hetero_tick_tables(graph, platform)
        start_t, proc_of = _schedule_ticks(
            graph, tt, platform.processors, ranks, dur_of_proc
        )
    from_ticks = tt.domain.from_ticks
    # Emit entries pre-sorted in the schedule's canonical order so the
    # StaticSchedule constructor's sort is a linear no-op.
    order = sorted(
        range(len(graph)), key=lambda i: (start_t[i], proc_of[i], i)
    )
    entries = [
        ScheduledJob(i, proc_of[i], from_ticks(start_t[i])) for i in order
    ]
    return StaticSchedule(graph, platform, entries)


def _schedule_ticks(
    graph: TaskGraph,
    tt: JobTicks,
    processors: int,
    ranks: Sequence[int],
    dur_of_proc: Optional[Sequence[Sequence[int]]] = None,
) -> Tuple[List[int], List[int]]:
    """The list-scheduling event loop in pure integer ticks.

    Returns per-job ``(start_ticks, processor)`` arrays.  Shared by
    :func:`list_schedule` and the priority search (which evaluates thousands
    of rank permutations and must not pay Fraction arithmetic or
    re-materialise a :class:`StaticSchedule` per candidate).

    ``dur_of_proc`` (from :func:`hetero_tick_tables`) switches the loop
    heterogeneous: ``dur_of_proc[proc][i]`` is job *i*'s duration on flat
    processor *proc*, so a dispatch charges the class-resolved WCET of
    the processor it lands on.  Dispatch order itself is unchanged —
    highest-SP ready job onto the lowest free processor id.
    """
    n = len(graph)
    arrival = tt.arrival
    wcet = tt.wcet
    succ_table = graph.successor_table()
    pred_table = graph.predecessor_table()

    remaining_preds = [len(p) for p in pred_table]
    start_t = [0] * n
    proc_of = [0] * n

    # Jobs not yet arrived, as a heap keyed by arrival tick.
    arrivals = [(arrival[i], ranks[i], i) for i in range(n)]
    heapq.heapify(arrivals)
    # Ready set: arrived and precedence-free, keyed by SP rank.
    ready: List[Tuple[int, int]] = []
    # Running jobs: (end, processor, job)
    running: List[Tuple[int, int, int]] = []
    # Free processors (min-heap of ids for deterministic assignment).
    free = list(range(processors))
    heapq.heapify(free)
    # Arrived but blocked on predecessors (set: O(1) membership/removal).
    blocked: Set[int] = set()

    now = 0
    scheduled = 0
    while scheduled < n:
        # Admit arrivals at 'now'.
        while arrivals and arrivals[0][0] <= now:
            _, rank, i = heapq.heappop(arrivals)
            if remaining_preds[i] == 0:
                heapq.heappush(ready, (rank, i))
            else:
                blocked.add(i)
        # Dispatch while possible.
        while ready and free:
            rank, i = heapq.heappop(ready)
            proc = heapq.heappop(free)
            start_t[i] = now
            proc_of[i] = proc
            dur = (
                wcet[i] if dur_of_proc is None
                else dur_of_proc[proc][i]
            )
            heapq.heappush(running, (now + dur, proc, i))
            scheduled += 1
        if scheduled >= n:
            break
        # Advance time to the next event: completion or arrival.
        candidates: List[int] = []
        if running:
            candidates.append(running[0][0])
        if arrivals:
            candidates.append(arrivals[0][0])
        if not candidates:
            stuck = [graph.jobs[i].name for i in sorted(blocked)][:5]
            raise SchedulingError(
                f"list scheduler deadlocked with blocked jobs {stuck!r} "
                "(task graph has an unsatisfiable precedence structure)"
            )
        now = max(now, min(candidates))
        # Retire completions at 'now' and unblock successors.
        while running and running[0][0] <= now:
            finish, proc, i = heapq.heappop(running)
            heapq.heappush(free, proc)
            for s in succ_table[i]:
                remaining_preds[s] -= 1
                if remaining_preds[s] == 0 and s in blocked:
                    blocked.discard(s)
                    if arrival[s] <= now:
                        heapq.heappush(ready, (ranks[s], s))
                    else:
                        heapq.heappush(arrivals, (arrival[s], ranks[s], s))

    return start_t, proc_of


def _resolve_priority(
    graph: TaskGraph,
    priority: "str | Sequence[int]",
    platform: Optional[Platform] = None,
    wcet_aggregate: str = "mean",
) -> List[int]:
    if isinstance(priority, str):
        fn = get_heuristic(priority)
        if platform is not None and getattr(fn, "platform_aware", False):
            return fn(
                graph, platform=platform, wcet_aggregate=wcet_aggregate
            )
        return fn(graph)
    ranks = list(priority)
    if len(ranks) != len(graph):
        raise SchedulingError(
            f"priority rank list has {len(ranks)} entries for "
            f"{len(graph)} jobs"
        )
    if sorted(ranks) != list(range(len(graph))):
        raise SchedulingError("priority ranks must be a permutation of 0..n-1")
    return ranks
