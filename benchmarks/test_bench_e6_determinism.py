"""E6 — Proposition 2.1: deterministic execution across the variant matrix.

For each application, the channel-write sequences must be identical across
the zero-delay reference and every runtime variant (processor counts, SP
heuristics, WCET jitter).  This is the paper's core claim — determinism on
multiprocessors — verified mechanically.
"""

import pytest

from repro.analysis import ExperimentReport, check_determinism
from repro.apps import (
    build_fft_network,
    build_fig1_network,
    build_fms_network,
    fft_stimulus,
    fft_wcets,
    fig1_stimulus,
    fig1_wcets,
    fms_stimulus,
    fms_wcets,
)


@pytest.mark.experiment("E6")
def test_determinism_fig1(benchmark):
    net = build_fig1_network()
    report = benchmark(
        check_determinism,
        net, fig1_wcets(), 4, fig1_stimulus(4),
        (2, 3), ("alap", "arrival"), (0, 1),
    )
    _show("Fig. 1 example", report)
    assert report.deterministic, report.summary()


@pytest.mark.experiment("E6")
def test_determinism_fft(benchmark):
    net = build_fft_network()
    vecs = [[k, k + 1j, -k, 0.5 * k] for k in range(4)]
    report = benchmark(
        check_determinism,
        net, fft_wcets(), 4, fft_stimulus(vecs),
        (1, 2, 4), ("alap", "blevel"), (3,),
    )
    _show("FFT streaming", report)
    assert report.deterministic, report.summary()


@pytest.mark.experiment("E6")
def test_determinism_fms(benchmark):
    net = build_fms_network()
    stim = fms_stimulus(net, 20000)
    report = benchmark(
        check_determinism,
        net, fms_wcets(), 2, stim,
        (1, 2), ("alap",), (5,),
    )
    _show("FMS avionics", report)
    assert report.deterministic, report.summary()


def _show(name, det_report):
    report = ExperimentReport(f"E6 determinism: {name}", "Prop. 2.1")
    report.add("runtime variants checked", "-", len(det_report.variants))
    report.add("reference jobs", "-", det_report.reference_jobs)
    report.add("all observables identical", "yes",
               "yes" if det_report.deterministic else "NO")
    report.show()
