"""Analysis utilities: determinism checking and experiment reporting."""

from .compare import Comparison, compare_files, compare_payloads
from .determinism import (
    DeterminismReport,
    VariantOutcome,
    check_determinism,
    first_divergence,
)
from .report import ExperimentReport, Row, approx
from .response import (
    RtaResult,
    hyperbolic_bound,
    response_time_analysis,
    rta_schedulable,
    total_utilization,
    utilization_bound,
)

__all__ = [
    "Comparison",
    "compare_files",
    "compare_payloads",
    "DeterminismReport",
    "VariantOutcome",
    "check_determinism",
    "first_divergence",
    "ExperimentReport",
    "Row",
    "approx",
    "RtaResult",
    "hyperbolic_bound",
    "response_time_analysis",
    "rta_schedulable",
    "total_utilization",
    "utilization_bound",
]
