"""Uniprocessor fixed-priority baseline.

The paper's introduction observes that on uniprocessors, fixed-priority
scheduling is used *"not only for meeting the deadlines but also for ensuring
functional determinism"*: the schedule priority defines the relative
execution order of communicating tasks.  FPPN generalises exactly this to
multiprocessors.  Section V-B uses the original uniprocessor FMS prototype
(rate-monotonic priorities) as the functional-equivalence reference.

This module provides that reference:

* :func:`rate_monotonic_priorities` — the RM assignment (shorter period =
  higher priority) over a network's processes;
* :class:`UniprocessorFixedPriority` — two complementary views:

  - :meth:`functional_run` executes the *functional abstraction* of
    fixed-priority scheduling with zero task execution times: jobs run
    atomically in ``(release time, priority, k)`` order.  When the FPPN's
    functional priorities agree with the scheduling priorities, this is
    functionally equivalent to the FPPN semantics — the property the paper
    "verified by testing" (our tests do the same, mechanically).
  - :meth:`simulate_preemptive` is a cycle-accurate preemptive
    fixed-priority timing simulation producing response times and deadline
    misses (the schedulability side of the baseline).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..errors import RuntimeModelError, SchedulingError
from ..core.channels import ChannelState, ExternalOutputState
from ..core.invocations import Stimulus
from ..core.network import Network
from ..core.process import JobContext
from ..core.semantics import ExecutionResult
from ..core.timebase import Time, TimeLike, as_positive_time
from ..core.trace import LazyTrace


def rate_monotonic_priorities(network: Network) -> Dict[str, int]:
    """RM priority map: smaller period -> smaller rank (= higher priority).

    Ties are broken by process name for determinism.
    """
    ordered = sorted(network.processes.values(), key=lambda p: (p.period, p.name))
    return {p.name: i for i, p in enumerate(ordered)}


@dataclass(frozen=True)
class CompletedJob:
    """Timing record of one job in the preemptive simulation."""

    process: str
    k: int
    release: Time
    start: Time
    finish: Time
    deadline: Time
    preemptions: int

    @property
    def response_time(self) -> Time:
        return self.finish - self.release

    @property
    def missed(self) -> bool:
        return self.finish > self.deadline


class UniprocessorFixedPriority:
    """Fixed-priority uniprocessor scheduler for an FPPN's process set."""

    def __init__(
        self, network: Network, priorities: Optional[Mapping[str, int]] = None
    ) -> None:
        network.validate()
        self.network = network
        self.priorities: Dict[str, int] = dict(
            priorities if priorities is not None else rate_monotonic_priorities(network)
        )
        missing = sorted(set(network.processes) - set(self.priorities))
        if missing:
            raise SchedulingError(f"missing scheduling priority for {missing!r}")

    # ------------------------------------------------------------------
    def release_sequence(
        self, horizon: TimeLike, stimulus: Optional[Stimulus] = None
    ) -> List[Tuple[Time, int, str, int]]:
        """All job releases in ``[0, horizon)`` as ``(time, prio, process, k)``."""
        h = as_positive_time(horizon, "horizon")
        stimulus = stimulus or Stimulus()
        stimulus.validate(self.network)
        releases: List[Tuple[Time, int, str, int]] = []
        for proc in self.network.processes.values():
            if proc.is_sporadic:
                times = [t for t in stimulus.arrivals_for(proc.name) if t < h]
            else:
                times = proc.generator.invocations(h)
            for k, t in enumerate(times, start=1):
                releases.append((t, self.priorities[proc.name], proc.name, k))
        releases.sort()
        return releases

    # ------------------------------------------------------------------
    def functional_run(
        self, horizon: TimeLike, stimulus: Optional[Stimulus] = None
    ) -> ExecutionResult:
        """Execute the zero-execution-time functional abstraction.

        Jobs run atomically in ``(release, priority, k)`` order — the data
        semantics of an idealised fixed-priority uniprocessor.  Returns the
        same :class:`ExecutionResult` structure as the FPPN executors so
        equivalence checks are one ``==`` on :meth:`observable`.
        """
        h = as_positive_time(horizon, "horizon")
        stimulus = stimulus or Stimulus()
        releases = self.release_sequence(h, stimulus)

        # Compact recording, exactly like the zero-delay reference: the
        # trace stays a tuple log until someone reads ``result.trace`` —
        # equivalence sweeps compare observables and never pay for Actions.
        trace = LazyTrace()
        raw_append = trace.raw.append
        channel_states: Dict[str, ChannelState] = {
            name: spec.new_state() for name, spec in self.network.channels.items()
        }
        variables: Dict[str, Dict[str, Any]] = {
            name: proc.fresh_variables()
            for name, proc in self.network.processes.items()
        }
        ext_out: Dict[str, ExternalOutputState] = {
            name: ExternalOutputState(spec)
            for name, spec in self.network.external_outputs.items()
        }

        job_count = 0
        last_time: Optional[Time] = None
        for t, _prio, pname, k in releases:
            if last_time != t:
                raw_append(("T", t))
                last_time = t
            proc = self.network.processes[pname]
            ctx = JobContext(
                process=pname,
                k=k,
                now=t,
                variables=variables[pname],
                inputs={n: channel_states[n] for n in proc.inputs},
                outputs={n: channel_states[n] for n in proc.outputs},
                external_inputs={
                    n: stimulus.samples_view(n) for n in proc.external_inputs
                },
                external_outputs={n: ext_out[n] for n in proc.external_outputs},
                trace=trace,
            )
            raw_append(("S", pname, k))
            proc.behavior.run_job(ctx)
            raw_append(("E", pname, k))
            job_count += 1

        return ExecutionResult(
            network_name=self.network.name,
            horizon=h,
            trace=trace,
            channel_logs={n: list(s.write_log) for n, s in channel_states.items()},
            external_outputs={n: s.as_sequence() for n, s in ext_out.items()},
            job_count=job_count,
            final_variables=variables,
        )

    # ------------------------------------------------------------------
    def simulate_preemptive(
        self,
        horizon: TimeLike,
        execution_times: Mapping[str, TimeLike],
        stimulus: Optional[Stimulus] = None,
    ) -> List[CompletedJob]:
        """Preemptive fixed-priority timing simulation over ``[0, horizon)``.

        *execution_times* maps process name to a constant execution time.
        Returns the completed-job records in finish order; jobs still running
        at the horizon are truncated away (not reported).
        """
        h = as_positive_time(horizon, "horizon")
        releases = self.release_sequence(h, stimulus)
        exec_of = {
            name: as_positive_time(value, f"execution time of {name!r}")
            for name, value in execution_times.items()
        }
        missing = sorted(set(self.network.processes) - set(exec_of))
        if missing:
            raise RuntimeModelError(f"missing execution time for {missing!r}")

        # Ready heap entries: (priority, release, k, process, remaining, started?, start, preemptions)
        ready: List[List] = []
        completed: List[CompletedJob] = []
        idx = 0
        now = Time(0)

        while idx < len(releases) or ready:
            if not ready:
                now = max(now, releases[idx][0])
            # admit all releases at or before now
            while idx < len(releases) and releases[idx][0] <= now:
                t, prio, pname, k = releases[idx]
                heapq.heappush(
                    ready, [prio, t, k, pname, exec_of[pname], None, 0]
                )
                idx += 1
            if not ready:
                continue
            entry = ready[0]
            prio, release, k, pname, remaining, start, preempts = entry
            if start is None:
                entry[5] = start = now
            # run until completion or next release, whichever first
            next_release = releases[idx][0] if idx < len(releases) else None
            finish_at = now + remaining
            if next_release is not None and next_release < finish_at:
                ran = next_release - now
                entry[4] = remaining - ran
                now = next_release
                # will this job actually be preempted? only if a strictly
                # higher-priority job arrives
                incoming_best = min(
                    r[1] for r in (releases[j] for j in range(idx, len(releases)))
                    if r[0] == next_release
                )
                if incoming_best < prio:
                    entry[6] += 1
                continue
            # completes
            heapq.heappop(ready)
            now = finish_at
            proc = self.network.processes[pname]
            completed.append(
                CompletedJob(
                    process=pname,
                    k=k,
                    release=release,
                    start=start,
                    finish=finish_at,
                    deadline=release + proc.deadline,
                    preemptions=preempts,
                )
            )
        return completed

    def deadline_misses(
        self,
        horizon: TimeLike,
        execution_times: Mapping[str, TimeLike],
        stimulus: Optional[Stimulus] = None,
    ) -> List[CompletedJob]:
        """Jobs that missed their deadline in the preemptive simulation."""
        return [
            j
            for j in self.simulate_preemptive(horizon, execution_times, stimulus)
            if j.missed
        ]
