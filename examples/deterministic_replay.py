#!/usr/bin/env python3
"""Deterministic replay: the property that motivates the whole paper.

Scenario: a signal-processing application (the Fig. 1 running example) is
deployed on different platforms — 2, 3 or 4 processors, different schedule
heuristics, noisy execution times, runtime overhead.  A field trace
(external samples + sporadic command arrivals) is captured once.

The FPPN guarantee (Prop. 2.1 / 4.1): replaying the same trace on *any* of
those deployments produces byte-identical channel data — which is what
makes testing, fault analysis and triple-modular redundancy possible on
multiprocessors.

This example also demonstrates what the guarantee does NOT cover: feed a
*different* input trace and the outputs legitimately change.

Run:  python examples/deterministic_replay.py
"""

from repro import (
    OverheadModel,
    check_determinism,
    derive_task_graph,
    jittered_execution,
    run_static_order,
    find_feasible_schedule,
)
from repro.apps import build_fig1_network, fig1_stimulus, fig1_wcets
from repro.runtime import served_horizon

FRAMES = 5


def main() -> None:
    net = build_fig1_network()
    wcets = fig1_wcets()
    graph = derive_task_graph(net, wcets)

    # The captured field trace.
    trace = fig1_stimulus(FRAMES).truncated(
        served_horizon(net, graph.hyperperiod, FRAMES)
    )

    # -- the full variant matrix, mechanically ------------------------------
    report = check_determinism(
        net,
        wcets,
        n_frames=FRAMES,
        stimulus=trace,
        processor_counts=(2, 3, 4),
        heuristics=("alap", "blevel", "arrival"),
        jitter_seeds=(0, 1, 2),
        overheads=OverheadModel.create(first_frame_arrival=5, steady_frame_arrival=2),
    )
    print(report.summary())
    assert report.deterministic

    # -- and a hand-rolled pair of deployments for illustration --------------
    deployment_a = find_feasible_schedule(graph, 2)
    deployment_b = find_feasible_schedule(graph, 4)
    run_a = run_static_order(
        net, deployment_a, FRAMES, trace, execution_time=jittered_execution(99)
    )
    run_b = run_static_order(
        net, deployment_b, FRAMES, trace, execution_time=jittered_execution(123)
    )
    assert run_a.observable() == run_b.observable()
    print(
        "\n2-processor deployment with jitter seed 99 and 4-processor "
        "deployment with jitter seed 123 produced identical outputs."
    )

    # -- different inputs are, of course, different --------------------------
    other_trace = fig1_stimulus(FRAMES, coef_arrivals=[50]).truncated(
        served_horizon(net, graph.hyperperiod, FRAMES)
    )
    run_c = run_static_order(net, deployment_a, FRAMES, other_trace)
    assert run_c.observable() != run_a.observable()
    print(
        "Changing the sporadic command trace changes the outputs — "
        "determinism is a function of the inputs, not a constant."
    )


if __name__ == "__main__":
    main()
