"""Tests for the sporadic-to-server transformation (Section III-A, Fig. 2)."""

from fractions import Fraction

import pytest

from repro.core import ChannelKind, Network
from repro.errors import ModelError
from repro.taskgraph.servers import ServerSpec, derive_server, transform


def nop(ctx):
    return None


def make_net(sporadic_deadline=700, user_period=200, sporadic_period=700,
             burst=2, sporadic_above_user=True):
    net = Network("srv")
    net.add_periodic("user", period=user_period, kernel=nop)
    net.add_sporadic("sp", min_period=sporadic_period,
                     deadline=sporadic_deadline, burst=burst, kernel=nop)
    net.connect("sp", "user", "cfg", kind=ChannelKind.BLACKBOARD)
    if sporadic_above_user:
        net.add_priority("sp", "user")
    else:
        net.add_priority("user", "sp")
    return net


class TestDeriveServer:
    def test_paper_coefb_parameters(self):
        """CoefB: T=700, d=700, m=2, user FilterB at 200 -> server 2 per 200,
        corrected deadline 500 (Fig. 3)."""
        spec = derive_server(make_net(), "sp")
        assert spec.period == 200
        assert spec.burst == 2
        assert spec.deadline == 500
        assert spec.user == "user"

    def test_boundary_direction_follows_fp(self):
        assert derive_server(make_net(sporadic_above_user=True), "sp").boundary_closed_right
        assert not derive_server(make_net(sporadic_above_user=False), "sp").boundary_closed_right

    def test_fractional_period_footnote3(self):
        """d_p <= T_u forces a fractional server period T_u/n with d' > 0."""
        spec = derive_server(make_net(sporadic_deadline=150), "sp")
        # T_u = 200, d_p = 150 -> n = 2, T' = 100, d' = 50
        assert spec.period == 100
        assert spec.deadline == 50

    def test_fractional_period_exact_divisor(self):
        # d_p == T_u: T_u/d_p = 1 -> n = 2
        spec = derive_server(make_net(sporadic_deadline=200), "sp")
        assert spec.period == 100
        assert spec.deadline == 100

    def test_very_tight_deadline(self):
        spec = derive_server(make_net(sporadic_deadline=70), "sp")
        # n = floor(200/70)+1 = 3 -> T' = 200/3, d' = 70 - 200/3 = 10/3
        assert spec.period == Fraction(200, 3)
        assert spec.deadline == Fraction(10, 3)
        assert spec.deadline > 0

    def test_nonpositive_corrected_deadline_rejected(self):
        with pytest.raises(ModelError):
            ServerSpec("p", "u", Fraction(200), 1, Fraction(0), True)


class TestWindows:
    def test_subset_one_window_is_negative(self):
        """The paper's example: subset at b=0 serves (-200, 0]."""
        spec = derive_server(make_net(), "sp")
        a, b, left, right = spec.window_for_subset(1)
        assert (a, b) == (-200, 0)
        assert right and not left

    def test_right_closed_contains_boundary(self):
        spec = derive_server(make_net(sporadic_above_user=True), "sp")
        assert spec.contains(1, Fraction(0))        # t == b
        assert not spec.contains(1, Fraction(-200))  # t == a excluded
        assert spec.contains(1, Fraction(-100))

    def test_left_closed_excludes_boundary(self):
        spec = derive_server(make_net(sporadic_above_user=False), "sp")
        assert not spec.contains(1, Fraction(0))     # t == b goes to next subset
        assert spec.contains(2, Fraction(0))
        assert spec.contains(1, Fraction(-200))      # t == a included

    def test_windows_tile_the_line(self):
        spec = derive_server(make_net(), "sp")
        # every time in [0, 600) is contained in exactly one of subsets 1..4
        for t10 in range(0, 6000, 37):
            t = Fraction(t10, 10)
            hits = [n for n in range(1, 5) if spec.contains(n, t)]
            assert len(hits) == 1, (t, hits)

    def test_subset_index_one_based(self):
        spec = derive_server(make_net(), "sp")
        with pytest.raises(ValueError):
            spec.window_for_subset(0)


class TestTransform:
    def test_effective_parameters(self):
        pn = transform(make_net())
        assert pn.effective["user"] == (200, 1)
        assert pn.effective["sp"] == (200, 2)

    def test_server_priority_edge_replaces_original(self):
        # user -> sp originally; PN' must have sp -> user (server above user).
        pn = transform(make_net(sporadic_above_user=False))
        assert ("sp", "user") in pn.priorities
        assert ("user", "sp") not in pn.priorities

    def test_priority_preserved_when_already_above(self):
        pn = transform(make_net(sporadic_above_user=True))
        assert ("sp", "user") in pn.priorities

    def test_priority_order_is_topological(self):
        pn = transform(make_net(sporadic_above_user=False))
        order = pn.priority_order()
        assert order.index("sp") < order.index("user")

    def test_fp_related(self):
        pn = transform(make_net())
        assert pn.fp_related("sp", "user")
        assert pn.fp_related("user", "sp")

    def test_offset_rejected(self):
        net = Network("off")
        net.add_periodic("p", period=100, offset=10, kernel=nop)
        with pytest.raises(ModelError, match="zero-offset"):
            transform(net)

    def test_other_fp_edges_untouched(self):
        net = make_net()
        net.add_periodic("other", period=100, kernel=nop)
        net.add_priority("other", "user")
        pn = transform(net)
        assert ("other", "user") in pn.priorities
