"""Stochastic local search over schedule-priority orders.

Section III-B: "If the obtained static schedule satisfies the job deadlines
then it is feasible, otherwise the selected schedule priority may be
sub-optimal.  Different heuristics exist for optimizing priority order SP."

The portfolio in :mod:`repro.scheduling.optimizer` tries fixed heuristics;
this module goes one step further with a randomized hill climber over SP
permutations — the classic fallback when constructive heuristics fail on a
tight instance:

* the search state is a rank permutation (seeded from a heuristic);
* the neighbourhood is pairwise swaps, biased toward jobs involved in
  deadline violations;
* the objective is lexicographic ``(#violations, total lateness, makespan)``
  so the search makes progress even while infeasible;
* restarts re-seed from other heuristics and random shuffles.

Deterministic given the seed.

Every candidate is evaluated entirely in the graph's integer tick domain:
one list-scheduling pass over int arrays, no ``StaticSchedule``
materialisation and no rank-permutation re-validation per iteration (swaps
preserve the permutation invariant, so it is checked only where ranks enter
from outside).  The tick map is monotone, so accept/reject decisions — and
therefore the whole search trajectory — match a Fraction-domain
implementation exactly; only the final best schedule is materialised.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.platform import PlatformLike, as_platform
from ..core.ticks import JobTicks
from ..core.timebase import Time
from ..errors import InfeasibleError
from ..taskgraph.graph import TaskGraph
from .list_scheduler import (
    _resolve_priority,
    _schedule_ticks,
    hetero_tick_tables,
    list_schedule,
    platform_is_heterogeneous,
)
from .priorities import available_heuristics
from .schedule import StaticSchedule

Objective = Tuple[int, Time, Time]

#: Internal all-integer objective: (#violations, lateness ticks, makespan ticks).
_TickObjective = Tuple[int, int, int]


def _evaluate_ticks(
    graph: TaskGraph,
    processors: int,
    ranks: Sequence[int],
    tt: Optional[JobTicks] = None,
    dur_of_proc: Optional[Sequence[Sequence[int]]] = None,
) -> Tuple[_TickObjective, List[int]]:
    """One list-scheduling pass; objective and late jobs in pure ticks.

    The late-job list is ordered like the schedule's canonical entry order
    (start, processor, index) so the swap bias samples jobs exactly as an
    entry-iterating implementation would.  ``tt`` / ``dur_of_proc`` carry
    the precomputed heterogeneous duration tables (the search builds them
    once, not per candidate); without them the loop charges the platform-
    blind base WCETs exactly as before.
    """
    if tt is None:
        tt = graph.tick_times()
    start_t, proc_of = _schedule_ticks(
        graph, tt, processors, ranks, dur_of_proc
    )
    wcet, deadline = tt.wcet, tt.deadline
    violations = 0
    lateness = 0
    makespan = 0
    late: List[Tuple[int, int, int]] = []
    for i in range(len(start_t)):
        dur = (
            wcet[i] if dur_of_proc is None
            else dur_of_proc[proc_of[i]][i]
        )
        end = start_t[i] + dur
        if end > makespan:
            makespan = end
        if end > deadline[i]:
            violations += 1
            lateness += end - deadline[i]
            late.append((start_t[i], proc_of[i], i))
    late.sort()
    return (violations, lateness, makespan), [i for _, _, i in late]


@dataclass
class SearchResult:
    """Outcome of the priority search."""

    schedule: StaticSchedule
    ranks: List[int]
    objective: Objective
    iterations: int
    restarts: int

    @property
    def feasible(self) -> bool:
        return self.objective[0] == 0


def search_priorities(
    graph: TaskGraph,
    processors: PlatformLike,
    seed: int = 0,
    max_iterations: int = 2000,
    restarts: int = 4,
    seeds_from: Optional[Sequence[str]] = None,
    wcet_aggregate: str = "mean",
) -> SearchResult:
    """Hill-climb SP permutations; returns the best schedule found.

    Stops early as soon as a feasible schedule appears.  The result is the
    lexicographically best ``(violations, lateness, makespan)`` across all
    restarts.  On a heterogeneous platform every candidate is evaluated
    with class-resolved durations (tables built once up front) and the
    seeding heuristics rank with *wcet_aggregate*.
    """
    n = len(graph)
    rng = random.Random(seed)
    heuristic_names = list(seeds_from or available_heuristics())
    platform = as_platform(processors)
    if platform_is_heterogeneous(graph, platform):
        tt, dur_of_proc = hetero_tick_tables(graph, platform)
        seed_platform = platform
    else:
        tt, dur_of_proc = None, None
        seed_platform = None
    processors = platform.processors

    best_ranks: Optional[List[int]] = None
    best_objective: Optional[_TickObjective] = None
    best_restarts = 0
    best_iterations = 0
    total_iters = 0

    for restart in range(max(1, restarts)):
        if restart < len(heuristic_names):
            ranks = list(_resolve_priority(
                graph, heuristic_names[restart],
                platform=seed_platform, wcet_aggregate=wcet_aggregate,
            ))
        else:
            ranks = list(range(n))
            rng.shuffle(ranks)
        objective, late = _evaluate_ticks(
            graph, processors, ranks, tt, dur_of_proc
        )
        budget = max_iterations // max(1, restarts)

        for _ in range(budget):
            total_iters += 1
            if objective[0] == 0:
                break
            # Bias one endpoint of the swap toward a violating job.
            if late and rng.random() < 0.8:
                i = rng.choice(late)
            else:
                i = rng.randrange(n)
            j = rng.randrange(n)
            if i == j:
                continue
            ranks[i], ranks[j] = ranks[j], ranks[i]
            cand_objective, cand_late = _evaluate_ticks(
                graph, processors, ranks, tt, dur_of_proc
            )
            if cand_objective <= objective:
                objective, late = cand_objective, cand_late
            else:
                ranks[i], ranks[j] = ranks[j], ranks[i]  # revert

        if best_objective is None or objective < best_objective:
            best_ranks = list(ranks)
            best_objective = objective
            best_restarts = restart + 1
            best_iterations = total_iters
        if best_objective[0] == 0:
            break

    assert best_ranks is not None and best_objective is not None
    # Materialise the winning schedule once (the tick core is deterministic,
    # so this reproduces the evaluated candidate exactly).  The objective
    # converts in the domain it was evaluated in (the hetero tables live
    # in an extended domain).
    schedule = list_schedule(graph, platform, best_ranks)
    from_ticks = (
        tt if tt is not None else graph.tick_times()
    ).domain.from_ticks
    return SearchResult(
        schedule=schedule,
        ranks=best_ranks,
        objective=(
            best_objective[0],
            from_ticks(best_objective[1]),
            from_ticks(best_objective[2]),
        ),
        iterations=best_iterations,
        restarts=best_restarts,
    )


def find_feasible_schedule_with_search(
    graph: TaskGraph,
    processors: PlatformLike,
    seed: int = 0,
    max_iterations: int = 2000,
) -> StaticSchedule:
    """Portfolio heuristics first, local search as the fallback.

    Raises :class:`InfeasibleError` when even the search fails.
    """
    result = search_priorities(
        graph, processors, seed=seed, max_iterations=max_iterations
    )
    if not result.feasible:
        raise InfeasibleError(
            f"priority search exhausted ({result.iterations} iterations, "
            f"{result.restarts} restarts) with {result.objective[0]} "
            "remaining deadline violations"
        )
    return result.schedule
