"""VCD (Value Change Dump) export of runtime traces.

Hardware engineers read schedules in waveform viewers; this module dumps a
simulated run as an IEEE-1364 VCD file with:

* one wire per processor (``M0, M1, ...``), 1 while the processor is busy;
* one wire per process (``p_<name>``), 1 while any of its jobs runs;
* a ``deadline_miss`` wire pulsing one tick at each violated deadline;
* a ``runtime_overhead`` wire covering the frame-arrival overhead windows;
* one wire per internal channel (``c_<name>``), pulsing one tick at each
  write — fed by the executor's data-phase ``on_channel_write`` events, so
  the wires appear whenever the observed run executed its data phase.

The serialiser consumes a :class:`~repro.runtime.observers.TraceObserver` —
the waveform-shaped event sink of the executor's observer protocol — so a
dump can be produced live (``run(observers=[obs])``, even with
``records_only=True``) or by replaying a stored
:class:`~repro.runtime.executor.RuntimeResult`.

Time resolution: the dump uses a configurable rational *timescale* (default
1 us for millisecond-grain models) and scales every rational timestamp
exactly; :class:`VcdError` is raised if a timestamp does not land on the
grid, so rounding never silently corrupts a trace.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Tuple

from ..core.timebase import Time, as_positive_time
from ..errors import FPPNError
from ..runtime.executor import RuntimeResult
from ..runtime.observers import TraceObserver, replay


class VcdError(FPPNError):
    """A trace cannot be represented exactly at the requested timescale."""


def _ident(index: int) -> str:
    """Short VCD identifier codes: '!', '\"', '#', ... (printable ASCII)."""
    chars = []
    index += 1
    while index:
        index, rem = divmod(index - 1, 94)
        chars.append(chr(33 + rem))
    return "".join(reversed(chars))


def _ticks(t: Time, unit: Fraction) -> int:
    q = t / unit
    if q.denominator != 1:
        raise VcdError(
            f"timestamp {t} is not a multiple of the VCD timescale {unit}; "
            "choose a finer timescale"
        )
    return int(q)


def _merge_intervals(intervals: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Union of half-open tick intervals, merging overlaps and adjacency."""
    merged: List[Tuple[int, int]] = []
    for start, end in sorted(intervals):
        if start >= end:
            continue
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def trace_to_vcd(
    trace: TraceObserver,
    timescale_ms: "Fraction | int | float | str" = "1/1000",
    module: str = "fppn",
) -> str:
    """Serialise the events a :class:`TraceObserver` collected as VCD text.

    Parameters
    ----------
    timescale_ms:
        Length of one VCD tick in model milliseconds; the default 1/1000
        makes one tick = 1 us, matching the emitted ``$timescale``.
    """
    meta = trace.meta
    if meta is None:
        raise VcdError("trace observer has not seen a run (no on_run_start event)")
    unit = as_positive_time(timescale_ms, "timescale")

    signals: List[Tuple[str, str]] = []  # (vcd name, identifier)
    intervals: Dict[str, List[Tuple[int, int]]] = {}

    def declare(name: str) -> str:
        ident = _ident(len(signals))
        signals.append((name, ident))
        intervals[ident] = []
        return ident

    proc_ids = {m: declare(f"M{m}") for m in range(meta.processors)}
    process_ids = {p: declare(f"p_{p}") for p in sorted(trace.processes)}
    miss_id = declare("deadline_miss")
    overhead_id = declare("runtime_overhead")
    channel_ids = {
        c: declare(f"c_{c}") for c in sorted(trace.channel_write_times)
    }

    for m, spans in trace.processor_intervals.items():
        intervals[proc_ids[m]].extend(
            (_ticks(s, unit), _ticks(e, unit)) for s, e in spans
        )
    for p, spans in trace.process_intervals.items():
        intervals[process_ids[p]].extend(
            (_ticks(s, unit), _ticks(e, unit)) for s, e in spans
        )
    for t in trace.miss_times:
        tick = _ticks(t, unit)
        intervals[miss_id].append((tick, tick + 1))
    for start, end in trace.overheads:
        intervals[overhead_id].append((_ticks(start, unit), _ticks(end, unit)))
    for c, times in trace.channel_write_times.items():
        ident = channel_ids[c]
        for t in times:
            tick = _ticks(t, unit)
            intervals[ident].append((tick, tick + 1))

    # Per-tick value changes, derived from the merged busy intervals.
    changes: List[Tuple[int, str, int]] = []
    for ident, ivs in intervals.items():
        for start, end in _merge_intervals(ivs):
            changes.append((start, ident, 1))
            changes.append((end, ident, 0))
    changes.sort()

    lines: List[str] = []
    lines.append("$date generated by repro (FPPN reproduction) $end")
    lines.append("$timescale 1 us $end")
    lines.append(f"$scope module {module} $end")
    for name, ident in signals:
        lines.append(f"$var wire 1 {ident} {name} $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")
    lines.append("$dumpvars")
    for _name, ident in signals:
        lines.append(f"0{ident}")
    lines.append("$end")

    last_tick = None
    for tick, ident, value in changes:
        if tick != last_tick:
            lines.append(f"#{tick}")
            last_tick = tick
        lines.append(f"{value}{ident}")
    return "\n".join(lines) + "\n"


def runtime_result_to_vcd(
    result: RuntimeResult,
    timescale_ms: "Fraction | int | float | str" = "1/1000",
    module: str = "fppn",
) -> str:
    """Serialise a finished run as VCD text (replays it through a
    :class:`~repro.runtime.observers.TraceObserver`)."""
    if not result.records_collected:
        raise VcdError(
            "cannot dump a result produced with collect_records=False — "
            "attach a TraceObserver to run() and use trace_to_vcd instead"
        )
    trace = TraceObserver()
    replay(result, trace)
    return trace_to_vcd(trace, timescale_ms, module)


def write_vcd(result: RuntimeResult, path: str, **kwargs) -> None:
    """Write a run's VCD dump to *path*."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(runtime_result_to_vcd(result, **kwargs))
