"""Tests for uniprocessor response-time analysis, validated against the
preemptive fixed-priority simulator."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    hyperbolic_bound,
    response_time_analysis,
    rta_schedulable,
    total_utilization,
    utilization_bound,
)
from repro.core import Network
from repro.errors import SchedulingError
from repro.scheduling import UniprocessorFixedPriority


def nop(ctx):
    return None


def make_net(tasks):
    """tasks: list of (name, period, deadline)."""
    net = Network("rta")
    for name, period, deadline in tasks:
        net.add_periodic(name, period=period, deadline=deadline, kernel=nop)
    return net


class TestBounds:
    def test_liu_layland_values(self):
        assert utilization_bound(1) == 1.0
        assert abs(utilization_bound(2) - 0.828) < 1e-3
        assert abs(utilization_bound(3) - 0.7797) < 1e-3

    def test_bound_decreases(self):
        assert utilization_bound(2) > utilization_bound(5) > utilization_bound(50)

    def test_bound_validates(self):
        with pytest.raises(ValueError):
            utilization_bound(0)

    def test_total_utilization(self):
        net = make_net([("a", 50, 50), ("b", 100, 100)])
        u = total_utilization(net, {"a": 20, "b": 30})
        assert u == Fraction(20, 50) + Fraction(30, 100)

    def test_utilization_counts_bursts(self):
        net = Network("b")
        net.add_sporadic("s", min_period=100, deadline=100, burst=3, kernel=nop)
        assert total_utilization(net, {"s": 10}) == Fraction(30, 100)

    def test_hyperbolic_bound(self):
        net = make_net([("a", 50, 50), ("b", 100, 100)])
        # U = 0.4, 0.3 -> product (1.4)(1.3) = 1.82 <= 2 -> schedulable
        assert abs(hyperbolic_bound(net, {"a": 20, "b": 30}) - 1.82) < 1e-9


class TestRta:
    def test_textbook_two_tasks(self):
        net = make_net([("hi", 50, 50), ("lo", 100, 100)])
        res = response_time_analysis(net, {"hi": 20, "lo": 40})
        assert res["hi"].wcrt == 20
        # lo: R = 40 + ceil(R/50)*20 -> R = 80
        assert res["lo"].wcrt == 80
        assert res["lo"].schedulable

    def test_three_task_example(self):
        # classic Audsley-style example
        net = make_net([("t1", 100, 100), ("t2", 200, 200), ("t3", 300, 300)])
        res = response_time_analysis(net, {"t1": 30, "t2": 60, "t3": 90})
        assert res["t1"].wcrt == 30
        assert res["t2"].wcrt == 90     # 60 + 30
        assert res["t3"].wcrt == 300    # saturates exactly at the deadline
        assert rta_schedulable(net, {"t1": 30, "t2": 60, "t3": 90})

    def test_unschedulable_detected(self):
        net = make_net([("hi", 50, 50), ("lo", 100, 100)])
        res = response_time_analysis(net, {"hi": 30, "lo": 50})
        assert not res["lo"].schedulable

    def test_sporadic_burst_as_interference(self):
        net = Network("sb")
        net.add_periodic("lo", period=100, deadline=100, kernel=nop)
        net.add_sporadic("hi", min_period=100, deadline=50, burst=2, kernel=nop)
        prios = {"hi": 0, "lo": 1}
        res = response_time_analysis(net, {"hi": 10, "lo": 30}, prios)
        # lo suffers 2 x 10 of burst interference: R = 50
        assert res["lo"].wcrt == 50
        assert res["hi"].wcrt == 20  # the burst itself (m*C)

    def test_constrained_deadline_required(self):
        net = make_net([("a", 100, 150)])
        with pytest.raises(SchedulingError, match="constrained"):
            response_time_analysis(net, {"a": 10})

    def test_missing_priority(self):
        net = make_net([("a", 100, 100)])
        with pytest.raises(SchedulingError, match="missing priority"):
            response_time_analysis(net, {"a": 10}, priorities={})

    def test_divergence_reported(self):
        net = make_net([("hi", 10, 10), ("lo", 100, 100)])
        res = response_time_analysis(net, {"hi": 10, "lo": 5})
        # hi saturates the processor: lo's fixpoint diverges
        assert not res["lo"].converged
        assert res["lo"].wcrt is None
        assert not res["lo"].schedulable


class TestAgainstSimulation:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from([40, 50, 80, 100, 200]),  # periods
                st.integers(min_value=1, max_value=15),    # wcets
            ),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_rta_matches_critical_instant_simulation(self, spec):
        """For synchronous release (all tasks released at 0 — the critical
        instant), the simulated first-job response time of the lowest-
        priority task never exceeds the analytical WCRT."""
        tasks = [(f"t{i}", p, p) for i, (p, _) in enumerate(spec)]
        net = make_net(tasks)
        execs = {f"t{i}": c for i, (_, c) in enumerate(spec)}
        results = response_time_analysis(net, execs)
        if not all(r.schedulable for r in results.values()):
            return  # only compare in the schedulable regime
        up = UniprocessorFixedPriority(net)
        horizon = max(p for p, _ in spec) * 4
        done = up.simulate_preemptive(horizon, execs)
        for name, r in results.items():
            first = [j for j in done if j.process == name and j.k == 1]
            if first:
                assert first[0].response_time <= r.wcrt

    def test_exact_for_lowest_priority_first_job(self):
        net = make_net([("hi", 50, 50), ("lo", 100, 100)])
        execs = {"hi": 20, "lo": 40}
        res = response_time_analysis(net, execs)
        up = UniprocessorFixedPriority(net)
        done = up.simulate_preemptive(200, execs)
        lo1 = next(j for j in done if j.process == "lo" and j.k == 1)
        assert lo1.response_time == res["lo"].wcrt
