"""Event generators: multi-periodic and sporadic.

Section II-A: an event generator ``e`` is defined by the set of time-stamp
sequences it can produce online, a deadline ``de`` and partitioned subsets
``Ie``/``Oe`` of external channels.  Both default generator types are
parameterised by the **burst size** ``me`` and the **period** ``Te``:

* **multi-periodic** — bursts of ``me`` simultaneous events at times
  ``0, Te, 2Te, ...`` (optionally phased by an offset, which the paper's
  examples do not use but which falls out of the model for free);
* **sporadic** — at most ``me`` events in any half-closed interval of
  length ``Te``.

A *periodic* process in the paper's figures is simply a multi-periodic one
with ``me = 1``.  Sporadic generators additionally validate concrete arrival
traces (needed by the runtime simulator) against the ``(m, T)`` constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import EventError
from .timebase import (
    Time,
    TimeLike,
    as_nonnegative_time,
    as_positive_time,
    as_time,
    time_str,
)


class EventGenerator:
    """Base class of event generators.

    Subclasses must implement :meth:`invocations`, enumerating the
    *guaranteed* invocation times inside a horizon (for periodic generators)
    or raise :class:`EventError` if the notion is undefined (sporadic
    generators have no fixed invocation times — they get *server jobs*
    instead, Section III-A).
    """

    def __init__(self, period: TimeLike, deadline: TimeLike, burst: int = 1) -> None:
        self.period: Time = as_positive_time(period, "period")
        self.deadline: Time = as_positive_time(deadline, "deadline")
        if not isinstance(burst, int) or burst < 1:
            raise EventError(f"burst size must be a positive integer, got {burst!r}")
        self.burst: int = burst

    # -- classification -------------------------------------------------
    @property
    def is_sporadic(self) -> bool:
        raise NotImplementedError

    @property
    def is_periodic(self) -> bool:
        return not self.is_sporadic

    def invocations(self, horizon: TimeLike) -> List[Time]:
        """Invocation time stamps in ``[0, horizon)``, bursts expanded."""
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


class PeriodicGenerator(EventGenerator):
    """Multi-periodic generator: ``burst`` events at ``offset + k*period``.

    With ``burst == 1`` this is the plain periodic process of the figures
    (e.g. *FilterA, 100ms*); with ``burst == m`` it is the paper's
    ``m``-periodic generator used for server processes.
    """

    def __init__(
        self,
        period: TimeLike,
        deadline: Optional[TimeLike] = None,
        burst: int = 1,
        offset: TimeLike = 0,
    ) -> None:
        if deadline is None:
            deadline = period  # implicit deadline, the common case in the paper
        super().__init__(period, deadline, burst)
        self.offset: Time = as_nonnegative_time(offset, "offset")
        if self.offset >= self.period:
            raise EventError(
                f"offset {time_str(self.offset)} must be smaller than the "
                f"period {time_str(self.period)}"
            )

    @property
    def is_sporadic(self) -> bool:
        return False

    def invocations(self, horizon: TimeLike) -> List[Time]:
        h = as_positive_time(horizon, "horizon")
        out: List[Time] = []
        k = 0
        while True:
            t = self.offset + k * self.period
            if t >= h:
                break
            out.extend([t] * self.burst)
            k += 1
        return out

    def describe(self) -> str:
        core = f"{self.burst} per {time_str(self.period)}" if self.burst > 1 else time_str(
            self.period
        )
        return f"periodic({core}, d={time_str(self.deadline)})"

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"PeriodicGenerator({self.describe()})"


class SporadicGenerator(EventGenerator):
    """Sporadic generator: at most ``burst`` events per half-closed window.

    ``period`` here is the *minimal inter-burst window* ``Te``: any half-closed
    interval of length ``Te`` contains at most ``burst`` events.
    """

    @property
    def is_sporadic(self) -> bool:
        return True

    def invocations(self, horizon: TimeLike) -> List[Time]:
        raise EventError(
            "sporadic generators have no fixed invocation times; derive a "
            "task graph (server jobs) or supply an arrival trace instead"
        )

    def max_events_in(self, horizon: TimeLike) -> int:
        """Upper bound on the number of events in a window of given length.

        For a window of length ``L`` the sporadic constraint allows at most
        ``burst * ceil(L / period)`` events (pack a burst at the start of each
        ``period``-length slice).
        """
        h = as_positive_time(horizon, "horizon")
        slices = -((-h) // self.period)  # ceil division; Fraction // Fraction -> int
        return self.burst * int(slices)

    def validate_trace(self, times: Iterable[TimeLike]) -> List[Time]:
        """Validate and normalise a concrete arrival trace.

        Checks (a) the trace is sorted, (b) every half-closed window
        ``[t, t + T)`` starting at an arrival contains at most ``burst``
        arrivals.  Sliding a window so that it *starts* at each arrival is
        sufficient: any window containing ``> m`` arrivals can be shrunk on
        the left until its first element is an arrival.

        Returns the normalised (Fraction) sorted list.
        """
        trace = [as_nonnegative_time(t, "arrival time") for t in times]
        for a, b in zip(trace, trace[1:]):
            if b < a:
                raise EventError("sporadic arrival trace must be sorted")
        n = len(trace)
        for i in range(n):
            window_end = trace[i] + self.period
            j = i
            while j < n and trace[j] < window_end:
                j += 1
            if j - i > self.burst:
                raise EventError(
                    f"sporadic constraint violated: {j - i} arrivals in "
                    f"[{time_str(trace[i])}, {time_str(window_end)}) but burst "
                    f"size is {self.burst}"
                )
        return trace

    def describe(self) -> str:
        return (
            f"sporadic({self.burst} per {time_str(self.period)}, "
            f"d={time_str(self.deadline)})"
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SporadicGenerator({self.describe()})"


@dataclass(frozen=True)
class Invocation:
    """A single event invocation: process *name* invoked at *time*.

    ``index`` is the 1-based invocation count k of the process, so the k-th
    invocation triggers the k-th job execution run and accesses external
    samples ``[k]``.
    """

    process: str
    time: Time
    index: int

    def __post_init__(self) -> None:
        if self.index < 1:
            raise EventError("invocation index is 1-based")


def merge_invocations(
    per_process: Sequence[Tuple[str, Sequence[Time]]],
) -> List[Tuple[Time, List[Invocation]]]:
    """Merge per-process invocation times into the global sequence
    ``(t1, P1), (t2, P2), ...`` of the zero-delay semantics (Section II-B).

    *per_process* maps process name to its sorted invocation times (bursts
    appear as repeated time stamps).  Returns a list of ``(t, multiset)``
    pairs with strictly increasing ``t``; each multiset lists the
    :class:`Invocation` objects that fire at ``t`` (a process invoked with
    burst ``m`` contributes ``m`` consecutive invocation indices).
    """
    counters = {name: 0 for name, _ in per_process}
    events: List[Invocation] = []
    for name, times in per_process:
        prev: Optional[Time] = None
        for t in times:
            if prev is not None and t < prev:
                raise EventError(f"invocation times of {name!r} must be sorted")
            prev = t
            counters[name] += 1
            events.append(Invocation(name, as_time(t), counters[name]))
    events.sort(key=lambda ev: ev.time)
    grouped: List[Tuple[Time, List[Invocation]]] = []
    for ev in events:
        if grouped and grouped[-1][0] == ev.time:
            grouped[-1][1].append(ev)
        else:
            grouped.append((ev.time, [ev]))
    return grouped
